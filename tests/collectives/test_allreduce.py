"""Tests of the allreduce cost models."""

import pytest

from repro.cluster import ClusterSpec, LinkModel, paper_testbed
from repro.cluster.presets import rtx2080ti
from repro.collectives import hierarchical_allreduce_time, ring_allreduce_time


def test_zero_payload_is_free(paper_spec):
    assert ring_allreduce_time(paper_spec, 0.0) == 0.0
    assert hierarchical_allreduce_time(paper_spec, 0.0) == 0.0


def test_negative_payload_rejected(paper_spec):
    with pytest.raises(ValueError):
        ring_allreduce_time(paper_spec, -1.0)
    with pytest.raises(ValueError):
        hierarchical_allreduce_time(paper_spec, -1.0)


def test_single_gpu_is_free():
    spec = ClusterSpec(
        name="solo",
        num_nodes=1,
        gpus_per_node=1,
        gpu=rtx2080ti(),
        intra_link=LinkModel("i", 1e-6, 1e9),
        inter_link=LinkModel("e", 1e-6, 1e9),
    )
    assert ring_allreduce_time(spec, 1e8) == 0.0
    # Hierarchical with one GPU: no intra peers, no inter nodes.
    assert hierarchical_allreduce_time(spec, 1e8) == 0.0


def test_monotone_in_payload(paper_spec):
    small = hierarchical_allreduce_time(paper_spec, 1e6)
    large = hierarchical_allreduce_time(paper_spec, 1e9)
    assert large > small > 0


def test_hierarchical_beats_flat_ring_on_testbed(paper_spec):
    """With 32 ranks behind 8 NICs the flat ring pays 62 serialized
    NIC steps; the hierarchical version reduces intra-node first."""
    payload = 4e8
    assert hierarchical_allreduce_time(
        paper_spec, payload
    ) < ring_allreduce_time(paper_spec, payload)


def test_single_node_ring_uses_fabric():
    spec = ClusterSpec(
        name="one-node",
        num_nodes=1,
        gpus_per_node=4,
        gpu=rtx2080ti(),
        intra_link=LinkModel("i", 1e-6, 2e9),
        inter_link=LinkModel("e", 1e-6, 100e9),
    )
    t = ring_allreduce_time(spec, 1e8)
    # 2*(P-1) steps; each step's fabric carries (gpn-1) chunks and
    # there is no NIC term on a single node.
    steps = 2 * (4 - 1)
    expected = steps * spec.intra_link.transfer_time(1e8 / 4 * 3)
    assert t == pytest.approx(expected)


def test_bandwidth_scaling(paper_spec):
    """Allreduce time is near-linear in payload (alpha amortized)."""
    t1 = hierarchical_allreduce_time(paper_spec, 1e8)
    t2 = hierarchical_allreduce_time(paper_spec, 2e8)
    assert t2 / t1 == pytest.approx(2.0, rel=0.05)
