"""Tests of the all-to-all algorithms (paper Section 5 / Figure 9)."""

import pytest

from repro.cluster import paper_testbed
from repro.collectives import (
    A2AResult,
    available_a2a,
    get_a2a,
    measure_a2a,
    phase_times,
    theoretical_max_speedup,
)
from repro.collectives.ordering import (
    node_aligned_peers,
    num_intra_rounds,
    num_rounds,
)


def test_registry_contains_paper_algorithms():
    names = available_a2a()
    for expected in ("nccl", "1dh", "2dh", "pipe"):
        assert expected in names


def test_get_unknown_a2a_raises():
    with pytest.raises(KeyError):
        get_a2a("missing")


def test_node_aligned_order_is_a_permutation(paper_spec):
    for rank in range(paper_spec.world_size):
        peers = node_aligned_peers(paper_spec, rank)
        assert sorted(peers) == list(range(paper_spec.world_size))
        assert peers[0] == rank  # self-copy first


def test_node_aligned_rounds_are_class_consistent(paper_spec):
    """In round t every rank exchanges over the same link class."""
    world = paper_spec.world_size
    orders = [node_aligned_peers(paper_spec, r) for r in range(world)]
    intra = num_intra_rounds(paper_spec)
    for t in range(num_rounds(paper_spec)):
        classes = {
            paper_spec.same_node(r, orders[r][t]) for r in range(world)
        }
        assert classes == {t < intra}


def test_node_aligned_rounds_form_matchings(paper_spec):
    """Each round's send map is a permutation (valid SR pairing)."""
    world = paper_spec.world_size
    orders = [node_aligned_peers(paper_spec, r) for r in range(world)]
    for t in range(world):
        targets = [orders[r][t] for r in range(world)]
        assert sorted(targets) == list(range(world))


@pytest.mark.parametrize("name", ["nccl", "1dh", "2dh", "pipe"])
def test_algorithms_complete_and_report(name, small_spec):
    result = measure_a2a(get_a2a(name), small_spec, 1e6)
    assert isinstance(result, A2AResult)
    assert not result.oom
    assert result.seconds > 0
    assert result.busbw_bps > 0


def test_traffic_conservation(small_spec):
    """Pairwise algorithms move exactly (P-1)/P of S per GPU."""
    for name in ("nccl", "pipe"):
        result = measure_a2a(get_a2a(name), small_spec, 4e6)
        total = (
            result.stats["intra_bytes"] + result.stats["inter_bytes"]
        )
        world = small_spec.world_size
        expected = world * 4e6 * (world - 1) / world
        assert total == pytest.approx(expected)


def test_pipe_beats_nccl_when_bandwidth_bound(paper_spec):
    big = 2e8
    t_nccl = measure_a2a(get_a2a("nccl"), paper_spec, big).seconds
    t_pipe = measure_a2a(get_a2a("pipe"), paper_spec, big).seconds
    assert t_pipe < t_nccl
    # Paper Fig. 9(c): ~1.4x at >= 200 MB.
    assert 1.25 < t_nccl / t_pipe < 1.6


def test_pipe_beats_2dh_by_about_2x_at_large(paper_spec):
    big = 6.4e8
    t_2dh = measure_a2a(get_a2a("2dh"), paper_spec, big).seconds
    t_pipe = measure_a2a(get_a2a("pipe"), paper_spec, big).seconds
    assert 1.7 < t_2dh / t_pipe < 2.4


def test_1dh_is_slowest_and_ooms_at_large(paper_spec):
    median = 1e7
    times = {
        name: measure_a2a(get_a2a(name), paper_spec, median).seconds
        for name in ("nccl", "1dh", "2dh", "pipe")
    }
    assert times["1dh"] == max(times.values())
    # Paper Fig. 9(c): 1DH-A2A runs OOM with large tensors.
    big = measure_a2a(get_a2a("1dh"), paper_spec, 2e9)
    assert big.oom
    assert big.seconds == float("inf")


def test_small_messages_near_parity(paper_spec):
    """Paper Fig. 9(a): pipe gains only a few % at small sizes."""
    small = 1e4
    t_nccl = measure_a2a(get_a2a("nccl"), paper_spec, small).seconds
    t_pipe = measure_a2a(get_a2a("pipe"), paper_spec, small).seconds
    assert t_pipe <= t_nccl
    assert t_nccl / t_pipe < 1.2


def test_simulated_speedup_tracks_eq18(paper_spec):
    """The simulator approaches the paper's analytic bound (Eq. 18)."""
    size = 4e8
    t_nccl = measure_a2a(get_a2a("nccl"), paper_spec, size).seconds
    t_pipe = measure_a2a(get_a2a("pipe"), paper_spec, size).seconds
    simulated = t_nccl / t_pipe
    bound = theoretical_max_speedup(paper_spec, size)
    assert simulated == pytest.approx(bound, rel=0.08)


def test_phase_times_positive(paper_spec):
    t_intra, t_inter = phase_times(paper_spec, 1e8)
    assert t_intra > 0
    assert t_inter > t_intra  # paper testbed is inter-bound


def test_pipe_makespan_is_max_of_phases(paper_spec):
    """Eq. 16: pipe time ~ max(t_intra, t_inter)."""
    size = 4e8
    t_intra, t_inter = phase_times(paper_spec, size)
    t_pipe = measure_a2a(get_a2a("pipe"), paper_spec, size).seconds
    assert t_pipe == pytest.approx(max(t_intra, t_inter), rel=0.05)


def test_determinism(small_spec):
    a = measure_a2a(get_a2a("pipe"), small_spec, 3e6).seconds
    b = measure_a2a(get_a2a("pipe"), small_spec, 3e6).seconds
    assert a == b


def test_single_node_cluster_all_intra():
    from repro.cluster import ClusterSpec, LinkModel
    from repro.cluster.presets import rtx2080ti

    spec = ClusterSpec(
        name="one-node",
        num_nodes=1,
        gpus_per_node=4,
        gpu=rtx2080ti(),
        intra_link=LinkModel("i", 1e-6, 2e9),
        inter_link=LinkModel("e", 3e-6, 8e9),
    )
    result = measure_a2a(get_a2a("pipe"), spec, 1e6)
    assert result.stats["inter_messages"] == 0
    assert result.seconds > 0
