"""Tests of the PXN-style aggregated pipelined all-to-all."""

import pytest

from repro.collectives import get_a2a, measure_a2a


def test_pxn_registered():
    assert get_a2a("pxn").name == "pxn"


def test_pxn_completes_on_small_cluster(small_spec):
    result = measure_a2a(get_a2a("pxn"), small_spec, 1e6)
    assert not result.oom
    assert result.seconds > 0


def test_pxn_between_2dh_and_pipe(paper_spec):
    """Aggregation + pipelining beats barriered 2DH but the rail
    bottleneck keeps it behind Pipe-A2A's all-pairwise overlap."""
    size = 2.56e8
    t_2dh = measure_a2a(get_a2a("2dh"), paper_spec, size).seconds
    t_pxn = measure_a2a(get_a2a("pxn"), paper_spec, size).seconds
    t_pipe = measure_a2a(get_a2a("pipe"), paper_spec, size).seconds
    assert t_pipe < t_pxn < t_2dh


def test_pxn_beats_sequential_nccl_at_large(paper_spec):
    size = 6.4e8
    t_nccl = measure_a2a(get_a2a("nccl"), paper_spec, size).seconds
    t_pxn = measure_a2a(get_a2a("pxn"), paper_spec, size).seconds
    assert t_pxn < t_nccl


def test_pxn_workspace_accounted(paper_spec):
    algo = get_a2a("pxn")
    assert algo.workspace_bytes(paper_spec, 1e6, rank=0) == 1e6


def test_pxn_single_node(small_spec):
    from repro.cluster import ClusterSpec, LinkModel
    from repro.cluster.presets import rtx2080ti

    spec = ClusterSpec(
        name="one",
        num_nodes=1,
        gpus_per_node=4,
        gpu=rtx2080ti(),
        intra_link=LinkModel("i", 1e-6, 2e9),
        inter_link=LinkModel("e", 3e-6, 8e9),
    )
    result = measure_a2a(get_a2a("pxn"), spec, 1e6)
    assert result.stats["inter_messages"] == 0
