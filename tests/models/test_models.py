"""Tests of the numeric transformer models."""

import numpy as np
import pytest

from repro.models import Seq2SeqTransformer, TransformerLM, collect_aux_loss
from repro.models.blocks import sinusoidal_positions


def test_lm_forward_shapes():
    lm = TransformerLM(vocab_size=30, model_dim=32, hidden_dim=48,
                       num_layers=2, max_seq_len=64, seed=0)
    tokens = np.random.default_rng(0).integers(0, 30, (3, 10))
    logits = lm(tokens)
    assert logits.shape == (3, 10, 30)


def test_lm_rejects_bad_input():
    lm = TransformerLM(vocab_size=30, max_seq_len=16, seed=0)
    with pytest.raises(ValueError):
        lm(np.zeros(5, dtype=np.int64))
    with pytest.raises(ValueError):
        lm(np.zeros((1, 17), dtype=np.int64))


def test_lm_loss_decreases_with_training(rng):
    from repro.nn import Adam

    lm = TransformerLM(vocab_size=12, model_dim=24, hidden_dim=32,
                       num_layers=1, num_heads=2, max_seq_len=16, seed=1)
    opt = Adam(lm.parameters(), lr=5e-3)
    tokens = rng.integers(4, 12, (8, 12))
    first = None
    for _ in range(30):
        opt.zero_grad()
        loss = lm.loss(tokens)
        loss.backward()
        opt.step()
        if first is None:
            first = float(loss.data)
    assert float(loss.data) < first * 0.8


def test_lm_moe_aux_loss_collected():
    lm = TransformerLM(vocab_size=20, model_dim=16, hidden_dim=24,
                       num_layers=2, num_heads=2, moe=True, num_experts=4,
                       max_seq_len=16, seed=0)
    lm(np.random.default_rng(0).integers(0, 20, (2, 8)))
    aux = collect_aux_loss(lm)
    assert aux is not None
    assert float(aux.data) > 0
    dense = TransformerLM(vocab_size=20, max_seq_len=16, seed=0)
    dense(np.random.default_rng(0).integers(0, 20, (2, 8)))
    assert collect_aux_loss(dense) is None


def test_lm_moe_has_more_params_same_flops_shape():
    dense = TransformerLM(vocab_size=20, model_dim=16, hidden_dim=24,
                          num_layers=2, max_seq_len=16, seed=0)
    moe = TransformerLM(vocab_size=20, model_dim=16, hidden_dim=24,
                        num_layers=2, moe=True, num_experts=8,
                        max_seq_len=16, seed=0)
    assert moe.num_parameters() > 4 * dense.num_parameters() * 0.5
    assert moe.num_parameters() > dense.num_parameters()


def test_seq2seq_shapes_and_loss(rng):
    model = Seq2SeqTransformer(src_vocab=25, tgt_vocab=25, model_dim=24,
                               hidden_dim=32, num_layers=1, num_heads=2,
                               max_seq_len=20, seed=0)
    src = rng.integers(4, 25, (3, 7))
    tgt_in = rng.integers(4, 25, (3, 9))
    tgt_out = rng.integers(4, 25, (3, 9))
    logits = model(src, tgt_in)
    assert logits.shape == (3, 9, 25)
    loss = model.loss(src, tgt_in, tgt_out)
    loss.backward()
    assert all(p.grad is not None for p in model.parameters())
    with pytest.raises(ValueError):
        model(src, tgt_in[:2])


def test_seq2seq_greedy_decode_stops_at_eos(rng):
    model = Seq2SeqTransformer(src_vocab=15, tgt_vocab=15, model_dim=16,
                               hidden_dim=24, num_layers=1, num_heads=2,
                               max_seq_len=20, seed=3)
    src = rng.integers(4, 15, (2, 5))
    out = model.greedy_decode(src, bos_id=1, eos_id=2, max_len=6)
    assert out.shape[0] == 2
    assert out.shape[1] <= 6


def test_sinusoidal_positions_shape_and_range():
    enc = sinusoidal_positions(10, 8)
    assert enc.shape == (10, 8)
    assert np.abs(enc).max() <= 1.0
    assert not np.allclose(enc[0], enc[5])


def test_positions_odd_dim():
    enc = sinusoidal_positions(4, 7)
    assert enc.shape == (4, 7)
