"""Tests of the paper model configurations (Tables 1, 4, 5)."""

import pytest

from repro.models import (
    MoEModelConfig,
    ablation_layer,
    bert_large_moe,
    ct_moe,
    gpt2_tiny_moe,
    layer_config_from_grid,
    table4_grid,
    transformer_moe,
)


def test_a2a_bytes_eq2():
    cfg = ablation_layer()
    # S = f*k*B*L*M*4 — paper Section 6.5 cites ~640 MB for this layer.
    assert cfg.a2a_bytes == pytest.approx(1.2 * 1 * 8 * 2048 * 8192 * 4)
    assert 6.0e8 < cfg.a2a_bytes < 6.9e8


def test_capacity_eq1():
    cfg = ablation_layer()
    assert cfg.capacity == 615  # ceil(1.2 * 1 * 16384 / 32)


def test_bert_large_chunk_is_524288_bytes():
    cfg = bert_large_moe()
    # Paper Section 6.3: "the input size for the A2A collective is
    # 524,288 bytes" — the per-peer chunk on the 32-GPU testbed.
    assert cfg.a2a_bytes / 32 == pytest.approx(524288)
    # "totally ~6.5 billion parameters".
    assert 6.0e9 < cfg.total_params < 7.0e9


def test_ct_moe_depth_variants():
    for x in (12, 16, 20, 24):
        cfg = ct_moe(x)
        assert cfg.num_layers == x
        assert cfg.name == f"CT-MoE-{x}"
    # Deeper -> more MoE params, same per-layer A2A.
    assert ct_moe(24).moe_params == 2 * ct_moe(12).moe_params
    assert ct_moe(24).a2a_bytes == ct_moe(12).a2a_bytes


def test_table4_grid_is_675_points():
    grid = table4_grid()
    assert len(grid) == 675  # 3 * 3 * 3 * 5 * 5
    assert len({tuple(sorted(p.items())) for p in grid}) == 675


def test_layer_config_from_grid():
    cfg = layer_config_from_grid(
        {"B": 8, "f": 1.2, "L": 2048, "H": 8192, "M": 8192}
    )
    assert cfg.layer_only
    assert cfg.num_layers == 1
    assert cfg.top_k == 2  # Table 4 uses k=2
    assert cfg.attention_params == 0
    assert cfg.embedding_params == 0


def test_layer_only_zeroes_dense_params():
    full = ct_moe(12)
    assert full.attention_params > 0
    assert full.embedding_params > 0


def test_named_models_match_table5_columns():
    t = transformer_moe()
    assert t.tokens_per_gpu == 4096  # B*L = 4096 per the paper
    assert (t.top_k, t.num_experts) == (1, 8)
    g = gpt2_tiny_moe()
    assert (g.batch_per_gpu, g.seq_len) == (4, 256)
    assert (g.hidden_dim, g.model_dim) == (64, 64)
    assert (g.top_k, g.num_experts) == (2, 32)


def test_config_validation():
    with pytest.raises(ValueError):
        MoEModelConfig(
            name="bad", num_layers=0, batch_per_gpu=1, seq_len=1,
            hidden_dim=1, model_dim=1, top_k=1, num_experts=1,
        )
    with pytest.raises(ValueError):
        MoEModelConfig(
            name="bad", num_layers=1, batch_per_gpu=1, seq_len=1,
            hidden_dim=1, model_dim=1, top_k=1, num_experts=1,
            capacity_factor=0.0,
        )


def test_with_layers_variant():
    cfg = ct_moe(12).with_layers(16)
    assert cfg.num_layers == 16
    assert cfg.model_dim == ct_moe(12).model_dim
