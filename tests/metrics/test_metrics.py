"""Tests of BLEU, perplexity and timing statistics."""

import math

import numpy as np
import pytest

from repro.metrics import (
    TimingStats,
    corpus_bleu,
    measure,
    perplexity_from_nll,
    sentence_bleu,
)


def test_bleu_perfect_match_is_100():
    hyp = [[1, 2, 3, 4, 5]]
    assert corpus_bleu(hyp, hyp) == pytest.approx(100.0)


def test_bleu_no_overlap_is_0():
    assert corpus_bleu([[1, 2, 3, 4]], [[5, 6, 7, 8]]) == 0.0


def test_bleu_partial_overlap_between_0_and_100():
    score = corpus_bleu([[1, 2, 3, 9, 10]], [[1, 2, 3, 4, 5]])
    assert 0 < score < 100


def test_bleu_brevity_penalty():
    ref = [[1, 2, 3, 4, 5, 6, 7, 8]]
    short = corpus_bleu([[1, 2, 3, 4]], ref)
    full = corpus_bleu([[1, 2, 3, 4, 5, 6, 7, 8]], ref)
    assert short < full


def test_bleu_order_sensitivity():
    ref = [[1, 2, 3, 4, 5]]
    shuffled = corpus_bleu([[5, 3, 1, 4, 2]], ref)
    ordered = corpus_bleu([[1, 2, 3, 4, 5]], ref)
    assert shuffled < ordered


def test_bleu_validation():
    with pytest.raises(ValueError):
        corpus_bleu([[1]], [[1], [2]])
    with pytest.raises(ValueError):
        corpus_bleu([], [])


def test_sentence_bleu_consistency():
    assert sentence_bleu([1, 2, 3, 4], [1, 2, 3, 4]) == pytest.approx(100.0)


def test_bleu_clipping():
    """Repeating a reference word cannot inflate precision."""
    ref = [[1, 2, 3, 4]]
    spam = corpus_bleu([[1, 1, 1, 1]], ref)
    honest = corpus_bleu([[1, 2, 3, 4]], ref)
    assert spam < honest


def test_perplexity_from_nll():
    assert perplexity_from_nll(0.0) == pytest.approx(1.0)
    assert perplexity_from_nll(math.log(8)) == pytest.approx(8.0)
    with pytest.raises(ValueError):
        perplexity_from_nll(-0.1)
    assert perplexity_from_nll(1000.0) < float("inf")  # capped


def test_timing_stats():
    stats = TimingStats(samples=[0.1, 0.2, 0.3])
    assert stats.mean == pytest.approx(0.2)
    assert stats.std == pytest.approx(0.1)
    assert "±" in stats.format_ms()
    single = TimingStats(samples=[0.5])
    assert single.std == 0.0


def test_measure_runs_fn():
    calls = []
    stats = measure(lambda: calls.append(1), repeats=3)
    assert len(calls) == 3
    assert len(stats.samples) == 3
    with pytest.raises(ValueError):
        measure(lambda: None, repeats=0)
