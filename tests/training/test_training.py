"""Tests of the training loops and convergence machinery."""

import numpy as np
import pytest

from repro.data import LMConfig, SyntheticLM, SyntheticTranslation, TranslationConfig
from repro.models import Seq2SeqTransformer, TransformerLM
from repro.training import (
    evaluate_translation_bleu,
    run_lm_convergence,
    train_lm,
    train_translation,
)
from repro.training.convergence import VARIANTS


@pytest.fixture(scope="module")
def lm_corpus():
    return SyntheticLM(LMConfig(num_words=12, num_topics=2, seq_len=16, branching=2))


@pytest.fixture(scope="module")
def mt_corpus():
    return SyntheticTranslation(
        TranslationConfig(num_words=10, num_topics=2, min_len=3, max_len=5)
    )


def test_train_lm_reduces_loss(lm_corpus):
    model = TransformerLM(
        vocab_size=lm_corpus.vocab_size, model_dim=24, hidden_dim=32,
        num_layers=1, num_heads=2, max_seq_len=16, seed=0,
    )
    history = train_lm(model, lm_corpus, steps=60, batch_size=8)
    assert history.smoothed_final_loss() < history.losses[0] * 0.9
    assert history.metric_name == "perplexity"
    assert history.metric > 1.0
    with pytest.raises(ValueError):
        train_lm(model, lm_corpus, steps=0)


def test_train_translation_reduces_loss(mt_corpus):
    model = Seq2SeqTransformer(
        src_vocab=mt_corpus.src_vocab_size, tgt_vocab=mt_corpus.tgt_vocab_size,
        model_dim=24, hidden_dim=32, num_layers=1, num_heads=2,
        max_seq_len=mt_corpus.max_seq_len, seed=0,
    )
    history = train_translation(model, mt_corpus, steps=60, batch_size=8)
    assert history.smoothed_final_loss() < history.losses[0] * 0.9
    assert history.metric_name == "bleu"
    assert 0.0 <= history.metric <= 100.0


def test_bleu_eval_runs(mt_corpus):
    model = Seq2SeqTransformer(
        src_vocab=mt_corpus.src_vocab_size, tgt_vocab=mt_corpus.tgt_vocab_size,
        model_dim=16, hidden_dim=24, num_layers=1, num_heads=2,
        max_seq_len=mt_corpus.max_seq_len, seed=0,
    )
    bleu = evaluate_translation_bleu(model, mt_corpus, num_batches=2, batch_size=4)
    assert 0.0 <= bleu <= 100.0


def test_lm_convergence_variants_run(lm_corpus):
    result = run_lm_convergence(
        steps=25, batch_size=8, scale="tiny",
        variants=["Base", "MoE"], corpus=lm_corpus,
    )
    assert set(result.metrics) == {"Base", "MoE"}
    assert all(m > 1.0 for m in result.metrics.values())
    text = result.render()
    assert "perplexity" in text and "Base" in text


def test_variant_list_matches_table6():
    assert VARIANTS == ("Base", "MoE", "MoE w/FP16", "MoE w/INT8", "MoE w/ZFP")


def test_training_is_deterministic(lm_corpus):
    def run():
        model = TransformerLM(
            vocab_size=lm_corpus.vocab_size, model_dim=16, hidden_dim=24,
            num_layers=1, num_heads=2, max_seq_len=16, seed=42,
        )
        return train_lm(model, lm_corpus, steps=10, batch_size=4).losses

    assert run() == run()
