"""Tests of the synthetic corpora."""

import numpy as np
import pytest

from repro.data import (
    BOS,
    EOS,
    PAD,
    LMConfig,
    SyntheticLM,
    SyntheticTranslation,
    TranslationConfig,
    Vocab,
)


def test_vocab_specials_and_words():
    v = Vocab(10)
    assert v.size == 14
    assert v.word(0) == 4
    assert v.is_word(4)
    assert not v.is_word(PAD)
    with pytest.raises(ValueError):
        v.word(10)
    assert v.words([0, 1]) == [4, 5]


def test_translation_determinism():
    corpus = SyntheticTranslation(TranslationConfig(seed=5))
    a = list(corpus.batches(4, 3, seed=1))
    b = list(corpus.batches(4, 3, seed=1))
    for (s1, i1, o1), (s2, i2, o2) in zip(a, b):
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_array_equal(o1, o2)


def test_translation_batch_framing():
    corpus = SyntheticTranslation(TranslationConfig())
    src, tgt_in, tgt_out = next(corpus.batches(8, 1, seed=0))
    assert src.shape[0] == 8
    assert np.all(tgt_in[:, 0] == BOS)
    # tgt_in is tgt_out shifted right by one.
    for i in range(8):
        out_tokens = [t for t in tgt_out[i] if t != PAD]
        in_tokens = [t for t in tgt_in[i] if t != PAD]
        assert in_tokens[0] == BOS
        assert in_tokens[1:] == out_tokens[:-1]
        assert out_tokens[-1] == EOS


def test_translation_mapping_is_topic_dependent():
    corpus = SyntheticTranslation(TranslationConfig(num_topics=4))
    words = [0, 1, 2, 3]
    outputs = {tuple(corpus.translate(t, words)) for t in range(4)}
    assert len(outputs) > 1  # different topics map differently


def test_translation_reversal_flag():
    plain = SyntheticTranslation(TranslationConfig())
    hard = SyntheticTranslation(
        TranslationConfig(reverse_even_topics=True)
    )
    words = [0, 1, 2]
    assert plain.translate(0, words) == hard.translate(0, words)[::-1]
    assert plain.translate(1, words) == hard.translate(1, words)


def test_references_match_target(rng):
    corpus = SyntheticTranslation(TranslationConfig())
    src, _tgt_in, tgt_out = next(corpus.batches(6, 1, seed=3))
    refs = corpus.references_for(src)
    for ref, out_row in zip(refs, tgt_out):
        expected = [t for t in out_row if t != PAD]
        assert ref == expected


def test_translation_validation():
    corpus = SyntheticTranslation(TranslationConfig())
    with pytest.raises(ValueError):
        next(corpus.batches(0, 1, seed=0))
    with pytest.raises(ValueError):
        TranslationConfig(min_len=5, max_len=4)


def test_lm_document_structure():
    corpus = SyntheticLM(LMConfig(num_words=16, num_topics=3, seq_len=20))
    doc = corpus.sample_document(np.random.default_rng(0))
    assert doc.shape == (20,)
    # First token is a topic token.
    assert doc[0] in [corpus.vocab.word(i) for i in range(3)]
    # All following tokens are content words.
    assert all(t >= corpus._word_base for t in doc[1:])


def test_lm_transitions_follow_topic_chain():
    cfg = LMConfig(num_words=16, num_topics=3, seq_len=40, branching=2)
    corpus = SyntheticLM(cfg)
    rng = np.random.default_rng(4)
    for _ in range(5):
        doc = corpus.sample_document(rng)
        topic = doc[0] - corpus.vocab.word(0)
        for prev, nxt in zip(doc[1:-1], doc[2:]):
            w_prev = prev - corpus._word_base
            w_next = nxt - corpus._word_base
            assert w_next in corpus.successors[topic, w_prev]


def test_lm_determinism_and_validation():
    corpus = SyntheticLM(LMConfig())
    a = list(corpus.batches(4, 2, seed=9))
    b = list(corpus.batches(4, 2, seed=9))
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)
    with pytest.raises(ValueError):
        LMConfig(branching=0)
    with pytest.raises(ValueError):
        LMConfig(seq_len=2)
    assert corpus.optimal_perplexity == corpus.config.branching
