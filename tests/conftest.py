"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, LinkModel, paper_testbed
from repro.cluster.presets import rtx2080ti


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_spec() -> ClusterSpec:
    """2 nodes x 2 GPUs — fast to simulate, still hierarchical."""
    return ClusterSpec(
        name="test-2x2",
        num_nodes=2,
        gpus_per_node=2,
        gpu=rtx2080ti(),
        intra_link=LinkModel(name="intra", latency_s=1e-6, bandwidth_bps=2e9),
        intra_bulk_link=LinkModel(
            name="intra-bulk", latency_s=5e-6, bandwidth_bps=6e9
        ),
        inter_link=LinkModel(name="inter", latency_s=3e-6, bandwidth_bps=8e9),
    )


@pytest.fixture
def paper_spec() -> ClusterSpec:
    """The calibrated 8x4 testbed (32 simulated GPUs)."""
    return paper_testbed()
