"""Smoke tests: the shipped examples run end to end.

The two long-running examples (translation_training, cluster_what_if)
are exercised partially — their helpers are importable and their fast
paths run — while the quickstart and plugin examples run in full.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name):
    return runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "execution plan" in out
    assert "forward timeline" in out
    assert "C1^1" in out


def test_custom_plugins_runs(capsys):
    run_example("custom_plugins.py")
    out = capsys.readouterr().out
    assert "TopKSparsifier" in out
    assert "eager-inter" in out
    assert "forward" in out


def test_translation_example_helpers():
    module = runpy.run_path(
        str(EXAMPLES / "translation_training.py"), run_name="not_main"
    )
    from repro.data import SyntheticTranslation

    corpus = SyntheticTranslation(module["CORPUS"])
    model = module["build"](moe=True, corpus=corpus)
    src, tgt_in, tgt_out = next(corpus.batches(2, 1, seed=0))
    loss = model.loss(src, tgt_in, tgt_out)
    assert float(loss.data) > 0


def test_what_if_clusters_defined():
    module = runpy.run_path(
        str(EXAMPLES / "cluster_what_if.py"), run_name="not_main"
    )
    clusters = module["CLUSTERS"]
    assert len(clusters) == 3
    names = [spec.name for _label, spec in clusters]
    assert any("2080ti" in n for n in names)
