"""Integration tests across the whole stack."""

import numpy as np
import pytest

from repro import ScheMoELayer, SystemPolicy, paper_testbed, simulate_model_step
from repro.compression import get_compressor
from repro.data import LMConfig, SyntheticLM
from repro.models import TransformerLM, ct_moe
from repro.nn import Adam, Tensor
from repro.training import train_lm


def test_schemoe_layer_trains_inside_a_model(rng):
    """The paper's Listing 2 usage: the MoE module trains like any
    nn.Module, with its system configuration attached."""
    layer = ScheMoELayer(
        model_dim=16, hidden_dim=24, num_experts=4, rng=rng,
        compress_name="zfp", comm_name="pipe", scheduler_name="optsche",
    )
    opt = Adam(layer.parameters(), lr=1e-2)
    x = rng.standard_normal((16, 16)).astype(np.float32)
    target = np.roll(x, 1, axis=1)
    losses = []
    for _ in range(25):
        opt.zero_grad()
        out = layer(Tensor(x))
        loss = ((out - Tensor(target)) ** 2).mean() + 0.01 * layer.last_aux_loss
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    assert losses[-1] < losses[0]

    # ...and the same object yields a system plan on the testbed.
    plan = layer.plan(paper_testbed(), batch_per_gpu=2, seq_len=8)
    assert plan.step_seconds > 0


def test_moe_training_beats_dense_on_heterogeneous_data():
    """The core MoE premise (Table 6: MoE > Base), end to end."""
    corpus = SyntheticLM(
        LMConfig(num_words=20, num_topics=6, seq_len=24, branching=2, seed=7)
    )
    dims = dict(model_dim=32, hidden_dim=32, num_layers=2, num_heads=4,
                max_seq_len=24)
    dense = TransformerLM(vocab_size=corpus.vocab_size, seed=0, **dims)
    moe = TransformerLM(vocab_size=corpus.vocab_size, moe=True,
                        num_experts=6, top_k=2, capacity_factor=1.5,
                        seed=0, **dims)
    ppl_dense = train_lm(dense, corpus, steps=220, batch_size=16).metric
    ppl_moe = train_lm(moe, corpus, steps=220, batch_size=16).metric
    assert ppl_moe < ppl_dense


def test_compression_error_ordering_in_training_context():
    """INT8 roundtrip error on live MoE activations exceeds ZFP's."""
    corpus = SyntheticLM(LMConfig(num_words=16, num_topics=3, seq_len=16))
    model = TransformerLM(
        vocab_size=corpus.vocab_size, model_dim=24, hidden_dim=32,
        num_layers=1, num_heads=2, max_seq_len=16, moe=True,
        num_experts=4, seed=0,
    )
    train_lm(model, corpus, steps=30, batch_size=8)
    # Capture a live dispatched tensor from the trained model.
    moe_layer = model.blocks[0].ffn
    tokens = next(corpus.batches(8, 1, seed=55))
    model(tokens[:, :-1])
    from repro.moe.dispatch import dispatch

    flat = model.embed(tokens[:, :-1]).reshape(-1, 24)
    routed = dispatch(flat, moe_layer.last_gate_output.dispatch_mask).data
    err = {}
    for name in ("fp16", "zfp", "int8"):
        codec = get_compressor(name)
        err[name] = float(np.linalg.norm(codec.roundtrip(routed) - routed))
    # fp16 sits well below INT8 on live activations.  (ZFP's edge over
    # INT8 appears on *heterogeneous* data — outlier rows, gradients —
    # covered by the codec unit tests; on homogeneous early-training
    # embeddings INT8's exact max-scale can edge out ZFP's
    # power-of-two block exponent.)
    assert err["fp16"] < err["int8"]
    assert err["zfp"] < 3 * err["int8"]


def test_full_step_simulation_is_deterministic(paper_spec):
    policy = SystemPolicy(
        name="x", compressor="zfp", a2a="pipe",
        scheduler="optsche", partition_candidates=(1, 2),
    )
    a = simulate_model_step(ct_moe(12), paper_spec, policy).total_s
    b = simulate_model_step(ct_moe(12), paper_spec, policy).total_s
    assert a == b


def test_every_a2a_and_codec_combination_simulates(paper_spec):
    """The extensibility matrix: any codec x any A2A x any scheduler
    runs through the full step simulator."""
    from repro.collectives import available_a2a
    from repro.compression import available_compressors
    from repro.core import available_schedulers

    cfg = ct_moe(12)
    for a2a in available_a2a():
        for codec in ("none", "zfp"):
            for sched in ("sequential", "chunk-pipeline", "optsche"):
                policy = SystemPolicy(
                    name=f"{a2a}-{codec}-{sched}",
                    compressor=codec, a2a=a2a, scheduler=sched, partitions=2,
                )
                result = simulate_model_step(cfg, paper_spec, policy)
                assert result.total_s > 0 or result.oom
