"""Smoke tests of the command-line interface."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table7" in out and "ScheMoE" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "ratio" in out
    assert out.count("%") >= 4


def test_table8(capsys):
    assert main(["table8"]) == 0
    out = capsys.readouterr().out
    assert "OOM" in out  # FasterMoE
    assert "ScheMoE" in out


def test_a2a_measurement(capsys):
    assert main(["a2a", "--algo", "pipe", "--size", "1e6"]) == 0
    out = capsys.readouterr().out
    assert "busbw" in out


def test_a2a_oom_exit_code(capsys):
    assert main(["a2a", "--algo", "1dh", "--size", "2e9"]) == 1
    assert "OOM" in capsys.readouterr().out


def test_step_breakdown(capsys):
    assert main(
        ["step", "--model", "ct_moe", "--layers", "12", "--policy", "ScheMoE"]
    ) == 0
    out = capsys.readouterr().out
    assert "ms/step" in out and "allreduce" in out


def test_step_oom(capsys):
    assert main(
        ["step", "--model", "bert_large_moe", "--policy", "Faster-MoE"]
    ) == 1
    assert "OOM" in capsys.readouterr().out


def test_trace_export(tmp_path, capsys):
    out_path = tmp_path / "trace.json"
    assert main(
        ["trace", "--out", str(out_path), "--model-dim", "64",
         "--hidden-dim", "128", "--batch", "2", "--seq", "64"]
    ) == 0
    payload = json.loads(out_path.read_text())
    assert payload["traceEvents"]


def test_alternate_cluster(capsys):
    assert main(["--cluster", "ethernet_cluster", "table1"]) == 0
    out = capsys.readouterr().out
    assert "%" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["unknown-command"])


def test_table7(capsys):
    assert main(["table7"]) == 0
    out = capsys.readouterr().out
    assert "Tutel" in out and "ScheMoE" in out
    assert out.count("ms") >= 12  # 4 depths x 3 systems


def test_table10(capsys):
    assert main(["table10"]) == 0
    out = capsys.readouterr().out
    for name in ("Naive", "ScheMoE-Z", "ScheMoE-ZP", "ScheMoE"):
        assert name in out


def test_fig9(capsys):
    assert main(["fig9"]) == 0
    out = capsys.readouterr().out
    assert "nccl" in out and "pipe" in out
    assert "OOM" in out  # 1dh at 2 GB


def test_faults_demo_straggler(capsys):
    assert main(["faults", "--slowdown", "2.0"]) == 0
    out = capsys.readouterr().out
    assert "healthy makespan" in out
    assert "faulted makespan" in out
    assert "2.00x" in out  # optsche+pipe is compute-bound: 2x straggler


def test_faults_write_demo_then_load(tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    assert main(
        ["faults", "--slowdown", "3.0", "--write-demo", str(plan_path)]
    ) == 0
    capsys.readouterr()
    assert json.loads(plan_path.read_text())["stragglers"]
    assert main(["faults", "--plan", str(plan_path)]) == 0
    assert "3.00x" in capsys.readouterr().out


def test_a2a_with_fault_plan(tmp_path, capsys):
    from repro.faults import FaultPlan, TransientFaults, save_fault_plan

    plan_path = tmp_path / "plan.json"
    save_fault_plan(
        FaultPlan(
            seed=7,
            transient=TransientFaults(probability=0.2, max_retries=8),
        ),
        plan_path,
    )
    assert main(
        ["a2a", "--algo", "pipe", "--size", "1e7",
         "--faults", str(plan_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "transient failures" in out and "retries" in out


def test_plan_smoke(tmp_path, capsys):
    cache = tmp_path / "plan_cache.json"
    args = [
        "plan", "--layers", "12", "--budget", "20", "--top-k", "2",
        "--schedulers", "sequential,optsche", "--a2a", "pipe",
        "--codecs", "none", "--partitions", "1,2",
        "--capacity-factors", "1.0", "--processes", "1",
        "--cache", str(cache), "--regret",
        "--out", str(tmp_path / "report.json"),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "recommendation:" in out
    assert "regret vs exhaustive sweep" in out
    assert "cache hits 0/2" in out
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["recommendation"]["layer"]["expert_impl"] == "grouped"
    assert report["regret"]["regret_pct"] <= 5.0
    # A rerun against the same cache replays every validation.
    assert main(args) == 0
    assert "cache hits 2/2" in capsys.readouterr().out


def test_reshard_demo_checkpoint_strategy(capsys):
    assert main(
        ["reshard", "--strategy", "checkpoint", "--tokens", "32",
         "--layers", "12"]
    ) == 0
    out = capsys.readouterr().out
    assert "recovered == fresh group w/ same placement: True" in out
    assert "checkpoint restore == pre-kill healthy output: True" in out
    assert "scale-up" in out
    assert "breakeven" in out


def test_reshard_reinit_no_scale_up(capsys):
    assert main(
        ["reshard", "--strategy", "reinit", "--no-scale-up",
         "--tokens", "32"]
    ) == 0
    out = capsys.readouterr().out
    assert "recovered == fresh group w/ same placement: True" in out
    assert "scale-up" not in out


def test_faults_write_recovery_demo_then_reshard(tmp_path, capsys):
    demo_path = tmp_path / "demo.json"
    assert main(
        ["faults", "--write-demo", str(demo_path), "--recovery",
         "--slowdown", "3.0"]
    ) == 0
    assert "recovery demo written" in capsys.readouterr().out
    blob = json.loads(demo_path.read_text())
    assert blob["strategy"] == "reinit"
    assert blob["faults"]["stragglers"][0]["slowdown"] == 3.0
    assert main(["reshard", "--plan", str(demo_path)]) == 0
    assert "all parity checks passed: True" in capsys.readouterr().out


def test_faults_recovery_flag_requires_write_demo(capsys):
    assert main(["faults", "--recovery"]) == 1
    assert "--write-demo" in capsys.readouterr().out
