"""Crash → resume: a resumed run's loss trajectory is bit-for-bit.

The elastic-recovery story needs more than parameter restore: resuming
from a crash-safe checkpoint must continue the *exact* run, which
requires the optimizer moments and step count alongside the weights
(``save_checkpoint(extra_arrays=...)``).  These tests train an MoE LM,
"crash" mid-run, resume from the checkpoint into a freshly constructed
model, and require the remaining loss trajectory to equal the
uninterrupted run's float for float.
"""

import pytest

from repro.data import LMConfig, SyntheticLM
from repro.models import TransformerLM
from repro.nn import (
    Adam,
    clip_grad_norm,
    load_checkpoint,
    load_extra_arrays,
    save_checkpoint,
)


NUM_EXPERTS = 4
STEPS = 8
CRASH_AT = 4  # steps completed before the crash


@pytest.fixture(scope="module")
def corpus():
    return SyntheticLM(
        LMConfig(num_words=12, num_topics=2, seq_len=16, branching=2)
    )


def make_model(vocab_size, seed=0):
    return TransformerLM(
        vocab_size=vocab_size, model_dim=16, hidden_dim=24, num_layers=1,
        num_heads=2, moe=True, num_experts=NUM_EXPERTS, max_seq_len=16,
        seed=seed,
    )


def one_step(model, optimizer, tokens):
    optimizer.zero_grad()
    loss = model.loss(tokens)
    loss.backward()
    clip_grad_norm(model.parameters(), 1.0)
    optimizer.step()
    return float(loss.data)


def optimizer_extras(optimizer):
    extras = {}
    for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
        extras[f"adam.m.{i}"] = m
        extras[f"adam.v.{i}"] = v
    return extras


def restore_optimizer(optimizer, path, step):
    extras = load_extra_arrays(path)
    optimizer._step = step
    optimizer._m = [
        extras[f"adam.m.{i}"] for i in range(len(optimizer.parameters))
    ]
    optimizer._v = [
        extras[f"adam.v.{i}"] for i in range(len(optimizer.parameters))
    ]


def test_resumed_loss_trajectory_is_bit_identical(tmp_path, corpus):
    batches = list(corpus.batches(4, STEPS, seed=0))

    # Reference: the uninterrupted run.
    model = make_model(corpus.vocab_size)
    optimizer = Adam(model.parameters(), lr=3e-3)
    reference = [one_step(model, optimizer, b) for b in batches]

    # Crashed run: checkpoint (weights + Adam moments + step count)
    # after CRASH_AT steps, then lose the process.
    model = make_model(corpus.vocab_size)
    optimizer = Adam(model.parameters(), lr=3e-3)
    before_crash = [
        one_step(model, optimizer, b) for b in batches[:CRASH_AT]
    ]
    ck = tmp_path / "mid-run.npz"
    save_checkpoint(
        model, ck,
        metadata={"step": optimizer._step},
        extra_arrays=optimizer_extras(optimizer),
    )
    del model, optimizer  # the crash

    # Resume into a *differently seeded* fresh model: every parameter
    # and optimizer slot must come from the checkpoint, not luck.
    resumed = make_model(corpus.vocab_size, seed=1234)
    meta = load_checkpoint(resumed, ck)
    optimizer = Adam(resumed.parameters(), lr=3e-3)
    restore_optimizer(optimizer, ck, meta["step"])
    assert optimizer._step == CRASH_AT
    after_resume = [
        one_step(resumed, optimizer, b) for b in batches[CRASH_AT:]
    ]

    assert before_crash == reference[:CRASH_AT]
    # The load-bearing claim: not close — identical.
    assert after_resume == reference[CRASH_AT:]


def test_resume_without_moments_diverges(tmp_path, corpus):
    """Control: weights alone are NOT enough for bit-exact resume —
    fresh Adam moments change the trajectory.  This is why
    ``extra_arrays`` exists."""
    batches = list(corpus.batches(4, STEPS, seed=0))
    model = make_model(corpus.vocab_size)
    optimizer = Adam(model.parameters(), lr=3e-3)
    reference = [one_step(model, optimizer, b) for b in batches]

    model = make_model(corpus.vocab_size)
    optimizer = Adam(model.parameters(), lr=3e-3)
    for b in batches[:CRASH_AT]:
        one_step(model, optimizer, b)
    ck = tmp_path / "weights-only.npz"
    save_checkpoint(model, ck)

    resumed = make_model(corpus.vocab_size, seed=1234)
    load_checkpoint(resumed, ck)
    cold = Adam(resumed.parameters(), lr=3e-3)  # moments lost
    after = [one_step(resumed, cold, b) for b in batches[CRASH_AT:]]
    assert after != reference[CRASH_AT:]
