"""Unit tests of CUDA-stream (FIFO) semantics."""

import pytest

from repro.cluster.engine import Engine
from repro.cluster.streams import GpuStreams, Stream, make_streams


def _work(engine, dt, log, tag):
    def gen():
        yield engine.timeout(dt)
        log.append((tag, engine.now))

    return gen


def test_stream_runs_fifo():
    eng = Engine()
    s = Stream(eng, "s")
    log = []
    s.submit(_work(eng, 2.0, log, "a"))
    s.submit(_work(eng, 1.0, log, "b"))
    eng.run()
    assert log == [("a", 2.0), ("b", 3.0)]


def test_streams_run_concurrently():
    eng = Engine()
    s1, s2 = Stream(eng, "s1"), Stream(eng, "s2")
    log = []
    s1.submit(_work(eng, 2.0, log, "a"))
    s2.submit(_work(eng, 2.0, log, "b"))
    eng.run()
    assert [t for _, t in log] == [2.0, 2.0]


def test_cross_stream_dependency_delays_start():
    eng = Engine()
    s1, s2 = Stream(eng, "s1"), Stream(eng, "s2")
    log = []
    dep = s1.submit(_work(eng, 3.0, log, "producer"))
    s2.submit(_work(eng, 1.0, log, "consumer"), after=[dep])
    eng.run()
    assert log == [("producer", 3.0), ("consumer", 4.0)]


def test_head_of_line_blocking():
    """A blocked item delays everything behind it on the same stream."""
    eng = Engine()
    s1, s2 = Stream(eng, "s1"), Stream(eng, "s2")
    log = []
    slow = s1.submit(_work(eng, 5.0, log, "slow"))
    # First item of s2 waits on s1; the second has no deps but must wait
    # behind the first anyway (FIFO).
    s2.submit(_work(eng, 1.0, log, "blocked"), after=[slow])
    s2.submit(_work(eng, 1.0, log, "behind"))
    eng.run()
    assert log == [("slow", 5.0), ("blocked", 6.0), ("behind", 7.0)]


def test_barrier_event():
    eng = Engine()
    s = Stream(eng, "s")
    log = []
    s.submit(_work(eng, 2.0, log, "a"))
    done = []

    def waiter():
        yield s.barrier()
        done.append(eng.now)

    eng.process(waiter())
    eng.run()
    assert done == [2.0]


def test_barrier_on_empty_stream_is_immediate():
    eng = Engine()
    s = Stream(eng, "s")
    ev = s.barrier()
    assert ev.fired


def test_make_streams():
    eng = Engine()
    streams = make_streams(eng, 4)
    assert len(streams) == 4
    assert isinstance(streams[0], GpuStreams)
    assert len(streams[0].all_streams()) == 4
    with pytest.raises(ValueError):
        make_streams(eng, 0)


def test_outstanding_names_unfinished_items():
    eng = Engine()
    s = Stream(eng, "gpu0:comm")
    gate = eng.event("gate")

    def quick():
        yield eng.timeout(1.0)

    def stuck():
        yield gate

    s.submit(quick, name="a2a-chunk0")
    s.submit(stuck, name="a2a-chunk1")
    s.submit(quick, name="a2a-chunk2")
    assert s.outstanding() == ["a2a-chunk0", "a2a-chunk1", "a2a-chunk2"]
    assert eng.run(until=5.0) == 1.0  # queue drains at t=1
    # chunk0 finished; chunk1 blocks the FIFO, chunk2 behind it.
    assert s.outstanding() == ["a2a-chunk1", "a2a-chunk2"]
    gate.succeed()
    eng.run()
    assert s.outstanding() == []
