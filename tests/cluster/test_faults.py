"""Fault-injection layer: plans, injector math, cluster behaviour."""

import math

import pytest

from repro.cluster import SimCluster, paper_testbed
from repro.cluster.costmodel import LinkModel
from repro.collectives import available_a2a, get_a2a
from repro.collectives.base import measure_a2a
from repro.faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    LinkFault,
    StragglerFault,
    TransientFaults,
    flapping_link,
    load_fault_plan,
    save_fault_plan,
    single_straggler,
)

SPEC = paper_testbed()


# -- plan validation --------------------------------------------------------
def test_plan_validation_rejects_bad_fields():
    with pytest.raises(ValueError):
        StragglerFault(rank=-1, slowdown=2.0)
    with pytest.raises(ValueError):
        StragglerFault(rank=0, slowdown=0.5)  # faster than healthy
    with pytest.raises(ValueError):
        StragglerFault(rank=0, slowdown=2.0, start_s=3.0, end_s=1.0)
    with pytest.raises(ValueError):
        LinkFault(node=0, link="warp-core")
    with pytest.raises(ValueError):
        LinkFault(node=0, link="nic", bandwidth_factor=0.0)  # infinite stall
    with pytest.raises(ValueError):
        LinkFault(node=0, link="nic", bandwidth_factor=1.5)
    with pytest.raises(ValueError):
        TransientFaults(probability=1.0)  # would never succeed
    with pytest.raises(ValueError):
        TransientFaults(probability=0.1, backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        TransientFaults(probability=0.1, link="pcie")


def test_injector_rejects_out_of_range_targets():
    with pytest.raises(ValueError):
        FaultInjector(
            single_straggler(SPEC.world_size, 2.0),
            SPEC.world_size,
            SPEC.num_nodes,
        )
    plan = FaultPlan(links=(LinkFault(node=SPEC.num_nodes, link="nic"),))
    with pytest.raises(ValueError):
        FaultInjector(plan, SPEC.world_size, SPEC.num_nodes)


def test_empty_plan_is_empty():
    assert FaultPlan().is_empty()
    assert not single_straggler(0, 2.0).is_empty()
    assert not FaultPlan(transient=TransientFaults(0.1)).is_empty()


def test_plan_json_roundtrip(tmp_path):
    plan = FaultPlan(
        seed=41,
        stragglers=(
            StragglerFault(rank=3, slowdown=2.0),  # open-ended window
            StragglerFault(rank=0, slowdown=4.0, start_s=1.0, end_s=2.0),
        ),
        links=flapping_link(
            1, "nic", period_s=0.01, down_fraction=0.3, cycles=4
        ),
        transient=TransientFaults(probability=0.05, link="fabric"),
    )
    path = tmp_path / "plan.json"
    save_fault_plan(plan, path)
    assert load_fault_plan(path) == plan
    # The file is strict JSON (inf encoded as null, not a bare literal).
    assert "Infinity" not in path.read_text()


def test_plan_json_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown fault-plan keys"):
        FaultPlan.from_json_dict({"seed": 0, "gremlins": []})


def test_load_missing_plan_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_fault_plan(tmp_path / "nope.json")


def test_flapping_link_windows():
    windows = flapping_link(
        0, "fabric", period_s=1.0, down_fraction=0.25, cycles=3, start_s=2.0
    )
    assert [(w.start_s, w.end_s) for w in windows] == [
        (2.0, 2.25),
        (3.0, 3.25),
        (4.0, 4.25),
    ]


# -- injector math ----------------------------------------------------------
def test_straggler_piecewise_integration():
    inj = FaultInjector(
        single_straggler(0, 2.0, start_s=1.0, end_s=3.0),
        SPEC.world_size,
        SPEC.num_nodes,
    )
    # 4s of healthy work from t=0: [0,1) yields 1 unit, [1,3) at half
    # rate yields 1, the remaining 2 run healthy -> finish at 5.
    assert inj.compute_finish(0, 0.0, 4.0) == 5.0
    # Started inside the window.
    assert inj.compute_finish(0, 1.5, 1.0) == 3.25
    # Started after the window: untouched.
    assert inj.compute_finish(0, 10.0, 1.0) == 11.0
    # Other ranks: untouched.
    assert inj.compute_finish(1, 0.0, 4.0) == 4.0


def test_overlapping_stragglers_multiply():
    plan = FaultPlan(
        stragglers=(
            StragglerFault(rank=0, slowdown=2.0),
            StragglerFault(rank=0, slowdown=3.0),
        )
    )
    inj = FaultInjector(plan, SPEC.world_size, SPEC.num_nodes)
    assert inj.compute_finish(0, 0.0, 1.0) == pytest.approx(6.0)


def test_link_fault_piecewise_and_latency():
    link = LinkModel(name="t", latency_s=0.5, bandwidth_bps=100.0)
    plan = FaultPlan(
        links=(
            LinkFault(
                node=0,
                link="nic",
                bandwidth_factor=0.5,
                extra_latency_s=0.25,
                start_s=0.0,
                end_s=2.0,
            ),
        )
    )
    inj = FaultInjector(plan, SPEC.world_size, SPEC.num_nodes)
    # 100 B at t=0: latency 0.5+0.25, drain starts at 0.75; [0.75,2) at
    # 50 B/s moves 62.5 B, remaining 37.5 B at 100 B/s -> 2.375.
    assert inj.transfer_finish("nic", 0, 0.0, 100.0, link) == pytest.approx(
        2.375
    )
    # Outside the window: plain alpha-beta.
    assert inj.transfer_finish("nic", 0, 5.0, 100.0, link) == pytest.approx(
        5.0 + link.transfer_time(100.0)
    )
    # Other node / other link class: untouched.
    assert inj.transfer_finish("nic", 1, 0.0, 100.0, link) == pytest.approx(
        link.transfer_time(100.0)
    )
    assert inj.transfer_finish("fabric", 0, 0.0, 100.0, link) == pytest.approx(
        link.transfer_time(100.0)
    )


def test_link_fault_node_wildcard():
    link = LinkModel(name="t", latency_s=0.0, bandwidth_bps=100.0)
    plan = FaultPlan(links=(LinkFault(node=-1, link="nic", bandwidth_factor=0.5),))
    inj = FaultInjector(plan, SPEC.world_size, SPEC.num_nodes)
    for node in range(SPEC.num_nodes):
        assert inj.transfer_finish("nic", node, 0.0, 100.0, link) == 2.0


def test_degraded_link_model():
    link = LinkModel(name="nic", latency_s=1e-5, bandwidth_bps=1e9)
    cut = link.degraded(bandwidth_factor=0.25, extra_latency_s=1e-4)
    assert cut.bandwidth_bps == 0.25e9
    assert cut.latency_s == pytest.approx(1.1e-4)
    # Identity degradation returns the same (hashable, frozen) object.
    assert link.degraded() is link
    with pytest.raises(ValueError):
        link.degraded(bandwidth_factor=0.0)


def test_transient_decisions_are_seeded_and_stateless():
    plan = FaultPlan(seed=9, transient=TransientFaults(probability=0.3))
    a = FaultInjector(plan, SPEC.world_size, SPEC.num_nodes)
    b = FaultInjector(plan, SPEC.world_size, SPEC.num_nodes)
    seq_a = [a.transfer_attempt_fails("nic", 0.0) for _ in range(200)]
    seq_b = [b.transfer_attempt_fails("nic", 0.0) for _ in range(200)]
    assert seq_a == seq_b
    assert any(seq_a) and not all(seq_a)
    # A different seed gives a different sequence.
    other = FaultInjector(
        FaultPlan(seed=10, transient=TransientFaults(probability=0.3)),
        SPEC.world_size,
        SPEC.num_nodes,
    )
    assert [other.transfer_attempt_fails("nic", 0.0) for _ in range(200)] != seq_a


def test_transient_window_and_link_filters():
    plan = FaultPlan(
        transient=TransientFaults(
            probability=0.99, link="nic", start_s=1.0, end_s=2.0
        )
    )
    inj = FaultInjector(plan, SPEC.world_size, SPEC.num_nodes)
    assert not inj.transfer_attempt_fails("nic", 0.5)  # before window
    assert not inj.transfer_attempt_fails("fabric", 1.5)  # other link
    assert not inj.transfer_attempt_fails("nic", 2.0)  # window closed


# -- cluster behaviour ------------------------------------------------------
@pytest.mark.parametrize("name", available_a2a())
def test_empty_plan_is_bit_identical(name):
    clean = measure_a2a(get_a2a(name), SPEC, 4e6)
    empty = measure_a2a(get_a2a(name), SPEC, 4e6, faults=FaultPlan())
    assert empty.seconds == clean.seconds
    assert empty.stats == clean.stats
    assert empty.peak_bytes_per_gpu == clean.peak_bytes_per_gpu


def test_link_fault_slows_collective():
    plan = FaultPlan(links=(LinkFault(node=-1, link="nic", bandwidth_factor=0.25),))
    clean = measure_a2a(get_a2a("pipe"), SPEC, 4e6)
    hurt = measure_a2a(get_a2a("pipe"), SPEC, 4e6, faults=plan)
    assert hurt.seconds > clean.seconds


def test_straggler_slows_compute_only():
    plan = single_straggler(0, 3.0)
    cluster = SimCluster(SPEC, faults=plan)
    done = {}

    def kernel(rank):
        yield from cluster.compute(rank, 1.0)
        done[rank] = cluster.engine.now

    cluster.engine.process(kernel(0))
    cluster.engine.process(kernel(1))
    cluster.engine.run()
    assert done[0] == pytest.approx(3.0)
    assert done[1] == pytest.approx(1.0)


def test_transient_retries_run_and_replay_identically():
    plan = FaultPlan(
        seed=7, transient=TransientFaults(probability=0.2, max_retries=10)
    )
    r1 = measure_a2a(get_a2a("pipe"), SPEC, 1e6, faults=plan)
    r2 = measure_a2a(get_a2a("pipe"), SPEC, 1e6, faults=plan)
    assert r1.stats["transient_failures"] > 0
    assert r1.seconds == r2.seconds
    assert r1.stats == r2.stats
    # The clean run is strictly faster and reports no failure counters.
    clean = measure_a2a(get_a2a("pipe"), SPEC, 1e6)
    assert "transient_failures" not in clean.stats
    assert r1.seconds > clean.seconds


def test_transient_budget_exhaustion_raises_fault_error():
    plan = FaultPlan(
        seed=0,
        transient=TransientFaults(probability=0.95, max_retries=1),
    )
    cluster = SimCluster(SPEC, faults=plan)
    procs = [
        cluster.engine.process(cluster.transfer(0, SPEC.gpus_per_node, 1e6))
        for _ in range(20)
    ]
    with pytest.raises(FaultError, match="retry budget"):
        cluster.engine.run()
    assert procs  # the error came from a transfer process


def test_backoff_spends_simulated_time():
    # One transfer, guaranteed-ish to fail a few times: high p, large
    # budget.  Its completion time must include backoff delays beyond
    # pure link occupancy.
    plan = FaultPlan(
        seed=0,
        transient=TransientFaults(
            probability=0.9, max_retries=50, backoff_s=1.0
        ),
    )
    cluster = SimCluster(SPEC, faults=plan)
    cluster.engine.process(cluster.transfer(0, SPEC.gpus_per_node, 1e3))
    end = cluster.engine.run()
    failures = cluster.stats["transient_failures"]
    assert failures >= 1
    # Exponential backoff: total wait >= backoff_s * (2^k - 1).
    assert end >= 2.0**failures - 1.0


def test_self_transfer_never_faulted():
    plan = FaultPlan(
        seed=1,
        links=(LinkFault(node=-1, link="fabric", bandwidth_factor=0.01),),
        transient=TransientFaults(probability=0.99, max_retries=0),
    )
    clean = SimCluster(SPEC)
    hurt = SimCluster(SPEC, faults=plan)
    for cluster in (clean, hurt):
        cluster.engine.process(cluster.transfer(0, 0, 1e6))
    assert clean.engine.run() == hurt.engine.run()


def test_stalled_work_with_no_recovery_raises():
    # A zero-rate stall cannot arise from validated plans
    # (bandwidth_factor > 0), but the integrator guards against it.
    from repro.faults import _piecewise_finish

    with pytest.raises(FaultError, match="stalls forever"):
        _piecewise_finish(0.0, 1.0, lambda t: 0.0, [])


def test_infinite_window_slowdown_applies_forever():
    inj = FaultInjector(
        single_straggler(2, 2.0), SPEC.world_size, SPEC.num_nodes
    )
    assert inj.compute_finish(2, 1e6, 3.0) == pytest.approx(1e6 + 6.0)
    assert math.isinf(StragglerFault(0, 2.0).end_s)


def test_backoff_delay_saturates_instead_of_overflowing():
    # Regression: a pathological retry budget must never push the
    # exponent far enough to overflow float64 to inf (which would halt
    # the simulated clock forever on a single retry loop).
    tf = TransientFaults(
        probability=0.5, max_retries=100_000, backoff_s=1e-4,
        backoff_multiplier=2.0,
    )
    capped = tf.backoff_delay(TransientFaults.BACKOFF_EXPONENT_CAP)
    assert math.isfinite(capped)
    assert tf.backoff_delay(10_000) == capped
    assert tf.backoff_delay(100_000_000) == capped
    # Below the cap the historical exponential schedule is unchanged.
    for attempt in range(5):
        assert tf.backoff_delay(attempt) == pytest.approx(
            1e-4 * 2.0**attempt
        )
