"""Unit tests of link and GPU cost models."""

import pytest

from repro.cluster.costmodel import (
    GpuModel,
    LinkModel,
    a2a_input_bytes,
    attention_forward_flops,
    bytes_of,
    expert_capacity,
    ffn_backward_flops,
    ffn_forward_flops,
)


def test_link_alpha_beta():
    link = LinkModel(name="l", latency_s=1e-5, bandwidth_bps=1e9)
    assert link.transfer_time(0) == pytest.approx(1e-5)
    assert link.transfer_time(1e9) == pytest.approx(1.00001)
    with pytest.raises(ValueError):
        link.transfer_time(-1)


def _gpu(**overrides):
    base = dict(
        name="g",
        peak_flops=10e12,
        memory_bandwidth_bps=500e9,
        memory_bytes=8e9,
        peak_efficiency=0.5,
        half_saturation_flops=1e9,
        kernel_launch_s=1e-6,
    )
    base.update(overrides)
    return GpuModel(**base)


def test_gemm_efficiency_saturates():
    gpu = _gpu()
    tiny = gpu.gemm_efficiency(1e6)
    big = gpu.gemm_efficiency(1e12)
    assert tiny < 0.1 * gpu.peak_efficiency
    assert big > 0.99 * gpu.peak_efficiency


def test_gemm_time_monotone_in_flops():
    gpu = _gpu()
    times = [gpu.gemm_time(f) for f in (1e6, 1e8, 1e10, 1e12)]
    assert times == sorted(times)


def test_tensor_core_faster_when_available():
    gpu = _gpu(tensor_flops=40e12, tensor_efficiency=0.5)
    flops = 1e12
    assert gpu.gemm_time(flops, tensor_core=True) < gpu.gemm_time(flops)
    # Without tensor cores, the flag is a no-op.
    plain = _gpu(tensor_flops=0.0)
    assert plain.gemm_time(flops, tensor_core=True) == pytest.approx(
        plain.gemm_time(flops)
    )


def test_gemm_time_rejects_negative():
    with pytest.raises(ValueError):
        _gpu().gemm_time(-1.0)


def test_memory_time_linear():
    gpu = _gpu()
    t1 = gpu.memory_time(500e9)
    assert t1 == pytest.approx(1.0 + 1e-6)
    with pytest.raises(ValueError):
        gpu.memory_time(-5)


def test_a2a_input_bytes_matches_eq2():
    # S = f*k*B*L*M*b/8 — paper Eq. (2).
    s = a2a_input_bytes(
        batch=8, seq_len=2048, model_dim=8192, capacity_factor=1.2, top_k=1
    )
    assert s == pytest.approx(1.2 * 1 * 8 * 2048 * 8192 * 4)


def test_expert_capacity_matches_eq1():
    # C = f*k*B*L/E — paper Eq. (1).
    assert expert_capacity(8, 2048, 32, 1.2, 1) == 615  # ceil(614.4)
    assert expert_capacity(2, 512, 32, 1.0, 2) == 64
    with pytest.raises(ValueError):
        expert_capacity(2, 512, 0, 1.0, 2)


def test_ffn_flops_shapes():
    fwd = ffn_forward_flops(100, 512, 2048)
    assert fwd == pytest.approx(2 * 100 * 512 * 2048 * 2)
    assert ffn_backward_flops(100, 512, 2048) == pytest.approx(2 * fwd)
    assert attention_forward_flops(100, 512, 64) > 0


def test_bytes_of():
    assert bytes_of(10, 32) == 40
    assert bytes_of(10, 8) == 10
    with pytest.raises(ValueError):
        bytes_of(10, 0)
