"""Preset cluster sanity checks."""

import pytest

from repro.cluster import (
    custom_ratio_testbed,
    ethernet_cluster,
    get_preset,
    nvlink_dgx,
    paper_testbed,
)


def test_paper_testbed_shape():
    spec = paper_testbed()
    assert spec.world_size == 32
    assert spec.num_nodes == 8
    assert spec.gpus_per_node == 4
    assert spec.gpu.memory_bytes == pytest.approx(11 * 1024**3)
    # The paper's premise: intra SR fabric is the slow path; bulk and
    # NIC are comparable.
    assert spec.intra_link.bandwidth_bps < spec.inter_link.bandwidth_bps
    assert spec.intra_bulk_link.bandwidth_bps > spec.intra_link.bandwidth_bps


def test_nvlink_preset_has_fast_intra():
    spec = nvlink_dgx()
    assert spec.intra_link.bandwidth_bps > 10 * spec.inter_link.bandwidth_bps


def test_ethernet_preset_is_inter_bound():
    spec = ethernet_cluster()
    assert spec.inter_link.bandwidth_bps < spec.intra_link.bandwidth_bps


def test_get_preset_lookup():
    assert get_preset("paper_testbed").world_size == 32
    with pytest.raises(KeyError):
        get_preset("nope")


def test_custom_ratio_testbed():
    spec = custom_ratio_testbed(2e9, 8e9, num_nodes=2, gpus_per_node=2)
    assert spec.intra_link.bandwidth_bps == 2e9
    assert spec.inter_link.bandwidth_bps == 8e9
    with pytest.raises(ValueError):
        custom_ratio_testbed(-1, 8e9)
