"""Unit tests of the discrete-event engine."""

import pytest

from repro.cluster.engine import (
    AllOf,
    AnyOf,
    Engine,
    Resource,
    SimulationError,
)


def test_timeout_advances_clock():
    eng = Engine()
    fired = []

    def proc(eng):
        yield eng.timeout(1.5)
        fired.append(eng.now)
        yield eng.timeout(0.5)
        fired.append(eng.now)

    eng.process(proc(eng))
    eng.run()
    assert fired == [1.5, 2.0]
    assert eng.now == 2.0


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_run_until_caps_time():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(10.0)

    eng.process(proc(eng))
    assert eng.run(until=3.0) == 3.0
    assert eng.now == 3.0
    # Remaining events still execute on a later full run.
    eng.run()
    assert eng.now == 10.0


def test_event_fires_once():
    eng = Engine()
    ev = eng.event("x")
    ev.succeed(42)
    with pytest.raises(SimulationError):
        ev.succeed()


def test_waiting_on_fired_event_resumes_immediately():
    eng = Engine()
    ev = eng.event()
    ev.succeed("value")
    got = []

    def proc(eng, ev):
        value = yield ev
        got.append((eng.now, value))

    eng.process(proc(eng, ev))
    eng.run()
    assert got == [(0.0, "value")]


def test_resource_serializes_holders():
    eng = Engine()
    res = Resource(eng, name="r")
    finished = []

    def proc(eng, res, dt, tag):
        with (yield from res.acquire()):
            yield eng.timeout(dt)
        finished.append((tag, eng.now))

    eng.process(proc(eng, res, 2.0, "a"))
    eng.process(proc(eng, res, 3.0, "b"))
    eng.process(proc(eng, res, 1.0, "c"))
    eng.run()
    assert finished == [("a", 2.0), ("b", 5.0), ("c", 6.0)]


def test_resource_capacity_two_admits_pairs():
    eng = Engine()
    res = Resource(eng, name="r", capacity=2)
    finished = []

    def proc(eng, res, tag):
        with (yield from res.acquire()):
            yield eng.timeout(1.0)
        finished.append((tag, eng.now))

    for tag in "abcd":
        eng.process(proc(eng, res, tag))
    eng.run()
    assert [t for _, t in finished] == [1.0, 1.0, 2.0, 2.0]


def test_resource_release_of_idle_raises():
    eng = Engine()
    res = Resource(eng, name="r")
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_all_of_waits_for_every_child():
    eng = Engine()
    times = []

    def waiter(eng, events):
        yield AllOf(eng, events)
        times.append(eng.now)

    t1, t2 = eng.timeout(1.0), eng.timeout(4.0)
    eng.process(waiter(eng, [t1, t2]))
    eng.run()
    assert times == [4.0]


def test_all_of_with_already_fired_children():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    combined = AllOf(eng, [ev])
    assert combined.fired
    assert combined.value == [1]


def test_any_of_fires_on_first_child():
    eng = Engine()
    times = []

    def waiter(eng, events):
        yield AnyOf(eng, events)
        times.append(eng.now)

    eng.process(waiter(eng, [eng.timeout(5.0), eng.timeout(2.0)]))
    eng.run()
    assert times == [2.0]


def test_process_return_value_propagates():
    eng = Engine()
    results = []

    def child(eng):
        yield eng.timeout(1.0)
        return "done"

    def parent(eng):
        value = yield eng.process(child(eng))
        results.append(value)

    eng.process(parent(eng))
    eng.run()
    assert results == ["done"]


def test_yielding_non_event_raises():
    eng = Engine()

    def bad(eng):
        yield 42

    eng.process(bad(eng))
    with pytest.raises(SimulationError):
        eng.run()


def test_deterministic_fifo_at_same_timestamp():
    """Events at the same time run in scheduling order, repeatably."""

    def run_once():
        eng = Engine()
        order = []

        def proc(eng, tag):
            yield eng.timeout(1.0)
            order.append(tag)

        for tag in range(10):
            eng.process(proc(eng, tag))
        eng.run()
        return order

    assert run_once() == run_once() == list(range(10))


def test_deadlock_raises_with_diagnostics():
    """A drained queue with blocked processes names the culprits."""
    eng = Engine()
    never = eng.event("never-fired")

    def blocked(eng):
        yield eng.timeout(1.0)
        yield never

    eng.process(blocked(eng), name="victim")
    with pytest.raises(SimulationError) as exc:
        eng.run()
    message = str(exc.value)
    assert "deadlock" in message
    assert "victim" in message
    assert "never-fired" in message
    assert "1 process(es)" in message


def test_deadlock_message_truncates_long_process_lists():
    eng = Engine()
    never = eng.event("never")

    def blocked(eng):
        yield never

    for i in range(12):
        eng.process(blocked(eng), name=f"p{i}")
    with pytest.raises(SimulationError) as exc:
        eng.run()
    message = str(exc.value)
    assert "12 process(es)" in message
    assert "... and 4 more" in message


def test_run_until_suppresses_deadlock_check():
    """Stopping early legitimately strands in-flight processes."""
    eng = Engine()

    def waits(eng):
        yield eng.timeout(10.0)

    eng.process(waits(eng))
    assert eng.run(until=1.0) == 1.0  # no raise
    assert eng.run() == 10.0  # finishing cleanly later is fine


def test_deadlock_on_unreleased_resource():
    eng = Engine()
    res = Resource(eng, name="nic")

    def hog(eng, res):
        yield res.request()  # acquired, never released
        yield eng.timeout(1.0)

    def starved(eng, res):
        yield eng.timeout(0.5)
        with (yield from res.acquire()):
            yield eng.timeout(1.0)

    eng.process(hog(eng, res), name="hog")
    eng.process(starved(eng, res), name="starved")
    with pytest.raises(SimulationError) as exc:
        eng.run()
    assert "starved" in str(exc.value)
    assert "req:nic" in str(exc.value)
