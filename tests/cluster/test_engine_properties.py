"""Property-based tests of the event engine (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.engine import Engine, Resource


@settings(max_examples=50, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_exclusive_resource_serializes_to_sum(durations):
    """N holders of a capacity-1 resource finish at the prefix sums."""
    eng = Engine()
    res = Resource(eng, "r")
    finished = []

    def proc(dt, tag):
        with (yield from res.acquire()):
            yield eng.timeout(dt)
        finished.append((tag, eng.now))

    for i, dt in enumerate(durations):
        eng.process(proc(dt, i))
    eng.run()
    assert eng.now == sum(durations)
    # FIFO order preserved.
    assert [tag for tag, _t in finished] == list(range(len(durations)))
    running = 0.0
    for (_tag, t), dt in zip(finished, durations):
        running += dt
        assert t == running


@settings(max_examples=50, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=20,
    ),
    capacity=st.integers(min_value=1, max_value=8),
)
def test_capacity_bounds_makespan(durations, capacity):
    """Makespan is bounded by the greedy schedule and below the sum."""
    eng = Engine()
    res = Resource(eng, "r", capacity=capacity)

    def proc(dt):
        with (yield from res.acquire()):
            yield eng.timeout(dt)

    for dt in durations:
        eng.process(proc(dt))
    eng.run()
    total = sum(durations)
    longest = max(durations)
    # Classic list-scheduling bounds.
    assert eng.now >= max(longest, total / capacity) - 1e-9
    assert eng.now <= total + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_independent_timeouts_finish_at_max(delays):
    eng = Engine()

    def proc(dt):
        yield eng.timeout(dt)

    for dt in delays:
        eng.process(proc(dt))
    eng.run()
    assert eng.now == max(delays)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=1, max_value=50))
def test_all_of_equals_last_child(n):
    eng = Engine()
    events = [eng.timeout(float(i)) for i in range(n)]
    fired_at = []

    def waiter():
        yield eng.all_of(events)
        fired_at.append(eng.now)

    eng.process(waiter())
    eng.run()
    assert fired_at == [float(n - 1)]
