"""Unit tests of cluster topology and transfer primitives."""

import pytest

from repro.cluster import (
    ClusterSpec,
    LinkModel,
    SimCluster,
    SimulatedOOM,
    paper_testbed,
)
from repro.cluster.presets import rtx2080ti


def test_spec_rank_arithmetic(paper_spec):
    assert paper_spec.world_size == 32
    assert paper_spec.node_of(0) == 0
    assert paper_spec.node_of(31) == 7
    assert paper_spec.local_rank(5) == 1
    assert paper_spec.same_node(4, 7)
    assert not paper_spec.same_node(3, 4)
    assert paper_spec.ranks_of_node(1) == [4, 5, 6, 7]


def test_spec_rank_out_of_range(paper_spec):
    with pytest.raises(ValueError):
        paper_spec.node_of(32)
    with pytest.raises(ValueError):
        paper_spec.node_of(-1)
    with pytest.raises(ValueError):
        paper_spec.ranks_of_node(8)


def test_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(
            name="bad",
            num_nodes=0,
            gpus_per_node=4,
            gpu=rtx2080ti(),
            intra_link=LinkModel("l", 1e-6, 1e9),
            inter_link=LinkModel("l", 1e-6, 1e9),
        )


def test_bulk_link_defaults_to_intra():
    spec = ClusterSpec(
        name="x",
        num_nodes=1,
        gpus_per_node=2,
        gpu=rtx2080ti(),
        intra_link=LinkModel("l", 1e-6, 1e9),
        inter_link=LinkModel("l", 1e-6, 1e9),
    )
    assert spec.intra_bulk_link is spec.intra_link


def test_intra_transfer_uses_fabric(small_spec):
    cluster = SimCluster(small_spec)

    def xfer():
        yield from cluster.transfer(0, 1, 2e9)

    cluster.engine.process(xfer())
    cluster.engine.run()
    expected = small_spec.intra_link.transfer_time(2e9)
    assert cluster.engine.now == pytest.approx(expected)
    assert cluster.stats["intra_messages"] == 1
    assert cluster.stats["inter_bytes"] == 0


def test_bulk_intra_transfer_uses_bulk_link(small_spec):
    cluster = SimCluster(small_spec)

    def xfer():
        yield from cluster.transfer(0, 1, 2e9, bulk=True)

    cluster.engine.process(xfer())
    cluster.engine.run()
    expected = small_spec.intra_bulk_link.transfer_time(2e9)
    assert cluster.engine.now == pytest.approx(expected)


def test_inter_transfer_uses_nic(small_spec):
    cluster = SimCluster(small_spec)

    def xfer():
        yield from cluster.transfer(0, 2, 1e9)

    cluster.engine.process(xfer())
    cluster.engine.run()
    expected = small_spec.inter_link.transfer_time(1e9)
    assert cluster.engine.now == pytest.approx(expected)
    assert cluster.stats["inter_messages"] == 1


def test_self_transfer_is_memcpy(small_spec):
    cluster = SimCluster(small_spec)

    def xfer():
        yield from cluster.transfer(3, 3, 1e9)

    cluster.engine.process(xfer())
    cluster.engine.run()
    assert cluster.engine.now == pytest.approx(
        small_spec.gpu.memory_time(2e9)
    )
    assert cluster.stats["intra_messages"] == 0


def test_concurrent_intra_and_inter_overlap(small_spec):
    """Different resources -> concurrent; same resource -> serialized."""
    cluster = SimCluster(small_spec)
    done = {}

    def xfer(tag, src, dst, nbytes):
        yield from cluster.transfer(src, dst, nbytes)
        done[tag] = cluster.engine.now

    cluster.engine.process(xfer("intra", 0, 1, 1e9))
    cluster.engine.process(xfer("inter", 0, 2, 1e9))
    cluster.engine.run()
    t_intra = small_spec.intra_link.transfer_time(1e9)
    t_inter = small_spec.inter_link.transfer_time(1e9)
    assert done["intra"] == pytest.approx(t_intra)
    assert done["inter"] == pytest.approx(t_inter)

    # Two transfers on the same NIC serialize.
    cluster2 = SimCluster(small_spec)
    done2 = {}

    def xfer2(tag, dst):
        yield from cluster2.transfer(0, dst, 1e9)
        done2[tag] = cluster2.engine.now

    cluster2.engine.process(xfer2("a", 2))
    cluster2.engine.process(xfer2("b", 3))
    cluster2.engine.run()
    assert max(done2.values()) == pytest.approx(2 * t_inter)


def test_negative_transfer_rejected(small_spec):
    cluster = SimCluster(small_spec)
    with pytest.raises(ValueError):
        list(cluster.transfer(0, 1, -1.0))


def test_memory_accounting_and_oom(small_spec):
    cluster = SimCluster(small_spec)
    gpu = cluster.gpu(0)
    gpu.allocate(5e9)
    gpu.allocate(4e9)
    assert gpu.allocated_bytes == pytest.approx(9e9)
    with pytest.raises(SimulatedOOM):
        gpu.allocate(5e9)
    gpu.free(9e9)
    assert gpu.allocated_bytes >= 0
    assert gpu.peak_allocated_bytes >= 9e9


def test_reset_memory(small_spec):
    cluster = SimCluster(small_spec)
    cluster.gpu(1).allocate(1e9)
    cluster.reset_memory()
    assert cluster.gpu(1).allocated_bytes == 0
    assert cluster.gpu(1).peak_allocated_bytes == 0


def test_compute_occupies_gpu(small_spec):
    cluster = SimCluster(small_spec)
    done = []

    def kernel(rank, dt):
        yield from cluster.compute(rank, dt)
        done.append(cluster.engine.now)

    cluster.engine.process(kernel(0, 1.0))
    cluster.engine.process(kernel(0, 1.0))  # same GPU: serializes
    cluster.engine.process(kernel(1, 1.0))  # other GPU: parallel
    cluster.engine.run()
    assert sorted(done) == [1.0, 1.0, 2.0]
