"""Tests of the compression codecs (paper's AbsCompressor plugins)."""

import numpy as np
import pytest

from repro.cluster.presets import rtx2080ti
from repro.compression import (
    CompressedTensor,
    Fp16Compressor,
    Int8Compressor,
    NoopCompressor,
    ZfpLikeCompressor,
    available_compressors,
    get_compressor,
)


@pytest.fixture
def activations(rng):
    """Activation-like data with heterogeneous per-region scale."""
    x = rng.standard_normal((64, 128)).astype(np.float32)
    x[:4] *= 40.0  # outlier rows (realistic transformer behaviour)
    return x


def test_registry_contains_paper_codecs():
    names = available_compressors()
    for expected in ("none", "fp16", "int8", "zfp"):
        assert expected in names
    with pytest.raises(KeyError):
        get_compressor("gzip")


def test_noop_is_exact(activations):
    codec = NoopCompressor()
    out = codec.roundtrip(activations)
    np.testing.assert_array_equal(out, activations)
    assert codec.ratio == 1.0


def test_fp16_near_lossless(activations):
    codec = Fp16Compressor()
    out = codec.roundtrip(activations)
    rel = np.linalg.norm(out - activations) / np.linalg.norm(activations)
    assert rel < 1e-3
    assert codec.ratio == pytest.approx(2.0)


def test_int8_ratio_and_bounded_error(activations):
    codec = Int8Compressor()
    compressed = codec.compress(activations)
    assert compressed.nbytes == activations.size  # 1 byte per value
    out = codec.decompress(compressed)
    peak = np.abs(activations).max()
    assert np.abs(out - activations).max() <= peak / 127.0 * 1.01


def test_int8_zero_tensor():
    codec = Int8Compressor()
    zeros = np.zeros((8, 8), dtype=np.float32)
    np.testing.assert_array_equal(codec.roundtrip(zeros), zeros)


def test_zfp_ratio_close_to_4x(activations):
    codec = get_compressor("zfp")
    compressed = codec.compress(activations)
    assert 3.8 < activations.nbytes / compressed.nbytes <= 4.0


def test_zfp_blockwise_beats_int8_on_outliers(activations):
    """The load-bearing Table 6 property: per-block exponents keep
    ZFP's error well below per-tensor INT8 at the same wire size."""
    zfp = get_compressor("zfp")
    int8 = get_compressor("int8")
    err_zfp = np.linalg.norm(zfp.roundtrip(activations) - activations)
    err_int8 = np.linalg.norm(int8.roundtrip(activations) - activations)
    assert err_zfp < err_int8 / 2.0


def test_zfp_rates():
    x = np.random.default_rng(0).standard_normal((32, 64)).astype(np.float32)
    errors = {}
    for rate in (4, 8, 16):
        codec = ZfpLikeCompressor(rate=rate)
        errors[rate] = float(np.abs(codec.roundtrip(x) - x).max())
    assert errors[16] < errors[8] < errors[4]
    with pytest.raises(ValueError):
        ZfpLikeCompressor(rate=5)


def test_zfp_non_multiple_of_block_shapes():
    codec = get_compressor("zfp")
    for shape in [(1,), (63,), (65,), (7, 9), (3, 5, 11)]:
        x = np.random.default_rng(1).standard_normal(shape).astype(np.float32)
        out = codec.roundtrip(x)
        assert out.shape == x.shape
        assert np.abs(out - x).max() < np.abs(x).max() / 50 + 1e-6


def test_zfp4_nibble_packing_roundtrip():
    codec = get_compressor("zfp4")
    x = np.random.default_rng(2).standard_normal(256).astype(np.float32)
    out = codec.roundtrip(x)
    assert out.shape == x.shape
    # 4-bit mantissas: coarse but sign-correct for non-tiny values.
    big = np.abs(x) > 0.5 * np.abs(x).max()
    assert np.all(np.sign(out[big]) == np.sign(x[big]))


def test_compressed_bytes_accounting():
    codec = get_compressor("zfp")
    assert codec.compressed_bytes(32e6) == pytest.approx(
        32e6 / codec.ratio
    )


def test_cost_models_monotone():
    gpu = rtx2080ti()
    for name in available_compressors():
        codec = get_compressor(name)
        small = codec.compress_cost(gpu, 1e6)
        large = codec.compress_cost(gpu, 1e9)
        assert large >= small
        assert codec.decompress_cost(gpu, 1e6) >= 0


def test_noop_costs_zero():
    gpu = rtx2080ti()
    codec = get_compressor("none")
    assert codec.compress_cost(gpu, 1e9) == 0.0
    assert codec.decompress_cost(gpu, 1e9) == 0.0


def test_compressed_tensor_nbytes():
    ct = CompressedTensor(
        codec="x",
        shape=(4,),
        dtype=np.dtype(np.float32),
        payload={"a": np.zeros(4, dtype=np.int8), "b": np.zeros(2, np.int8)},
    )
    assert ct.nbytes == 6


def test_roundtrip_rejects_non_finite():
    """NaN/Inf would poison scale factors; refuse loudly."""
    import numpy as np
    import pytest as _pytest

    bad_nan = np.array([1.0, np.nan, 2.0], dtype=np.float32)
    bad_inf = np.array([1.0, np.inf], dtype=np.float32)
    for name in ("int8", "zfp", "fp16"):
        codec = get_compressor(name)
        with _pytest.raises(ValueError):
            codec.roundtrip(bad_nan)
        with _pytest.raises(ValueError):
            codec.roundtrip(bad_inf)


def test_int8_channel_fixes_outlier_damage(activations):
    """Per-row scales recover ZFP-class fidelity at INT8 width —
    demonstrating the Table 6 failure is scale granularity."""
    from repro.compression import codec_snr_db

    int8 = get_compressor("int8")
    int8c = get_compressor("int8c")
    assert codec_snr_db(int8c, activations) > codec_snr_db(int8, activations) + 6.0


def test_int8_channel_roundtrip_shapes(rng):
    codec = get_compressor("int8c")
    for shape in [(5,), (4, 7), (2, 3, 9)]:
        x = rng.standard_normal(shape).astype(np.float32)
        out = codec.roundtrip(x)
        assert out.shape == x.shape
        # Per-row error bound: each row's peak / 127.
        rows = x.reshape(-1, x.shape[-1]) if x.ndim > 1 else x.reshape(1, -1)
        out_rows = out.reshape(rows.shape)
        bounds = np.abs(rows).max(axis=1) / 127.0 + 1e-7
        assert np.all(np.abs(out_rows - rows).max(axis=1) <= bounds)


def test_int8_channel_zero_rows(rng):
    codec = get_compressor("int8c")
    x = np.zeros((3, 8), dtype=np.float32)
    x[1] = rng.standard_normal(8)
    out = codec.roundtrip(x)
    np.testing.assert_array_equal(out[0], 0.0)
    np.testing.assert_array_equal(out[2], 0.0)
