"""Tests of codec fidelity measurement."""

import math

import numpy as np
import pytest

from repro.compression import (
    codec_snr_db,
    collect_a2a_tensors,
    get_compressor,
    measure_fidelity,
)
from repro.moe import MoELayer
from repro.nn import Tensor


def test_snr_infinite_for_lossless(rng):
    x = rng.standard_normal((32, 32)).astype(np.float32)
    assert codec_snr_db(get_compressor("none"), x) == float("inf")


def test_snr_infinite_for_zero_signal():
    zeros = np.zeros((8, 8), dtype=np.float32)
    assert codec_snr_db(get_compressor("int8"), zeros) == float("inf")


def test_snr_ordering_on_heavy_tailed_data(rng):
    """Heavy tails (gradient-like) expose per-tensor INT8."""
    x = rng.standard_normal((64, 64)).astype(np.float32)
    x[0, 0] = 500.0  # one outlier ruins the global scale
    snr_int8 = codec_snr_db(get_compressor("int8"), x)
    snr_zfp = codec_snr_db(get_compressor("zfp"), x)
    snr_fp16 = codec_snr_db(get_compressor("fp16"), x)
    assert snr_fp16 > snr_zfp > snr_int8
    assert snr_zfp - snr_int8 > 10.0  # decisive gap


def test_snr_higher_rate_higher_fidelity(rng):
    x = rng.standard_normal((256,)).astype(np.float32)
    assert codec_snr_db(get_compressor("zfp16"), x) > codec_snr_db(
        get_compressor("zfp"), x
    ) > codec_snr_db(get_compressor("zfp4"), x)


def test_measure_fidelity_aggregates(rng):
    tensors = [
        rng.standard_normal((16, 16)).astype(np.float32) for _ in range(3)
    ]
    report = measure_fidelity(tensors)
    assert set(report.snr_db) == {"fp16", "zfp", "int8"}
    assert all(math.isfinite(v) for v in report.snr_db.values())
    text = report.render()
    assert "SNR" in text
    with pytest.raises(ValueError):
        measure_fidelity([])


def test_collect_a2a_tensors_from_layer(rng):
    # Pinned to the batched bank: its A2A payload is the capacity
    # buffer, so the activation snapshot leads with the expert dim.
    layer = MoELayer(16, 24, 4, rng, expert_impl="batched")
    x = Tensor(
        rng.standard_normal((12, 16)).astype(np.float32), requires_grad=True
    )
    out = layer(x)
    (out**2).mean().backward()

    class Holder(layer.__class__.__mro__[-2]):  # Module
        pass

    from repro.nn import Module

    class Wrapper(Module):
        def __init__(self, inner):
            super().__init__()
            self.inner = inner

    tensors = collect_a2a_tensors(Wrapper(layer))
    assert len(tensors["activations"]) == 1
    assert tensors["activations"][0].shape[0] == 4  # (E, C, M)
    assert len(tensors["gradients"]) == 8  # 4 experts x fc1, fc2


def test_collect_a2a_tensors_grouped_layer(rng):
    # The grouped (process-default) path ships the flat routed rows,
    # so the activation snapshot is (N, M) — N assignments, not E.
    from repro.nn import Module

    layer = MoELayer(16, 24, 4, rng, expert_impl="grouped")
    x = Tensor(
        rng.standard_normal((12, 16)).astype(np.float32), requires_grad=True
    )
    (layer(x) ** 2).mean().backward()

    class Wrapper(Module):
        def __init__(self, inner):
            super().__init__()
            self.inner = inner

    tensors = collect_a2a_tensors(Wrapper(layer))
    assert len(tensors["activations"]) == 1
    assert tensors["activations"][0].shape[1] == 16  # flat (N, M)
    assert len(tensors["gradients"]) == 8  # 4 experts x fc1, fc2


def test_collect_before_backward_has_no_gradients(rng):
    from repro.nn import Module

    layer = MoELayer(16, 24, 4, rng)
    layer(Tensor(np.random.default_rng(0).standard_normal((8, 16)).astype(np.float32)))

    class Wrapper(Module):
        def __init__(self, inner):
            super().__init__()
            self.inner = inner

    tensors = collect_a2a_tensors(Wrapper(layer))
    assert tensors["gradients"] == []
    assert len(tensors["activations"]) == 1
