"""Property-based tests of codec invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.compression import get_compressor

finite_f32 = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, width=32
)


def tensors(max_side: int = 40):
    return arrays(
        dtype=np.float32,
        shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=max_side),
        elements=finite_f32,
    )


@settings(max_examples=40, deadline=None)
@given(x=tensors())
def test_roundtrip_preserves_shape_and_dtype(x):
    for name in ("none", "fp16", "int8", "zfp"):
        out = get_compressor(name).roundtrip(x)
        assert out.shape == x.shape
        assert out.dtype == np.float32
        assert np.all(np.isfinite(out))


@settings(max_examples=40, deadline=None)
@given(x=tensors())
def test_int8_error_bounded_by_peak(x):
    codec = get_compressor("int8")
    out = codec.roundtrip(x)
    peak = float(np.abs(x).max())
    assert np.abs(out - x).max() <= peak / 127.0 + 1e-6


@settings(max_examples=40, deadline=None)
@given(x=tensors())
def test_zfp_error_bounded_by_local_block_scale(x):
    """Each value's error is bounded by its own 64-block's peak."""
    codec = get_compressor("zfp")
    out = codec.roundtrip(x)
    flat = x.ravel()
    err = np.abs(out.ravel() - flat)
    for start in range(0, flat.size, 64):
        block = flat[start : start + 64]
        block_err = err[start : start + 64]
        # Shared exponent e >= log2(peak); quantization step is
        # 2^e / 127 <= 2 * peak / 127.
        bound = 2.0 * np.abs(block).max() / 127.0 + 1e-7
        assert block_err.max() <= bound


@settings(max_examples=40, deadline=None)
@given(x=tensors())
def test_fp16_is_idempotent(x):
    """fp16 output values are exactly representable, so a second
    roundtrip is lossless.  (Quantizing codecs like int8/zfp are NOT
    idempotent in general: round-to-nearest can move a value across a
    rounding boundary.)"""
    codec = get_compressor("fp16")
    once = codec.roundtrip(x)
    np.testing.assert_array_equal(codec.roundtrip(once), once)


@settings(max_examples=30, deadline=None)
@given(
    x=tensors(max_side=24),
    scale=st.sampled_from([0.25, 0.5, 2.0, 4.0]),
)
def test_zfp_power_of_two_scale_invariance(x, scale):
    """Scaling input by 2^k scales the error by exactly 2^k: block
    floating point only shifts the shared exponent."""
    codec = get_compressor("zfp")
    base = codec.roundtrip(x)
    scaled = codec.roundtrip(x * scale)
    np.testing.assert_allclose(scaled, base * scale, rtol=1e-6, atol=1e-30)
