"""Empirical verification of Theorem 1 (OptSche optimality).

The theorem claims Eq. 12's order minimizes the makespan among all
orders satisfying constraints (4)-(9), given uniform partitioning
(equal durations across chunks).  We verify by exhaustive enumeration
of all 252 valid comp-order interleavings at r=2 (property-based over
durations) and by sampling at r=3.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TaskDurations, get_scheduler
from repro.core.scheduler import (
    InvalidScheduleError,
    _comm_order,
    simulate_order,
    valid_comp_orders,
)

duration_values = st.floats(
    min_value=0.01, max_value=10.0, allow_nan=False, allow_infinity=False
)


@settings(max_examples=25, deadline=None)
@given(
    compress=duration_values,
    a2a=duration_values,
    decompress=duration_values,
    expert=duration_values,
)
def test_optsche_is_optimal_r2(compress, a2a, decompress, expert):
    durations = TaskDurations(compress, a2a, decompress, expert)
    opt = get_scheduler("optsche").schedule(2, durations).makespan
    comm = _comm_order(2)
    for comp in valid_comp_orders(2):
        try:
            res = simulate_order(
                comp, comm, durations, validate=False, partitions=2
            )
        except InvalidScheduleError:
            continue
        assert opt <= res.makespan + 1e-9, (
            f"OptSche {opt} beaten by {comp} at {res.makespan}"
        )


@settings(max_examples=5, deadline=None)
@given(
    compress=duration_values,
    a2a=duration_values,
    decompress=duration_values,
    expert=duration_values,
)
def test_optsche_matches_sampled_search_r3(compress, a2a, decompress, expert):
    durations = TaskDurations(compress, a2a, decompress, expert)
    opt = get_scheduler("optsche").schedule(3, durations).makespan
    sampled = get_scheduler("brute-force").schedule(3, durations).makespan
    assert opt <= sampled + 1e-9


def test_optsche_never_worse_than_named_baselines():
    """Across a grid of regimes (comm-bound, comp-bound, balanced)."""
    regimes = [
        TaskDurations(0.1, 5.0, 0.1, 0.5),  # comm-bound
        TaskDurations(1.0, 0.2, 1.0, 4.0),  # comp-bound
        TaskDurations(1.0, 2.0, 1.0, 2.0),  # balanced
        TaskDurations(2.0, 2.0, 2.0, 0.01),  # codec-heavy
    ]
    for durations in regimes:
        for r in (1, 2, 3, 4, 6):
            opt = get_scheduler("optsche").schedule(r, durations).makespan
            for name in ("sequential", "chunk-pipeline"):
                other = get_scheduler(name).schedule(r, durations).makespan
                assert opt <= other + 1e-9


def test_optsche_hides_comm_fully_when_comp_dominates():
    """With comp >> comm and r large, the A2As vanish into compute."""
    durations = TaskDurations(1.0, 0.05, 1.0, 3.0)
    res = get_scheduler("optsche").schedule(4, durations)
    comp_total = durations.comp_total(4)
    # All but the trailing A2A chain is hidden.
    assert res.makespan <= comp_total + 2 * 0.05 + 1e-9


def test_optsche_bounded_by_comm_when_comm_dominates():
    """With comm >> comp, makespan -> comm total + small comp tails."""
    durations = TaskDurations(0.05, 4.0, 0.05, 0.1)
    res = get_scheduler("optsche").schedule(4, durations)
    comm_total = durations.comm_total(4)
    tails = 2 * 0.05 + 0.05 + 0.1  # C1^1 head + D2^r tail upper bound
    assert res.makespan <= comm_total + tails + 1e-9
