"""Tests of schedule simulation and the built-in scheduling policies."""

import pytest

from repro.core import (
    InvalidScheduleError,
    Task,
    TaskDurations,
    TaskKind,
    available_schedulers,
    get_scheduler,
    simulate_order,
)
from repro.core.scheduler import _comm_order, valid_comp_orders


@pytest.fixture
def durations():
    return TaskDurations(compress=0.5, a2a=2.0, decompress=0.4, expert=1.5)


def comp_chain(chunk):
    return [
        Task(k, chunk)
        for k in (TaskKind.C1, TaskKind.D1, TaskKind.E, TaskKind.C2, TaskKind.D2)
    ]


def test_registry():
    names = available_schedulers()
    for expected in ("sequential", "chunk-pipeline", "optsche", "brute-force"):
        assert expected in names
    with pytest.raises(KeyError):
        get_scheduler("lol")


def test_sequential_r1_equals_eq10(durations):
    result = get_scheduler("sequential").schedule(1, durations)
    assert result.makespan == pytest.approx(durations.total_sequential(1))
    assert result.hidden_time == pytest.approx(0.0)


def test_simulate_order_respects_chain(durations):
    result = get_scheduler("optsche").schedule(2, durations)
    for chunk in range(2):
        prev_end = None
        for kind in (
            TaskKind.C1,
            TaskKind.A1,
            TaskKind.D1,
            TaskKind.E,
            TaskKind.C2,
            TaskKind.A2,
            TaskKind.D2,
        ):
            start, end = result.timeline[Task(kind, chunk)]
            if prev_end is not None:
                assert start >= prev_end - 1e-12
            prev_end = end


def test_simulate_order_respects_stream_exclusivity(durations):
    """No two comp (or two comm) tasks overlap in time."""
    result = get_scheduler("optsche").schedule(3, durations)

    def assert_disjoint(tasks):
        spans = sorted(result.timeline[t] for t in tasks)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-12

    all_tasks = list(result.timeline)
    assert_disjoint([t for t in all_tasks if t.is_comm])
    assert_disjoint([t for t in all_tasks if not t.is_comm])


def test_optsche_order_matches_eq12(durations):
    comp, comm = get_scheduler("optsche").order(3, durations)
    expected = (
        [Task(TaskKind.C1, i) for i in range(3)]
        + sum(
            (
                [Task(TaskKind.D1, i), Task(TaskKind.E, i), Task(TaskKind.C2, i)]
                for i in range(3)
            ),
            [],
        )
        + [Task(TaskKind.D2, i) for i in range(3)]
    )
    assert comp == expected
    assert comm == _comm_order(3)


def test_policy_ordering_seq_ge_pipeline_ge_optsche(durations):
    for r in (2, 3, 4):
        seq = get_scheduler("sequential").schedule(r, durations).makespan
        pipe = get_scheduler("chunk-pipeline").schedule(r, durations).makespan
        opt = get_scheduler("optsche").schedule(r, durations).makespan
        assert seq >= pipe - 1e-12
        assert pipe >= opt - 1e-12
        assert opt < seq  # overlap must help with these durations


def test_makespan_lower_bounds(durations):
    """Makespan >= max(total comm, total comp) for any schedule."""
    for name in ("sequential", "chunk-pipeline", "optsche"):
        for r in (1, 2, 4):
            res = get_scheduler(name).schedule(r, durations)
            assert res.makespan >= durations.comm_total(r) - 1e-12
            assert res.makespan >= durations.comp_total(r) - 1e-12


def test_hidden_time_is_makespan_complement(durations):
    res = get_scheduler("optsche").schedule(2, durations)
    total = durations.total_sequential(2)
    assert res.hidden_time == pytest.approx(total - res.makespan)


def test_invalid_orders_rejected(durations):
    comp = comp_chain(0)
    comm = [Task(TaskKind.A1, 0), Task(TaskKind.A2, 0)]
    # Missing a task.
    with pytest.raises(InvalidScheduleError):
        simulate_order(comp[:-1], comm, durations, partitions=1)
    # Duplicate task.
    with pytest.raises(InvalidScheduleError):
        simulate_order(comp[:-1] + [comp[0]], comm, durations, partitions=1)
    # Comm task in the comp order.
    with pytest.raises(InvalidScheduleError):
        simulate_order(comp[:-1] + [comm[0]], comm, durations, partitions=1)


def test_deadlocking_order_detected(durations):
    """D2^1 before C1^2 with default comm order deadlocks (circular
    FIFO wait) and must be reported, not hang."""
    comp = comp_chain(0) + comp_chain(1)  # chunk 0 fully before chunk 1
    comm = _comm_order(2)
    with pytest.raises(InvalidScheduleError):
        simulate_order(comp, comm, durations, partitions=2)


def test_valid_comp_orders_counts():
    # Interleavings of r chains of 5: multinomial C(5r; 5,...).
    assert sum(1 for _ in valid_comp_orders(1)) == 1
    assert sum(1 for _ in valid_comp_orders(2)) == 252


def test_render_produces_rows(durations):
    res = get_scheduler("optsche").schedule(2, durations)
    text = res.render(width=40)
    assert "C1^1" in text and "A2^2" in text and "ms" in text
