"""Tests of the abstraction/extension API (paper Listings 1-2)."""

import numpy as np
import pytest

from repro.cluster.presets import rtx2080ti
from repro.collectives import available_a2a, get_a2a
from repro.compression import (
    CompressedTensor,
    available_compressors,
    get_compressor,
)
from repro.core import AbsAlltoAll, AbsCompressor, AbsExpert, register_plugins


def test_abs_expert_cost_hooks():
    expert = AbsExpert(model_dim=512, hidden_dim=2048)
    gpu = rtx2080ti()
    assert expert.forward_flops(100) == pytest.approx(2 * 100 * 512 * 2048 * 2)
    fwd = expert.forward_seconds(gpu, 1000)
    assert expert.backward_seconds(gpu, 1000) == pytest.approx(2 * fwd)
    with pytest.raises(ValueError):
        AbsExpert(0, 8)


def test_register_custom_compressor_via_listing2_api():
    class HalfTheBytes(AbsCompressor):
        """Toy codec: keeps every other element (lossy, 2x)."""

        name = "toy-half"
        bits_per_value = 16.0

        def compress(self, tensor):
            arr = np.ascontiguousarray(tensor, dtype=np.float32)
            return CompressedTensor(
                codec=self.name,
                shape=arr.shape,
                dtype=np.dtype(np.float32),
                payload={"data": arr.reshape(-1)[::2].copy()},
                meta={"n": arr.size},
            )

        def decompress(self, compressed):
            out = np.zeros(compressed.meta["n"], dtype=np.float32)
            out[::2] = compressed.payload["data"]
            out[1::2] = compressed.payload["data"][
                : out[1::2].size
            ]
            return out.reshape(compressed.shape)

    register_plugins(compressor=HalfTheBytes)
    assert "toy-half" in available_compressors()
    codec = get_compressor("toy-half")
    x = np.arange(8, dtype=np.float32)
    assert codec.roundtrip(x).shape == x.shape


def test_register_custom_a2a_via_listing2_api(small_spec):
    from repro.collectives import measure_a2a

    class BroadcastishA2A(AbsAlltoAll):
        """Toy algorithm: plain sequential transfers, rank order."""

        name = "toy-seq"

        def schedule(self, cluster, streams, nbytes):
            chunk = nbytes / cluster.world_size
            done = []
            for rank in cluster.iter_ranks():
                for peer in cluster.iter_ranks():
                    done.append(
                        streams[rank].comm.submit(
                            self._xfer(cluster, rank, peer, chunk)
                        )
                    )
            return done

        @staticmethod
        def _xfer(cluster, src, dst, chunk):
            def work():
                yield from cluster.transfer(src, dst, chunk)

            return work

    register_plugins(a2a=BroadcastishA2A)
    assert "toy-seq" in available_a2a()
    result = measure_a2a(get_a2a("toy-seq"), small_spec, 1e6)
    assert result.seconds > 0


def test_duplicate_registration_rejected():
    from repro.collectives.base import register_a2a
    from repro.collectives.nccl_a2a import NcclA2A

    class Impostor(NcclA2A):
        name = "nccl"

    with pytest.raises(ValueError):
        register_a2a(Impostor)


def test_registration_requires_name():
    class Nameless(AbsCompressor):
        def compress(self, tensor):  # pragma: no cover
            raise NotImplementedError

        def decompress(self, compressed):  # pragma: no cover
            raise NotImplementedError

    with pytest.raises(ValueError):
        register_plugins(compressor=Nameless)


def test_custom_plugins_schedulable_end_to_end(paper_spec, rng):
    """A registered custom codec + A2A work through ScheMoELayer.plan
    unchanged — the paper's core extensibility claim."""
    from repro.core import ScheMoELayer

    layer = ScheMoELayer(
        model_dim=32,
        hidden_dim=64,
        num_experts=32,
        rng=rng,
        compress_name="toy-half" if "toy-half" in available_compressors() else "fp16",
        comm_name="toy-seq" if "toy-seq" in available_a2a() else "nccl",
    )
    plan = layer.plan(paper_spec, batch_per_gpu=2, seq_len=64)
    assert plan.step_seconds > 0
