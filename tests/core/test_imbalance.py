"""Tests of dynamic routing imbalance (paper Section 2.1)."""

import numpy as np
import pytest

from repro.core import BALANCED, RoutingSkew, simulate_model_step
from repro.models import ct_moe
from repro.systems import fastermoe, schemoe, tutel


def test_shares_are_a_distribution():
    for s in (0.0, 0.7, 1.3):
        shares = RoutingSkew(s).expert_shares(32)
        assert shares.sum() == pytest.approx(1.0)
        assert np.all(shares > 0)
        # Monotone non-increasing by popularity rank.
        assert np.all(np.diff(shares) <= 1e-15)


def test_balanced_skew_is_neutral():
    assert BALANCED.hot_expert_ratio(32) == pytest.approx(1.0)
    assert BALANCED.load_factor(32, 1.2, True) == pytest.approx(1.0)
    assert BALANCED.dropped_fraction(32, 1.0) == pytest.approx(0.0, abs=1e-12)


def test_hot_ratio_grows_with_skew():
    ratios = [RoutingSkew(s).hot_expert_ratio(32) for s in (0.0, 0.5, 1.0, 1.5)]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 10.0


def test_capacity_clips_load_factor():
    skew = RoutingSkew(1.0)
    capped = skew.load_factor(32, capacity_factor=1.2, enforce_capacity=True)
    uncapped = skew.load_factor(32, capacity_factor=1.2, enforce_capacity=False)
    assert capped == pytest.approx(1.2)
    assert uncapped == pytest.approx(skew.hot_expert_ratio(32))
    assert uncapped > capped


def test_dropped_fraction_monotone_in_skew():
    drops = [RoutingSkew(s).dropped_fraction(32, 1.0) for s in (0.0, 0.5, 1.0)]
    assert drops == sorted(drops)
    assert 0.0 <= drops[-1] < 1.0


def test_validation():
    with pytest.raises(ValueError):
        RoutingSkew(-0.1)
    with pytest.raises(ValueError):
        RoutingSkew(0.5).expert_shares(0)


def test_capacity_systems_insensitive_to_skew(paper_spec):
    cfg = ct_moe(12)
    for policy in (tutel(), schemoe()):
        flat = simulate_model_step(cfg, paper_spec, policy, skew=BALANCED)
        skewed = simulate_model_step(
            cfg, paper_spec, policy, skew=RoutingSkew(1.5)
        )
        # Capacity clips the hot expert at f = 1.0 -> no slowdown.
        assert skewed.total_s == pytest.approx(flat.total_s, rel=1e-6)


def test_capacity_free_system_degrades_with_skew(paper_spec):
    cfg = ct_moe(12)
    policy = fastermoe()
    times = [
        simulate_model_step(
            cfg, paper_spec, policy, skew=RoutingSkew(s)
        ).total_s
        for s in (0.0, 0.5, 1.0, 1.5)
    ]
    assert times == sorted(times)
    assert times[-1] > times[0] * 1.05


def test_capacity_free_memory_grows_with_skew(paper_spec):
    cfg = ct_moe(12)
    policy = fastermoe()
    m0 = simulate_model_step(cfg, paper_spec, policy, skew=BALANCED).memory_bytes
    m1 = simulate_model_step(
        cfg, paper_spec, policy, skew=RoutingSkew(1.5)
    ).memory_bytes
    assert m1 > m0
