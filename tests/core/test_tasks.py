"""Tests of the task model (paper Section 4.1)."""

import pytest

from repro.core import CHAIN, Task, TaskDurations, TaskKind, make_tasks


def test_chain_order_matches_paper():
    assert [k.name for k in CHAIN] == ["C1", "A1", "D1", "E", "C2", "A2", "D2"]


def test_comm_classification():
    assert TaskKind.A1.is_comm
    assert TaskKind.A2.is_comm
    for kind in (TaskKind.C1, TaskKind.D1, TaskKind.E, TaskKind.C2, TaskKind.D2):
        assert not kind.is_comm


def test_make_tasks_count_is_7r():
    for r in (1, 2, 5):
        tasks = make_tasks(r)
        assert len(tasks) == 7 * r
        assert len(set(tasks)) == 7 * r
    with pytest.raises(ValueError):
        make_tasks(0)


def test_predecessor_chain():
    t = Task(TaskKind.E, 1)
    assert t.predecessor() == Task(TaskKind.D1, 1)
    assert Task(TaskKind.C1, 0).predecessor() is None
    chain = []
    cur = Task(TaskKind.D2, 0)
    while cur is not None:
        chain.append(cur.kind)
        cur = cur.predecessor()
    assert list(reversed(chain)) == list(CHAIN)


def test_task_repr():
    assert repr(Task(TaskKind.A1, 0)) == "A1^1"
    assert repr(Task(TaskKind.D2, 2)) == "D2^3"


def test_durations_lookup_and_totals():
    d = TaskDurations(compress=1.0, a2a=3.0, decompress=2.0, expert=5.0)
    assert d.of(TaskKind.C1) == d.of(TaskKind.C2) == 1.0
    assert d.of(TaskKind.A1) == d.of(TaskKind.A2) == 3.0
    assert d.of(TaskKind.D1) == d.of(TaskKind.D2) == 2.0
    assert d.of(TaskKind.E) == 5.0
    # Eq. 10: per chunk 2C + 2A + 2D + E.
    assert d.total_sequential(1) == pytest.approx(17.0)
    assert d.total_sequential(3) == pytest.approx(51.0)
    assert d.comm_total(2) == pytest.approx(12.0)
    assert d.comp_total(2) == pytest.approx(22.0)


def test_durations_scaled():
    d = TaskDurations(1.0, 3.0, 2.0, 5.0)
    b = d.scaled(2.0)
    assert b.expert == 10.0
    assert b.compress == 1.0


def test_durations_validation():
    with pytest.raises(ValueError):
        TaskDurations(-1.0, 1.0, 1.0, 1.0)


def test_backward_durations_swap_codec_roles():
    d = TaskDurations(compress=1.0, a2a=3.0, decompress=2.0, expert=5.0)
    b = d.backward()
    assert b.compress == 2.0
    assert b.decompress == 1.0
    assert b.a2a == 3.0
    assert b.expert == 10.0
    # Total work is conserved up to the expert factor.
    assert b.total_sequential(2) == pytest.approx(
        d.total_sequential(2) + 5.0 * 2
    )


def test_backward_schedule_symmetry():
    """The backward pass is the same scheduling problem: OptSche's
    makespan on backward durations is optimal there too (spot check
    against brute force)."""
    from repro.core.scheduler import get_scheduler

    d = TaskDurations(0.7, 2.5, 1.1, 3.0).backward()
    opt = get_scheduler("optsche").schedule(2, d).makespan
    best = get_scheduler("brute-force").schedule(2, d).makespan
    assert opt == pytest.approx(best)
