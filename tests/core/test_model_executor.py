"""Tests of multi-layer execution and cross-layer chunk pipelining."""

import pytest

from repro.collectives import get_a2a
from repro.compression import get_compressor
from repro.core.executor import EventExecutor
from repro.core.model_executor import ModelExecutor
from repro.core import get_scheduler
from repro.models import bert_large_moe, ct_moe


def make(spec, a2a="pipe", codec="none", partitions=2):
    return ModelExecutor(
        spec, get_a2a(a2a), get_compressor(codec), partitions=partitions
    )


def test_mode_validation(paper_spec):
    executor = make(paper_spec)
    with pytest.raises(ValueError):
        executor.run(ct_moe(12), mode="warp")
    with pytest.raises(ValueError):
        ModelExecutor(
            paper_spec, get_a2a("pipe"), get_compressor("none"), partitions=0
        )


def test_makespan_scales_with_layers(paper_spec):
    executor = make(paper_spec)
    t4 = executor.run(ct_moe(4), mode="layer-barrier").makespan
    t8 = executor.run(ct_moe(8), mode="layer-barrier").makespan
    assert t8 > t4 * 1.8


def test_chunked_never_slower_than_barrier(paper_spec):
    executor = make(paper_spec, a2a="nccl")
    for layers in (2, 6):
        cfg = ct_moe(layers)
        barrier = executor.run(cfg, mode="layer-barrier").makespan
        chunked = executor.run(cfg, mode="chunked").makespan
        assert chunked <= barrier + 1e-12


def test_cross_layer_gain_when_comm_bound(paper_spec):
    """Comm-bound model: next layer's attention hides the trailing
    A2A tail of the previous layer.  (6-layer BERT variant: the gain
    is per layer boundary, so depth beyond a few layers only adds
    simulation time.)"""
    executor = make(paper_spec, a2a="nccl", codec="none", partitions=4)
    cfg = bert_large_moe().with_layers(6)
    barrier = executor.run(cfg, mode="layer-barrier").makespan
    chunked = executor.run(cfg, mode="chunked").makespan
    assert barrier / chunked > 1.12


def test_no_gain_when_comm_already_hidden(paper_spec):
    """With ZFP-compressed payloads the comm tail is negligible and
    both modes coincide."""
    executor = make(paper_spec, a2a="pipe", codec="zfp")
    cfg = ct_moe(6)
    barrier = executor.run(cfg, mode="layer-barrier").makespan
    chunked = executor.run(cfg, mode="chunked").makespan
    assert chunked == pytest.approx(barrier, rel=1e-3)


def test_single_layer_consistent_with_layer_executor(paper_spec):
    """A 1-layer layer_only model has no attention, so the model
    executor reduces to the per-layer executor's OptSche makespan."""
    from repro.models import ablation_layer

    cfg = ablation_layer()
    model_exec = ModelExecutor(
        paper_spec, get_a2a("pipe"), get_compressor("zfp"), partitions=2
    )
    layer_exec = EventExecutor(
        paper_spec,
        get_a2a("pipe"),
        get_compressor("zfp"),
        get_scheduler("optsche"),
        partitions=2,
    )
    model_t = model_exec.run(cfg, mode="layer-barrier").makespan
    layer_t = layer_exec.run(cfg).makespan
    assert model_t == pytest.approx(layer_t, rel=1e-2)
