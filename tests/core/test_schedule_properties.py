"""Property tests of simulate_order over arbitrary valid schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Task, TaskDurations, TaskKind
from repro.core.scheduler import (
    InvalidScheduleError,
    _comm_order,
    sample_comp_orders,
    simulate_order,
)

durations_strategy = st.builds(
    TaskDurations,
    compress=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    a2a=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    decompress=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
    expert=st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
)


def feasible_results(durations, partitions, count, seed):
    comm = _comm_order(partitions)
    for comp in sample_comp_orders(partitions, count, seed=seed):
        try:
            yield simulate_order(
                comp, comm, durations, validate=False, partitions=partitions
            )
        except InvalidScheduleError:
            continue


@settings(max_examples=25, deadline=None)
@given(durations=durations_strategy, seed=st.integers(0, 1000))
def test_makespan_lower_bounds_hold_for_any_order(durations, seed):
    """Any feasible schedule's makespan >= max(comm total, comp total)
    and <= the fully sequential time (Eq. 10)."""
    r = 3
    found = False
    for result in feasible_results(durations, r, 30, seed):
        found = True
        assert result.makespan >= durations.comm_total(r) - 1e-9
        assert result.makespan >= durations.comp_total(r) - 1e-9
        assert result.makespan <= durations.total_sequential(r) + 1e-9
    assert found


@settings(max_examples=15, deadline=None)
@given(durations=durations_strategy, seed=st.integers(0, 1000))
def test_streams_never_double_book(durations, seed):
    """In every feasible schedule, same-class tasks never overlap."""
    for result in feasible_results(durations, 2, 15, seed):
        for is_comm in (False, True):
            spans = sorted(
                span
                for task, span in result.timeline.items()
                if task.is_comm == is_comm
            )
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-12


@settings(max_examples=15, deadline=None)
@given(durations=durations_strategy, seed=st.integers(0, 1000))
def test_chain_constraints_hold_for_any_order(durations, seed):
    """Eqs. 4-9: every task starts after its chain predecessor ends."""
    for result in feasible_results(durations, 2, 15, seed):
        for task, (start, _end) in result.timeline.items():
            pred = task.predecessor()
            if pred is not None:
                assert start >= result.timeline[pred][1] - 1e-12


@settings(max_examples=15, deadline=None)
@given(durations=durations_strategy)
def test_every_task_runs_exactly_once(durations):
    result = simulate_order(
        *_default_orders(3), durations, partitions=3
    )
    assert len(result.timeline) == 21
    for task, (start, end) in result.timeline.items():
        assert end - start == pytest.approx(durations.of(task.kind))


def _default_orders(partitions):
    from repro.core.scheduler import OptScheScheduler

    return OptScheScheduler().order(
        partitions, TaskDurations(1, 1, 1, 1)
    )
