"""Tests of the profiler, ScheMoELayer planning, and step simulation."""

import numpy as np
import pytest

from repro.cluster import paper_testbed
from repro.collectives import get_a2a
from repro.compression import get_compressor
from repro.core import (
    LinearPerfModel,
    Profiler,
    ScheMoELayer,
    SystemPolicy,
    dense_param_count,
    estimate_memory_bytes,
    local_param_count,
    simulate_model_step,
)
from repro.models import bert_large_moe, ct_moe


@pytest.fixture
def profiler(paper_spec):
    return Profiler(
        paper_spec, a2a=get_a2a("pipe"), compressor=get_compressor("zfp")
    )


def test_linear_perf_model_fit_and_predict():
    model = LinearPerfModel.fit([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
    assert model.alpha == pytest.approx(1.0)
    assert model.beta == pytest.approx(2.0)
    assert model.predict(10.0) == pytest.approx(21.0)
    assert model.predict(-1e6) == 0.0  # clamped
    with pytest.raises(ValueError):
        LinearPerfModel.fit([1.0], [1.0])


def test_profiler_caches_a2a_measurements(profiler):
    t1 = profiler.measure_a2a_seconds(1e6)
    assert profiler.measure_a2a_seconds(1e6) == t1
    assert len(profiler._a2a_cache) == 1


def test_profile_layer_durations_positive(profiler):
    durations = profiler.profile_layer(ct_moe(12), partitions=2)
    assert durations.compress > 0
    assert durations.a2a > 0
    assert durations.decompress > 0
    assert durations.expert > 0


def test_profile_layer_chunking_shrinks_tasks(profiler):
    d1 = profiler.profile_layer(ct_moe(12), partitions=1)
    d2 = profiler.profile_layer(ct_moe(12), partitions=2)
    assert d2.a2a < d1.a2a
    assert d2.expert < d1.expert
    with pytest.raises(ValueError):
        profiler.profile_layer(ct_moe(12), partitions=0)


def test_expert_tokens_match_capacity_math(profiler):
    cfg = ct_moe(12)
    tokens = profiler.expert_tokens_per_gpu(cfg)
    # E * C ~ f * k * B * L.
    assert tokens == cfg.num_experts * cfg.capacity


def test_fit_a2a_model_monotone(profiler):
    model = profiler.fit_a2a_model()
    assert model.beta > 0
    assert model.predict(2e8) > model.predict(1e6)


def test_compressed_wire_size_drives_a2a(paper_spec):
    zfp = Profiler(paper_spec, get_a2a("nccl"), get_compressor("zfp"))
    raw = Profiler(paper_spec, get_a2a("nccl"), get_compressor("none"))
    cfg = ct_moe(12)
    assert zfp.profile_layer(cfg, 1).a2a < raw.profile_layer(cfg, 1).a2a


def test_schemoe_layer_plan(paper_spec, rng):
    layer = ScheMoELayer(
        model_dim=64,
        hidden_dim=128,
        num_experts=32,
        rng=rng,
        compress_name="zfp",
        comm_name="pipe",
        scheduler_name="optsche",
        partitions=2,
    )
    plan = layer.plan(paper_spec, batch_per_gpu=4, seq_len=128)
    assert plan.forward.makespan > 0
    assert plan.backward.makespan > plan.forward.makespan  # 2x expert
    assert plan.step_seconds == pytest.approx(
        plan.forward.makespan + plan.backward.makespan
    )


def test_schemoe_layer_still_computes(rng):
    from repro.nn import Tensor

    layer = ScheMoELayer(16, 32, 4, rng, partitions=2)
    out = layer(Tensor(rng.standard_normal((2, 6, 16)).astype(np.float32)))
    assert out.shape == (2, 6, 16)


def test_schemoe_layer_validates_names(rng):
    with pytest.raises(KeyError):
        ScheMoELayer(16, 32, 4, rng, comm_name="wormhole")
    with pytest.raises(KeyError):
        ScheMoELayer(16, 32, 4, rng, scheduler_name="magic")
    with pytest.raises(ValueError):
        ScheMoELayer(16, 32, 4, rng, partitions=0)


def test_policy_validation():
    with pytest.raises(ValueError):
        SystemPolicy(name="x", partitions=0)
    with pytest.raises(ValueError):
        SystemPolicy(name="x", comm_inefficiency=0.5)


def test_simulate_model_step_breakdown(paper_spec):
    policy = SystemPolicy(
        name="test", compressor="zfp", a2a="pipe",
        scheduler="optsche", partitions=2,
    )
    result = simulate_model_step(ct_moe(12), paper_spec, policy)
    assert not result.oom
    assert result.total_s > 0
    assert result.moe_total_s > 0
    assert result.a2a_total_s > 0
    assert 0 < result.a2a_ratio < 1
    parts = (
        result.moe_total_s
        + result.attention_s
        + result.gate_s
        + result.head_s
        + result.allreduce_s
        + result.optimizer_s
    )
    assert result.total_s == pytest.approx(parts)


def test_step_time_scales_with_depth(paper_spec):
    policy = SystemPolicy(name="seq", scheduler="sequential")
    t12 = simulate_model_step(ct_moe(12), paper_spec, policy).total_s
    t24 = simulate_model_step(ct_moe(24), paper_spec, policy).total_s
    assert t24 > t12 * 1.5


def test_comm_inefficiency_slows_step(paper_spec):
    base = SystemPolicy(name="a")
    slow = SystemPolicy(name="b", comm_inefficiency=1.5)
    cfg = ct_moe(12)
    assert (
        simulate_model_step(cfg, paper_spec, slow).total_s
        > simulate_model_step(cfg, paper_spec, base).total_s
    )


def test_memory_accounting_components(paper_spec):
    cfg = bert_large_moe()
    base = SystemPolicy(name="base")
    shadow = SystemPolicy(name="shadow", shadow_expert_layers=6)
    m_base = estimate_memory_bytes(cfg, paper_spec, base)
    m_shadow = estimate_memory_bytes(cfg, paper_spec, shadow)
    expected_extra = 6 * cfg.num_experts * cfg.expert_params * 4.0
    assert m_shadow - m_base == pytest.approx(expected_extra)
    assert local_param_count(cfg, paper_spec) > dense_param_count(cfg)


def test_oom_reported_not_raised(paper_spec):
    cfg = bert_large_moe()
    policy = SystemPolicy(name="fat", shadow_expert_layers=50)
    result = simulate_model_step(cfg, paper_spec, policy)
    assert result.oom
    assert result.total_s == float("inf")
    assert result.a2a_ratio == 0.0


def test_schemoe_layer_auto_partitions(paper_spec, rng):
    """partitions='auto' never does worse than any fixed candidate."""
    def build(partitions):
        return ScheMoELayer(
            model_dim=512, hidden_dim=2048, num_experts=32,
            rng=np.random.default_rng(0), partitions=partitions,
        )

    auto_plan = build("auto").plan(paper_spec, batch_per_gpu=8, seq_len=512)
    for r in ScheMoELayer.AUTO_PARTITION_CANDIDATES:
        fixed = build(r).plan(paper_spec, batch_per_gpu=8, seq_len=512)
        assert auto_plan.step_seconds <= fixed.step_seconds + 1e-12


def test_schemoe_layer_partition_validation(rng):
    with pytest.raises(ValueError):
        ScheMoELayer(16, 32, 4, rng, partitions="many")
    with pytest.raises(ValueError):
        ScheMoELayer(16, 32, 4, rng, partitions=-1)


def test_tokens_per_second(paper_spec):
    policy = SystemPolicy(name="t", scheduler="sequential")
    cfg = ct_moe(12)
    result = simulate_model_step(cfg, paper_spec, policy)
    tps = result.tokens_per_second(cfg.tokens_per_gpu, paper_spec.world_size)
    assert tps == pytest.approx(
        cfg.tokens_per_gpu * 32 / result.total_s
    )
    oom_policy = SystemPolicy(name="fat", shadow_expert_layers=500)
    oom = simulate_model_step(bert_large_moe(), paper_spec, oom_policy)
    assert oom.tokens_per_second(1, 32) == 0.0
