"""The threaded task-graph executor and its chunking helper.

``StreamExecutor`` must run every task exactly once, honor the chain
dependencies (paper Eqs. 4-9) across its two real threads for every
registered scheduling policy, propagate exceptions without
deadlocking, and reject incomplete task maps.  ``run_inline`` is the
sequential reference; both entry points drive identical callables, so
their observable effects must agree.
"""

import threading

import numpy as np
import pytest

from repro.core import (
    StreamExecutor,
    available_schedulers,
    chunk_bounds,
    make_tasks,
    run_inline,
    validate_pipeline,
)
from repro.core.tasks import Task, TaskKind

# Brute force enumerates every valid order — too slow beyond toy
# partition counts, and pointless here.
POLICIES = [s for s in available_schedulers() if s != "brute-force"]


def make_fns(partitions, log, lock):
    """One callable per task, appending its task to a shared log."""

    def bind(task):
        def fn():
            with lock:
                log.append(task)

        return fn

    return {task: bind(task) for task in make_tasks(partitions)}


@pytest.mark.parametrize("scheduler", POLICIES)
@pytest.mark.parametrize("partitions", [1, 2, 4])
def test_executor_runs_each_task_once(scheduler, partitions):
    log, lock = [], threading.Lock()
    fns = make_fns(partitions, log, lock)
    timeline = StreamExecutor(scheduler).run(partitions, fns)
    assert sorted(map(str, log)) == sorted(map(str, fns))
    assert set(timeline) == set(fns)
    for start, end in timeline.values():
        assert 0.0 <= start <= end


@pytest.mark.parametrize("scheduler", POLICIES)
@pytest.mark.parametrize("partitions", [1, 3])
def test_executor_honors_chain_dependencies(scheduler, partitions):
    """A task never starts before its chain predecessor finished."""
    log, lock = [], threading.Lock()
    fns = make_fns(partitions, log, lock)
    timeline = StreamExecutor(scheduler).run(partitions, fns)
    for task in fns:
        pred = task.predecessor()
        if pred is not None:
            assert timeline[pred][1] <= timeline[task][0], (
                f"{task} started before {pred} ended"
            )


def test_run_inline_is_chunk_major():
    log, lock = [], threading.Lock()
    fns = make_fns(3, log, lock)
    run_inline(3, fns)
    assert log == make_tasks(3)


@pytest.mark.parametrize("runner", ["inline", "executor"])
def test_incomplete_task_map_rejected(runner):
    fns = make_fns(2, [], threading.Lock())
    del fns[Task(TaskKind.E, 1)]
    run = (
        run_inline
        if runner == "inline"
        else StreamExecutor("optsche").run
    )
    with pytest.raises(ValueError, match="E\\^2"):
        run(2, fns)


def test_executor_propagates_exception_without_deadlock():
    fns = make_fns(3, [], threading.Lock())

    def boom():
        raise RuntimeError("task failed")

    fns[Task(TaskKind.E, 1)] = boom
    with pytest.raises(RuntimeError, match="task failed"):
        StreamExecutor("optsche").run(3, fns)


def test_executor_skips_after_abort():
    """Tasks ordered after a failure are skipped, not executed."""
    log, lock = [], threading.Lock()
    fns = make_fns(2, log, lock)

    def boom():
        raise RuntimeError("early")

    # C1^1 is first on every comp order; everything depends on it
    # transitively or runs after it on its stream.
    fns[Task(TaskKind.C1, 0)] = boom
    with pytest.raises(RuntimeError):
        StreamExecutor("sequential").run(2, fns)
    assert len(log) < 13  # strictly fewer than the 13 surviving tasks


def test_unknown_scheduler_rejected():
    with pytest.raises(KeyError):
        StreamExecutor("no-such-policy")


def test_validate_pipeline():
    assert validate_pipeline("sync") == "sync"
    assert validate_pipeline("overlap") == "overlap"
    with pytest.raises(ValueError, match="overlap"):
        validate_pipeline("async")


# -- chunk_bounds ------------------------------------------------------------


@pytest.mark.parametrize(
    "tokens,chunks", [(10, 1), (10, 3), (7, 7), (3, 8), (0, 4)]
)
def test_chunk_bounds_partition(tokens, chunks):
    bounds = chunk_bounds(tokens, chunks)
    assert bounds[0] == 0 and bounds[-1] == tokens
    assert len(bounds) == chunks + 1
    sizes = np.diff(bounds)
    assert (sizes >= 0).all()
    # array_split semantics: sizes differ by at most one, big first.
    assert sizes.max() - sizes.min() <= 1 if tokens >= chunks else True
    np.testing.assert_array_equal(
        sizes, [len(part) for part in np.array_split(np.arange(tokens), chunks)]
    )
