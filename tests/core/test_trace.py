"""Tests of the chrome-trace exporter."""

import json

import pytest

from repro.core import TaskDurations, get_scheduler
from repro.core.trace import (
    COMM_TID,
    COMP_TID,
    export_layer_sequence_trace,
    export_schedule_trace,
    schedule_to_trace_events,
)


@pytest.fixture
def schedule():
    durations = TaskDurations(0.5, 2.0, 0.4, 1.5)
    return get_scheduler("optsche").schedule(2, durations)


def test_events_cover_all_tasks(schedule):
    events = schedule_to_trace_events(schedule)
    assert len(events) == 14  # 7 tasks x 2 chunks
    names = {e["name"] for e in events}
    assert "C1^1" in names and "A2^2" in names


def test_events_use_correct_threads(schedule):
    for event in schedule_to_trace_events(schedule):
        if event["cat"] == "comm":
            assert event["tid"] == COMM_TID
        else:
            assert event["tid"] == COMP_TID


def test_durations_match_timeline(schedule):
    events = {e["name"]: e for e in schedule_to_trace_events(schedule)}
    for task, (start, end) in schedule.timeline.items():
        event = events[str(task)]
        assert event["ts"] == pytest.approx(start * 1e6)
        assert event["dur"] == pytest.approx((end - start) * 1e6)


def test_export_is_valid_json(schedule, tmp_path):
    path = tmp_path / "trace.json"
    payload = export_schedule_trace(schedule, path=str(path))
    parsed = json.loads(payload)
    assert "traceEvents" in parsed
    on_disk = json.loads(path.read_text())
    assert on_disk == parsed
    # Metadata rows name the streams.
    meta = [e for e in parsed["traceEvents"] if e["ph"] == "M"]
    assert any(e["args"].get("name") == "compute stream" for e in meta)


def test_layer_sequence_offsets(schedule):
    payload = export_layer_sequence_trace(
        [schedule, schedule], labels=["fwd", "bwd"]
    )
    events = json.loads(payload)["traceEvents"]
    fwd = [e for e in events if e["name"].startswith("fwd:")]
    bwd = [e for e in events if e["name"].startswith("bwd:")]
    assert len(fwd) == len(bwd) == 14
    fwd_end = max(e["ts"] + e["dur"] for e in fwd)
    bwd_start = min(e["ts"] for e in bwd)
    assert bwd_start == pytest.approx(fwd_end, rel=1e-6)


def test_layer_sequence_label_validation(schedule):
    with pytest.raises(ValueError):
        export_layer_sequence_trace([schedule], labels=["a", "b"])
