"""Cross-validation of the event executor against the analytic model."""

import math

import pytest

from repro.collectives import get_a2a
from repro.compression import get_compressor
from repro.core import Profiler, get_scheduler
from repro.core.executor import EventExecutor
from repro.models import ablation_layer, ct_moe


def analytic_makespan(spec, a2a, codec, scheduler, cfg, partitions):
    profiler = Profiler(spec, get_a2a(a2a), get_compressor(codec))
    durations = profiler.profile_layer(cfg, partitions)
    return get_scheduler(scheduler).schedule(partitions, durations).makespan


@pytest.mark.parametrize("scheduler", ["sequential", "chunk-pipeline", "optsche"])
@pytest.mark.parametrize("a2a", ["nccl", "pipe"])
def test_event_matches_analytic(paper_spec, scheduler, a2a):
    """The message-level execution reproduces the analytic makespan."""
    cfg = ct_moe(12)
    executor = EventExecutor(
        paper_spec,
        get_a2a(a2a),
        get_compressor("zfp"),
        get_scheduler(scheduler),
        partitions=2,
    )
    report = executor.run(cfg)
    expected = analytic_makespan(
        paper_spec, a2a, "zfp", scheduler, cfg, 2
    )
    assert report.makespan == pytest.approx(expected, rel=1e-6)


def test_optsche_beats_sequential_at_event_level(paper_spec):
    cfg = ablation_layer()

    def run(scheduler):
        return EventExecutor(
            paper_spec,
            get_a2a("pipe"),
            get_compressor("zfp"),
            get_scheduler(scheduler),
            partitions=2,
        ).run(cfg)

    assert run("optsche").makespan < run("sequential").makespan


def test_task_finish_times_recorded(paper_spec):
    executor = EventExecutor(
        paper_spec,
        get_a2a("pipe"),
        get_compressor("zfp"),
        get_scheduler("optsche"),
        partitions=2,
    )
    report = executor.run(ct_moe(12))
    assert len(report.task_finish) == 14  # 7 tasks x 2 chunks
    assert all(math.isfinite(v) for v in report.task_finish.values())
    assert max(report.task_finish.values()) == pytest.approx(report.makespan)
    assert report.comm_finish <= report.makespan


def test_traffic_matches_collective_volume(paper_spec):
    cfg = ct_moe(12)
    executor = EventExecutor(
        paper_spec,
        get_a2a("pipe"),
        get_compressor("none"),
        get_scheduler("optsche"),
        partitions=2,
    )
    report = executor.run(cfg)
    world = paper_spec.world_size
    # 2 A2As x 2 chunks, each moving (P-1)/P of S/2 per GPU.
    per_call = world * (cfg.a2a_bytes / 2) * (world - 1) / world
    expected = 4 * per_call
    total = report.traffic["intra_bytes"] + report.traffic["inter_bytes"]
    assert total == pytest.approx(expected)


def test_partition_validation(paper_spec):
    with pytest.raises(ValueError):
        EventExecutor(
            paper_spec,
            get_a2a("pipe"),
            get_compressor("zfp"),
            get_scheduler("optsche"),
            partitions=0,
        )
