"""Tests of model checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Sequential,
    Tensor,
    load_checkpoint,
    save_checkpoint,
)


def make_model(seed):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng), Linear(8, 2, rng))


def test_roundtrip_restores_outputs(tmp_path, rng):
    model = make_model(0)
    path = tmp_path / "model.npz"
    save_checkpoint(model, path, metadata={"step": 42, "task": "demo"})

    other = make_model(99)
    x = Tensor(rng.standard_normal((3, 4)).astype(np.float32))
    assert not np.allclose(other(x).data, model(x).data)

    meta = load_checkpoint(other, path)
    assert meta == {"step": 42, "task": "demo"}
    np.testing.assert_array_equal(other(x).data, model(x).data)


def test_metadata_optional(tmp_path):
    model = make_model(1)
    path = tmp_path / "m.npz"
    save_checkpoint(model, path)
    assert load_checkpoint(make_model(2), path) == {}


def test_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_checkpoint(make_model(0), tmp_path / "absent.npz")


def test_architecture_mismatch_raises(tmp_path):
    model = make_model(0)
    path = tmp_path / "m.npz"
    save_checkpoint(model, path)
    rng = np.random.default_rng(0)
    different = Sequential(Linear(4, 8, rng))
    with pytest.raises(KeyError):
        load_checkpoint(different, path)


def test_creates_parent_directories(tmp_path):
    model = make_model(0)
    path = tmp_path / "deep" / "nested" / "m.npz"
    save_checkpoint(model, path)
    assert path.exists()


def test_moe_model_checkpoint(tmp_path, rng):
    from repro.models import TransformerLM

    model = TransformerLM(
        vocab_size=20, model_dim=16, hidden_dim=24, num_layers=1,
        num_heads=2, moe=True, num_experts=4, max_seq_len=16, seed=0,
    )
    path = tmp_path / "lm.npz"
    save_checkpoint(model, path, metadata={"ppl": 2.5})
    clone = TransformerLM(
        vocab_size=20, model_dim=16, hidden_dim=24, num_layers=1,
        num_heads=2, moe=True, num_experts=4, max_seq_len=16, seed=7,
    )
    meta = load_checkpoint(clone, path)
    assert meta["ppl"] == 2.5
    tokens = np.random.default_rng(0).integers(0, 20, (2, 8))
    np.testing.assert_array_equal(
        clone(tokens).data, model(tokens).data
    )


def test_crash_mid_save_never_exposes_truncated_checkpoint(
    tmp_path, monkeypatch
):
    """A crash while writing must leave the previous checkpoint intact
    (atomic temp-file + os.replace publish)."""
    import repro.nn.serialization as ser

    model = make_model(0)
    path = tmp_path / "model.npz"
    save_checkpoint(model, path, metadata={"step": 1})

    real_savez = np.savez

    def crashing_savez(fh, **payload):
        # Write a partial, corrupt prefix of the archive, then die —
        # simulating power loss / OOM-kill mid-serialization.
        fh.write(b"PK\x03\x04 partial garbage")
        raise RuntimeError("simulated crash mid-write")

    monkeypatch.setattr(ser.np, "savez", crashing_savez)
    with pytest.raises(RuntimeError, match="simulated crash"):
        save_checkpoint(make_model(1), path, metadata={"step": 2})
    monkeypatch.setattr(ser.np, "savez", real_savez)

    # No temp debris, and the visible checkpoint is the old, valid one.
    assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]
    meta = load_checkpoint(make_model(2), path)
    assert meta == {"step": 1}


def test_crash_before_first_save_leaves_nothing(tmp_path, monkeypatch):
    import repro.nn.serialization as ser

    def crashing_savez(fh, **payload):
        fh.write(b"junk")
        raise RuntimeError("boom")

    monkeypatch.setattr(ser.np, "savez", crashing_savez)
    path = tmp_path / "fresh.npz"
    with pytest.raises(RuntimeError):
        save_checkpoint(make_model(0), path)
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []
    with pytest.raises(FileNotFoundError):
        load_checkpoint(make_model(0), path)


def test_save_still_appends_npz_suffix(tmp_path):
    """Suffix-less destinations keep numpy's historical behaviour."""
    model = make_model(0)
    save_checkpoint(model, tmp_path / "bare")
    assert (tmp_path / "bare.npz").exists()
    assert load_checkpoint(make_model(1), tmp_path / "bare.npz") == {}
