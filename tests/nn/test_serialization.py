"""Tests of model checkpointing."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Sequential,
    Tensor,
    load_checkpoint,
    save_checkpoint,
)


def make_model(seed):
    rng = np.random.default_rng(seed)
    return Sequential(Linear(4, 8, rng), Linear(8, 2, rng))


def test_roundtrip_restores_outputs(tmp_path, rng):
    model = make_model(0)
    path = tmp_path / "model.npz"
    save_checkpoint(model, path, metadata={"step": 42, "task": "demo"})

    other = make_model(99)
    x = Tensor(rng.standard_normal((3, 4)).astype(np.float32))
    assert not np.allclose(other(x).data, model(x).data)

    meta = load_checkpoint(other, path)
    assert meta == {"step": 42, "task": "demo"}
    np.testing.assert_array_equal(other(x).data, model(x).data)


def test_metadata_optional(tmp_path):
    model = make_model(1)
    path = tmp_path / "m.npz"
    save_checkpoint(model, path)
    assert load_checkpoint(make_model(2), path) == {}


def test_missing_file_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_checkpoint(make_model(0), tmp_path / "absent.npz")


def test_architecture_mismatch_raises(tmp_path):
    model = make_model(0)
    path = tmp_path / "m.npz"
    save_checkpoint(model, path)
    rng = np.random.default_rng(0)
    different = Sequential(Linear(4, 8, rng))
    with pytest.raises(KeyError):
        load_checkpoint(different, path)


def test_creates_parent_directories(tmp_path):
    model = make_model(0)
    path = tmp_path / "deep" / "nested" / "m.npz"
    save_checkpoint(model, path)
    assert path.exists()


def test_moe_model_checkpoint(tmp_path, rng):
    from repro.models import TransformerLM

    model = TransformerLM(
        vocab_size=20, model_dim=16, hidden_dim=24, num_layers=1,
        num_heads=2, moe=True, num_experts=4, max_seq_len=16, seed=0,
    )
    path = tmp_path / "lm.npz"
    save_checkpoint(model, path, metadata={"ppl": 2.5})
    clone = TransformerLM(
        vocab_size=20, model_dim=16, hidden_dim=24, num_layers=1,
        num_heads=2, moe=True, num_experts=4, max_seq_len=16, seed=7,
    )
    meta = load_checkpoint(clone, path)
    assert meta["ppl"] == 2.5
    tokens = np.random.default_rng(0).integers(0, 20, (2, 8))
    np.testing.assert_array_equal(
        clone(tokens).data, model(tokens).data
    )


def test_crash_mid_save_never_exposes_truncated_checkpoint(
    tmp_path, monkeypatch
):
    """A crash while writing must leave the previous checkpoint intact
    (atomic temp-file + os.replace publish)."""
    import repro.nn.serialization as ser

    model = make_model(0)
    path = tmp_path / "model.npz"
    save_checkpoint(model, path, metadata={"step": 1})

    real_savez = np.savez

    def crashing_savez(fh, **payload):
        # Write a partial, corrupt prefix of the archive, then die —
        # simulating power loss / OOM-kill mid-serialization.
        fh.write(b"PK\x03\x04 partial garbage")
        raise RuntimeError("simulated crash mid-write")

    monkeypatch.setattr(ser.np, "savez", crashing_savez)
    with pytest.raises(RuntimeError, match="simulated crash"):
        save_checkpoint(make_model(1), path, metadata={"step": 2})
    monkeypatch.setattr(ser.np, "savez", real_savez)

    # No temp debris, and the visible checkpoint is the old, valid one.
    assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]
    meta = load_checkpoint(make_model(2), path)
    assert meta == {"step": 1}


def test_crash_before_first_save_leaves_nothing(tmp_path, monkeypatch):
    import repro.nn.serialization as ser

    def crashing_savez(fh, **payload):
        fh.write(b"junk")
        raise RuntimeError("boom")

    monkeypatch.setattr(ser.np, "savez", crashing_savez)
    path = tmp_path / "fresh.npz"
    with pytest.raises(RuntimeError):
        save_checkpoint(make_model(0), path)
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []
    with pytest.raises(FileNotFoundError):
        load_checkpoint(make_model(0), path)


def test_save_still_appends_npz_suffix(tmp_path):
    """Suffix-less destinations keep numpy's historical behaviour."""
    model = make_model(0)
    save_checkpoint(model, tmp_path / "bare")
    assert (tmp_path / "bare.npz").exists()
    assert load_checkpoint(make_model(1), tmp_path / "bare.npz") == {}


# -- elastic re-sharding support ------------------------------------------


def test_placement_recorded_and_read_back(tmp_path):
    from repro.moe import ExpertPlacement
    from repro.nn import checkpoint_placement

    model = make_model(0)
    path = tmp_path / "m.npz"
    pl = ExpertPlacement(8, 4, owners=(3, 0, 2, 0, 1, 3, 0, 2), version=5)
    save_checkpoint(model, path, metadata={"step": 9}, placement=pl)
    meta = load_checkpoint(make_model(1), path)
    assert meta["step"] == 9
    assert checkpoint_placement(meta) == pl
    # Checkpoints without a placement read back as None.
    save_checkpoint(model, tmp_path / "bare.npz")
    assert checkpoint_placement(load_checkpoint(make_model(1), tmp_path / "bare.npz")) is None


def test_placement_metadata_key_is_reserved(tmp_path):
    from repro.moe import ExpertPlacement

    pl = ExpertPlacement.contiguous(4, 2)
    with pytest.raises(ValueError, match="reserved"):
        save_checkpoint(
            make_model(0), tmp_path / "m.npz",
            metadata={"expert_placement": "clash"}, placement=pl,
        )


def test_extra_arrays_round_trip_and_stay_out_of_state(tmp_path):
    from repro.nn import load_extra_arrays

    model = make_model(0)
    path = tmp_path / "m.npz"
    extras = {
        "adam.m.0": np.arange(6, dtype=np.float32),
        "adam.step": np.array(17),
    }
    save_checkpoint(model, path, extra_arrays=extras)
    back = load_extra_arrays(path)
    assert set(back) == set(extras)
    for key, value in extras.items():
        np.testing.assert_array_equal(back[key], value)
    # load_checkpoint ignores them (strict loading would raise on an
    # unexpected key otherwise).
    assert load_checkpoint(make_model(1), path) == {}
    # Checkpoints without extras read back empty.
    save_checkpoint(model, tmp_path / "noextra.npz")
    assert load_extra_arrays(tmp_path / "noextra.npz") == {}


def test_shard_merge_round_trip_any_placement(tmp_path):
    from repro.models import TransformerLM
    from repro.moe import ExpertPlacement
    from repro.nn import merge_expert_shards, shard_expert_state

    model = TransformerLM(
        vocab_size=20, model_dim=16, hidden_dim=24, num_layers=1,
        num_heads=2, moe=True, num_experts=8, max_seq_len=16, seed=0,
    )
    state = model.state_dict()
    for pl in (
        ExpertPlacement.contiguous(8, 4),
        ExpertPlacement(8, 4, owners=(3, 0, 2, 0, 1, 3, 0, 2)),
        ExpertPlacement(8, 3, owners=(2, 2, 2, 2, 2, 2, 2, 2)),
    ):
        shards = shard_expert_state(state, pl)
        assert len(shards) == pl.num_workers
        for w, shard in enumerate(shards):
            hosted = pl.experts_of(w)
            for key, value in shard.items():
                if key.endswith((".w1", ".b1", ".w2", ".b2")):
                    assert value.shape[0] == len(hosted)
        merged = merge_expert_shards(shards, pl)
        assert set(merged) == set(state)
        for key in state:
            np.testing.assert_array_equal(merged[key], state[key])


def test_reshard_is_merge_then_shard_lossless():
    from repro.models import TransformerLM
    from repro.moe import ExpertPlacement
    from repro.nn import merge_expert_shards, shard_expert_state

    model = TransformerLM(
        vocab_size=20, model_dim=16, hidden_dim=24, num_layers=1,
        num_heads=2, moe=True, num_experts=8, max_seq_len=16, seed=3,
    )
    state = model.state_dict()
    old = ExpertPlacement.contiguous(8, 4)
    new = old.with_workers_removed({1})
    redistributed = shard_expert_state(
        merge_expert_shards(shard_expert_state(state, old), old), new
    )
    again = merge_expert_shards(redistributed, new)
    for key in state:
        np.testing.assert_array_equal(again[key], state[key])


def test_merge_rejects_mismatched_shards():
    from repro.moe import ExpertPlacement
    from repro.nn import merge_expert_shards, shard_expert_state

    rng = np.random.default_rng(0)
    state = {
        "w1": rng.standard_normal((4, 3, 5)).astype(np.float32),
        "b1": np.zeros((4, 1, 5), np.float32),
        "w2": rng.standard_normal((4, 5, 3)).astype(np.float32),
        "b2": np.zeros((4, 1, 3), np.float32),
    }
    pl = ExpertPlacement.contiguous(4, 2)
    shards = shard_expert_state(state, pl)
    with pytest.raises(ValueError, match="shards"):
        merge_expert_shards(shards[:1], pl)
    bad = [dict(s) for s in shards]
    bad[0]["w1"] = bad[0]["w1"][:1]
    with pytest.raises(ValueError, match="expert rows"):
        merge_expert_shards(bad, pl)


def test_extra_prefix_is_reserved_for_parameters(tmp_path):
    class Weird:
        # A pathological model whose parameter name collides with the
        # reserved extra-array prefix.
        def state_dict(self):
            return {"__extra__.sneaky": np.zeros(3, np.float32)}

    with pytest.raises(ValueError, match="reserved"):
        save_checkpoint(Weird(), tmp_path / "w.npz")
