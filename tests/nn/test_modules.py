"""Tests of the module system and layers."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    Sequential,
    Tensor,
)


def test_linear_shapes_and_params(rng):
    layer = Linear(4, 6, rng)
    out = layer(Tensor(rng.standard_normal((3, 4)).astype(np.float32)))
    assert out.shape == (3, 6)
    names = dict(layer.named_parameters())
    assert set(names) == {"weight", "bias"}
    nobias = Linear(4, 6, rng, bias=False)
    assert len(nobias.parameters()) == 1


def test_module_tree_discovery(rng):
    model = Sequential(Linear(4, 8, rng), LayerNorm(8), Linear(8, 2, rng))
    names = [n for n, _ in model.named_parameters()]
    assert "layers.0.weight" in names
    assert "layers.1.bias" in names
    assert "layers.2.weight" in names
    assert model.num_parameters() == (4 * 8 + 8) + (8 + 8) + (8 * 2 + 2)


def test_train_eval_propagates(rng):
    model = Sequential(Linear(4, 4, rng), Dropout(0.5, rng))
    model.eval()
    assert all(not m.training for m in model.modules())
    model.train()
    assert all(m.training for m in model.modules())


def test_state_dict_roundtrip(rng):
    model = Sequential(Linear(4, 8, rng), Linear(8, 2, rng))
    state = model.state_dict()
    model2 = Sequential(
        Linear(4, 8, np.random.default_rng(999)),
        Linear(8, 2, np.random.default_rng(998)),
    )
    model2.load_state_dict(state)
    x = Tensor(rng.standard_normal((2, 4)).astype(np.float32))
    np.testing.assert_allclose(model(x).data, model2(x).data)


def test_state_dict_strictness(rng):
    model = Linear(4, 8, rng)
    with pytest.raises(KeyError):
        model.load_state_dict({"weight": model.weight.data})
    with pytest.raises(ValueError):
        model.load_state_dict(
            {"weight": np.zeros((2, 2)), "bias": model.bias.data}
        )


def test_zero_grad(rng):
    model = Linear(3, 3, rng)
    model(Tensor(np.ones((1, 3), np.float32))).sum().backward()
    assert model.weight.grad is not None
    model.zero_grad()
    assert model.weight.grad is None


def test_feedforward(rng):
    ff = FeedForward(8, 16, rng, activation="gelu")
    out = ff(Tensor(rng.standard_normal((5, 8)).astype(np.float32)))
    assert out.shape == (5, 8)
    with pytest.raises(ValueError):
        FeedForward(8, 16, rng, activation="swish")


def test_embedding(rng):
    emb = Embedding(12, 6, rng)
    out = emb(np.array([[0, 3], [11, 5]]))
    assert out.shape == (2, 2, 6)


def test_attention_self_shapes(rng):
    attn = MultiHeadAttention(16, 4, rng)
    x = Tensor(rng.standard_normal((2, 7, 16)).astype(np.float32))
    assert attn(x).shape == (2, 7, 16)
    with pytest.raises(ValueError):
        MultiHeadAttention(10, 3, rng)


def test_attention_causal_masking(rng):
    """Changing a future token must not change earlier outputs."""
    attn = MultiHeadAttention(8, 2, rng, causal=True)
    x = rng.standard_normal((1, 5, 8)).astype(np.float32)
    base = attn(Tensor(x)).data.copy()
    x2 = x.copy()
    x2[0, 4] += 10.0  # perturb the last position
    perturbed = attn(Tensor(x2)).data
    np.testing.assert_allclose(perturbed[0, :4], base[0, :4], atol=1e-5)
    assert not np.allclose(perturbed[0, 4], base[0, 4])


def test_attention_padding_mask(rng):
    """Masked-out source positions cannot influence the output."""
    attn = MultiHeadAttention(8, 2, rng)
    x = rng.standard_normal((1, 4, 8)).astype(np.float32)
    mask = np.array([[True, True, False, True]])
    base = attn(Tensor(x), mask=mask).data.copy()
    x2 = x.copy()
    x2[0, 2] += 100.0  # perturb the masked position
    perturbed = attn(Tensor(x2), mask=mask).data
    # The masked position cannot influence other positions' outputs
    # (it is excluded as a key/value; its own query row still changes).
    keep = [0, 1, 3]
    np.testing.assert_allclose(perturbed[0, keep], base[0, keep], atol=1e-4)


def test_cross_attention(rng):
    attn = MultiHeadAttention(8, 2, rng)
    x = Tensor(rng.standard_normal((2, 3, 8)).astype(np.float32))
    ctx = Tensor(rng.standard_normal((2, 6, 8)).astype(np.float32))
    assert attn(x, context=ctx).shape == (2, 3, 8)


def test_module_list(rng):
    ml = ModuleList([Linear(2, 2, rng)])
    ml.append(Linear(2, 2, rng))
    assert len(ml) == 2
    assert isinstance(ml[1], Linear)
    assert len([n for n, _ in ModuleListHolder(ml).named_parameters()]) == 4
    with pytest.raises(RuntimeError):
        ml(Tensor(np.zeros((1, 2))))


class ModuleListHolder(Module):
    def __init__(self, ml):
        super().__init__()
        self.ml = ml
