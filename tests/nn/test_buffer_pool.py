"""The staging-buffer pool used by the pipelined A2A path."""

import threading

import numpy as np
import pytest

from repro.nn import Arena, BufferPool


def test_acquire_shape_and_reuse():
    pool = BufferPool()
    a = pool.acquire((4, 8))
    assert a.shape == (4, 8) and a.dtype == np.float32
    pool.release(a)
    b = pool.acquire((4, 8))
    assert b is a  # same buffer came back
    assert pool.hits == 1 and pool.misses == 1


def test_take_copy_copies():
    pool = BufferPool()
    src = np.arange(12, dtype=np.float32).reshape(3, 4)
    buf = pool.take_copy(src)
    assert buf is not src
    np.testing.assert_array_equal(buf, src)
    src[:] = -1.0  # the staged copy is independent of the source
    np.testing.assert_array_equal(
        buf, np.arange(12, dtype=np.float32).reshape(3, 4)
    )


def test_distinct_keys_do_not_mix():
    pool = BufferPool()
    pool.release(pool.acquire((2, 2), np.float32))
    got = pool.acquire((2, 2), np.float64)
    assert got.dtype == np.float64
    assert pool.idle_buffers() == 1  # the float32 one is still idle


def test_max_per_key_bounds_retention():
    pool = BufferPool(max_per_key=2)
    bufs = [pool.acquire((3,)) for _ in range(5)]
    for b in bufs:
        pool.release(b)
    assert pool.idle_buffers() == 2


def test_max_per_key_validation():
    with pytest.raises(ValueError):
        BufferPool(max_per_key=0)


def test_thread_safety_under_contention():
    """Concurrent acquire/release never loses or duplicates buffers."""
    pool = BufferPool(max_per_key=64)
    errors = []

    def worker():
        try:
            for _ in range(200):
                buf = pool.acquire((8, 8))
                buf.fill(1.0)
                pool.release(buf)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert pool.idle_buffers() <= 64
    assert pool.hits + pool.misses == 4 * 200


# -- release() validation -----------------------------------------------------


def test_release_rejects_views():
    """Pooling a view would alias the base array into a later acquire."""
    pool = BufferPool()
    base = pool.acquire((4, 8))
    with pytest.raises(ValueError, match="view"):
        pool.release(base[:2])
    with pytest.raises(ValueError, match="view"):
        pool.release(base.reshape(8, 4))
    assert pool.idle_buffers() == 0


def test_release_rejects_read_only():
    pool = BufferPool()
    buf = pool.acquire((3, 3))
    buf.flags.writeable = False
    with pytest.raises(ValueError, match="read-only"):
        pool.release(buf)
    assert pool.idle_buffers() == 0


def test_release_rejects_non_contiguous():
    pool = BufferPool()
    fortran = np.asfortranarray(np.ones((4, 5), dtype=np.float32))
    with pytest.raises(ValueError, match="contiguous"):
        pool.release(fortran)
    assert pool.idle_buffers() == 0


def test_release_rejects_non_arrays():
    pool = BufferPool()
    with pytest.raises(TypeError, match="numpy array"):
        pool.release([1.0, 2.0])
    assert pool.idle_buffers() == 0


def test_release_accepts_owned_contiguous_arrays():
    """The arrays the pool itself hands out always pass validation."""
    pool = BufferPool()
    buf = pool.take_copy(np.ones((2, 6), dtype=np.float32))
    pool.release(buf)  # no raise
    assert pool.idle_buffers() == 1


# -- observability counters ---------------------------------------------------


def test_stats_tracks_bytes_and_counters():
    pool = BufferPool()
    a = pool.acquire((4, 8))  # 128 bytes of float32
    assert pool.bytes_allocated == a.nbytes
    assert pool.bytes_held == 0  # checked out, not idle
    pool.release(a)
    assert pool.bytes_held == a.nbytes
    b = pool.acquire((4, 8))  # served from the free list
    assert b is a
    assert pool.bytes_held == 0
    assert pool.bytes_allocated == a.nbytes  # no new allocation
    stats = pool.stats()
    assert stats == {
        "hits": 1,
        "misses": 1,
        "bytes_held": 0,
        "bytes_allocated": a.nbytes,
        "idle_buffers": 0,
        "keys": 1,
    }


def test_stats_excludes_dropped_overflow_buffers():
    """Releases beyond max_per_key go to the allocator, not bytes_held."""
    pool = BufferPool(max_per_key=1)
    bufs = [pool.acquire((16,)) for _ in range(3)]
    for b in bufs:
        pool.release(b)
    assert pool.idle_buffers() == 1
    assert pool.bytes_held == bufs[0].nbytes
    assert pool.bytes_allocated == 3 * bufs[0].nbytes


# -- the step-scoped arena ----------------------------------------------------


def test_arena_holds_buffers_until_reset():
    arena = Arena()
    a = arena.empty((8, 8))
    b = arena.zeros((8, 8))
    assert not b.any()
    assert arena.live_buffers == 2
    # Nothing is recycled while the step is in flight: a third request
    # for the same shape is a fresh allocation, never a or b.
    c = arena.empty((8, 8))
    assert c is not a and c is not b
    assert arena.pool.stats()["misses"] == 3
    arena.reset()
    assert arena.live_buffers == 0
    # After reset the whole working set is reusable.
    d = arena.empty((8, 8))
    assert any(d is buf for buf in (a, b, c))
    assert arena.pool.stats()["hits"] == 1


def test_arena_stats_includes_live_count():
    arena = Arena()
    arena.empty((4,))
    stats = arena.stats()
    assert stats["live_buffers"] == 1
    assert stats["misses"] == 1
    arena.reset()
    assert arena.stats()["live_buffers"] == 0


def test_arena_shares_a_caller_pool():
    pool = BufferPool()
    arena = Arena(pool=pool)
    assert arena.pool is pool
    arena.empty((2, 2))
    assert pool.misses == 1
    arena.reset()
    assert pool.idle_buffers() == 1
