"""The staging-buffer pool used by the pipelined A2A path."""

import threading

import numpy as np
import pytest

from repro.nn import BufferPool


def test_acquire_shape_and_reuse():
    pool = BufferPool()
    a = pool.acquire((4, 8))
    assert a.shape == (4, 8) and a.dtype == np.float32
    pool.release(a)
    b = pool.acquire((4, 8))
    assert b is a  # same buffer came back
    assert pool.hits == 1 and pool.misses == 1


def test_take_copy_copies():
    pool = BufferPool()
    src = np.arange(12, dtype=np.float32).reshape(3, 4)
    buf = pool.take_copy(src)
    assert buf is not src
    np.testing.assert_array_equal(buf, src)
    src[:] = -1.0  # the staged copy is independent of the source
    np.testing.assert_array_equal(
        buf, np.arange(12, dtype=np.float32).reshape(3, 4)
    )


def test_distinct_keys_do_not_mix():
    pool = BufferPool()
    pool.release(pool.acquire((2, 2), np.float32))
    got = pool.acquire((2, 2), np.float64)
    assert got.dtype == np.float64
    assert pool.idle_buffers() == 1  # the float32 one is still idle


def test_max_per_key_bounds_retention():
    pool = BufferPool(max_per_key=2)
    bufs = [pool.acquire((3,)) for _ in range(5)]
    for b in bufs:
        pool.release(b)
    assert pool.idle_buffers() == 2


def test_max_per_key_validation():
    with pytest.raises(ValueError):
        BufferPool(max_per_key=0)


def test_thread_safety_under_contention():
    """Concurrent acquire/release never loses or duplicates buffers."""
    pool = BufferPool(max_per_key=64)
    errors = []

    def worker():
        try:
            for _ in range(200):
                buf = pool.acquire((8, 8))
                buf.fill(1.0)
                pool.release(buf)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert pool.idle_buffers() <= 64
    assert pool.hits + pool.misses == 4 * 200


# -- release() validation -----------------------------------------------------


def test_release_rejects_views():
    """Pooling a view would alias the base array into a later acquire."""
    pool = BufferPool()
    base = pool.acquire((4, 8))
    with pytest.raises(ValueError, match="view"):
        pool.release(base[:2])
    with pytest.raises(ValueError, match="view"):
        pool.release(base.reshape(8, 4))
    assert pool.idle_buffers() == 0


def test_release_rejects_read_only():
    pool = BufferPool()
    buf = pool.acquire((3, 3))
    buf.flags.writeable = False
    with pytest.raises(ValueError, match="read-only"):
        pool.release(buf)
    assert pool.idle_buffers() == 0


def test_release_rejects_non_contiguous():
    pool = BufferPool()
    fortran = np.asfortranarray(np.ones((4, 5), dtype=np.float32))
    with pytest.raises(ValueError, match="contiguous"):
        pool.release(fortran)
    assert pool.idle_buffers() == 0


def test_release_rejects_non_arrays():
    pool = BufferPool()
    with pytest.raises(TypeError, match="numpy array"):
        pool.release([1.0, 2.0])
    assert pool.idle_buffers() == 0


def test_release_accepts_owned_contiguous_arrays():
    """The arrays the pool itself hands out always pass validation."""
    pool = BufferPool()
    buf = pool.take_copy(np.ones((2, 6), dtype=np.float32))
    pool.release(buf)  # no raise
    assert pool.idle_buffers() == 1
