"""Property-based autograd checks (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, functional as F

elements = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, width=32)


def mats(rows, cols):
    return arrays(np.float32, (rows, cols), elements=elements)


@settings(max_examples=30, deadline=None)
@given(x=mats(3, 4), y=mats(3, 4))
def test_addition_gradient_is_ones(x, y):
    a = Tensor(x, requires_grad=True)
    b = Tensor(y, requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(x))
    np.testing.assert_allclose(b.grad, np.ones_like(y))


@settings(max_examples=30, deadline=None)
@given(x=mats(3, 4), y=mats(3, 4))
def test_product_rule(x, y):
    a = Tensor(x, requires_grad=True)
    b = Tensor(y, requires_grad=True)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, y, rtol=1e-5, atol=1e-6)
    np.testing.assert_allclose(b.grad, x, rtol=1e-5, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(x=mats(4, 5))
def test_linearity_of_backward(x):
    """grad of (2f) == 2 * grad of f."""
    a1 = Tensor(x, requires_grad=True)
    F.gelu(a1).sum().backward()
    a2 = Tensor(x, requires_grad=True)
    (F.gelu(a2) * 2.0).sum().backward()
    np.testing.assert_allclose(a2.grad, 2.0 * a1.grad, rtol=1e-4, atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(x=mats(4, 5))
def test_softmax_gradient_rows_sum_to_zero(x):
    """softmax preserves the simplex: row gradient sums vanish for any
    upstream gradient."""
    a = Tensor(x, requires_grad=True)
    w = np.arange(20, dtype=np.float32).reshape(4, 5)
    (F.softmax(a) * Tensor(w)).sum().backward()
    np.testing.assert_allclose(a.grad.sum(axis=-1), 0.0, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(x=mats(4, 6))
def test_layer_norm_gradient_orthogonal_to_ones(x):
    """d(layernorm)/dx is orthogonal to constant shifts of x."""
    w = Tensor(np.ones(6, dtype=np.float32))
    b = Tensor(np.zeros(6, dtype=np.float32))
    a = Tensor(x, requires_grad=True)
    coeffs = np.linspace(-1, 1, 24, dtype=np.float32).reshape(4, 6)
    (F.layer_norm(a, w, b) * Tensor(coeffs)).sum().backward()
    np.testing.assert_allclose(a.grad.sum(axis=-1), 0.0, atol=1e-3)


@settings(max_examples=30, deadline=None)
@given(x=mats(5, 3))
def test_matmul_identity_preserves_gradient(x):
    a = Tensor(x, requires_grad=True)
    eye = Tensor(np.eye(3, dtype=np.float32))
    (a @ eye).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(x), atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(x=mats(4, 7))
def test_cross_entropy_gradient_sums_to_zero_per_row(x):
    """Softmax CE gradient rows sum to 0 (prob simplex constraint)."""
    targets = np.arange(4) % 7
    a = Tensor(x, requires_grad=True)
    F.cross_entropy(a, targets).backward()
    np.testing.assert_allclose(a.grad.sum(axis=-1), 0.0, atol=1e-6)
