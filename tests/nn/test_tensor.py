"""Unit tests of the autograd tensor."""

import numpy as np
import pytest

from repro.nn import Tensor, bmm, concatenate, einsum, stack, where


def grad_of(build, *arrays):
    """Backward gradients of build(*tensors).sum()."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    if out.data.size != 1:
        out = out.sum()
    out.backward()
    return [t.grad for t in tensors]


def numerical_grad(build, arrays, index, eps=1e-3):
    """Central-difference gradient wrt arrays[index]."""
    arrays = [a.copy() for a in arrays]
    target = arrays[index]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        orig = target[i]

        def value():
            ts = [Tensor(a) for a in arrays]
            out = build(*ts)
            return float(out.data.sum())

        target[i] = orig + eps
        hi = value()
        target[i] = orig - eps
        lo = value()
        target[i] = orig
        grad[i] = (hi - lo) / (2 * eps)
    return grad


def check_grads(build, *arrays, tol=2e-2):
    analytic = grad_of(build, *arrays)
    for i in range(len(arrays)):
        numeric = numerical_grad(build, list(arrays), i)
        np.testing.assert_allclose(analytic[i], numeric, atol=tol, rtol=tol)


@pytest.fixture
def a(rng):
    return rng.standard_normal((3, 4)).astype(np.float32)


@pytest.fixture
def b(rng):
    return rng.standard_normal((4, 5)).astype(np.float32)


def test_add_mul_broadcasting(rng):
    x = rng.standard_normal((3, 4)).astype(np.float32)
    y = rng.standard_normal((4,)).astype(np.float32)
    check_grads(lambda t, u: t * u + u, x, y)


def test_sub_div_pow(rng):
    x = rng.standard_normal((3, 4)).astype(np.float32) + 5
    y = rng.standard_normal((3, 4)).astype(np.float32) + 5
    check_grads(lambda t, u: (t - u) / u + t**2, x, y)


def test_matmul_2d(a, b):
    check_grads(lambda x, y: x @ y, a, b)


def test_matmul_batched(rng):
    x = rng.standard_normal((2, 3, 4)).astype(np.float32)
    y = rng.standard_normal((2, 4, 5)).astype(np.float32)
    check_grads(lambda t, u: t @ u, x, y)


def test_matmul_broadcast_batch(rng):
    x = rng.standard_normal((2, 3, 4)).astype(np.float32)
    y = rng.standard_normal((4, 5)).astype(np.float32)
    check_grads(lambda t, u: t @ u, x, y)


def test_bmm_gradients(rng):
    x = rng.standard_normal((3, 4, 5)).astype(np.float32)
    y = rng.standard_normal((3, 5, 2)).astype(np.float32)
    check_grads(lambda t, u: bmm(t, u), x, y)


def test_bmm_matches_per_slice_matmul_bitwise(rng):
    x = rng.standard_normal((4, 6, 8)).astype(np.float32)
    y = rng.standard_normal((4, 8, 3)).astype(np.float32)
    out = bmm(Tensor(x), Tensor(y))
    expected = np.stack([x[i] @ y[i] for i in range(4)])
    np.testing.assert_array_equal(out.data, expected)


def test_bmm_zero_batch_and_zero_rows(rng):
    assert bmm(
        Tensor(np.zeros((0, 2, 3))), Tensor(np.zeros((0, 3, 4)))
    ).shape == (0, 2, 4)
    x = Tensor(np.zeros((2, 0, 3), dtype=np.float32), requires_grad=True)
    out = bmm(x, Tensor(np.ones((2, 3, 4), dtype=np.float32)))
    assert out.shape == (2, 0, 4)
    out.backward(np.zeros((2, 0, 4), dtype=np.float32))
    assert x.grad.shape == x.shape


def test_bmm_rejects_bad_shapes():
    with pytest.raises(ValueError):
        bmm(Tensor(np.ones((2, 3))), Tensor(np.ones((2, 3, 4))))
    with pytest.raises(ValueError):
        bmm(Tensor(np.ones((2, 3, 4))), Tensor(np.ones((3, 4, 5))))
    with pytest.raises(ValueError):
        bmm(Tensor(np.ones((2, 3, 4))), Tensor(np.ones((2, 5, 6))))


def test_sum_mean_axes(a):
    check_grads(lambda t: t.sum(axis=0), a)
    check_grads(lambda t: t.mean(axis=1, keepdims=True), a)
    check_grads(lambda t: t.mean(), a)


def test_max_gradient_splits_ties():
    x = Tensor(np.array([[1.0, 3.0, 3.0]]), requires_grad=True)
    x.max(axis=1).sum().backward()
    np.testing.assert_allclose(x.grad, [[0.0, 0.5, 0.5]])


def test_reshape_transpose_swapaxes(rng):
    x = rng.standard_normal((2, 3, 4)).astype(np.float32)
    check_grads(lambda t: t.reshape(6, 4), x)
    check_grads(lambda t: t.transpose(2, 0, 1), x)
    check_grads(lambda t: t.swapaxes(0, 2), x)


def test_getitem_gradient_accumulates(a):
    idx = np.array([0, 1, 1, 2])
    check_grads(lambda t: t[idx], a)


def test_concatenate_and_stack(rng):
    x = rng.standard_normal((2, 3)).astype(np.float32)
    y = rng.standard_normal((2, 3)).astype(np.float32)
    check_grads(lambda t, u: concatenate([t, u], axis=1), x, y)
    check_grads(lambda t, u: stack([t, u], axis=0), x, y)


def test_where(rng):
    x = rng.standard_normal((3, 4)).astype(np.float32)
    y = rng.standard_normal((3, 4)).astype(np.float32)
    cond = x > 0
    check_grads(lambda t, u: where(cond, t, u), x, y)


def test_einsum_dispatch_combine_shapes(rng):
    tokens = rng.standard_normal((6, 5)).astype(np.float32)
    mask = rng.random((6, 3, 2)).astype(np.float32)
    check_grads(lambda t: einsum("tm,tec->ecm", t, Tensor(mask)), tokens)
    out = rng.standard_normal((3, 2, 5)).astype(np.float32)
    check_grads(lambda t: einsum("ecm,tec->tm", t, Tensor(mask)), out)


def test_einsum_requires_explicit_output():
    with pytest.raises(ValueError):
        einsum("ij,jk", Tensor(np.ones((2, 2))), Tensor(np.ones((2, 2))))


def test_backward_requires_scalar_or_seed(a):
    t = Tensor(a, requires_grad=True)
    with pytest.raises(ValueError):
        (t * 2).backward()
    (t * 2).backward(np.ones_like(a))
    np.testing.assert_allclose(t.grad, 2 * np.ones_like(a))


def test_gradient_accumulates_across_backward(a):
    t = Tensor(a, requires_grad=True)
    (t.sum()).backward()
    (t.sum()).backward()
    np.testing.assert_allclose(t.grad, 2 * np.ones_like(a))
    t.zero_grad()
    assert t.grad is None


def test_detach_cuts_tape(a):
    t = Tensor(a, requires_grad=True)
    out = (t * 2).detach()
    assert out._parents == ()
    assert not out.requires_grad


def test_no_tape_without_requires_grad(a, b):
    out = Tensor(a) @ Tensor(b)
    assert out._parents == ()
    assert out._backward is None


def test_diamond_graph_gradient(a):
    # y = x*x + x*x reuses x twice on two paths.
    t = Tensor(a, requires_grad=True)
    u = t * t
    (u + u).sum().backward()
    np.testing.assert_allclose(t.grad, 4 * a, rtol=1e-5)


def test_deep_chain_does_not_recurse(rng):
    """Iterative topological sort survives 5000-op chains."""
    t = Tensor(np.ones(4), requires_grad=True)
    out = t
    for _ in range(5000):
        out = out + 1.0
    out.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones(4))
