"""The segment-matmul primitive behind the capacity-free expert path.

``segment_matmul(x, w, counts)`` must be the exact per-segment
composition of plain 2-d matmuls — forward bit-identical to slicing,
backward the exact adjoint of each slice (per-segment input grads, and
per-segment weight grads accumulated into the stacked bank with empty
segments receiving exactly zero).
"""

import numpy as np
import pytest

from repro.nn import Tensor, segment_matmul


def reference(x, w, counts):
    parts, lo = [], 0
    for e, c in enumerate(counts):
        parts.append(x[lo : lo + c] @ w[e])
        lo += c
    return (
        np.concatenate(parts, axis=0)
        if parts
        else np.zeros((0, w.shape[2]), np.float32)
    )


@pytest.mark.parametrize(
    "counts",
    [[3, 2, 4], [0, 5, 0], [9, 0, 0], [0, 0, 0], [1, 1, 1]],
)
def test_forward_matches_sliced_matmuls(rng, counts):
    counts = np.asarray(counts)
    x = rng.standard_normal((int(counts.sum()), 6)).astype(np.float32)
    w = rng.standard_normal((3, 6, 5)).astype(np.float32)
    out = segment_matmul(Tensor(x), Tensor(w), counts)
    np.testing.assert_array_equal(out.data, reference(x, w, counts))


def test_backward_is_per_segment_adjoint(rng):
    counts = np.array([2, 0, 3, 1])
    x = Tensor(
        rng.standard_normal((6, 4)).astype(np.float32), requires_grad=True
    )
    w = Tensor(
        rng.standard_normal((4, 4, 3)).astype(np.float32), requires_grad=True
    )
    out = segment_matmul(x, w, counts)
    seed = rng.standard_normal(out.shape).astype(np.float32)
    out.backward(seed)

    lo = 0
    expected_w = np.zeros(w.shape, np.float32)
    expected_x = np.zeros(x.shape, np.float32)
    for e, c in enumerate(counts):
        expected_x[lo : lo + c] = seed[lo : lo + c] @ w.data[e].T
        expected_w[e] = x.data[lo : lo + c].T @ seed[lo : lo + c]
        lo += c
    np.testing.assert_allclose(x.grad, expected_x, atol=1e-6)
    np.testing.assert_allclose(w.grad, expected_w, atol=1e-6)
    # Expert 1 saw no rows: its weight gradient is exactly zero.
    np.testing.assert_array_equal(w.grad[1], 0.0)


def test_gradcheck_against_bmm_equivalent(rng):
    """Uniform segments make segment_matmul a reshaped bmm — grads match."""
    from repro.nn import bmm

    E, C, K, J = 3, 4, 5, 2
    x = rng.standard_normal((E * C, K)).astype(np.float32)
    w = rng.standard_normal((E, K, J)).astype(np.float32)

    xs, ws = Tensor(x, requires_grad=True), Tensor(w, requires_grad=True)
    seg = segment_matmul(xs, ws, np.full(E, C))
    (seg**2).sum().backward()

    xb, wb = Tensor(x.copy(), requires_grad=True), Tensor(
        w.copy(), requires_grad=True
    )
    batched = bmm(xb.reshape(E, C, K), wb)
    (batched**2).sum().backward()

    np.testing.assert_array_equal(seg.data, batched.data.reshape(E * C, J))
    np.testing.assert_allclose(xs.grad, xb.grad, atol=1e-6)
    np.testing.assert_allclose(ws.grad, wb.grad, atol=1e-6)


@pytest.mark.parametrize(
    "counts",
    [
        [3, 3, 3, 3],  # one 4-wide bucket
        [2, 5, 2, 5, 2],  # two buckets, interleaved members
        [4, 0, 4, 1, 0],  # zero segments and a singleton
        [7],  # single segment, no bucketing possible
    ],
)
def test_bucketed_matches_unbucketed(rng, counts):
    """Size-bucketed stacked GEMMs are bit-identical to the plain loop,
    forward and backward — same per-row 2-d products, just batched."""
    counts = np.asarray(counts)
    n, e = int(counts.sum()), len(counts)
    x = rng.standard_normal((n, 6)).astype(np.float32)
    w = rng.standard_normal((e, 6, 5)).astype(np.float32)
    seed = rng.standard_normal((n, 5)).astype(np.float32)

    grads = {}
    for bucketed in (True, False):
        xs = Tensor(x.copy(), requires_grad=True)
        ws = Tensor(w.copy(), requires_grad=True)
        out = segment_matmul(xs, ws, counts, bucketed=bucketed)
        out.backward(seed.copy())
        grads[bucketed] = (np.array(out.data), xs.grad, ws.grad)

    for a, b in zip(grads[True], grads[False]):
        np.testing.assert_array_equal(a, b)


# -- REPRO_BUCKET_ROW_ELEMS override -----------------------------------------


def _bucket_case(rng):
    """Counts with a bucketable pair whose LHS block is 5*6=30 elems."""
    counts = np.asarray([5, 5, 2, 2])
    x = rng.standard_normal((int(counts.sum()), 6)).astype(np.float32)
    w = rng.standard_normal((len(counts), 6, 5)).astype(np.float32)
    return counts, x, w


def test_bucket_threshold_default(monkeypatch):
    from repro.nn.tensor import (
        _BUCKET_ROW_ELEMS,
        BUCKET_ROW_ELEMS_ENV,
        bucket_row_elems,
    )

    monkeypatch.delenv(BUCKET_ROW_ELEMS_ENV, raising=False)
    assert bucket_row_elems() == _BUCKET_ROW_ELEMS == 4096


def test_bucket_threshold_env_override(rng, monkeypatch):
    """Valid overrides change the bucketing decision, never the values."""
    from repro.nn.tensor import BUCKET_ROW_ELEMS_ENV, bucket_row_elems

    counts, x, w = _bucket_case(rng)
    ref = segment_matmul(Tensor(x), Tensor(w), counts, bucketed=False).data
    # 0 disables bucketing entirely; a huge value buckets every size
    # class.  Either way results are bit-identical to the plain loop.
    for override in ("0", "1000000"):
        monkeypatch.setenv(BUCKET_ROW_ELEMS_ENV, override)
        assert bucket_row_elems() == int(override)
        out = segment_matmul(Tensor(x), Tensor(w), counts).data
        np.testing.assert_array_equal(out, ref)


@pytest.mark.parametrize("bad", ["banana", "4k", "", "3.5", "-1"])
def test_bucket_threshold_rejects_bad_values(rng, monkeypatch, bad):
    """A typo'd knob raises loudly instead of silently falling back."""
    from repro.nn.tensor import BUCKET_ROW_ELEMS_ENV

    counts, x, w = _bucket_case(rng)
    monkeypatch.setenv(BUCKET_ROW_ELEMS_ENV, bad)
    with pytest.raises(ValueError, match=BUCKET_ROW_ELEMS_ENV):
        segment_matmul(Tensor(x), Tensor(w), counts)


def test_empty_input(rng):
    w = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32))
    out = segment_matmul(
        Tensor(np.zeros((0, 3), np.float32)), w, np.zeros(2, np.int64)
    )
    assert out.shape == (0, 4)


def test_no_grad_operands_skip_the_tape(rng):
    x = Tensor(rng.standard_normal((2, 3)).astype(np.float32))
    w = Tensor(rng.standard_normal((1, 3, 3)).astype(np.float32))
    out = segment_matmul(x, w, np.array([2]))
    assert out._parents == () and out._backward is None


def test_validation_errors(rng):
    x = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
    w = Tensor(rng.standard_normal((2, 3, 5)).astype(np.float32))
    with pytest.raises(ValueError):
        segment_matmul(x, w, np.array([1, 2]))  # sum != rows
    with pytest.raises(ValueError):
        segment_matmul(x, w, np.array([4]))  # wrong number of segments
    with pytest.raises(ValueError):
        segment_matmul(x, w, np.array([5, -1]))  # negative count
    with pytest.raises(TypeError):
        segment_matmul(x, w, np.array([2.0, 2.0]))  # non-integer counts
    with pytest.raises(ValueError):
        segment_matmul(
            Tensor(np.zeros((4, 2), np.float32)), w, np.array([2, 2])
        )  # inner dim mismatch
    with pytest.raises(ValueError):
        segment_matmul(
            Tensor(np.zeros((2, 2, 3), np.float32)), w, np.array([1, 1])
        )  # x must be 2-d
