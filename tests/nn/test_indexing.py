"""Tests for the index-based autograd primitives.

``gather`` / ``scatter_add`` (tensor.py) and ``take_along_axis``
(functional.py) are the building blocks of the sparse MoE dispatch
path; their backwards are exact adjoints of the forwards, which these
tests verify both structurally (repeated indices accumulate) and
numerically (finite differences).
"""

import numpy as np
import pytest

from repro.nn import Tensor, gather, scatter_add
from repro.nn import functional as F


def finite_diff(fn, x_data, eps=1e-3):
    grad = np.zeros_like(x_data, dtype=np.float64)
    flat = x_data.reshape(-1)
    g = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x_data)
        flat[i] = orig - eps
        lo = fn(x_data)
        flat[i] = orig
        g[i] = (hi - lo) / (2 * eps)
    return grad


class TestGather:
    def test_forward(self, rng):
        x = Tensor(rng.standard_normal((5, 3)).astype(np.float32))
        idx = np.array([4, 0, 0, 2])
        out = gather(x, idx)
        np.testing.assert_array_equal(out.data, x.data[idx])

    def test_backward_accumulates_repeats(self, rng):
        x = Tensor(
            rng.standard_normal((4, 2)).astype(np.float32),
            requires_grad=True,
        )
        idx = np.array([1, 1, 3])
        gather(x, idx).sum().backward()
        expected = np.zeros((4, 2), dtype=np.float32)
        expected[1] = 2.0  # row 1 gathered twice
        expected[3] = 1.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_backward_matches_finite_diff(self, rng):
        x_data = rng.standard_normal((4, 3)).astype(np.float64)
        idx = np.array([2, 0, 2, 1])
        w = rng.standard_normal((4, 3)).astype(np.float64)

        def loss(data):
            return float((data[idx] * w).sum())

        x = Tensor(x_data.astype(np.float32), requires_grad=True)
        (gather(x, idx) * Tensor(w.astype(np.float32))).sum().backward()
        np.testing.assert_allclose(
            x.grad, finite_diff(loss, x_data), rtol=1e-3, atol=1e-4
        )

    def test_rejects_float_indices(self, rng):
        x = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        with pytest.raises(TypeError):
            gather(x, np.array([0.0, 1.0]))


class TestScatterAdd:
    def test_forward_accumulates(self, rng):
        v = Tensor(np.ones((3, 2), dtype=np.float32))
        out = scatter_add(v, np.array([1, 1, 0]), num_rows=4)
        expected = np.zeros((4, 2), dtype=np.float32)
        expected[0] = 1.0
        expected[1] = 2.0
        np.testing.assert_array_equal(out.data, expected)

    def test_backward_gathers(self, rng):
        v = Tensor(
            rng.standard_normal((3, 2)).astype(np.float32),
            requires_grad=True,
        )
        idx = np.array([2, 0, 2])
        out = scatter_add(v, idx, num_rows=3)
        w = rng.standard_normal((3, 2)).astype(np.float32)
        (out * Tensor(w)).sum().backward()
        np.testing.assert_allclose(v.grad, w[idx], rtol=1e-6)

    def test_adjoint_of_gather(self, rng):
        # <gather(x, i), y> == <x, scatter_add(y, i)> for all x, y.
        x = rng.standard_normal((5, 3)).astype(np.float32)
        y = rng.standard_normal((4, 3)).astype(np.float32)
        idx = np.array([0, 2, 2, 4])
        lhs = (gather(Tensor(x), idx).data * y).sum()
        rhs = (x * scatter_add(Tensor(y), idx, num_rows=5).data).sum()
        assert lhs == pytest.approx(rhs, rel=1e-5)

    def test_rejects_out_of_range(self, rng):
        v = Tensor(np.ones((2, 2), dtype=np.float32))
        with pytest.raises(IndexError):
            scatter_add(v, np.array([0, 5]), num_rows=3)

    def test_unique_indices_parity_with_add_at(self, rng):
        """The fancy-index fast path == np.add.at when indices are
        unique — values, untouched-row zeros, and gradients alike."""
        v_data = rng.standard_normal((6, 3)).astype(np.float32)
        idx = rng.permutation(10)[:6]  # unique by construction
        w = rng.standard_normal((10, 3)).astype(np.float32)

        results = {}
        for unique in (False, True):
            v = Tensor(v_data.copy(), requires_grad=True)
            out = scatter_add(v, idx, num_rows=10, unique_indices=unique)
            (out * Tensor(w)).sum().backward()
            results[unique] = (out.data.copy(), v.grad.copy())

        np.testing.assert_array_equal(results[True][0], results[False][0])
        np.testing.assert_array_equal(results[True][1], results[False][1])
        # Rows no index names stay exactly zero on the fast path too.
        untouched = np.setdiff1d(np.arange(10), idx)
        assert np.all(results[True][0][untouched] == 0.0)

    def test_unique_indices_empty(self, rng):
        out = scatter_add(
            Tensor(np.zeros((0, 2), dtype=np.float32)),
            np.zeros(0, dtype=np.int64),
            num_rows=4,
            unique_indices=True,
        )
        np.testing.assert_array_equal(out.data, np.zeros((4, 2)))


class TestTakeAlongAxis:
    def test_forward(self, rng):
        x = Tensor(rng.standard_normal((4, 6)).astype(np.float32))
        idx = rng.integers(0, 6, size=(4, 2))
        out = F.take_along_axis(x, idx, axis=-1)
        np.testing.assert_array_equal(
            out.data, np.take_along_axis(x.data, idx, axis=-1)
        )

    def test_backward_accumulates_repeats(self, rng):
        x = Tensor(
            rng.standard_normal((2, 3)).astype(np.float32),
            requires_grad=True,
        )
        idx = np.array([[1, 1], [0, 2]])
        F.take_along_axis(x, idx, axis=-1).sum().backward()
        expected = np.array([[0, 2, 0], [1, 0, 1]], dtype=np.float32)
        np.testing.assert_array_equal(x.grad, expected)

    def test_backward_matches_finite_diff(self, rng):
        x_data = rng.standard_normal((3, 5)).astype(np.float64)
        idx = rng.integers(0, 5, size=(3, 3))
        w = rng.standard_normal((3, 3)).astype(np.float64)

        def loss(data):
            return float(
                (np.take_along_axis(data, idx, axis=-1) * w).sum()
            )

        x = Tensor(x_data.astype(np.float32), requires_grad=True)
        (
            F.take_along_axis(x, idx, axis=-1)
            * Tensor(w.astype(np.float32))
        ).sum().backward()
        np.testing.assert_allclose(
            x.grad, finite_diff(loss, x_data), rtol=1e-3, atol=1e-4
        )

    def test_axis_zero(self, rng):
        x = Tensor(
            rng.standard_normal((4, 3)).astype(np.float32),
            requires_grad=True,
        )
        idx = np.array([[3, 0, 1]])
        out = F.take_along_axis(x, idx, axis=0)
        np.testing.assert_array_equal(
            out.data, np.take_along_axis(x.data, idx, axis=0)
        )
        out.sum().backward()
        assert x.grad.sum() == pytest.approx(3.0)
