"""Gradient and semantics tests of nn.functional."""

import numpy as np
import pytest

from repro.nn import Tensor, functional as F

from .test_tensor import check_grads


@pytest.fixture
def x(rng):
    return rng.standard_normal((4, 6)).astype(np.float32)


def test_relu(x):
    check_grads(lambda t: F.relu(t), x + 0.01)  # avoid kink at 0


def test_gelu(x):
    check_grads(lambda t: F.gelu(t), x)


def test_tanh_sigmoid_exp_log(x):
    check_grads(lambda t: F.tanh(t), x)
    check_grads(lambda t: F.sigmoid(t), x)
    check_grads(lambda t: F.exp(t * 0.3), x)
    check_grads(lambda t: F.log(t * t + 1.0), x)


def test_softmax_rows_sum_to_one(x):
    s = F.softmax(Tensor(x), axis=-1)
    np.testing.assert_allclose(s.data.sum(axis=-1), 1.0, rtol=1e-5)


def test_softmax_gradient_matches_analytic(rng, x):
    w = rng.standard_normal(x.shape).astype(np.float32)
    t = Tensor(x, requires_grad=True)
    (F.softmax(t) * Tensor(w)).sum().backward()
    s = np.exp(x - x.max(-1, keepdims=True))
    s /= s.sum(-1, keepdims=True)
    analytic = s * (w - (w * s).sum(-1, keepdims=True))
    np.testing.assert_allclose(t.grad, analytic, atol=1e-6)


def test_log_softmax_consistent_with_softmax(x):
    ls = F.log_softmax(Tensor(x)).data
    s = F.softmax(Tensor(x)).data
    np.testing.assert_allclose(np.exp(ls), s, rtol=1e-5)


def test_softmax_numerically_stable():
    big = Tensor(np.array([[1e4, 1e4 + 1.0]], dtype=np.float32))
    s = F.softmax(big)
    assert np.all(np.isfinite(s.data))


def test_dropout_train_and_eval(rng, x):
    t = Tensor(x)
    out_eval = F.dropout(t, 0.5, rng, training=False)
    assert out_eval is t
    out_train = F.dropout(Tensor(np.ones((100, 100))), 0.5, rng)
    kept = out_train.data != 0
    # Inverted dropout preserves expectation.
    assert 0.4 < kept.mean() < 0.6
    np.testing.assert_allclose(out_train.data[kept], 2.0)
    with pytest.raises(ValueError):
        F.dropout(t, 1.0, rng)


def test_layer_norm_statistics(x):
    w = Tensor(np.ones(x.shape[-1]), requires_grad=True)
    b = Tensor(np.zeros(x.shape[-1]), requires_grad=True)
    out = F.layer_norm(Tensor(x), w, b)
    np.testing.assert_allclose(out.data.mean(-1), 0.0, atol=1e-5)
    np.testing.assert_allclose(out.data.std(-1), 1.0, atol=1e-2)


def test_layer_norm_gradients(rng):
    x = rng.standard_normal((3, 5)).astype(np.float32)
    w = rng.standard_normal(5).astype(np.float32)
    b = rng.standard_normal(5).astype(np.float32)
    check_grads(
        lambda t, u, v: F.layer_norm(t, u, v) * Tensor(x + 2.0), x, w, b
    )


def test_embedding_lookup_and_grad(rng):
    weight = rng.standard_normal((10, 4)).astype(np.float32)
    idx = np.array([[1, 2], [2, 9]])
    w = Tensor(weight, requires_grad=True)
    F.embedding(w, idx).sum().backward()
    expected = np.zeros_like(weight)
    np.add.at(expected, idx, 1.0)
    np.testing.assert_allclose(w.grad, expected)
    with pytest.raises(TypeError):
        F.embedding(w, idx.astype(np.float32))


def test_cross_entropy_matches_manual(rng):
    logits = rng.standard_normal((5, 7)).astype(np.float32)
    targets = rng.integers(0, 7, 5)
    loss = F.cross_entropy(Tensor(logits), targets)
    shifted = logits - logits.max(-1, keepdims=True)
    logp = shifted - np.log(np.exp(shifted).sum(-1, keepdims=True))
    manual = -logp[np.arange(5), targets].mean()
    assert float(loss.data) == pytest.approx(manual, rel=1e-5)


def test_cross_entropy_ignore_index(rng):
    logits = rng.standard_normal((4, 5)).astype(np.float32)
    targets = np.array([1, 0, 2, 0])
    masked = F.cross_entropy(Tensor(logits), targets, ignore_index=0)
    only = F.cross_entropy(
        Tensor(logits[[0, 2]]), targets[[0, 2]]
    )
    assert float(masked.data) == pytest.approx(float(only.data), rel=1e-5)


def test_cross_entropy_gradient(rng):
    logits = rng.standard_normal((5, 7)).astype(np.float32)
    targets = np.asarray(rng.integers(0, 7, 5))
    check_grads(lambda t: F.cross_entropy(t, targets), logits)


def test_cross_entropy_shape_mismatch(rng):
    with pytest.raises(ValueError):
        F.cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((3,), dtype=int))


def test_top_k_indices_correct(rng):
    scores = rng.standard_normal((6, 8))
    top = F.top_k_indices(scores, 3)
    for row, chosen in zip(scores, top):
        assert set(chosen) == set(np.argsort(-row)[:3])
        # Descending order of score.
        assert list(row[chosen]) == sorted(row[chosen], reverse=True)


def test_top_k_validation(rng):
    scores = rng.standard_normal((2, 4))
    with pytest.raises(ValueError):
        F.top_k_indices(scores, 0)
    with pytest.raises(ValueError):
        F.top_k_indices(scores, 5)


def test_one_hot():
    oh = F.one_hot(np.array([0, 2]), 3)
    np.testing.assert_array_equal(oh, [[1, 0, 0], [0, 0, 1]])
