"""Optimizer tests."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Linear, Tensor, WarmupInverseSqrt, clip_grad_norm
from repro.nn.modules import Parameter


def quadratic_params(rng):
    return [Parameter(rng.standard_normal(4).astype(np.float32) * 3)]


def minimize(opt, params, steps=300):
    for _ in range(steps):
        opt.zero_grad()
        loss = (params[0] ** 2).sum()
        loss.backward()
        opt.step()
    return float((params[0] ** 2).sum().data)


def test_sgd_minimizes_quadratic(rng):
    params = quadratic_params(rng)
    final = minimize(SGD(params, lr=0.1), params)
    assert final < 1e-6


def test_sgd_momentum_minimizes(rng):
    params = quadratic_params(rng)
    final = minimize(SGD(params, lr=0.05, momentum=0.9), params)
    assert final < 1e-6


def test_adam_minimizes_quadratic(rng):
    params = quadratic_params(rng)
    final = minimize(Adam(params, lr=0.1), params)
    assert final < 1e-5


def test_weight_decay_shrinks_weights(rng):
    p = Parameter(np.ones(4, dtype=np.float32))
    opt = SGD([p], lr=0.1, weight_decay=0.5)
    p.grad = np.zeros(4, dtype=np.float32)
    opt.step()
    np.testing.assert_allclose(p.data, 0.95 * np.ones(4))


def test_optimizer_skips_gradless_params(rng):
    p = Parameter(np.ones(2, dtype=np.float32))
    opt = Adam([p], lr=0.1)
    opt.step()  # no grad: no movement, no crash
    np.testing.assert_allclose(p.data, 1.0)


def test_optimizer_validation(rng):
    p = Parameter(np.ones(2, dtype=np.float32))
    with pytest.raises(ValueError):
        SGD([p], lr=0.0)
    with pytest.raises(ValueError):
        SGD([p], lr=0.1, momentum=1.0)
    with pytest.raises(ValueError):
        Adam([p], lr=0.1, betas=(1.0, 0.9))
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_clip_grad_norm(rng):
    p = Parameter(np.zeros(4, dtype=np.float32))
    p.grad = np.full(4, 3.0, dtype=np.float32)  # norm 6
    pre = clip_grad_norm([p], max_norm=3.0)
    assert pre == pytest.approx(6.0)
    assert np.linalg.norm(p.grad) == pytest.approx(3.0)
    # Below the cap: untouched.
    p.grad = np.full(4, 0.1, dtype=np.float32)
    clip_grad_norm([p], max_norm=3.0)
    np.testing.assert_allclose(p.grad, 0.1)
    with pytest.raises(ValueError):
        clip_grad_norm([p], max_norm=0.0)


def test_warmup_inverse_sqrt_schedule(rng):
    p = Parameter(np.ones(2, dtype=np.float32))
    opt = Adam([p], lr=1.0)
    sched = WarmupInverseSqrt(opt, base_lr=1.0, warmup_steps=10)
    lrs = [sched.step() for _ in range(30)]
    assert lrs[4] == pytest.approx(0.5)
    assert lrs[9] == pytest.approx(1.0)
    assert max(lrs) == pytest.approx(1.0)
    assert lrs[29] == pytest.approx((10 / 30) ** 0.5)
    with pytest.raises(ValueError):
        WarmupInverseSqrt(opt, base_lr=1.0, warmup_steps=0)
