"""The autograd-free inference fast path of the tensor substrate.

Two contracts under test.  First, ``inference_mode()`` semantics: no
tape is recorded anywhere inside the block, tensors born there refuse
``backward()`` with a clear error, and the mode nests and restores
like the other process-wide defaults.  Second, the arena plumbing:
``scratch_empty``/``scratch_zeros``/the ``out=`` targets draw from the
ambient :class:`~repro.nn.Arena` only for large shapes, the working
set recycles across steps (steady state stops accumulating pool
misses), and every inference op is bit-identical to its training
counterpart on finite inputs.
"""

import numpy as np
import pytest

from repro.nn import (
    Arena,
    Tensor,
    active_arena,
    functional as F,
    inference_mode,
    is_inference,
    scratch_empty,
    scratch_zeros,
    use_arena,
)
from repro.nn.tensor import (
    _ARENA_MIN_ELEMS,
    _SCATTER_ROUNDS_MAX_DEPTH,
    _arena_out,
    _scatter_add_inference,
    bmm,
    concatenate,
    gather,
    scatter_add,
    segment_matmul,
)


# -- mode semantics ----------------------------------------------------------


def test_mode_is_scoped_and_reentrant():
    assert not is_inference()
    with inference_mode():
        assert is_inference()
        with inference_mode():  # re-entrant, like default_dispatch_mode
            assert is_inference()
        assert is_inference()
    assert not is_inference()


def test_mode_restored_on_exception():
    with pytest.raises(RuntimeError, match="boom"):
        with inference_mode():
            raise RuntimeError("boom")
    assert not is_inference()


def test_no_tape_inside_inference_mode(rng):
    a = Tensor(rng.standard_normal((8, 8)).astype(np.float32),
               requires_grad=True)
    b = Tensor(rng.standard_normal((8, 8)).astype(np.float32),
               requires_grad=True)
    with inference_mode():
        out = F.relu(a @ b + a)
    assert out._parents == ()
    assert out._backward is None
    assert out._inference


def test_backward_raises_on_inference_tensor(rng):
    a = Tensor(rng.standard_normal((4,)).astype(np.float32),
               requires_grad=True)
    with inference_mode():
        y = (a * a).sum()
    with pytest.raises(RuntimeError, match="inference_mode"):
        y.backward()


def test_training_tape_works_again_after_the_block(rng):
    a = Tensor(rng.standard_normal((4,)).astype(np.float32),
               requires_grad=True)
    with inference_mode():
        (a * a).sum()
    loss = (a * a).sum()  # outside: tape is back
    loss.backward()
    np.testing.assert_allclose(a.grad, 2.0 * a.data, rtol=1e-6)


# -- arena plumbing ----------------------------------------------------------


def test_use_arena_nests_and_restores():
    outer, inner = Arena(), Arena()
    assert active_arena() is None
    with use_arena(outer):
        assert active_arena() is outer
        with use_arena(inner):
            assert active_arena() is inner
        assert active_arena() is outer
    assert active_arena() is None


def test_scratch_bypasses_arena_outside_inference():
    arena = Arena()
    with use_arena(arena):  # no inference_mode: plain allocator
        scratch_empty((256, 256))
    assert arena.live_buffers == 0


def test_scratch_small_shapes_bypass_the_arena():
    arena = Arena()
    small = (_ARENA_MIN_ELEMS - 1,)
    large = (_ARENA_MIN_ELEMS,)
    with inference_mode(), use_arena(arena):
        scratch_empty(small)
        assert arena.live_buffers == 0
        scratch_empty(large)
        assert arena.live_buffers == 1
        z = scratch_zeros(large)
        assert arena.live_buffers == 2
        assert not z.any()
        assert _arena_out(small) is None
        out = _arena_out(large)
        assert out is not None and out.shape == large
    arena.reset()


def test_arena_out_is_none_without_arena():
    with inference_mode():
        assert _arena_out((_ARENA_MIN_ELEMS,)) is None


def test_arena_steady_state_has_no_misses(rng):
    """Second step with the same shapes is served entirely from the pool."""
    arena = Arena()
    x = rng.standard_normal((64, 128)).astype(np.float32)
    w = rng.standard_normal((128, 128)).astype(np.float32)

    def step():
        with inference_mode(), use_arena(arena):
            return F.relu(Tensor(x) @ Tensor(w))

    arena.reset()
    step()
    warm = arena.stats()
    assert warm["misses"] > 0  # the warm-up actually allocated
    arena.reset()
    # Arena outputs are valid only until the next reset — copy first.
    first = step().data.copy()
    arena.reset()
    second = step()
    steady = arena.stats()
    assert steady["misses"] == warm["misses"]  # zero new allocations
    assert steady["hits"] > warm["hits"]
    # Same numbers, even though the buffers were recycled in between.
    np.testing.assert_array_equal(first, second.data)


# -- bit-identical functional parity -----------------------------------------


def _parity(fn, *arrays):
    """fn under training vs inference+arena: byte-for-byte equal."""
    train = fn(*[Tensor(a) for a in arrays]).data.copy()
    arena = Arena()
    with inference_mode(), use_arena(arena):
        infer = fn(*[Tensor(a) for a in arrays]).data.copy()
    arena.reset()
    np.testing.assert_array_equal(train, infer)


@pytest.mark.parametrize("shape", [(3, 5), (64, 128), (2, 7, 96)])
def test_elementwise_and_norm_parity(rng, shape):
    x = rng.standard_normal(shape).astype(np.float32)
    w = rng.standard_normal(shape[-1]).astype(np.float32)
    b = rng.standard_normal(shape[-1]).astype(np.float32)
    _parity(F.relu, x)
    _parity(F.gelu, x)
    _parity(F.softmax, x)
    _parity(F.log_softmax, x)
    _parity(lambda t: F.layer_norm(t, Tensor(w), Tensor(b)), x)


def test_matmul_gather_concat_parity(rng):
    a = rng.standard_normal((64, 96)).astype(np.float32)
    b = rng.standard_normal((96, 80)).astype(np.float32)
    idx = rng.integers(0, 64, size=200)
    _parity(lambda t, u: t @ u, a, b)
    _parity(lambda t: gather(t, idx), a)
    _parity(lambda t, u: concatenate([t, u], axis=1), a, a)
    x3 = rng.standard_normal((4, 32, 16)).astype(np.float32)
    y3 = rng.standard_normal((4, 16, 24)).astype(np.float32)
    _parity(bmm, x3, y3)


def test_segment_matmul_parity(rng):
    rows = rng.standard_normal((100, 32)).astype(np.float32)
    weights = rng.standard_normal((4, 32, 48)).astype(np.float32)
    counts = np.array([10, 0, 60, 30])
    _parity(
        lambda r, w: segment_matmul(r, w, counts),
        rows,
        weights,
    )


# -- the occurrence-round scatter vs np.add.at -------------------------------


@pytest.mark.parametrize(
    "num_rows,depth_hint",
    [(16, 1), (16, 2), (8, 4), (4, _SCATTER_ROUNDS_MAX_DEPTH),
     (2, _SCATTER_ROUNDS_MAX_DEPTH + 5)],  # last one takes the fallback
)
def test_scatter_add_inference_matches_add_at(rng, num_rows, depth_hint):
    n = num_rows * depth_hint
    idx = rng.integers(0, num_rows, size=n)
    values = rng.standard_normal((n, 24)).astype(np.float32)
    expected = np.zeros((num_rows, 24), dtype=np.float32)
    np.add.at(expected, idx, values)
    got = np.zeros((num_rows, 24), dtype=np.float32)
    _scatter_add_inference(got, idx, values)
    np.testing.assert_array_equal(got, expected)


def test_scatter_add_inference_empty_and_tensor_entry(rng):
    out = np.ones((3, 4), dtype=np.float32)
    _scatter_add_inference(out, np.array([], dtype=np.int64),
                           np.empty((0, 4), dtype=np.float32))
    np.testing.assert_array_equal(out, np.ones((3, 4), dtype=np.float32))
    # And through the public op, under the mode flag.
    idx = rng.integers(0, 6, size=40)
    vals = rng.standard_normal((40, 8)).astype(np.float32)
    _parity(lambda v: scatter_add(v, idx, 6), vals)


# -- Module.forward_inference -------------------------------------------------


def test_forward_inference_matches_eval_and_reuses_arena(rng):
    from repro.nn.modules import Linear, Module

    class Net(Module):
        def __init__(self):
            super().__init__()
            self.fc1 = Linear(128, 256, rng)
            self.fc2 = Linear(256, 128, rng)

        def forward(self, x):
            return self.fc2(F.relu(self.fc1(x)))

    net = Net()
    x = Tensor(rng.standard_normal((64, 128)).astype(np.float32))
    net.eval()
    ref = net(x).data.copy()

    net.train()
    y1 = net.forward_inference(x)
    np.testing.assert_array_equal(y1.data, ref)
    assert y1._inference and y1._parents == ()
    assert net.training  # training flag restored

    arena = net._inference_arena
    misses = arena.stats()["misses"]
    y2 = net.forward_inference(x)
    assert net._inference_arena is arena  # same arena, not a new one
    assert arena.stats()["misses"] == misses  # steady state: pure reuse
    np.testing.assert_array_equal(y2.data, ref)
