"""Tests of the system policies and the comparison runner — the
paper's headline claims as assertions."""

import pytest

from repro.models import ablation_layer, bert_large_moe, ct_moe
from repro.systems import (
    ALL_POLICIES,
    SpeedupStats,
    SystemRunner,
    ablation_suite,
    comparison_suite,
    fastermoe,
    naive,
    schemoe,
    schemoe_z,
    schemoe_zp,
    tutel,
)


@pytest.fixture(scope="module")
def runner():
    from repro.cluster import paper_testbed

    return SystemRunner(paper_testbed())


def test_policy_catalog():
    assert set(ALL_POLICIES) == {
        "Naive", "Tutel", "Faster-MoE", "ScheMoE", "ScheMoE-NC",
        "ScheMoE-Z", "ScheMoE-ZP",
    }
    assert [p.name for p in ablation_suite()] == [
        "Naive", "ScheMoE-Z", "ScheMoE-ZP", "ScheMoE",
    ]
    assert [p.name for p in comparison_suite()] == [
        "Tutel", "Faster-MoE", "ScheMoE",
    ]


def test_ablation_monotone_improvement(runner):
    """Paper Table 10: each added component helps, in order."""
    rows = runner.compare(ablation_layer(), ablation_suite())
    times = [rows[n].total_s for n in ("Naive", "ScheMoE-Z", "ScheMoE-ZP", "ScheMoE")]
    assert all(not rows[n].oom for n in rows)
    assert times[0] > times[1] > times[2] > times[3]


def test_ablation_magnitudes_near_paper(runner):
    """Paper Table 10: Z ~1.9x, ZP ~2.2x, full ~2.4x over Naive."""
    rows = runner.compare(ablation_layer(), ablation_suite())
    base = rows["Naive"].total_s
    assert 1.4 < base / rows["ScheMoE-Z"].total_s < 2.2
    assert 1.6 < base / rows["ScheMoE-ZP"].total_s < 2.5
    assert 2.0 < base / rows["ScheMoE"].total_s < 3.0


def test_ct_moe_schemoe_beats_baselines(runner):
    """Paper Table 7: ScheMoE 9-17% over Tutel, 11-30% over FasterMoE."""
    for x in (12, 24):
        rows = runner.compare(ct_moe(x), comparison_suite())
        t_over_s = rows["Tutel"].total_s / rows["ScheMoE"].total_s
        f_over_s = rows["Faster-MoE"].total_s / rows["ScheMoE"].total_s
        assert 1.05 < t_over_s < 1.30
        assert 1.10 < f_over_s < 1.40
        assert f_over_s > t_over_s  # FasterMoE trails Tutel


def test_ct_moe_absolute_times_near_paper(runner):
    """Paper Table 7 Tutel column: 497/623/769/864 ms (+/- 20%)."""
    expected = {12: 0.497, 16: 0.623, 20: 0.769, 24: 0.864}
    for x, target in expected.items():
        total = runner.step(ct_moe(x), tutel()).total_s
        assert target * 0.8 < total < target * 1.25


def test_a2a_dominates_step_time(runner):
    """Paper Table 1: A2A is >= 50% of Tutel's step and grows with
    depth."""
    ratios = []
    for x in (12, 16, 20, 24):
        ratios.append(runner.step(ct_moe(x), tutel()).a2a_ratio)
    assert all(r >= 0.5 for r in ratios)
    assert ratios == sorted(ratios)


def test_bert_large_results(runner):
    """Paper Table 8: ScheMoE ~1.16x over Tutel; FasterMoE OOM."""
    rows = runner.compare(bert_large_moe(), comparison_suite())
    assert rows["Faster-MoE"].oom
    assert not rows["Tutel"].oom
    assert not rows["ScheMoE"].oom
    speedup = rows["Tutel"].total_s / rows["ScheMoE"].total_s
    assert 1.05 < speedup < 1.40


def test_naive_is_slowest_everywhere(runner):
    cfg = ct_moe(12)
    t_naive = runner.step(cfg, naive()).total_s
    for policy in (tutel(), schemoe(), schemoe_z(), schemoe_zp()):
        assert runner.step(cfg, policy).total_s <= t_naive + 1e-9


def test_runner_caches_profilers(runner):
    p1 = runner.profiler_for(schemoe())
    p2 = runner.profiler_for(schemoe())
    assert p1 is p2
    assert runner.profiler_for(tutel()) is not p1


def test_speedup_stats():
    stats = SpeedupStats.from_values([1.0, 1.1, 1.25, 1.3, 2.5])
    assert stats.count == 5
    assert stats.minimum == 1.0
    assert stats.maximum == 2.5
    assert sum(c for *_e, c in stats.histogram) == 5
    text = stats.render()
    assert "mean=" in text
    with pytest.raises(ValueError):
        SpeedupStats.from_values([])
