"""System-level what-if regressions (paper Section 7 predictions)."""

import pytest

from repro.cluster import ethernet_cluster, nvlink_dgx, paper_testbed
from repro.models import ct_moe
from repro.systems import SystemRunner, schemoe, schemoe_no_compression, tutel


def gap(spec, policy_a=None, policy_b=None):
    runner = SystemRunner(spec)
    cfg = ct_moe(12)
    a = runner.step(cfg, policy_a or tutel())
    b = runner.step(cfg, policy_b or schemoe())
    return a.total_s / b.total_s


def test_nvlink_shrinks_the_pipe_a2a_advantage():
    """Section 7: with intra transfers nearly free, Pipe-A2A's overlap
    buys almost nothing, so the uncompressed ScheMoE machinery's edge
    over Tutel collapses on an NVLink cluster."""
    paper_gap = gap(
        paper_testbed(), tutel(), schemoe_no_compression()
    )
    nvlink_gap = gap(
        nvlink_dgx(), tutel(), schemoe_no_compression()
    )
    assert nvlink_gap < paper_gap
    assert nvlink_gap < 1.12


def test_slow_network_amplifies_compression():
    """On 25 GbE the 4x volume cut dominates: full ScheMoE's gap over
    Tutel widens well past the paper testbed's."""
    paper_gap = gap(paper_testbed())
    ethernet_gap = gap(ethernet_cluster())
    assert ethernet_gap > paper_gap


def test_full_schemoe_can_lose_on_nvlink():
    """Section 7's warning, reproduced at system level: "in some
    hardware environments (e.g., communication is fast on NVLink),
    data compression may sacrifice the time performance" — full
    ScheMoE (with ZFP) trails Tutel slightly on the NVLink cluster,
    while remaining ahead on the paper testbed and Ethernet."""
    assert gap(paper_testbed()) > 1.05
    assert gap(ethernet_cluster()) > 1.05
    nvlink = gap(nvlink_dgx())
    assert 0.80 < nvlink < 1.05


def test_uncompressed_schemoe_never_loses():
    """Without the codec there is no downside: Pipe-A2A + OptSche is
    at worst neutral on every preset."""
    for spec in (paper_testbed(), nvlink_dgx(), ethernet_cluster()):
        assert gap(spec, tutel(), schemoe_no_compression()) >= 0.999
