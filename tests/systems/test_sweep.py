"""Tests for the parallel cached sweep runner.

The simulator is deterministic, so the one hard guarantee worth
testing is byte-identity: serial, parallel, and cache-replayed runs
of the same task list must produce exactly the same statistics.
"""

import json

import numpy as np
import pytest

from repro.cluster import paper_testbed
from repro.core import RoutingSkew
from repro.models import ct_moe
from repro.systems import (
    SweepCache,
    SweepTask,
    SystemRunner,
    fastermoe,
    run_sweep,
    schemoe,
    task_key,
    tutel,
)
from repro.systems.sweep import (
    CACHE_FORMAT,
    CACHE_VERSION,
    breakdown_from_dict,
    breakdown_to_dict,
)


def read_cache_file(path):
    """Parse a JSONL cache file -> (header dict, entries dict)."""
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    entries = {}
    for line in lines[1:]:
        obj = json.loads(line)
        entries[obj["key"]] = obj["record"]
    return header, entries


@pytest.fixture
def tasks():
    cfgs = [ct_moe(12), ct_moe(24)]
    return [
        SweepTask(cfg, policy)
        for cfg in cfgs
        for policy in (tutel(), schemoe())
    ]


def as_dicts(results):
    return [breakdown_to_dict(r) for r in results]


def test_matches_direct_simulation(tasks):
    spec = paper_testbed()
    runner = SystemRunner(spec)
    direct = [
        runner.step(task.cfg, task.policy) for task in tasks
    ]
    swept = run_sweep(tasks, spec, processes=1)
    assert as_dicts(swept) == as_dicts(direct)


def test_parallel_byte_identical_to_serial(tasks):
    spec = paper_testbed()
    serial = run_sweep(tasks, spec, processes=1)
    parallel = run_sweep(tasks, spec, processes=2, chunks_per_process=1)
    assert as_dicts(parallel) == as_dicts(serial)


def test_warm_cache_replays_identically(tasks, tmp_path):
    spec = paper_testbed()
    cache_path = tmp_path / "cache.json"
    cold = run_sweep(tasks, spec, cache_path=cache_path, processes=1)
    assert cache_path.exists()

    header, entries = read_cache_file(cache_path)
    assert header == {"version": CACHE_VERSION, "format": CACHE_FORMAT}
    assert len(entries) == len(tasks)

    # Poison the simulator-visible spec? No — simpler: the warm run
    # must not simulate at all, which we observe via the cache file
    # staying byte-identical and the results matching exactly.
    before = cache_path.read_bytes()
    warm = run_sweep(tasks, spec, cache_path=cache_path, processes=1)
    assert cache_path.read_bytes() == before
    assert as_dicts(warm) == as_dicts(cold)


def test_cache_shared_across_orderings(tasks, tmp_path):
    spec = paper_testbed()
    cache_path = tmp_path / "cache.json"
    first = run_sweep(tasks, spec, cache_path=cache_path, processes=1)
    reordered = list(reversed(tasks))
    second = run_sweep(reordered, spec, cache_path=cache_path, processes=1)
    assert as_dicts(second) == list(reversed(as_dicts(first)))


def test_key_sensitivity():
    spec = paper_testbed()
    base = SweepTask(ct_moe(12), tutel())
    assert task_key(base, spec) == task_key(
        SweepTask(ct_moe(12), tutel()), spec
    )
    assert task_key(base, spec) != task_key(
        SweepTask(ct_moe(24), tutel()), spec
    )
    assert task_key(base, spec) != task_key(
        SweepTask(ct_moe(12), schemoe()), spec
    )
    assert task_key(base, spec) != task_key(
        SweepTask(ct_moe(12), tutel(), skew=RoutingSkew(1.0)), spec
    )


def test_skew_part_of_key_and_result():
    spec = paper_testbed()
    cfg = ct_moe(12)
    # A capacity-free policy slows down under skew, so the two tasks
    # must hash (and simulate) differently.
    flat, skewed = run_sweep(
        [
            SweepTask(cfg, fastermoe()),
            SweepTask(cfg, fastermoe(), skew=RoutingSkew(2.0)),
        ],
        spec,
        processes=1,
    )
    assert flat.total_s != skewed.total_s


def test_breakdown_roundtrip_with_oom():
    spec = paper_testbed()
    runner = SystemRunner(spec)
    result = runner.step(ct_moe(12), schemoe())
    record = breakdown_to_dict(result)
    # The JSON trip is what the cache does — including inf timings.
    record["forward_s"] = float("inf")
    record["oom"] = True
    replayed = json.loads(json.dumps(record))
    rebuilt = breakdown_from_dict(replayed)
    assert rebuilt.oom
    assert np.isinf(rebuilt.moe_layer.forward_s)
    assert breakdown_to_dict(rebuilt) == record


def test_interleaved_writers_lose_no_entries(tmp_path):
    """Two writers sharing one path never drop each other's entries.

    Appends interleave: no save ever rewrites another writer's lines,
    so there is no read-merge-write race window at all (the original
    bug was a read-once/write-all lost update).
    """
    path = tmp_path / "cache.json"
    a = SweepCache(path)  # both load the (empty) file up front
    b = SweepCache(path)

    a.put("key-a1", {"from": "a1"})
    a.save()
    # b never saw a's save; its in-memory view is still empty.
    b.put("key-b1", {"from": "b1"})
    b.save()
    a.put("key-a2", {"from": "a2"})
    a.save()

    _, on_disk = read_cache_file(path)
    assert on_disk == {
        "key-a1": {"from": "a1"},
        "key-b1": {"from": "b1"},
        "key-a2": {"from": "a2"},
    }
    # A fresh reader sees the union.
    assert len(SweepCache(path)) == 3


def test_save_appends_instead_of_rewriting(tmp_path):
    """A second save only appends — earlier lines stay byte-identical."""
    path = tmp_path / "cache.json"
    cache = SweepCache(path)
    cache.put("k1", {"n": 1})
    cache.save()
    before = path.read_bytes()
    cache.put("k2", {"n": 2})
    cache.save()
    after = path.read_bytes()
    assert after.startswith(before)
    assert len(after.splitlines()) == len(before.splitlines()) + 1


def test_legacy_json_cache_migrates_to_jsonl(tmp_path):
    """Pre-JSONL single-document caches load and compact in place."""
    path = tmp_path / "cache.json"
    path.write_text(
        json.dumps(
            {"version": CACHE_VERSION, "entries": {"old-key": {"n": 7}}}
        )
    )
    cache = SweepCache(path)
    assert cache.get("old-key") == {"n": 7}
    # The file itself was compacted to the JSONL layout on load.
    header, entries = read_cache_file(path)
    assert header["format"] == CACHE_FORMAT
    assert entries == {"old-key": {"n": 7}}


def test_torn_trailing_line_is_skipped(tmp_path):
    """A writer killed mid-append leaves a partial line, not a loss."""
    path = tmp_path / "cache.json"
    cache = SweepCache(path)
    cache.put("whole", {"n": 1})
    cache.save()
    with path.open("a") as fh:
        fh.write('{"key": "torn", "rec')  # no newline, no close
    reloaded = SweepCache(path)
    assert len(reloaded) == 1
    assert reloaded.get("whole") == {"n": 1}
    # And the survivor can keep appending past the torn line.
    reloaded.put("next", {"n": 2})
    reloaded.save()
    assert len(SweepCache(path)) == 2


def test_duplicate_keys_compact_on_load(tmp_path):
    """Interleaved writers may append the same key twice; the loader
    keeps the last occurrence and compacts the file."""
    path = tmp_path / "cache.json"
    cache = SweepCache(path)
    cache.put("dup", {"n": 1})
    cache.save()
    with path.open("a") as fh:
        fh.write(json.dumps({"key": "dup", "record": {"n": 2}}) + "\n")
    reloaded = SweepCache(path)
    assert reloaded.get("dup") == {"n": 2}
    _, entries = read_cache_file(path)
    assert entries == {"dup": {"n": 2}}
    assert len(path.read_text().splitlines()) == 2  # header + 1 entry


def test_save_without_puts_is_a_noop(tmp_path):
    path = tmp_path / "cache.json"
    cache = SweepCache(path)
    cache.save()
    assert not path.exists()


def test_version_mismatch_discards_cache(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text(
        json.dumps({"version": CACHE_VERSION + 1, "entries": {"k": {}}})
    )
    assert len(SweepCache(cache_path)) == 0
    # Same for a stale JSONL header.
    cache_path.write_text(
        json.dumps({"version": CACHE_VERSION + 1, "format": CACHE_FORMAT})
        + "\n"
        + json.dumps({"key": "k", "record": {}})
        + "\n"
    )
    assert len(SweepCache(cache_path)) == 0


def test_corrupt_cache_ignored(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    assert len(SweepCache(cache_path)) == 0
    run_sweep(
        [SweepTask(ct_moe(12), tutel())],
        paper_testbed(),
        cache_path=cache_path,
        processes=1,
    )
    header, entries = read_cache_file(cache_path)
    assert header["version"] == CACHE_VERSION
    assert len(entries) == 1


def test_torn_line_quarantined_to_bad_sidecar(tmp_path):
    """Corrupt lines move to ``<path>.bad`` instead of vanishing."""
    path = tmp_path / "cache.json"
    cache = SweepCache(path)
    cache.put("whole", {"n": 1})
    cache.save()
    with path.open("a") as fh:
        fh.write('{"key": "torn", "rec')  # killed mid-append
    reloaded = SweepCache(path)
    assert reloaded.quarantined_lines == 1
    assert reloaded.get("whole") == {"n": 1}
    # The garbage now lives in the sidecar, verbatim.
    assert reloaded.bad_path == path.with_suffix(".json.bad")
    assert '{"key": "torn", "rec' in reloaded.bad_path.read_text()
    # ... and the main file was compacted clean of it.
    assert "torn" not in path.read_text()
    header, entries = read_cache_file(path)
    assert entries == {"whole": {"n": 1}}
    # A second load finds nothing left to quarantine.
    assert SweepCache(path).quarantined_lines == 0


def test_torn_write_then_concurrent_writer_append(tmp_path):
    """A torn write never poisons a concurrent writer's append.

    Writer A appends a good entry; some writer dies mid-append leaving
    a partial line with no trailing newline; A (which never reloads)
    appends again.  The newline guard keeps A's entry on its own line,
    so a fresh reader recovers both good entries and quarantines only
    the torn fragment.
    """
    path = tmp_path / "cache.json"
    writer = SweepCache(path)
    writer.put("first", {"n": 1})
    writer.save()
    with path.open("a") as fh:
        fh.write('{"key": "torn", "rec')  # no newline, no close
    writer.put("second", {"n": 2})
    writer.save()  # concurrent append, unaware of the torn line

    reader = SweepCache(path)
    assert reader.get("first") == {"n": 1}
    assert reader.get("second") == {"n": 2}
    assert len(reader) == 2
    assert reader.quarantined_lines == 1
    assert '{"key": "torn", "rec' in reader.bad_path.read_text()
    _, entries = read_cache_file(path)
    assert entries == {"first": {"n": 1}, "second": {"n": 2}}


def test_fully_corrupt_file_quarantines_every_line(tmp_path):
    """A file that is neither JSONL nor legacy JSON is quarantined
    wholesale, and the cache starts fresh (see
    ``test_corrupt_cache_ignored`` for the no-sidecar half)."""
    path = tmp_path / "cache.json"
    path.write_text("{not json\nstill not json\n")
    cache = SweepCache(path)
    assert len(cache) == 0
    assert cache.quarantined_lines == 2
    bad = cache.bad_path.read_text().splitlines()
    assert bad == ["{not json", "still not json"]


def test_stale_version_is_not_quarantined(tmp_path):
    """Old-but-valid caches are discarded, not treated as corruption."""
    path = tmp_path / "cache.json"
    path.write_text(
        json.dumps({"version": CACHE_VERSION + 1, "format": CACHE_FORMAT})
        + "\n"
        + json.dumps({"key": "k", "record": {}})
        + "\n"
    )
    cache = SweepCache(path)
    assert len(cache) == 0
    assert cache.quarantined_lines == 0
    assert not cache.bad_path.exists()


def test_quarantine_sidecar_accumulates_across_loads(tmp_path):
    """Each load appends its victims; earlier quarantines survive."""
    path = tmp_path / "cache.json"
    cache = SweepCache(path)
    cache.put("k", {"n": 1})
    cache.save()
    with path.open("a") as fh:
        fh.write("garbage-one\n")
    SweepCache(path)  # quarantines garbage-one, compacts
    with path.open("a") as fh:
        fh.write("garbage-two\n")
    cache = SweepCache(path)
    assert cache.quarantined_lines == 1
    bad = cache.bad_path.read_text().splitlines()
    assert bad == ["garbage-one", "garbage-two"]


# -- default_processes env parsing -------------------------------------------


def test_bad_processes_env_raises(monkeypatch):
    """A typo'd REPRO_SWEEP_PROCESSES must fail loudly, not fall back."""
    from repro.systems.sweep import PROCESSES_ENV, default_processes

    monkeypatch.setenv(PROCESSES_ENV, "four")
    with pytest.raises(ValueError, match="REPRO_SWEEP_PROCESSES") as err:
        default_processes()
    assert "'four'" in str(err.value)


def test_processes_env_parses_and_clamps(monkeypatch):
    from repro.systems.sweep import PROCESSES_ENV, default_processes

    monkeypatch.setenv(PROCESSES_ENV, "3")
    assert default_processes() == 3
    monkeypatch.setenv(PROCESSES_ENV, "0")
    assert default_processes() == 1  # 0/negatives clamp to serial
    monkeypatch.delenv(PROCESSES_ENV)
    assert default_processes() >= 1


# -- _canonical edge cases ----------------------------------------------------


def test_canonical_nonfinite_floats_become_sentinels():
    from repro.systems.sweep import _canonical

    assert _canonical(float("inf")) == "__inf__"
    assert _canonical(float("-inf")) == "__-inf__"
    assert _canonical(float("nan")) == "__nan__"
    assert _canonical(1.5) == 1.5
    assert _canonical([float("inf"), {"a": float("nan")}]) == [
        "__inf__",
        {"a": "__nan__"},
    ]


def test_task_key_with_nonfinite_policy_field():
    """An inf-valued policy field must hash (and hash differently)."""
    import dataclasses

    spec = paper_testbed()
    cfg = ct_moe(12)
    inf_task = SweepTask(
        cfg,
        dataclasses.replace(tutel(), comm_inefficiency=float("inf")),
    )
    finite = SweepTask(cfg, tutel())
    key = task_key(inf_task, spec)  # must not raise (allow_nan=False)
    assert key != task_key(finite, spec)


def test_canonical_mixed_type_dict_keys_are_deterministic():
    from repro.systems.sweep import _canonical

    out = _canonical({1: "a", "0": "b", 2.5: "c"})
    assert out == {"0": "b", "1": "a", "2.5": "c"}
    assert list(out) == ["0", "1", "2.5"]  # sorted by stringified key


def test_canonical_rejects_colliding_stringified_keys():
    from repro.systems.sweep import _canonical

    with pytest.raises(ValueError, match="stringify"):
        _canonical({1: "a", "1": "b"})
