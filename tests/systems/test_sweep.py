"""Tests for the parallel cached sweep runner.

The simulator is deterministic, so the one hard guarantee worth
testing is byte-identity: serial, parallel, and cache-replayed runs
of the same task list must produce exactly the same statistics.
"""

import json

import numpy as np
import pytest

from repro.cluster import paper_testbed
from repro.core import RoutingSkew
from repro.models import ct_moe
from repro.systems import (
    SweepCache,
    SweepTask,
    SystemRunner,
    fastermoe,
    run_sweep,
    schemoe,
    task_key,
    tutel,
)
from repro.systems.sweep import (
    CACHE_VERSION,
    breakdown_from_dict,
    breakdown_to_dict,
)


@pytest.fixture
def tasks():
    cfgs = [ct_moe(12), ct_moe(24)]
    return [
        SweepTask(cfg, policy)
        for cfg in cfgs
        for policy in (tutel(), schemoe())
    ]


def as_dicts(results):
    return [breakdown_to_dict(r) for r in results]


def test_matches_direct_simulation(tasks):
    spec = paper_testbed()
    runner = SystemRunner(spec)
    direct = [
        runner.step(task.cfg, task.policy) for task in tasks
    ]
    swept = run_sweep(tasks, spec, processes=1)
    assert as_dicts(swept) == as_dicts(direct)


def test_parallel_byte_identical_to_serial(tasks):
    spec = paper_testbed()
    serial = run_sweep(tasks, spec, processes=1)
    parallel = run_sweep(tasks, spec, processes=2, chunks_per_process=1)
    assert as_dicts(parallel) == as_dicts(serial)


def test_warm_cache_replays_identically(tasks, tmp_path):
    spec = paper_testbed()
    cache_path = tmp_path / "cache.json"
    cold = run_sweep(tasks, spec, cache_path=cache_path, processes=1)
    assert cache_path.exists()

    blob = json.loads(cache_path.read_text())
    assert blob["version"] == CACHE_VERSION
    assert len(blob["entries"]) == len(tasks)

    # Poison the simulator-visible spec? No — simpler: the warm run
    # must not simulate at all, which we observe via the cache file
    # staying byte-identical and the results matching exactly.
    before = cache_path.read_bytes()
    warm = run_sweep(tasks, spec, cache_path=cache_path, processes=1)
    assert cache_path.read_bytes() == before
    assert as_dicts(warm) == as_dicts(cold)


def test_cache_shared_across_orderings(tasks, tmp_path):
    spec = paper_testbed()
    cache_path = tmp_path / "cache.json"
    first = run_sweep(tasks, spec, cache_path=cache_path, processes=1)
    reordered = list(reversed(tasks))
    second = run_sweep(reordered, spec, cache_path=cache_path, processes=1)
    assert as_dicts(second) == list(reversed(as_dicts(first)))


def test_key_sensitivity():
    spec = paper_testbed()
    base = SweepTask(ct_moe(12), tutel())
    assert task_key(base, spec) == task_key(
        SweepTask(ct_moe(12), tutel()), spec
    )
    assert task_key(base, spec) != task_key(
        SweepTask(ct_moe(24), tutel()), spec
    )
    assert task_key(base, spec) != task_key(
        SweepTask(ct_moe(12), schemoe()), spec
    )
    assert task_key(base, spec) != task_key(
        SweepTask(ct_moe(12), tutel(), skew=RoutingSkew(1.0)), spec
    )


def test_skew_part_of_key_and_result():
    spec = paper_testbed()
    cfg = ct_moe(12)
    # A capacity-free policy slows down under skew, so the two tasks
    # must hash (and simulate) differently.
    flat, skewed = run_sweep(
        [
            SweepTask(cfg, fastermoe()),
            SweepTask(cfg, fastermoe(), skew=RoutingSkew(2.0)),
        ],
        spec,
        processes=1,
    )
    assert flat.total_s != skewed.total_s


def test_breakdown_roundtrip_with_oom():
    spec = paper_testbed()
    runner = SystemRunner(spec)
    result = runner.step(ct_moe(12), schemoe())
    record = breakdown_to_dict(result)
    # The JSON trip is what the cache does — including inf timings.
    record["forward_s"] = float("inf")
    record["oom"] = True
    replayed = json.loads(json.dumps(record))
    rebuilt = breakdown_from_dict(replayed)
    assert rebuilt.oom
    assert np.isinf(rebuilt.moe_layer.forward_s)
    assert breakdown_to_dict(rebuilt) == record


def test_interleaved_writers_lose_no_entries(tmp_path):
    """Regression: SweepCache.save was read-once/write-all.

    Two instances sharing one path (two bench processes filling
    ``sweep_cache.json``) each load, put their own entries, and save;
    the old last-writer-wins behaviour silently dropped everything
    the other writer had saved in between.  Merge-on-save keeps the
    union.
    """
    path = tmp_path / "cache.json"
    a = SweepCache(path)  # both load the (empty) file up front
    b = SweepCache(path)

    a.put("key-a1", {"from": "a1"})
    a.save()
    # b never saw a's save; its in-memory view is still empty.
    b.put("key-b1", {"from": "b1"})
    b.save()
    a.put("key-a2", {"from": "a2"})
    a.save()

    on_disk = json.loads(path.read_text())["entries"]
    assert on_disk == {
        "key-a1": {"from": "a1"},
        "key-b1": {"from": "b1"},
        "key-a2": {"from": "a2"},
    }
    # A fresh reader (and the last writer itself) sees the union.
    assert len(SweepCache(path)) == 3
    assert a.get("key-b1") == {"from": "b1"}


def test_save_without_puts_is_a_noop(tmp_path):
    path = tmp_path / "cache.json"
    cache = SweepCache(path)
    cache.save()
    assert not path.exists()


def test_version_mismatch_discards_cache(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text(
        json.dumps({"version": CACHE_VERSION + 1, "entries": {"k": {}}})
    )
    assert len(SweepCache(cache_path)) == 0


def test_corrupt_cache_ignored(tmp_path):
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{not json")
    assert len(SweepCache(cache_path)) == 0
    run_sweep(
        [SweepTask(ct_moe(12), tutel())],
        paper_testbed(),
        cache_path=cache_path,
        processes=1,
    )
    assert json.loads(cache_path.read_text())["version"] == CACHE_VERSION
