"""Tests for the auto-tuning planner (calibrate -> search -> validate).

The planner's two hard guarantees: determinism (same seed + probes ->
byte-identical recommendation JSON) and fidelity (the fitted cost
models recover the presets that generated the probes, and the
recommendation lands within a few percent of the exhaustive sweep's
optimum while simulating strictly fewer configurations).
"""

import numpy as np
import pytest

from repro.cluster import (
    LinkModel,
    fit_gemm_roofline,
    fit_link_model,
    paper_testbed,
)
from repro.models import ct_moe
from repro.systems import PlanSpace, calibrate, plan
from repro.systems.planner import layer_recommendation

#: A small grid so each test runs a handful of simulations at most.
TINY = PlanSpace(
    schedulers=("sequential", "optsche"),
    a2a_algorithms=("nccl", "pipe"),
    compressors=("none",),
    partition_degrees=(1, 2),
    capacity_factors=(1.0,),
)


# -- cost-model fits ----------------------------------------------------------


def test_fit_link_model_recovers_preset():
    """Affine synthetic data -> the exact generating LinkModel."""
    link = LinkModel("truth", latency_s=25e-6, bandwidth_bps=12.5e9)
    sizes = [1e5, 7e5, 3e6, 1.6e7, 6.4e7]
    times = [link.transfer_time(s) for s in sizes]
    fitted = fit_link_model(sizes, times)
    assert fitted.latency_s == pytest.approx(link.latency_s, rel=1e-6)
    assert fitted.bandwidth_bps == pytest.approx(
        link.bandwidth_bps, rel=1e-6
    )


def test_fit_link_model_rejects_flat_data():
    with pytest.raises(ValueError, match="beta"):
        fit_link_model([1e5, 1e6, 1e7], [2.0, 2.0, 2.0])
    with pytest.raises(ValueError, match="two"):
        fit_link_model([1e5], [2.0])


def test_fit_gemm_roofline_reproduces_gemm_time():
    """The fitted GpuModel reproduces the generator's timing curve.

    gemm_time is exactly affine in flops (the saturating efficiency
    cancels), so the fit matches the generating model at *any* flop
    count, not just the probed ones.
    """
    gpu = paper_testbed().gpu
    probe = [1e9, 4e9, 2e10, 8e10, 3e11]
    times = [gpu.gemm_time(f, tensor_core=True) for f in probe]
    fitted = fit_gemm_roofline(
        probe, times, half_saturation_flops=gpu.half_saturation_flops
    )
    for f in [5e8, 2.5e9, 1e11, 7e11]:  # off-probe flop counts
        assert fitted.gemm_time(f) == pytest.approx(
            gpu.gemm_time(f, tensor_core=True), rel=1e-9
        )


# -- calibration --------------------------------------------------------------


def test_calibration_recovers_a2a_affinity():
    """Fitted alpha-beta A2A models match the profiler's measurements
    at unprobed payload sizes (the simulated A2A is affine in bytes)."""
    from repro.collectives import get_a2a
    from repro.compression import get_compressor
    from repro.core.profiler import Profiler

    spec = paper_testbed()
    calib = calibrate(ct_moe(12), spec, TINY, seed=0)
    for (a2a_name, codec_name), model in calib.a2a_models.items():
        profiler = Profiler(
            spec,
            a2a=get_a2a(a2a_name),
            compressor=get_compressor(codec_name),
        )
        for wire in (2.2e6, 1.3e7, 5.5e7):
            truth = profiler.measure_a2a_seconds(wire)
            if np.isfinite(truth):
                assert model.predict(wire) == pytest.approx(
                    truth, rel=0.02
                )


def test_calibration_budget_caps_probes():
    cfg, spec = ct_moe(12), paper_testbed()
    free = calibrate(cfg, spec, TINY, seed=0)
    capped = calibrate(cfg, spec, TINY, seed=0, budget=12)
    assert capped.num_probes <= 12 < free.num_probes


def test_calibration_budget_too_small_raises():
    with pytest.raises(ValueError, match="budget"):
        # 2 pairs * 2 + 2 = 6 is the floor for TINY.
        calibrate(ct_moe(12), paper_testbed(), TINY, seed=0, budget=5)


def test_unknown_names_raise_before_probing():
    with pytest.raises(KeyError, match="no-such-a2a"):
        plan(
            ct_moe(12),
            paper_testbed(),
            space=PlanSpace(a2a_algorithms=("no-such-a2a",)),
            processes=1,
        )
    with pytest.raises(KeyError, match="no-such-scheduler"):
        plan(
            ct_moe(12),
            paper_testbed(),
            space=PlanSpace(schedulers=("no-such-scheduler",)),
            processes=1,
        )


# -- the full planner ---------------------------------------------------------


def test_plan_deterministic_and_within_regret_bound(tmp_path):
    """Same seed -> byte-identical JSON; recommendation within 5% of
    the exhaustive optimum while simulating strictly fewer configs."""
    cfg, spec = ct_moe(12), paper_testbed()

    def run(cache_name):
        return plan(
            cfg,
            spec,
            space=TINY,
            seed=0,
            budget=20,
            top_k=3,
            cache_path=tmp_path / cache_name,
            processes=1,
            regret=True,
        )

    a = run("cache_a.json")
    b = run("cache_b.json")  # fresh cache: every simulation recomputed
    assert a.to_json() == b.to_json()
    assert a.simulated == 3 < TINY.size
    assert a.regret is not None
    assert a.regret["regret_pct"] <= 5.0
    assert abs(a.prediction_error_pct) <= 5.0


def test_plan_reruns_hit_the_cache(tmp_path):
    cfg, spec = ct_moe(12), paper_testbed()
    kwargs = dict(
        space=TINY,
        seed=0,
        top_k=3,
        cache_path=tmp_path / "cache.json",
        processes=1,
    )
    first = plan(cfg, spec, **kwargs)
    assert first.cache_hits == 0
    again = plan(cfg, spec, **kwargs)
    assert again.cache_hits == again.simulated == first.simulated
    assert again.to_json() == first.to_json()


def test_plan_works_without_cache():
    report = plan(
        ct_moe(12), paper_testbed(), space=TINY, top_k=2, processes=1
    )
    assert report.simulated == 2
    assert np.isfinite(report.measured_s)


def test_recommendation_includes_layer_knobs():
    report = plan(
        ct_moe(12), paper_testbed(), space=TINY, top_k=2, processes=1
    )
    rec = report.recommendation()
    layer = rec["layer"]
    assert layer == layer_recommendation(rec["partitions"])
    assert layer["expert_impl"] == "grouped"
    assert layer["dispatch_mode"] == "sparse"
    assert layer["num_chunks"] == rec["partitions"]
    assert layer["pipeline"] == (
        "overlap" if rec["partitions"] > 1 else "sync"
    )


def test_plan_report_json_excludes_runtime_state(tmp_path):
    """cache_hits depends on cache state and must stay out of the
    canonical JSON, or the CI sidecar diff would flap."""
    report = plan(
        ct_moe(12),
        paper_testbed(),
        space=TINY,
        top_k=2,
        cache_path=tmp_path / "c.json",
        processes=1,
    )
    assert "cache_hits" not in report.to_json()


def test_plan_space_validation():
    with pytest.raises(ValueError, match="empty"):
        PlanSpace(schedulers=())
    with pytest.raises(ValueError, match=">= 1"):
        PlanSpace(partition_degrees=(0,))
    with pytest.raises(ValueError, match="positive"):
        PlanSpace(capacity_factors=(0.0,))
    with pytest.raises(ValueError, match="top_k"):
        plan(ct_moe(12), paper_testbed(), space=TINY, top_k=0)
