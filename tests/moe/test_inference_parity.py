"""Bit-exact parity of the autograd-free MoE inference fast path.

``MoELayer.forward_inference`` must compute *byte-for-byte* the same
output as the training-tape ``forward`` on an ``eval()`` layer —
across both gate families, all three expert implementations, sync and
overlapped chunked pipelines, dead-expert degradation and the T=0
edge — while recording no tape and drawing its large intermediates
from the layer's step-scoped arena (so steady state performs zero
large allocations).  Anything weaker than ``np.array_equal`` here
would hide a divergence between what we benchmark and what we train.
"""

import numpy as np
import pytest

from repro.moe import MoELayer
from repro.moe.parallel import ExpertParallelGroup
from repro.nn import Tensor


def make_layer(
    seed=0,
    gate_type="topk",
    expert_impl=None,
    pipeline="sync",
    num_chunks=1,
    num_experts=8,
    capacity_factor=2.0,
):
    return MoELayer(
        model_dim=32,
        hidden_dim=48,
        num_experts=num_experts,
        rng=np.random.default_rng(seed),
        top_k=2,
        capacity_factor=capacity_factor,
        gate_type=gate_type,
        expert_impl=expert_impl,
        pipeline=pipeline,
        num_chunks=num_chunks,
    ).eval()


def tokens(rng, n=96, dim=32):
    return rng.standard_normal((n, dim)).astype(np.float32)


def assert_inference_matches(layer, x, rng_out=None):
    """forward_inference vs forward: bit-identical, tape-free."""
    ref = layer(Tensor(x)).data.copy()
    out = layer.forward_inference(Tensor(x))
    np.testing.assert_array_equal(out.data, ref)
    assert out._inference
    assert out._parents == () and out._backward is None
    return ref


@pytest.mark.parametrize("gate_type", ["topk", "expert-choice"])
@pytest.mark.parametrize("expert_impl", ["grouped", "batched", "loop"])
def test_parity_across_gates_and_expert_impls(rng, gate_type, expert_impl):
    layer = make_layer(gate_type=gate_type, expert_impl=expert_impl)
    assert_inference_matches(layer, tokens(rng))


@pytest.mark.parametrize("pipeline,num_chunks", [("sync", 3), ("overlap", 3)])
def test_parity_chunked_pipelines(rng, pipeline, num_chunks):
    layer = make_layer(pipeline=pipeline, num_chunks=num_chunks)
    assert_inference_matches(layer, tokens(rng, n=120))


def test_parity_with_dead_experts(rng):
    layer = make_layer()
    layer.set_dead_experts({1, 5})
    assert_inference_matches(layer, tokens(rng))


def test_parity_zero_tokens():
    layer = make_layer()
    x = np.zeros((0, 32), dtype=np.float32)
    out = layer.forward_inference(Tensor(x))
    assert out.shape == (0, 32)
    np.testing.assert_array_equal(out.data, layer(Tensor(x)).data)


def test_parity_under_capacity_pressure(rng):
    """Token drops (FCFS capacity overflow) resolve identically."""
    layer = make_layer(capacity_factor=0.5)
    assert_inference_matches(layer, tokens(rng, n=128))


def test_steady_state_reuses_the_arena(rng):
    layer = make_layer()
    x = Tensor(tokens(rng))
    layer.forward_inference(x)  # warm-up populates the pool
    stats = layer._inference_arena.stats()
    assert stats["misses"] > 0
    ref = layer.forward_inference(x).data.copy()
    steady = layer._inference_arena.stats()
    assert steady["misses"] == stats["misses"]  # zero new allocations
    assert steady["hits"] > stats["hits"]
    np.testing.assert_array_equal(ref, layer(x).data)


def test_training_flag_and_tape_restored_after_inference(rng):
    layer = make_layer().train()
    x = Tensor(tokens(rng), requires_grad=False)
    layer.forward_inference(x)
    assert layer.training
    # A training forward afterwards records a tape again.
    layer.eval()
    y = layer(x)
    assert y._backward is not None or y._parents


def test_forward_only_skips_gate_bookkeeping(rng):
    """No aux-loss graph and no densified masks on the fast path."""
    layer = make_layer()
    layer.forward_inference(Tensor(tokens(rng)))
    aux = layer.last_aux_loss
    assert aux is not None and aux._parents == ()
    assert float(aux.data) == 0.0
    gate_out = layer.last_gate_output
    assert gate_out._dispatch_mask is None
    with pytest.raises(RuntimeError, match="densify"):
        from repro.nn.tensor import inference_mode

        with inference_mode():
            gate_out.dispatch_mask
    # Outside inference mode densification is allowed again (training
    # introspection on a stale GateOutput still works).
    assert gate_out.dispatch_mask is not None


def test_last_dispatched_not_recorded_under_inference(rng):
    layer = make_layer()
    x = Tensor(tokens(rng))
    layer(x)
    assert layer.last_dispatched is not None
    layer.forward_inference(x)
    assert layer.last_dispatched is None


def test_forward_inference_rejects_dense_dispatch(rng):
    layer = MoELayer(
        model_dim=16,
        hidden_dim=24,
        num_experts=4,
        rng=np.random.default_rng(0),
        capacity_factor=2.0,
        dispatch_mode="dense",
    ).eval()
    with pytest.raises(RuntimeError, match="sparse"):
        layer.forward_inference(Tensor(tokens(rng, dim=16)))


# -- expert-parallel group ---------------------------------------------------


def group_parity(rng, **kwargs):
    layer = make_layer(capacity_factor=4.0)
    group = ExpertParallelGroup(layer, num_workers=4, **kwargs)
    shards = [tokens(rng, n=24) for _ in range(4)]
    ref = [y.copy() for y in group.forward(shards)]
    got = group.forward_inference(shards)
    for r, g in zip(ref, got):
        np.testing.assert_array_equal(r, g)
    return group, shards


def test_group_parity_sync_and_overlap(rng):
    group_parity(rng)
    group_parity(rng, pipeline="overlap", num_chunks=2)


def test_group_parity_with_dead_workers(rng):
    group_parity(rng, dead_workers={1})


def test_group_steady_state_reuses_staging_pool(rng):
    group, shards = group_parity(rng, pipeline="overlap", num_chunks=2)
    group.forward_inference(shards)  # second warm pass
    stats = group._pool.stats()
    misses = stats["misses"]
    got = [y.copy() for y in group.forward_inference(shards)]
    assert group._pool.stats()["misses"] == misses  # steady: pure reuse
    ref = group.forward(shards)
    for r, g in zip(ref, got):
        np.testing.assert_array_equal(r, g)
