"""Property suite for the fused single-sort routing kernel.

:func:`~repro.moe.routing.route_fused` must be *bit-identical* to two
independently-derived references on every field:

* a hand-rolled greedy slot-assignment loop (choice-major FCFS — all
  first choices in token order, then all second choices — each
  assignment taking its expert's next free slot or dropping at
  capacity), for the slot array;
* the legacy chain (``assign_capacity_slots`` + the ``np.nonzero``
  kept scan + stable ``argsort`` by expert + ``bincount``) for the
  kept coordinates, the grouped permutation and the segment counts.

The grid crosses token counts (empty batch, single token, 513 to
straddle chunking shapes, 4096 = the bench headline), top-k, expert
counts, and capacity regimes (0 = all dropped, 1 = maximal drop
pressure, tight, loose = no drops), plus adversarial layouts a real
gate never emits: duplicate experts within one token's choices and
expert-choice-style duplicate token selections.  The generic and
identity plan builders are pinned to the same chain.
"""

import numpy as np
import pytest

from repro.moe import MoELayer, RoutingPlan, route_fused
from repro.moe.gating import TopKGate, assign_capacity_slots
from repro.moe.routing import plan_for_expert_choice, plan_from_indices
from repro.nn import Tensor


def greedy_reference_slots(top_idx, num_experts, capacity):
    """The original O(T * k) greedy loop: GShard's FCFS rule."""
    num_tokens, top_k = top_idx.shape
    positions = np.full((num_tokens, top_k), -1, dtype=np.int64)
    fill = np.zeros(num_experts, dtype=np.int64)
    for choice in range(top_k):
        for token in range(num_tokens):
            expert = top_idx[token, choice]
            if fill[expert] < capacity:
                positions[token, choice] = fill[expert]
                fill[expert] += 1
    return positions


def legacy_chain(top_idx, slots, num_experts):
    """nonzero scan + stable argsort + bincount — the retired chain."""
    kept = slots >= 0
    tok, choice = np.nonzero(kept)
    e_ids = top_idx[tok, choice]
    order = np.argsort(e_ids, kind="stable")
    return dict(
        kept_token_ids=tok,
        kept_choice_ids=choice,
        kept_expert_ids=e_ids,
        kept_slot_ids=slots[tok, choice],
        grouped_kept_pos=order,
        grouped_token_ids=tok[order],
        grouped_expert_ids=e_ids[order],
        grouped_choice_ids=choice[order],
        segment_counts=np.bincount(e_ids, minlength=num_experts).astype(
            np.int64
        ),
    )


def assert_plan_matches_references(plan, top_idx, num_experts, capacity):
    T, k = top_idx.shape
    ref_slots = greedy_reference_slots(top_idx, num_experts, capacity)
    np.testing.assert_array_equal(plan.slot_indices, ref_slots)
    np.testing.assert_array_equal(
        plan.slot_indices,
        assign_capacity_slots(top_idx, num_experts, capacity),
    )
    chain = legacy_chain(top_idx, ref_slots, num_experts)
    np.testing.assert_array_equal(plan.kept_token_ids, chain["kept_token_ids"])
    np.testing.assert_array_equal(
        plan.kept_expert_ids, chain["kept_expert_ids"]
    )
    np.testing.assert_array_equal(plan.kept_slot_ids, chain["kept_slot_ids"])
    np.testing.assert_array_equal(
        plan.kept_weight_index[0], chain["kept_token_ids"]
    )
    np.testing.assert_array_equal(
        plan.kept_weight_index[1], chain["kept_choice_ids"]
    )
    np.testing.assert_array_equal(
        plan.grouped_kept_pos, chain["grouped_kept_pos"]
    )
    np.testing.assert_array_equal(
        plan.grouped_token_ids, chain["grouped_token_ids"]
    )
    np.testing.assert_array_equal(
        plan.grouped_expert_ids, chain["grouped_expert_ids"]
    )
    np.testing.assert_array_equal(
        plan.grouped_weight_index[0], chain["grouped_token_ids"]
    )
    np.testing.assert_array_equal(
        plan.grouped_weight_index[1], chain["grouped_choice_ids"]
    )
    np.testing.assert_array_equal(
        plan.segment_counts, chain["segment_counts"]
    )
    np.testing.assert_array_equal(plan.expert_load, plan.segment_counts)
    # Bookkeeping scalars and the fused per-(expert, choice) counts.
    assert plan.dropped_assignments == int((ref_slots < 0).sum())
    assert plan.num_kept == chain["grouped_token_ids"].shape[0]
    np.testing.assert_array_equal(
        plan.counts,
        np.bincount(top_idx.reshape(-1), minlength=num_experts),
    )
    for c in range(k):
        np.testing.assert_array_equal(
            plan.choice_counts[:, c],
            np.bincount(top_idx[:, c], minlength=num_experts)
            if T
            else np.zeros(num_experts, dtype=np.int64),
        )
    # The generic builder reproduces the fused result from the arrays.
    generic = plan_from_indices(
        top_idx, ref_slots, None, num_experts, T, capacity
    )
    for field in (
        "kept_token_ids", "kept_expert_ids", "kept_slot_ids",
        "grouped_kept_pos", "grouped_token_ids", "grouped_expert_ids",
        "segment_counts",
    ):
        np.testing.assert_array_equal(
            getattr(generic, field), getattr(plan, field), err_msg=field
        )
    assert generic.dropped_assignments == plan.dropped_assignments


@pytest.mark.parametrize("num_tokens", [0, 1, 513, 4096])
@pytest.mark.parametrize("top_k", [1, 2, 4])
@pytest.mark.parametrize("num_experts", [1, 8, 32])
def test_fused_matches_greedy_reference(rng, num_tokens, top_k, num_experts):
    if top_k > num_experts:
        pytest.skip("top_k > num_experts")
    # Distinct experts per token, like a real top-k gate emits.
    top_idx = np.argsort(
        rng.random((num_tokens, num_experts)), axis=1
    )[:, :top_k]
    tight = max((num_tokens * top_k) // (2 * num_experts), 1)
    for capacity in (0, 1, tight, num_tokens + 1):
        plan = route_fused(top_idx, num_experts, capacity)
        assert_plan_matches_references(plan, top_idx, num_experts, capacity)


def test_duplicate_experts_within_a_token(rng):
    """Rows may repeat an expert (no real gate does; the kernel must
    still match the greedy rule, which fills both assignments)."""
    for _ in range(5):
        top_idx = rng.integers(0, 4, size=(37, 3))
        for capacity in (0, 1, 5, 200):
            plan = route_fused(top_idx, 4, capacity)
            assert_plan_matches_references(plan, top_idx, 4, capacity)


def test_all_dropped(rng):
    top_idx = np.argsort(rng.random((19, 8)), axis=1)[:, :2]
    plan = route_fused(top_idx, 8, 0)
    assert plan.num_kept == 0
    assert plan.dropped_assignments == 38
    np.testing.assert_array_equal(plan.slot_indices, -1)
    np.testing.assert_array_equal(plan.segment_counts, np.zeros(8, np.int64))
    # But the pre-capacity counts survive (the aux loss reads them).
    assert int(plan.counts.sum()) == 38
    assert int(plan.choice_counts.sum()) == 38


def test_gate_attaches_the_plan(rng):
    """TopKGate caches the fused plan; its fields are the gate's."""
    gate = TopKGate(8, 4, np.random.default_rng(0), top_k=2,
                    capacity_factor=0.75)
    out = gate(Tensor(rng.standard_normal((33, 8)).astype(np.float32)))
    assert isinstance(out._plan, RoutingPlan)
    plan = out.plan
    np.testing.assert_array_equal(plan.slot_indices, out.slot_indices)
    np.testing.assert_array_equal(plan.expert_load, out.expert_load)
    assert plan.dropped_assignments == out.dropped_tokens
    assert_plan_matches_references(
        plan, out.expert_indices, 4, out.capacity
    )


def test_dropped_expert_plan_rebuilds_generically(rng):
    """with_experts_dropped punches non-FCFS slot holes; its plan must
    come from the actual arrays, not the fused kernel."""
    gate = TopKGate(8, 4, np.random.default_rng(0), top_k=2,
                    capacity_factor=2.0)
    out = gate(Tensor(rng.standard_normal((25, 8)).astype(np.float32)))
    degraded = out.with_experts_dropped({1})
    assert degraded._plan is None  # lazily rebuilt, not inherited
    plan = degraded.plan
    chain = legacy_chain(
        np.asarray(degraded.expert_indices),
        np.asarray(degraded.slot_indices),
        4,
    )
    np.testing.assert_array_equal(
        plan.grouped_token_ids, chain["grouped_token_ids"]
    )
    np.testing.assert_array_equal(
        plan.segment_counts, chain["segment_counts"]
    )
    assert plan.segment_counts[1] == 0
    np.testing.assert_array_equal(plan.segment_counts, degraded.expert_load)


def test_expert_choice_identity_plan(rng):
    """EC's flat layout is structurally expert-major: identity order,
    and the identity builder equals the generic one."""
    layer = MoELayer(
        8, 16, 4, np.random.default_rng(0), gate_type="expert-choice",
        capacity_factor=2.0,
    )
    layer(Tensor(rng.standard_normal((16, 8)).astype(np.float32)))
    out = layer.last_gate_output
    plan = out.plan
    assert plan.layout == "flat"
    n = out.expert_indices.shape[0]
    np.testing.assert_array_equal(plan.grouped_kept_pos, np.arange(n))
    np.testing.assert_array_equal(plan.grouped_token_ids, out.token_indices)
    generic = plan_from_indices(
        out.expert_indices, out.slot_indices, out.token_indices,
        4, out.num_tokens, out.capacity,
    )
    for field in (
        "kept_token_ids", "kept_expert_ids", "kept_slot_ids",
        "grouped_kept_pos", "grouped_token_ids", "grouped_expert_ids",
        "segment_counts",
    ):
        np.testing.assert_array_equal(
            getattr(generic, field), getattr(plan, field), err_msg=field
        )
    # Identity builder wired through the gate, including the empty case.
    empty = plan_for_expert_choice(
        np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0, np.int64),
        4, 0, 0,
    )
    assert empty.num_kept == 0
    np.testing.assert_array_equal(
        empty.segment_counts, np.zeros(4, np.int64)
    )


def test_route_fused_validation():
    with pytest.raises(ValueError, match="tokens, k"):
        route_fused(np.zeros(3, dtype=np.int64), 4, 2)
    with pytest.raises(ValueError, match="num_experts"):
        route_fused(np.zeros((2, 2), dtype=np.int64), 0, 2)
    with pytest.raises(ValueError, match="capacity"):
        route_fused(np.zeros((2, 2), dtype=np.int64), 4, -1)
    with pytest.raises(ValueError, match="out of range"):
        route_fused(np.full((2, 2), 7, dtype=np.int64), 4, 2)
