"""Tests of top-k gating with expert capacity."""

import numpy as np
import pytest

from repro.moe import TopKGate, load_balancing_loss
from repro.nn import Tensor
from repro.nn import functional as F


@pytest.fixture
def gate(rng):
    return TopKGate(
        model_dim=16, num_experts=4, rng=rng, top_k=2, capacity_factor=1.25
    )


def tokens(rng, n=24, dim=16):
    return Tensor(rng.standard_normal((n, dim)).astype(np.float32))


def test_capacity_formula_matches_eq1(gate):
    # C = ceil(f * k * T / E)
    assert gate.capacity(24) == int(np.ceil(1.25 * 2 * 24 / 4))


def test_gate_output_shapes(gate, rng):
    out = gate(tokens(rng))
    cap = gate.capacity(24)
    assert out.dispatch_mask.shape == (24, 4, cap)
    assert out.combine_weights.shape == (24, 4, cap)
    assert out.expert_load.shape == (4,)


def test_each_token_routed_to_at_most_k(gate, rng):
    out = gate(tokens(rng))
    per_token = out.dispatch_mask.sum(axis=(1, 2))
    assert np.all(per_token <= 2)


def test_capacity_never_exceeded(gate, rng):
    out = gate(tokens(rng))
    per_expert = out.dispatch_mask.sum(axis=(0, 2))
    assert np.all(per_expert <= out.capacity)
    # Slots are uniquely assigned: one token per (expert, slot).
    per_slot = out.dispatch_mask.sum(axis=0)
    assert np.all(per_slot <= 1)


def test_dropped_token_accounting(rng):
    gate = TopKGate(8, 2, rng, top_k=1, capacity_factor=1.0)
    out = gate(tokens(rng, n=16, dim=8))
    routed = int(out.dispatch_mask.sum())
    assert routed + out.dropped_tokens == 16  # k=1: one slot per token


def test_combine_weights_nonnegative_and_bounded(gate, rng):
    out = gate(tokens(rng))
    w = out.combine_weights.data
    assert np.all(w >= 0)
    sums = w.sum(axis=(1, 2))
    assert np.all(sums <= 1.0 + 1e-5)


def test_combine_weights_normalized_over_kept(gate, rng):
    out = gate(tokens(rng))
    w = out.combine_weights.data
    kept = out.dispatch_mask.sum(axis=(1, 2)) > 0
    sums = w.sum(axis=(1, 2))
    np.testing.assert_allclose(sums[kept], 1.0, atol=1e-5)
    np.testing.assert_allclose(sums[~kept], 0.0, atol=1e-7)


def test_weights_only_on_dispatched_slots(gate, rng):
    out = gate(tokens(rng))
    w = out.combine_weights.data
    assert np.all(w[out.dispatch_mask == 0] == 0)


def test_gate_is_differentiable(gate, rng):
    x = Tensor(
        rng.standard_normal((12, 16)).astype(np.float32), requires_grad=True
    )
    out = gate(x)
    (out.combine_weights.sum() + out.aux_loss).backward()
    assert gate.wg.weight.grad is not None
    assert x.grad is not None


def test_aux_loss_minimized_at_uniform(rng):
    probs = Tensor(np.full((32, 4), 0.25, dtype=np.float32))
    uniform_first = np.tile(np.arange(4), 8)
    loss = load_balancing_loss(probs, uniform_first, 4)
    assert float(loss.data) == pytest.approx(1.0)
    # Collapsed routing scores E x worse.
    collapsed = load_balancing_loss(
        Tensor(np.eye(4, dtype=np.float32)[np.zeros(32, int)]),
        np.zeros(32, int),
        4,
    )
    assert float(collapsed.data) == pytest.approx(4.0)


def test_gate_validation(rng):
    with pytest.raises(ValueError):
        TopKGate(8, 4, rng, top_k=0)
    with pytest.raises(ValueError):
        TopKGate(8, 4, rng, top_k=5)
    with pytest.raises(ValueError):
        TopKGate(8, 4, rng, capacity_factor=0.0)
    gate = TopKGate(8, 4, rng)
    with pytest.raises(ValueError):
        gate(Tensor(np.zeros((2, 3, 8))))


def test_first_choice_priority_over_second(rng):
    """With tight capacity, first choices win slots over second ones."""
    gate = TopKGate(8, 2, rng, top_k=2, capacity_factor=0.5)
    out = gate(tokens(rng, n=16, dim=8))
    probs = F.softmax(gate.wg(tokens(rng, n=16, dim=8))).data
    # Capacity is ceil(0.5*2*16/2)=8 per expert; the 16 first choices
    # alone exceed 16 slots, so no second choice may displace a first
    # choice: total kept slots equal total capacity filled greedily.
    assert out.dispatch_mask.sum() <= 16


def test_drop_fraction(rng):
    gate = TopKGate(8, 2, rng, top_k=1, capacity_factor=0.5)
    out = gate(tokens(rng, n=16, dim=8))
    assert out.drop_fraction == pytest.approx(out.dropped_tokens / 16)
    generous = TopKGate(8, 2, rng, top_k=1, capacity_factor=4.0)
    assert generous(tokens(rng, n=16, dim=8)).drop_fraction == 0.0
