"""Pipeline-vs-sync parity for the chunked expert-parallel executor.

The contract that gates the overlap work (paper Section 4 made real):

* ``pipeline="overlap"`` is *bit-identical* to ``pipeline="sync"`` at
  any chunk count, for top-k and expert-choice gates, with dead
  workers, with a lossy codec, and with the wire-time model — the two
  modes run the same task callables, only thread interleaving differs.
* Without a lossy codec, the chunk count itself is invisible: chunks
  are token ranges, per-row GEMM results don't depend on batching, and
  the per-token combine accumulation order is preserved, so any
  ``num_chunks`` matches ``num_chunks=1`` bit-for-bit.  (A lossy codec
  quantizes per payload, so there chunking shifts values within codec
  error — the documented exception.)
* ``num_chunks=1`` + ``pipeline="sync"`` reproduces the pre-pipeline
  capacity-padded execution bit-for-bit (hand-rolled reference below).
* The chunked MoELayer grouped path matches the unchunked layer:
  forward bit-exact, gradients to 1e-6 (chunking reassociates float
  accumulations in backward).
"""

import numpy as np
import pytest

from repro.compression.zfp import Zfp16Compressor
from repro.moe import MoELayer
from repro.moe.parallel import ExpertParallelGroup
from repro.nn import Tensor

GATES = ("topk", "expert-choice")


def make_layer(gate_type, compressor=None, num_experts=8, dim=16, **kw):
    return MoELayer(
        model_dim=dim,
        hidden_dim=2 * dim,
        num_experts=num_experts,
        rng=np.random.default_rng(7),
        top_k=2,
        capacity_factor=2.0,
        gate_type=gate_type,
        compressor=compressor,
        expert_impl="grouped",
        **kw,
    )


def make_shards(rng, num_workers=4, tokens=48, dim=16):
    data = rng.standard_normal((tokens, dim)).astype(np.float32)
    return list(np.split(data, num_workers))


def group_forward(layer, shards, **group_kw):
    group = ExpertParallelGroup(layer, len(shards), **group_kw)
    return group.forward_concatenated(shards)


# -- overlap == sync, bit for bit --------------------------------------------


@pytest.mark.parametrize("gate_type", GATES)
@pytest.mark.parametrize("num_chunks", [1, 3, 4])
def test_overlap_matches_sync_bitwise(rng, gate_type, num_chunks):
    layer = make_layer(gate_type).eval()
    shards = make_shards(rng)
    out_sync = group_forward(
        layer, shards, pipeline="sync", num_chunks=num_chunks
    )
    out_overlap = group_forward(
        layer, shards, pipeline="overlap", num_chunks=num_chunks
    )
    np.testing.assert_array_equal(out_overlap, out_sync)


@pytest.mark.parametrize("gate_type", GATES)
def test_overlap_matches_sync_with_codec(rng, gate_type):
    """Lossy transport: same-chunk-count modes still agree bitwise."""
    layer = make_layer(gate_type, compressor=Zfp16Compressor()).eval()
    shards = make_shards(rng)
    for num_chunks in (1, 4):
        out_sync = group_forward(
            layer, shards, pipeline="sync", num_chunks=num_chunks
        )
        out_overlap = group_forward(
            layer, shards, pipeline="overlap", num_chunks=num_chunks
        )
        np.testing.assert_array_equal(out_overlap, out_sync)


@pytest.mark.parametrize("gate_type", GATES)
def test_overlap_matches_sync_with_dead_workers(rng, gate_type):
    layer = make_layer(gate_type, compressor=Zfp16Compressor()).eval()
    shards = make_shards(rng)
    outs = {}
    for pipeline in ("sync", "overlap"):
        group = ExpertParallelGroup(
            layer, 4, dead_workers=[1], pipeline=pipeline, num_chunks=3
        )
        outs[pipeline] = group.forward_concatenated(shards)
        # The dead worker neither receives nor sends anything.
        assert group.last_dispatch_traffic.matrix[:, 1].sum() == 0.0
        assert group.last_combine_traffic.matrix[1, :].sum() == 0.0
    np.testing.assert_array_equal(outs["overlap"], outs["sync"])


def test_overlap_matches_sync_with_wire_model(rng):
    """The wire-time model changes timing only, never values."""
    layer = make_layer("topk").eval()
    shards = make_shards(rng)
    base = group_forward(layer, shards, num_chunks=2)
    for pipeline in ("sync", "overlap"):
        out = group_forward(
            layer,
            shards,
            pipeline=pipeline,
            num_chunks=2,
            link_bandwidth=50e9,
        )
        np.testing.assert_array_equal(out, base)


@pytest.mark.parametrize("scheduler", ["sequential", "chunk-pipeline", "optsche"])
def test_overlap_identical_across_schedulers(rng, scheduler):
    """Any valid task order computes the same bits."""
    layer = make_layer("topk").eval()
    shards = make_shards(rng)
    base = group_forward(layer, shards, pipeline="sync", num_chunks=4)
    out = group_forward(
        layer, shards, pipeline="overlap", num_chunks=4, scheduler=scheduler
    )
    np.testing.assert_array_equal(out, base)


# -- chunk count invisibility (no codec) -------------------------------------


@pytest.mark.parametrize("gate_type", GATES)
@pytest.mark.parametrize("num_chunks", [2, 3, 5, 12, 100])
def test_chunk_count_is_bit_invisible_without_codec(rng, gate_type, num_chunks):
    """Including num_chunks > tokens-per-shard (trailing chunks empty)."""
    layer = make_layer(gate_type).eval()
    shards = make_shards(rng)  # 12 tokens per shard < 100 chunks
    base = group_forward(layer, shards, num_chunks=1)
    for pipeline in ("sync", "overlap"):
        out = group_forward(
            layer, shards, pipeline=pipeline, num_chunks=num_chunks
        )
        np.testing.assert_array_equal(out, base)


@pytest.mark.parametrize("gate_type", GATES)
def test_empty_shard(rng, gate_type):
    """A worker with a zero-token shard participates without effect."""
    layer = make_layer(gate_type).eval()
    data = rng.standard_normal((30, 16)).astype(np.float32)
    shards = [data[:0], data[:10], data[10:12], data[12:]]
    base = group_forward(layer, shards, num_chunks=1)
    for pipeline in ("sync", "overlap"):
        out = group_forward(
            layer, shards, pipeline=pipeline, num_chunks=3
        )
        np.testing.assert_array_equal(out, base)
        assert out.shape == (30, 16)


# -- num_chunks=1 == the pre-pipeline execution ------------------------------


def legacy_reference_forward(layer, shards):
    """The pre-pipeline ExpertParallelGroup sparse path, hand-rolled.

    Capacity-padded (C, M) blocks per (src, expert), one grouped run
    per destination over the blocks sorted by expert with sources in
    rank order, combine by kept-coordinate scatter-add — exactly the
    algorithm this PR's flat-payload task graph replaced (no codec).
    """
    gate = layer.gate
    num_experts = gate.num_experts
    P = len(shards)
    epw = num_experts // P
    model_dim = layer.model_dim
    outs = [gate(Tensor(np.asarray(s, dtype=np.float32))) for s in shards]

    blocks = {}
    for w, out in enumerate(outs):
        t_ids, e_ids, s_ids, _ = out._kept_coords()
        buf = np.zeros(
            (num_experts, out.capacity, model_dim), dtype=np.float32
        )
        buf[e_ids, s_ids] = np.asarray(shards[w], dtype=np.float32)[t_ids]
        blocks[w] = buf

    results = {}
    for dst in range(P):
        entries = []
        for src in range(P):
            for e in range(dst * epw, (dst + 1) * epw):
                entries.append((e, src, blocks[src][e]))
        entries.sort(key=lambda item: item[0])
        counts = np.zeros(num_experts, dtype=np.int64)
        for e, _, block in entries:
            counts[e] += block.shape[0]
        rows = np.concatenate([block for _, _, block in entries], axis=0)
        out_rows = layer.experts.run_grouped(Tensor(rows), counts).data
        offset = 0
        for e, src, block in entries:
            results[(src, e)] = out_rows[offset : offset + block.shape[0]]
            offset += block.shape[0]

    merged = []
    for w, out in enumerate(outs):
        t_ids, e_ids, s_ids, w_idx = out._kept_coords()
        weights = out.gate_weights.data[w_idx]
        expert_out = np.zeros(
            (num_experts, out.capacity, model_dim), dtype=np.float32
        )
        for e in range(num_experts):
            expert_out[e] = results[(w, e)]
        acc = np.zeros((shards[w].shape[0], model_dim), dtype=np.float32)
        np.add.at(acc, t_ids, weights[:, None] * expert_out[e_ids, s_ids])
        merged.append(acc)
    return np.concatenate(merged, axis=0)


@pytest.mark.parametrize("gate_type", GATES)
@pytest.mark.parametrize("num_workers", [1, 2, 4])
def test_single_chunk_sync_matches_legacy_reference(
    rng, gate_type, num_workers
):
    layer = make_layer(gate_type).eval()
    shards = make_shards(rng, num_workers=num_workers)
    legacy = legacy_reference_forward(layer, shards)
    out = group_forward(layer, shards, pipeline="sync", num_chunks=1)
    np.testing.assert_array_equal(out, legacy)


# -- the chunked MoELayer path -----------------------------------------------


def run_layer_step(gate_type, x_data, **layer_kw):
    layer = make_layer(gate_type, **layer_kw)
    x = Tensor(x_data.copy(), requires_grad=True)
    y = layer(x)
    ((y**2).sum() + 0.0 * layer.last_aux_loss).backward()
    return (
        np.array(y.data),
        np.array(x.grad),
        [np.array(p.grad) for p in layer.parameters()],
    )


@pytest.mark.parametrize("gate_type", GATES)
@pytest.mark.parametrize("pipeline", ["sync", "overlap"])
@pytest.mark.parametrize("num_chunks", [1, 3, 37, 64])
def test_layer_chunked_matches_unchunked(rng, gate_type, pipeline, num_chunks):
    """Forward bit-exact; grads to 1e-6 (documented reassociation)."""
    x_data = rng.standard_normal((37, 16)).astype(np.float32)
    y0, xg0, pg0 = run_layer_step(gate_type, x_data)
    y, xg, pg = run_layer_step(
        gate_type, x_data, pipeline=pipeline, num_chunks=num_chunks
    )
    np.testing.assert_array_equal(y, y0)
    np.testing.assert_allclose(xg, xg0, rtol=1e-5, atol=1e-6)
    for g, g0 in zip(pg, pg0):
        np.testing.assert_allclose(g, g0, rtol=1e-5, atol=1e-6)


@pytest.mark.parametrize("gate_type", GATES)
def test_layer_overlap_matches_sync_bitwise(rng, gate_type):
    """Same chunking, both pipelines: forward AND grads bit-equal."""
    x_data = rng.standard_normal((30, 16)).astype(np.float32)
    for codec in (None, Zfp16Compressor()):
        ys, xgs, pgs = run_layer_step(
            gate_type, x_data, compressor=codec, pipeline="sync",
            num_chunks=4,
        )
        yo, xgo, pgo = run_layer_step(
            gate_type, x_data, compressor=codec, pipeline="overlap",
            num_chunks=4,
        )
        np.testing.assert_array_equal(yo, ys)
        np.testing.assert_array_equal(xgo, xgs)
        for a, b in zip(pgo, pgs):
            np.testing.assert_array_equal(a, b)


def test_layer_dead_experts_chunked(rng):
    """Graceful degradation composes with the chunked path."""
    x_data = rng.standard_normal((24, 16)).astype(np.float32)

    def run(pipeline, num_chunks):
        layer = make_layer("topk", pipeline=pipeline, num_chunks=num_chunks)
        layer.set_dead_experts({1, 2})
        return np.array(layer(Tensor(x_data.copy())).data)

    base = run("sync", 1)
    for pipeline in ("sync", "overlap"):
        np.testing.assert_array_equal(run(pipeline, 3), base)


def test_validation():
    with pytest.raises(ValueError, match="pipeline"):
        make_layer("topk", pipeline="async")
    with pytest.raises(ValueError, match="num_chunks"):
        make_layer("topk", num_chunks=0)
    layer = make_layer("topk")
    with pytest.raises(ValueError, match="pipeline"):
        ExpertParallelGroup(layer, 4, pipeline="bogus")
    with pytest.raises(ValueError, match="num_chunks"):
        ExpertParallelGroup(layer, 4, num_chunks=0)
    with pytest.raises(ValueError, match="link_bandwidth"):
        ExpertParallelGroup(layer, 4, link_bandwidth=-1.0)


def test_timeline_recorded(rng):
    layer = make_layer("topk").eval()
    shards = make_shards(rng)
    group = ExpertParallelGroup(layer, 4, pipeline="overlap", num_chunks=3)
    group.forward(shards)
    assert len(group.last_timeline) == 7 * 3
    for start, end in group.last_timeline.values():
        assert 0.0 <= start <= end
