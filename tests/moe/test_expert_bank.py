"""Parity suite for the batched expert bank.

The batched execution path (two ``bmm`` over stacked parameters, with
the occupancy shortcut) must be indistinguishable from the per-expert
loop reference *at every occupied slot*: bit-exact forward outputs
and gradients matching to 1e-6 (the occupancy shortcut re-associates
a few reductions, so the last bits of parameter gradients may
legitimately differ).  Padding slots are zero-filled by the batched
path — the loop reference runs the FFN on the zero rows and produces
``fc2(act(b1))`` there instead — but every combine carries a zero
weight at unoccupied slots, so parity is asserted on the occupied
prefix plus zero padding (and end-to-end through the layer, where the
impls agree everywhere).  Also covers the per-expert <-> stacked
checkpoint layout conversion.
"""

import numpy as np
import pytest

from repro.moe import Experts, MoELayer
from repro.moe.parallel import ExpertParallelGroup
from repro.nn import (
    Tensor,
    load_checkpoint,
    save_checkpoint,
    stack_expert_state,
    unstack_expert_state,
)


def make_pair(num_experts, model_dim, hidden_dim, seed=0):
    """The same seeded bank twice: loop reference and batched."""
    loop = Experts(
        num_experts, model_dim, hidden_dim,
        np.random.default_rng(seed), expert_impl="loop",
    )
    batched = Experts(
        num_experts, model_dim, hidden_dim,
        np.random.default_rng(seed), expert_impl="batched",
    )
    return loop, batched


def make_dispatched(rng, num_experts, capacity, model_dim, fill):
    """A capacity buffer with ``fill[e]`` occupied prefix slots."""
    x = np.zeros((num_experts, capacity, model_dim), dtype=np.float32)
    for e, f in enumerate(fill):
        x[e, :f] = rng.standard_normal((f, model_dim))
    return x, np.asarray(fill, dtype=np.int64)


CASES = [
    # (E, C, M, H, fill) — zero-occupancy experts, partial, full, E=1.
    (4, 6, 8, 16, [0, 3, 6, 1]),
    (4, 6, 8, 16, [0, 0, 0, 0]),
    (4, 6, 8, 16, [6, 6, 6, 6]),
    (1, 5, 8, 16, [2]),
]


def occupied_mask(E, C, fill):
    """(E, C) bool mask of the occupied slot prefix."""
    return np.arange(C)[None, :] < np.asarray(fill)[:, None]


@pytest.mark.parametrize("E,C,M,H,fill", CASES)
def test_forward_bitwise_parity(rng, E, C, M, H, fill):
    loop, batched = make_pair(E, M, H)
    x, load = make_dispatched(rng, E, C, M, fill)
    ref = loop(Tensor(x))
    occ = occupied_mask(E, C, fill)
    # Occupancy-aware path: bitwise at occupied slots, zeros in the
    # padding (the loop runs the FFN on the zero rows instead; no
    # combine ever reads those slots).
    out = batched(Tensor(x), expert_load=load).data
    np.testing.assert_array_equal(out[occ], ref.data[occ])
    np.testing.assert_array_equal(
        out[~occ], np.zeros_like(out[~occ])
    )
    # Without occupancy info every slot runs the GEMMs: bitwise
    # everywhere, padding included.
    np.testing.assert_array_equal(batched(Tensor(x)).data, ref.data)


@pytest.mark.parametrize("E,C,M,H,fill", CASES)
def test_gradient_parity(rng, E, C, M, H, fill):
    loop, batched = make_pair(E, M, H)
    x, load = make_dispatched(rng, E, C, M, fill)
    occupied = occupied_mask(E, C, fill)
    # Loss over the occupied slots only — what any combine reads.
    # (An unmasked loss would feed the loop's padding-slot responses
    # into its parameter gradients, a contribution no real consumer
    # ever creates and the zero-padded batched path never computes.)
    mask = Tensor(occupied[:, :, None].astype(np.float32))

    x_loop = Tensor(x, requires_grad=True)
    ((loop(x_loop) * mask) ** 2).sum().backward()
    x_bat = Tensor(x.copy(), requires_grad=True)
    ((batched(x_bat, expert_load=load) * mask) ** 2).sum().backward()

    # Input gradients at occupied slots (padding rows get zero
    # gradient under the masked loss in both impls).
    np.testing.assert_allclose(
        x_bat.grad[occupied], x_loop.grad[occupied], atol=1e-6
    )
    for name in ("w1", "b1", "w2", "b2"):
        np.testing.assert_allclose(
            getattr(batched, name).grad,
            getattr(loop, name).grad,
            atol=1e-6,
            err_msg=name,
        )


def test_moe_layer_end_to_end_parity(rng):
    """Through gate + dispatch + combine, the impls agree everywhere."""
    kwargs = dict(top_k=2, capacity_factor=1.5)
    loop = MoELayer(8, 16, 4, np.random.default_rng(3),
                    expert_impl="loop", **kwargs)
    batched = MoELayer(8, 16, 4, np.random.default_rng(3),
                       expert_impl="batched", **kwargs)
    x = rng.standard_normal((12, 8)).astype(np.float32)

    x_loop = Tensor(x, requires_grad=True)
    out_loop = loop(x_loop)
    x_bat = Tensor(x.copy(), requires_grad=True)
    out_bat = batched(x_bat)
    np.testing.assert_array_equal(out_bat.data, out_loop.data)

    ((out_loop ** 2).mean() + 0.01 * loop.last_aux_loss).backward()
    ((out_bat ** 2).mean() + 0.01 * batched.last_aux_loss).backward()
    np.testing.assert_allclose(x_bat.grad, x_loop.grad, atol=1e-6)
    for (name, p_bat), (_, p_loop) in zip(
        batched.named_parameters(), loop.named_parameters()
    ):
        np.testing.assert_allclose(
            p_bat.grad, p_loop.grad, atol=1e-6, err_msg=name
        )


def test_expert_parallel_group_parity(rng):
    """The multi-worker execution reproduces the batched layer.

    capacity_factor >= E/k so no token is dropped (drop resolution is
    FCFS in token order, which depends on sharding).
    """
    layer = MoELayer(
        8, 16, 4, np.random.default_rng(5), top_k=2, capacity_factor=2.0
    ).eval()
    x = rng.standard_normal((16, 8)).astype(np.float32)
    single = layer(Tensor(x)).data
    group = ExpertParallelGroup(layer, num_workers=2)
    distributed = group.forward_concatenated([x[:8], x[8:]])
    np.testing.assert_allclose(distributed, single, rtol=1e-5, atol=1e-6)


def test_expert_load_validation(rng):
    _, batched = make_pair(4, 8, 16)
    x, _ = make_dispatched(rng, 4, 6, 8, [1, 2, 3, 4])
    with pytest.raises(ValueError):
        batched(Tensor(x), expert_load=np.array([1, 2]))


def test_run_expert_bounds(rng):
    _, batched = make_pair(2, 8, 16)
    with pytest.raises(IndexError):
        batched.run_expert(2, Tensor(np.zeros((3, 8), np.float32)))


# -- checkpoint layout conversion -------------------------------------------


def test_stack_unstack_round_trip():
    from repro.models import TransformerLM

    model = TransformerLM(
        vocab_size=20, model_dim=16, hidden_dim=24, num_layers=2,
        num_heads=2, moe=True, num_experts=4, max_seq_len=16, seed=0,
    )
    state = model.state_dict()
    legacy = unstack_expert_state(state)
    assert "blocks.items.0.ffn.experts.experts.items.0.fc1.weight" in legacy
    assert not any(k.endswith(".w1") for k in legacy)
    back = stack_expert_state(legacy)
    assert set(back) == set(state)
    for key in state:
        np.testing.assert_array_equal(back[key], state[key])


def test_stack_is_noop_on_stacked_state():
    from repro.models import TransformerLM

    model = TransformerLM(
        vocab_size=10, model_dim=8, hidden_dim=8, num_layers=1,
        num_heads=2, moe=True, num_experts=2, max_seq_len=8, seed=0,
    )
    state = model.state_dict()
    again = stack_expert_state(state)
    assert set(again) == set(state)


def test_stack_rejects_index_gaps():
    legacy = {
        "experts.items.0.fc1.weight": np.zeros((4, 8), np.float32),
        "experts.items.2.fc1.weight": np.zeros((4, 8), np.float32),
    }
    with pytest.raises(KeyError):
        stack_expert_state(legacy)


def test_per_expert_checkpoint_loads_into_stacked_model(tmp_path):
    """Legacy-layout archives load transparently, and round-trip."""
    from repro.models import TransformerLM

    def make(seed):
        return TransformerLM(
            vocab_size=20, model_dim=16, hidden_dim=24, num_layers=1,
            num_heads=2, moe=True, num_experts=4, max_seq_len=16,
            seed=seed,
        )

    model = make(0)
    path = tmp_path / "legacy.npz"
    save_checkpoint(model, path, {"step": 9}, expert_layout="per-expert")
    # The archive really is in the legacy key schema.
    with np.load(path) as archive:
        names = set(archive.files)
    assert any(".experts.items.0.fc1.weight" in n for n in names)
    assert not any(n.endswith(".w1") for n in names)

    clone = make(7)
    assert load_checkpoint(clone, path) == {"step": 9}
    tokens = np.random.default_rng(0).integers(0, 20, (2, 8))
    np.testing.assert_array_equal(clone(tokens).data, model(tokens).data)

    with pytest.raises(ValueError):
        save_checkpoint(model, path, expert_layout="diagonal")


def test_default_expert_impl_context():
    from repro.moe import MoELayer, default_expert_impl

    rng = np.random.default_rng(1)
    assert Experts(2, 8, 16, rng).expert_impl == "grouped"
    with default_expert_impl("loop"):
        assert Experts(2, 8, 16, rng).expert_impl == "loop"
        assert MoELayer(8, 16, 4, rng).experts.expert_impl == "loop"
        # An explicit argument still wins over the ambient default.
        assert (
            Experts(2, 8, 16, rng, expert_impl="batched").expert_impl
            == "batched"
        )
    assert Experts(2, 8, 16, rng).expert_impl == "grouped"
    with pytest.raises(ValueError):
        with default_expert_impl("vectorized"):
            pass
