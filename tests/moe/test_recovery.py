"""Tests of elastic recovery: detect → adopt → re-instantiate → rebalance."""

import numpy as np
import pytest

from repro.faults import FaultPlan, single_straggler
from repro.faults.recovery import (
    RecoveryController,
    RecoveryDemo,
    load_recovery_demo,
    price_reshard,
    reshard_vs_degraded,
    save_recovery_demo,
)
from repro.moe import MoELayer
from repro.moe.parallel import ExpertParallelGroup
from repro.nn import Tensor, xavier_uniform
from repro.nn.serialization import save_checkpoint

NUM_EXPERTS = 8
NUM_WORKERS = 4


def make_layer(seed=0):
    return MoELayer(
        model_dim=16,
        hidden_dim=24,
        num_experts=NUM_EXPERTS,
        rng=np.random.default_rng(seed),
        top_k=2,
        # cf >= E/k: no drops, the precondition for exact parity.
        capacity_factor=NUM_EXPERTS / 2.0,
    ).eval()


@pytest.fixture
def tokens(rng):
    return rng.standard_normal((32, 16)).astype(np.float32)


def shards_of(tokens):
    return list(np.split(tokens, NUM_WORKERS))


def test_recover_from_checkpoint_is_bit_exact(tmp_path, tokens):
    layer = make_layer()
    group = ExpertParallelGroup(layer, NUM_WORKERS)
    shards = shards_of(tokens)
    healthy = group.forward_concatenated(shards)
    ck = tmp_path / "healthy.npz"
    save_checkpoint(layer, ck, placement=group.placement)

    group.set_dead_workers({1})
    degraded = group.forward_concatenated(shards)
    assert not np.array_equal(degraded, healthy)

    ctrl = RecoveryController(group, checkpoint=ck)
    event = ctrl.recover()
    assert event.kind == "recover"
    assert event.source == "checkpoint"
    assert event.dead_workers == (1,)
    assert event.adopted_experts == (2, 3)
    assert event.old_version == 0 and event.new_version == 1
    assert group.placement.version == 1
    assert not group.dead_workers
    assert group.placement.experts_of(1) == ()

    recovered = group.forward_concatenated(shards)
    # Checkpoint restore: the exact pre-kill parameters came back.
    np.testing.assert_array_equal(recovered, healthy)
    # The recovery parity guarantee: bit-identical to a freshly built
    # group on the same placement.
    fresh = ExpertParallelGroup(
        layer, NUM_WORKERS, placement=group.placement
    ).forward_concatenated(shards)
    np.testing.assert_array_equal(recovered, fresh)
    # ... in both pipeline modes.
    overlap = ExpertParallelGroup(
        layer, NUM_WORKERS, pipeline="overlap", num_chunks=2,
        placement=group.placement,
    ).forward_concatenated(shards)
    np.testing.assert_array_equal(recovered, overlap)
    # ... and to the single-process layer itself.
    np.testing.assert_array_equal(recovered, layer(Tensor(tokens)).data)


def test_recover_by_seeded_reinit_is_deterministic(tokens):
    def run():
        layer = make_layer()
        group = ExpertParallelGroup(layer, NUM_WORKERS)
        group.set_dead_workers({1})
        ctrl = RecoveryController(group, reinit_seed=7)
        event = ctrl.recover()
        return layer, event, group.forward_concatenated(shards_of(tokens))

    layer_a, event_a, out_a = run()
    _, _, out_b = run()
    assert event_a.source == "reinit"
    np.testing.assert_array_equal(out_a, out_b)
    # The documented semantics: expert e is drawn from
    # default_rng((reinit_seed, new_version, e)) exactly as the
    # constructor draws one expert — fc1 xavier, fc2 xavier, zero bias.
    rng = np.random.default_rng((7, 1, 2))
    np.testing.assert_array_equal(
        layer_a.experts.w1.data[2], xavier_uniform(rng, 16, 24)
    )
    np.testing.assert_array_equal(
        layer_a.experts.w2.data[2], xavier_uniform(rng, 24, 16)
    )
    assert np.all(layer_a.experts.b1.data[2] == 0)
    assert np.all(layer_a.experts.b2.data[2] == 0)
    # Untouched experts keep their original parameters.
    pristine = make_layer()
    np.testing.assert_array_equal(
        layer_a.experts.w1.data[0], pristine.experts.w1.data[0]
    )


def test_recover_without_dead_workers_raises():
    group = ExpertParallelGroup(make_layer(), NUM_WORKERS)
    with pytest.raises(ValueError, match="no dead workers"):
        RecoveryController(group).recover()


def test_repeated_failures_never_use_retired_ranks(tokens):
    group = ExpertParallelGroup(make_layer(), NUM_WORKERS)
    ctrl = RecoveryController(group, reinit_seed=3)
    group.set_dead_workers({1})
    ctrl.recover()
    group.set_dead_workers({0})
    event = ctrl.recover()
    assert ctrl.retired == frozenset({0, 1})
    assert group.placement.experts_of(0) == ()
    assert group.placement.experts_of(1) == ()
    # All experts live on the two remaining survivors.
    assert sum(len(group.placement.experts_of(w)) for w in (2, 3)) == 8
    assert event.new_version == 2
    out = group.forward_concatenated(shards_of(tokens))
    fresh = ExpertParallelGroup(
        group.layer, NUM_WORKERS, placement=group.placement
    ).forward_concatenated(shards_of(tokens))
    np.testing.assert_array_equal(out, fresh)


def test_scale_up_moves_experts_without_changing_outputs(tokens):
    layer = make_layer()
    group = ExpertParallelGroup(layer, NUM_WORKERS)
    shards = shards_of(tokens)
    before = group.forward_concatenated(shards)
    ctrl = RecoveryController(group)
    event = ctrl.scale_up()
    assert event.kind == "scale-up"
    assert event.source == "move"
    assert group.num_workers == NUM_WORKERS + 1
    assert len(group.placement.experts_of(NUM_WORKERS)) == (
        NUM_EXPERTS // (NUM_WORKERS + 1)
    )
    # Parameters only moved; the math is unchanged.  The new worker
    # contributes an empty token shard.
    after = group.forward_concatenated(shards + [tokens[:0]])
    np.testing.assert_array_equal(after, before)


def test_scale_up_with_dead_workers_raises():
    group = ExpertParallelGroup(make_layer(), NUM_WORKERS)
    group.set_dead_workers({2})
    with pytest.raises(RuntimeError, match="recover"):
        RecoveryController(group).scale_up()


def test_checkpoint_bank_prefix_disambiguates(tmp_path, tokens):
    from repro.models import TransformerLM

    lm = TransformerLM(
        vocab_size=20, model_dim=16, hidden_dim=24, num_layers=1,
        num_heads=2, moe=True, num_experts=NUM_EXPERTS, max_seq_len=16,
        seed=0,
    )
    ck = tmp_path / "lm.npz"
    save_checkpoint(lm, ck)
    group = ExpertParallelGroup(make_layer(), NUM_WORKERS)
    group.set_dead_workers({1})
    # The LM checkpoint holds exactly one 8-expert bank, so recovery
    # finds it without a prefix — but its shapes must match the live
    # bank or the restore is rejected.
    ctrl = RecoveryController(group, checkpoint=ck)
    events = ctrl.recover()
    assert events.source == "checkpoint"
    with pytest.raises(KeyError, match="no expert bank"):
        group2 = ExpertParallelGroup(make_layer(), NUM_WORKERS)
        group2.set_dead_workers({1})
        RecoveryController(
            group2, checkpoint=ck, bank_prefix="nope"
        ).recover()


# -- in-flight guards (S1) -------------------------------------------------


def test_group_mutations_blocked_mid_forward(monkeypatch, tokens):
    layer = make_layer()
    group = ExpertParallelGroup(layer, NUM_WORKERS)
    errors = []
    original = type(layer.experts).run_grouped

    def hooked(self, *args, **kwargs):
        for mutate in (
            lambda: group.set_dead_workers({1}),
            lambda: group.set_placement(group.placement.bump()),
            lambda: group.admit_worker(),
        ):
            with pytest.raises(RuntimeError, match="in flight"):
                mutate()
            errors.append(True)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(type(layer.experts), "run_grouped", hooked)
    group.forward(shards_of(tokens))
    assert errors  # the hook actually ran
    # The group is healthy after the forward: mutations work again.
    group.set_dead_workers({1})
    assert group.dead_workers == frozenset({1})


def test_layer_dead_expert_swap_blocked_mid_forward(monkeypatch, tokens):
    layer = make_layer()
    original = type(layer.experts).run_grouped
    caught = []

    def hooked(self, *args, **kwargs):
        with pytest.raises(RuntimeError, match="in flight"):
            layer.set_dead_experts({0})
        caught.append(True)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(type(layer.experts), "run_grouped", hooked)
    layer(Tensor(tokens))
    assert caught
    layer.set_dead_experts({0})  # fine between forwards


# -- pricing and the decision hook ----------------------------------------


def test_price_reshard_on_healthy_and_faulted_cluster(small_spec):
    per_gpu = 1 << 20
    healthy = price_reshard(small_spec, per_gpu)
    assert healthy > 0
    plan = FaultPlan(seed=0, stragglers=single_straggler(
        rank=0, slowdown=4.0
    ).stragglers)
    faulted = price_reshard(small_spec, per_gpu, faults=plan)
    assert faulted >= healthy
    assert price_reshard(small_spec, 0) == 0.0
    with pytest.raises(ValueError):
        price_reshard(small_spec, -1)


def test_reshard_vs_degraded_decision():
    d = reshard_vs_degraded(1.0, 0.010, 0.008, 1000)
    assert d.breakeven_steps == pytest.approx(500.0)
    assert d.recommendation == "reshard"
    assert d.reshard_total_s == pytest.approx(1.0 + 8.0)
    # No per-step saving: resharding never pays off in time.
    d2 = reshard_vs_degraded(1.0, 0.008, 0.010, 1000)
    assert d2.breakeven_steps == float("inf")
    assert d2.recommendation == "continue"
    # Short horizon flips the call even with a saving.
    d3 = reshard_vs_degraded(1.0, 0.010, 0.008, 10)
    assert d3.recommendation == "continue"
    with pytest.raises(ValueError):
        reshard_vs_degraded(-1.0, 0.01, 0.01, 10)
    with pytest.raises(ValueError):
        reshard_vs_degraded(1.0, 0.01, 0.01, -1)


def test_event_pricing_uses_event_bytes(small_spec, tmp_path):
    group = ExpertParallelGroup(make_layer(), NUM_WORKERS)
    ctrl = RecoveryController(group, reinit_seed=0)
    group.set_dead_workers({1})
    event = ctrl.recover()
    assert event.reshard_per_gpu_bytes > 0
    seconds = ctrl.price_event(event, small_spec)
    assert seconds == price_reshard(small_spec, event.reshard_per_gpu_bytes)


# -- demo plans (S6) -------------------------------------------------------


def test_recovery_demo_round_trip(tmp_path):
    demo = RecoveryDemo(
        kill_worker=2,
        strategy="checkpoint",
        faults=single_straggler(rank=1, slowdown=3.0),
    )
    path = tmp_path / "demo.json"
    save_recovery_demo(demo, path)
    assert load_recovery_demo(path) == demo


def test_recovery_demo_validation():
    with pytest.raises(ValueError, match="kill_worker"):
        RecoveryDemo(kill_worker=9)
    with pytest.raises(ValueError, match="strategy"):
        RecoveryDemo(strategy="wish")
    with pytest.raises(ValueError, match="divisible"):
        RecoveryDemo(num_workers=3)
    with pytest.raises(ValueError, match="unknown"):
        RecoveryDemo.from_json_dict({"bogus": 1})
