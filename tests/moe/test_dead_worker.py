"""Graceful degradation: dead experts / dead workers / anomaly guard.

The reproduction's resilience claim mirrors its substitution claim:
the single-process :class:`MoELayer` with ``dead_experts`` set is
numerically identical to an :class:`ExpertParallelGroup` that lost the
workers hosting those experts — so convergence-under-failure results
measured single-process are exactly what the degraded multi-worker
system would produce.
"""

import math

import numpy as np
import pytest

from repro.data import LMConfig, SyntheticLM
from repro.models.gpt2_tiny import TransformerLM
from repro.moe import MoELayer
from repro.moe.parallel import ExpertParallelGroup
from repro.nn import Tensor
from repro.nn.optim import Adam, clip_grad_norm
from repro.training import AnomalyGuard, TrainingDivergedError, train_lm


def make_layer(rng, num_experts=4, capacity_factor=4.0, **kwargs):
    return MoELayer(
        model_dim=16,
        hidden_dim=24,
        num_experts=num_experts,
        rng=rng,
        top_k=2,
        capacity_factor=capacity_factor,
        **kwargs,
    )


# -- GateOutput.with_experts_dropped ---------------------------------------
def test_dropped_experts_zeroed_and_renormalized(rng):
    layer = make_layer(rng).eval()
    tokens = rng.standard_normal((12, 16)).astype(np.float32)
    out = layer.gate(Tensor(tokens))
    degraded = out.with_experts_dropped({1})
    # No surviving assignment references expert 1.
    _, expert_ids, _, _ = degraded._kept_coords()
    assert 1 not in expert_ids
    assert degraded.expert_load[1] == 0
    assert degraded.dropped_tokens >= out.dropped_tokens
    # Token-major renorm: surviving weights of each token sum to ~1
    # (or 0 where every expert died).
    sums = degraded.gate_weights.data.sum(axis=-1)
    for s in sums:
        assert abs(s - 1.0) < 1e-5 or abs(s) < 1e-5


def test_with_no_dead_experts_is_identity(rng):
    layer = make_layer(rng).eval()
    out = layer.gate(Tensor(rng.standard_normal((8, 16)).astype(np.float32)))
    assert out.with_experts_dropped(()) is out


def test_with_experts_dropped_validates_range(rng):
    layer = make_layer(rng).eval()
    out = layer.gate(Tensor(rng.standard_normal((8, 16)).astype(np.float32)))
    with pytest.raises(ValueError):
        out.with_experts_dropped({4})


def test_expert_choice_drop_zeroes_without_renorm(rng):
    layer = make_layer(rng, gate_type="expert-choice").eval()
    tokens = rng.standard_normal((16, 16)).astype(np.float32)
    out = layer.gate(Tensor(tokens))
    degraded = out.with_experts_dropped({0})
    dead = out.expert_indices == 0
    # Dead entries zeroed; surviving entries carry their original raw
    # affinities untouched (EC does not renormalize per token).
    assert np.all(degraded.gate_weights.data[dead] == 0.0)
    np.testing.assert_array_equal(
        degraded.gate_weights.data[~dead], out.gate_weights.data[~dead]
    )


def test_renorm_carries_gradient(rng):
    """Degraded combine weights still backprop into the router."""
    layer = make_layer(rng).eval()
    tokens = rng.standard_normal((8, 16)).astype(np.float32)
    layer.set_dead_experts({2})
    out = layer(Tensor(tokens, requires_grad=True))
    out.sum().backward()
    assert layer.gate.wg.weight.grad is not None
    assert np.isfinite(layer.gate.wg.weight.grad).all()


# -- MoELayer.set_dead_experts ---------------------------------------------
def test_layer_zero_dead_is_bit_identical(rng):
    layer = make_layer(rng).eval()
    tokens = rng.standard_normal((12, 16)).astype(np.float32)
    before = layer(Tensor(tokens)).data.copy()
    layer.set_dead_experts({1})
    layer.set_dead_experts(())  # restored to health
    after = layer(Tensor(tokens)).data
    np.testing.assert_array_equal(before, after)


def test_layer_rejects_total_loss(rng):
    layer = make_layer(rng)
    with pytest.raises(ValueError, match="total loss"):
        layer.set_dead_experts({0, 1, 2, 3})
    with pytest.raises(ValueError):
        layer.set_dead_experts({7})


@pytest.mark.parametrize("expert_impl", ["loop", "batched", "grouped"])
def test_dead_expert_consistent_across_impls(rng, expert_impl):
    ref = make_layer(np.random.default_rng(5)).eval()
    alt = make_layer(np.random.default_rng(5), expert_impl=expert_impl).eval()
    tokens = np.random.default_rng(6).standard_normal((20, 16)).astype(
        np.float32
    )
    ref.set_dead_experts({3})
    alt.set_dead_experts({3})
    np.testing.assert_allclose(
        alt(Tensor(tokens)).data,
        ref(Tensor(tokens)).data,
        rtol=1e-5,
        atol=1e-6,
    )


# -- ExpertParallelGroup.dead_workers --------------------------------------
def test_group_validates_dead_workers(rng):
    layer = make_layer(rng)
    group = ExpertParallelGroup(layer, num_workers=4)
    with pytest.raises(ValueError):
        group.set_dead_workers({4})
    with pytest.raises(ValueError, match="total loss"):
        group.set_dead_workers({0, 1, 2, 3})
    group.set_dead_workers({2})
    assert group.dead_experts == {2}
    group.set_dead_workers(())
    assert group.dead_workers == frozenset()


@pytest.mark.parametrize("num_workers,dead", [(2, {0}), (4, {1}), (4, {0, 3})])
def test_dead_worker_matches_layer_with_dead_experts(rng, num_workers, dead):
    """The substitution claim under failure: group with dead workers ==
    single-process layer with those workers' experts dead."""
    layer = make_layer(rng).eval()
    group = ExpertParallelGroup(layer, num_workers=num_workers, dead_workers=dead)
    tokens = rng.standard_normal((24, 16)).astype(np.float32)
    shards = list(np.split(tokens, num_workers))

    layer.set_dead_experts(group.dead_experts)
    single = layer(Tensor(tokens)).data
    layer.set_dead_experts(())
    parallel = group.forward_concatenated(shards)
    np.testing.assert_allclose(parallel, single, rtol=1e-5, atol=1e-6)


def test_dead_worker_receives_and_sends_nothing(rng):
    layer = make_layer(rng).eval()
    group = ExpertParallelGroup(layer, num_workers=4, dead_workers={1})
    tokens = rng.standard_normal((32, 16)).astype(np.float32)
    group.forward(list(np.split(tokens, 4)))
    assert group.last_dispatch_traffic.matrix[:, 1].sum() == 0.0
    assert group.last_combine_traffic.matrix[1, :].sum() == 0.0


def test_group_zero_dead_is_bit_identical(rng):
    layer = make_layer(rng).eval()
    tokens = rng.standard_normal((24, 16)).astype(np.float32)
    shards = list(np.split(tokens, 4))
    healthy = ExpertParallelGroup(layer, num_workers=4)
    toggled = ExpertParallelGroup(layer, num_workers=4, dead_workers={2})
    toggled.set_dead_workers(())
    np.testing.assert_array_equal(
        toggled.forward_concatenated(shards),
        healthy.forward_concatenated(shards),
    )


# -- AnomalyGuard -----------------------------------------------------------
def test_guard_passes_healthy_steps():
    guard = AnomalyGuard(max_consecutive_skips=2)
    assert guard.step_is_safe(1.0, 0.5)
    assert guard.skipped_steps == 0


def test_guard_skips_then_recovers():
    guard = AnomalyGuard(max_consecutive_skips=2)
    assert not guard.step_is_safe(float("nan"), 1.0)
    assert not guard.step_is_safe(1.0, float("inf"))
    assert guard.consecutive_skips == 2
    assert guard.step_is_safe(1.0, 1.0)  # budget restored
    assert guard.consecutive_skips == 0
    assert guard.skipped_steps == 2
    assert "grad-norm" in guard.last_reason


def test_guard_raises_on_exhausted_budget():
    guard = AnomalyGuard(max_consecutive_skips=1)
    assert not guard.step_is_safe(float("nan"), 1.0)
    with pytest.raises(TrainingDivergedError):
        guard.step_is_safe(float("nan"), 1.0)


def test_guard_validates_budget():
    with pytest.raises(ValueError):
        AnomalyGuard(max_consecutive_skips=0)


def test_guarded_training_skips_poisoned_step():
    """A mid-run NaN parameter poisoning is absorbed: the guard skips
    the poisoned steps and the run finishes with finite weights."""
    corpus = SyntheticLM(
        LMConfig(num_words=12, num_topics=2, seq_len=16, branching=2)
    )
    model = TransformerLM(
        vocab_size=corpus.vocab_size,
        model_dim=16,
        hidden_dim=32,
        num_layers=1,
        num_heads=2,
        max_seq_len=16,
        moe=True,
        num_experts=4,
        seed=0,
    )
    guard = AnomalyGuard(max_consecutive_skips=5)
    # Poison one expert weight: the first steps produce non-finite
    # loss; the guard must keep the optimizer from stepping into it.
    moe = model.blocks[0].moe_layer
    poisoned = moe.experts.w1
    original = poisoned.data.copy()
    poisoned.data[0, 0, 0] = np.nan

    history_losses = []
    from repro.nn.optim import Adam as _Adam

    optimizer = _Adam(model.parameters(), lr=1e-3)
    model.train()
    for step, tokens in enumerate(corpus.batches(8, 4, seed=0)):
        optimizer.zero_grad()
        loss = model.loss(tokens)
        loss.backward()
        grad_norm = clip_grad_norm(model.parameters(), 1.0)
        if step == 1:
            poisoned.data[:] = original  # operator replaced the board
        if guard.step_is_safe(float(loss.data), grad_norm):
            optimizer.step()
        history_losses.append(float(loss.data))
    assert guard.skipped_steps >= 1
    for p in model.parameters():
        assert np.isfinite(p.data).all()


# -- mid-training dead worker ----------------------------------------------
def _train_with_failure(dead_experts, kill_at, steps=24):
    """Synthetic-LM training; ``dead_experts`` go down at ``kill_at``.

    Documented tolerance: losing 1 of 4 experts per layer mid-run must
    keep every loss finite and the smoothed final loss within 25 % of
    the clean run's (relative), the bound asserted below and quoted in
    docs/architecture.md.
    """
    corpus = SyntheticLM(
        LMConfig(num_words=16, num_topics=4, seq_len=16, branching=2, seed=1)
    )
    model = TransformerLM(
        vocab_size=corpus.vocab_size,
        model_dim=16,
        hidden_dim=32,
        num_layers=2,
        num_heads=2,
        max_seq_len=16,
        moe=True,
        num_experts=4,
        capacity_factor=2.0,
        seed=3,
    )
    moe_layers = [b.moe_layer for b in model.blocks if b.moe_layer is not None]
    assert moe_layers
    guard = AnomalyGuard()
    optimizer = Adam(model.parameters(), lr=3e-3)
    losses = []
    model.train()
    for step, tokens in enumerate(corpus.batches(8, steps, seed=2)):
        if step == kill_at and dead_experts:
            for moe in moe_layers:
                moe.set_dead_experts(dead_experts)
        optimizer.zero_grad()
        loss = model.loss(tokens)
        loss.backward()
        grad_norm = clip_grad_norm(model.parameters(), 1.0)
        if guard.step_is_safe(float(loss.data), grad_norm):
            optimizer.step()
        losses.append(float(loss.data))
    return losses


def test_dead_worker_mid_training_loss_stays_finite_and_bounded():
    clean = _train_with_failure(frozenset(), kill_at=0)
    degraded = _train_with_failure({1}, kill_at=8)
    assert all(math.isfinite(x) for x in degraded)
    clean_tail = float(np.mean(clean[-6:]))
    degraded_tail = float(np.mean(degraded[-6:]))
    # Documented tolerance (docs/architecture.md): <= 25% relative.
    assert degraded_tail <= clean_tail * 1.25
    # And the failure is actually visible before adaptation: the steps
    # right after the kill are no better than clean's.
    assert degraded[8] >= min(clean) * 0.9


def test_zero_faults_training_is_bit_identical():
    a = _train_with_failure(frozenset(), kill_at=0)
    b = _train_with_failure(frozenset(), kill_at=5)
    assert a == b


def test_train_lm_accepts_guard():
    corpus = SyntheticLM(
        LMConfig(num_words=12, num_topics=2, seq_len=12, branching=2)
    )
    model = TransformerLM(
        vocab_size=corpus.vocab_size, model_dim=16, hidden_dim=24,
        num_layers=1, num_heads=2, max_seq_len=12, seed=0,
    )
    history = train_lm(
        model, corpus, steps=3, batch_size=4, guard=AnomalyGuard()
    )
    assert len(history.losses) == 3
    assert all(math.isfinite(x) for x in history.losses)
