"""Tests of the versioned expert→worker placement map."""

import json

import numpy as np
import pytest

from repro.moe import (
    ExpertPlacement,
    expert_param_bytes,
    reshard_moves,
    reshard_traffic,
)


def test_contiguous_matches_historical_owner_arithmetic():
    pl = ExpertPlacement.contiguous(8, 4)
    assert pl.owners == (0, 0, 1, 1, 2, 2, 3, 3)
    assert pl.is_contiguous
    assert pl.version == 0
    assert [pl.owner(e) for e in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
    assert pl.experts_of(2) == (4, 5)
    assert pl.counts() == (2, 2, 2, 2)


def test_contiguous_requires_divisibility():
    with pytest.raises(ValueError, match="divisible"):
        ExpertPlacement.contiguous(8, 3)


def test_arbitrary_placement_validation():
    pl = ExpertPlacement(4, 3, owners=(2, 0, 2, 1), version=7)
    assert not pl.is_contiguous
    assert pl.experts_of(2) == (0, 2)
    assert pl.counts() == (1, 1, 2)
    with pytest.raises(ValueError):
        ExpertPlacement(4, 3, owners=(0, 1, 2))  # wrong length
    with pytest.raises(ValueError):
        ExpertPlacement(4, 3, owners=(0, 1, 2, 3))  # owner out of range
    with pytest.raises(ValueError):
        ExpertPlacement(4, 3, owners=(0, 0, 0, 0), version=-1)


def test_owner_array_is_readonly():
    pl = ExpertPlacement.contiguous(4, 2)
    arr = pl.owner_array
    assert arr.dtype == np.int64
    with pytest.raises(ValueError):
        arr[0] = 1


def test_workers_removed_adopts_to_least_loaded_survivor():
    pl = ExpertPlacement.contiguous(8, 4)
    survived = pl.with_workers_removed({1})
    # Worker count unchanged; the dead worker just owns nothing.
    assert survived.num_workers == 4
    assert survived.experts_of(1) == ()
    assert survived.version == 1
    # Experts 2, 3 adopted one-by-one ascending, each to the least
    # loaded survivor with ties broken by lowest worker id.
    assert survived.owners == (0, 0, 0, 2, 2, 2, 3, 3)
    # Only the lost experts moved.
    assert reshard_moves(pl, survived) == ((2, 1, 0), (3, 1, 2))


def test_workers_removed_is_deterministic_and_order_free():
    pl = ExpertPlacement(8, 4, owners=(3, 0, 2, 0, 1, 3, 0, 2))
    a = pl.with_workers_removed({0, 2})
    b = pl.with_workers_removed({2, 0})
    assert a == b
    assert a.experts_of(0) == () and a.experts_of(2) == ()
    assert sorted(a.counts())[-1] - sorted(a.counts())[0] <= len(
        [e for e in range(8) if pl.owner(e) in (0, 2)]
    )


def test_removing_all_workers_raises():
    pl = ExpertPlacement.contiguous(4, 2)
    with pytest.raises(ValueError):
        pl.with_workers_removed({0, 1})


def test_worker_added_takes_fair_share_from_most_loaded():
    pl = ExpertPlacement.contiguous(8, 4)
    grown = pl.with_worker_added()
    assert grown.num_workers == 5
    assert grown.version == 1
    # 8 // 5 = 1 expert moves, from the most-loaded donor's high end.
    moves = reshard_moves(pl, grown)
    assert len(moves) == 1
    assert all(dst == 4 for _, _, dst in moves)
    assert len(grown.experts_of(4)) == 1


def test_json_round_trip_is_strict():
    pl = ExpertPlacement(8, 4, owners=(3, 0, 2, 0, 1, 3, 0, 2), version=5)
    blob = pl.to_json_dict()
    assert ExpertPlacement.from_json_dict(blob) == pl
    # Survives an actual JSON encode/decode.
    assert (
        ExpertPlacement.from_json_dict(json.loads(json.dumps(blob))) == pl
    )
    with pytest.raises(ValueError):
        ExpertPlacement.from_json_dict(dict(blob, bogus=1))
    incomplete = dict(blob)
    del incomplete["owners"]
    with pytest.raises(ValueError):
        ExpertPlacement.from_json_dict(incomplete)


def test_reshard_traffic_accounting():
    old = ExpertPlacement.contiguous(8, 4)
    new = old.with_workers_removed({1})
    moves = reshard_moves(old, new)
    bpe = expert_param_bytes(16, 24)
    assert bpe == 4 * (16 * 24 + 24 + 24 * 16 + 16)
    traffic = reshard_traffic(moves, bpe, new.num_workers)
    assert traffic["total_bytes"] == len(moves) * bpe
    # Worker 1 sends both lost experts; no receiver gets more than one.
    assert traffic["max_worker_send_bytes"] == 2 * bpe
    assert traffic["max_worker_recv_bytes"] == bpe
    assert traffic["per_gpu_bytes"] == 2 * bpe
    # No moves, no traffic.
    empty = reshard_traffic((), bpe, 4)
    assert empty["total_bytes"] == 0 and empty["per_gpu_bytes"] == 0


def test_bump_only_changes_version():
    pl = ExpertPlacement.contiguous(8, 4, version=3)
    bumped = pl.bump()
    assert bumped.version == 4
    assert bumped.owners == pl.owners
    assert reshard_moves(pl, bumped) == ()
