"""Sparse index routing must match the dense einsum reference exactly.

The sparse backend (``dispatch_mode="sparse"``) is a pure
reformulation of the GShard einsums — same outputs, same gradients —
so every case here checks both the forward values and the parameter /
input gradients against the dense path, including the edge cases the
index arithmetic could plausibly get wrong: dropped tokens (capacity
pressure) and experts that receive zero tokens.
"""

import numpy as np
import pytest

from repro.moe import (
    MoELayer,
    TopKGate,
    combine,
    combine_sparse,
    dispatch,
    dispatch_sparse,
)
from repro.nn import Tensor


def make_layers(rng_seed, top_k, capacity_factor, num_experts=4, dim=16):
    """Two MoELayers with identical parameters, one per dispatch mode."""
    layers = {}
    for mode in ("dense", "sparse"):
        rng = np.random.default_rng(rng_seed)
        layers[mode] = MoELayer(
            model_dim=dim,
            hidden_dim=2 * dim,
            num_experts=num_experts,
            rng=rng,
            top_k=top_k,
            capacity_factor=capacity_factor,
            dispatch_mode=mode,
        )
    for p_dense, p_sparse in zip(
        layers["dense"].parameters(), layers["sparse"].parameters()
    ):
        np.testing.assert_array_equal(p_dense.data, p_sparse.data)
    return layers


def run_step(layer, x_data):
    x = Tensor(x_data.copy(), requires_grad=True)
    y = layer(x)
    loss = (y**2).mean() + 0.01 * layer.last_aux_loss
    loss.backward()
    grads = [np.array(p.grad) for p in layer.parameters()]
    return np.array(y.data), np.array(x.grad), grads


@pytest.mark.parametrize("top_k", [1, 2])
@pytest.mark.parametrize("capacity_factor", [0.25, 1.0, 4.0])
def test_layer_outputs_and_grads_match(rng, top_k, capacity_factor):
    """Both backends agree at no-drop, heavy-drop and over-capacity."""
    layers = make_layers(3, top_k, capacity_factor)
    x_data = rng.standard_normal((24, 16)).astype(np.float32)

    y_d, xg_d, grads_d = run_step(layers["dense"], x_data)
    y_s, xg_s, grads_s = run_step(layers["sparse"], x_data)

    np.testing.assert_allclose(y_s, y_d, rtol=1e-5, atol=1e-6)
    np.testing.assert_allclose(xg_s, xg_d, rtol=1e-5, atol=1e-6)
    for g_s, g_d in zip(grads_s, grads_d):
        np.testing.assert_allclose(g_s, g_d, rtol=1e-5, atol=1e-6)


def test_dropped_tokens_present(rng):
    """The heavy-drop case really drops tokens (the test bites)."""
    layers = make_layers(3, 2, 0.25)
    x = Tensor(rng.standard_normal((24, 16)).astype(np.float32))
    layers["sparse"](x)
    assert layers["sparse"].last_gate_output.dropped_tokens > 0


def test_zero_token_expert(rng):
    """An expert nobody picks yields zero rows, identically in both."""
    gate_rng = np.random.default_rng(0)
    gate = TopKGate(8, 4, gate_rng, top_k=1, capacity_factor=4.0)
    # Steer every token to expert 0 by rigging the gate projection.
    gate.wg.weight.data[:] = 0.0
    gate.wg.weight.data[:, 0] = 1.0
    x = Tensor(
        np.abs(rng.standard_normal((6, 8))).astype(np.float32),
        requires_grad=True,
    )
    out = gate(x.detach())
    assert np.all(out.expert_indices == 0)
    assert np.asarray(out.expert_load)[1:].sum() == 0

    routed_dense = dispatch(x, out.dispatch_mask)
    routed_sparse = dispatch_sparse(
        x, out.expert_indices, out.slot_indices, 4, out.capacity
    )
    np.testing.assert_allclose(
        routed_sparse.data, routed_dense.data, rtol=1e-6
    )
    # Idle experts' buffers are exactly zero.
    assert np.all(routed_sparse.data[1:] == 0.0)

    merged_dense = combine(routed_dense, out.combine_weights)
    merged_sparse = combine_sparse(
        routed_sparse,
        out.expert_indices,
        out.slot_indices,
        out.gate_weights,
        6,
    )
    np.testing.assert_allclose(
        merged_sparse.data, merged_dense.data, rtol=1e-5, atol=1e-6
    )


def test_dense_mode_still_selectable(rng):
    layer = MoELayer(
        8, 16, 4, np.random.default_rng(1), dispatch_mode="dense"
    )
    assert layer.dispatch_mode == "dense"
    y = layer(Tensor(rng.standard_normal((10, 8)).astype(np.float32)))
    assert y.shape == (10, 8)


def test_default_dispatch_mode_context():
    from repro.moe import default_dispatch_mode

    rng = np.random.default_rng(1)
    assert MoELayer(8, 16, 4, rng).dispatch_mode == "sparse"
    with default_dispatch_mode("dense"):
        assert MoELayer(8, 16, 4, rng).dispatch_mode == "dense"
        # An explicit argument still wins over the ambient default.
        assert (
            MoELayer(8, 16, 4, rng, dispatch_mode="sparse").dispatch_mode
            == "sparse"
        )
    assert MoELayer(8, 16, 4, rng).dispatch_mode == "sparse"
    with pytest.raises(ValueError):
        with default_dispatch_mode("fast"):
            pass


def test_unknown_dispatch_mode_rejected():
    with pytest.raises(ValueError, match="dispatch_mode"):
        MoELayer(8, 16, 4, np.random.default_rng(1), dispatch_mode="fast")


def test_dispatch_sparse_rejects_shape_mismatch(rng):
    x = Tensor(rng.standard_normal((4, 8)).astype(np.float32))
    expert_idx = np.zeros((4, 2), dtype=np.int64)
    slot_idx = np.zeros((4, 1), dtype=np.int64)
    with pytest.raises(ValueError):
        dispatch_sparse(x, expert_idx, slot_idx, 4, 2)


def test_flat_routing_requires_token_indices(rng):
    x = Tensor(rng.standard_normal((4, 8)).astype(np.float32))
    flat = np.zeros(3, dtype=np.int64)
    with pytest.raises(ValueError, match="token_indices"):
        dispatch_sparse(x, flat, flat, 4, 2)


def test_flat_form_matches_token_major_form(rng):
    """A (T, k) routing re-expressed flat routes identically."""
    gate = TopKGate(8, 4, np.random.default_rng(3), top_k=2)
    x = Tensor(
        rng.standard_normal((10, 8)).astype(np.float32), requires_grad=True
    )
    out = gate(x.detach())

    routed_tk = dispatch_sparse(
        x, out.expert_indices, out.slot_indices, 4, out.capacity
    )
    # Flatten (T, k) row-major: token t repeats k times.
    t_ids = np.repeat(np.arange(10), 2)
    e_flat = out.expert_indices.reshape(-1)
    s_flat = out.slot_indices.reshape(-1)
    w_flat = out.gate_weights.reshape(-1)
    routed_flat = dispatch_sparse(
        x, e_flat, s_flat, 4, out.capacity, token_indices=t_ids
    )
    np.testing.assert_array_equal(routed_flat.data, routed_tk.data)

    merged_tk = combine_sparse(
        routed_tk, out.expert_indices, out.slot_indices,
        out.gate_weights, 10,
    )
    merged_flat = combine_sparse(
        routed_flat, e_flat, s_flat, w_flat, 10, token_indices=t_ids
    )
    np.testing.assert_allclose(
        merged_flat.data, merged_tk.data, rtol=1e-6, atol=1e-7
    )
