"""Tests of dispatch/combine, experts and the MoE layer."""

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.moe import Experts, MoELayer, combine, dispatch
from repro.nn import Tensor


def test_dispatch_places_tokens_in_slots(rng):
    toks = rng.standard_normal((3, 4)).astype(np.float32)
    mask = np.zeros((3, 2, 2), dtype=np.float32)
    mask[0, 0, 0] = 1  # token 0 -> expert 0 slot 0
    mask[1, 1, 0] = 1  # token 1 -> expert 1 slot 0
    mask[2, 0, 1] = 1  # token 2 -> expert 0 slot 1
    out = dispatch(Tensor(toks), mask)
    assert out.shape == (2, 2, 4)
    np.testing.assert_allclose(out.data[0, 0], toks[0])
    np.testing.assert_allclose(out.data[1, 0], toks[1])
    np.testing.assert_allclose(out.data[0, 1], toks[2])
    np.testing.assert_allclose(out.data[1, 1], 0.0)  # empty slot


def test_combine_weights_average(rng):
    expert_out = rng.standard_normal((2, 2, 4)).astype(np.float32)
    weights = np.zeros((1, 2, 2), dtype=np.float32)
    weights[0, 0, 0] = 0.3
    weights[0, 1, 1] = 0.7
    merged = combine(Tensor(expert_out), Tensor(weights))
    expected = 0.3 * expert_out[0, 0] + 0.7 * expert_out[1, 1]
    np.testing.assert_allclose(merged.data[0], expected, rtol=1e-5)


def test_dispatch_combine_roundtrip_identity(rng):
    """dispatch then combine with weight 1 returns routed tokens."""
    toks = rng.standard_normal((4, 8)).astype(np.float32)
    mask = np.zeros((4, 2, 2), dtype=np.float32)
    for t in range(4):
        mask[t, t % 2, t // 2] = 1.0
    routed = dispatch(Tensor(toks), mask)
    back = combine(routed, Tensor(mask))
    np.testing.assert_allclose(back.data, toks, rtol=1e-5)


def test_dispatch_validation(rng):
    with pytest.raises(ValueError):
        dispatch(Tensor(np.zeros((2, 3, 4))), np.zeros((2, 1, 1)))
    with pytest.raises(ValueError):
        dispatch(Tensor(np.zeros((2, 4))), np.zeros((3, 1, 1)))
    with pytest.raises(ValueError):
        combine(Tensor(np.zeros((2, 4))), Tensor(np.zeros((2, 1, 1))))


def test_experts_apply_independently(rng):
    experts = Experts(2, 4, 8, rng)
    x = rng.standard_normal((2, 3, 4)).astype(np.float32)
    out = experts(Tensor(x))
    assert out.shape == (2, 3, 4)
    # Expert 0 on expert-1's slice != expert 1 on expert-1's slice.
    alt = experts.run_expert(0, Tensor(x[1]))
    assert not np.allclose(alt.data, out.data[1])
    with pytest.raises(ValueError):
        experts(Tensor(np.zeros((3, 3, 4))))
    with pytest.raises(ValueError):  # wrong trailing model dim
        experts(Tensor(np.zeros((2, 3, 5))))


def test_moe_layer_shapes_2d_and_3d(rng):
    layer = MoELayer(8, 16, 4, rng, top_k=2, capacity_factor=1.5)
    out3 = layer(Tensor(rng.standard_normal((2, 6, 8)).astype(np.float32)))
    assert out3.shape == (2, 6, 8)
    out2 = layer(Tensor(rng.standard_normal((12, 8)).astype(np.float32)))
    assert out2.shape == (12, 8)
    with pytest.raises(ValueError):
        layer(Tensor(np.zeros(8)))


def test_moe_layer_records_aux_loss_and_stats(rng):
    layer = MoELayer(8, 16, 4, rng)
    layer(Tensor(rng.standard_normal((16, 8)).astype(np.float32)))
    assert layer.last_aux_loss is not None
    assert float(layer.last_aux_loss.data) > 0
    assert layer.last_gate_output.capacity >= 1


def test_moe_layer_end_to_end_gradients(rng):
    layer = MoELayer(8, 16, 4, rng, top_k=2)
    x = Tensor(
        rng.standard_normal((12, 8)).astype(np.float32), requires_grad=True
    )
    out = layer(x)
    ((out**2).mean() + 0.01 * layer.last_aux_loss).backward()
    assert x.grad is not None
    for name, p in layer.named_parameters():
        assert p.grad is not None, f"no grad for {name}"


def test_dropped_tokens_produce_zero_output(rng):
    """GShard semantics: over-capacity tokens emit zeros."""
    layer = MoELayer(8, 16, 2, rng, top_k=1, capacity_factor=0.25)
    x = Tensor(rng.standard_normal((16, 8)).astype(np.float32))
    out = layer(x)
    go = layer.last_gate_output
    dropped_tokens = go.dispatch_mask.sum(axis=(1, 2)) == 0
    assert dropped_tokens.any()  # capacity 2 per expert, 16 tokens
    np.testing.assert_allclose(
        out.data[dropped_tokens], 0.0, atol=1e-6
    )


def test_codec_perturbs_forward_but_preserves_shape(rng):
    seed_rng = lambda: np.random.default_rng(7)
    clean = MoELayer(8, 16, 4, seed_rng())
    lossy = MoELayer(8, 16, 4, seed_rng(), compressor=get_compressor("int8"))
    x = rng.standard_normal((12, 8)).astype(np.float32)
    y_clean = clean(Tensor(x))
    y_lossy = lossy(Tensor(x))
    assert y_lossy.shape == y_clean.shape
    assert not np.allclose(y_lossy.data, y_clean.data)
    # fp16 perturbation is much smaller than int8's.
    fp16 = MoELayer(8, 16, 4, seed_rng(), compressor=get_compressor("fp16"))
    y_fp16 = fp16(Tensor(x))
    err_fp16 = np.abs(y_fp16.data - y_clean.data).max()
    err_int8 = np.abs(y_lossy.data - y_clean.data).max()
    assert err_fp16 < err_int8


def test_codec_applied_to_gradients_too(rng):
    """The backward A2A also carries compressed tensors."""
    seed_rng = lambda: np.random.default_rng(3)
    clean = MoELayer(8, 16, 4, seed_rng())
    lossy = MoELayer(8, 16, 4, seed_rng(), compressor=get_compressor("int8"))
    x = rng.standard_normal((12, 8)).astype(np.float32)
    xc = Tensor(x, requires_grad=True)
    xl = Tensor(x.copy(), requires_grad=True)
    clean(xc).sum().backward()
    lossy(xl).sum().backward()
    assert not np.allclose(xc.grad, xl.grad)


def test_noop_codec_is_exactly_clean(rng):
    seed_rng = lambda: np.random.default_rng(5)
    clean = MoELayer(8, 16, 4, seed_rng())
    noop = MoELayer(8, 16, 4, seed_rng(), compressor=get_compressor("none"))
    x = rng.standard_normal((12, 8)).astype(np.float32)
    np.testing.assert_array_equal(
        clean(Tensor(x)).data, noop(Tensor(x)).data
    )
