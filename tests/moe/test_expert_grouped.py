"""Parity suite for the capacity-free grouped expert path.

Three-way matrix: ``grouped`` must be indistinguishable from the
``batched`` bank and the per-expert ``loop`` reference — bit-exact
forward where achievable (expert outputs always; combined tokens when
each token has at most two contributions, since two-term float adds
commute), gradients to 1e-6 (the grouped combine accumulates token
contributions in expert-sorted rather than assignment order, and
``segment_matmul`` re-associates the stacked weight-grad reductions).

Covers the routing shapes that stress the segment form: zero routed
tokens, every token on one expert, capacity drops, duplicate tokens
under expert-choice, E=1, and the literal multi-worker
``ExpertParallelGroup`` execution (which batches its received blocks
through the same ``run_grouped`` machinery).
"""

import numpy as np
import pytest

from repro.moe import (
    EXPERT_IMPLS,
    Experts,
    MoELayer,
    combine_grouped,
    combine_sparse,
    default_expert_impl,
    dispatch_grouped,
    dispatch_sparse,
)
from repro.moe.parallel import ExpertParallelGroup
from repro.nn import Tensor

IMPLS = ("loop", "batched", "grouped")


def run_layer(x0, impl, seed=3, **kwargs):
    """Build a seeded layer with ``impl`` and run one training step."""
    kwargs.setdefault("top_k", 2)
    kwargs.setdefault("capacity_factor", 1.25)
    bias_expert = kwargs.pop("bias_expert", None)
    layer = MoELayer(
        x0.shape[1], 16, kwargs.pop("num_experts", 4),
        np.random.default_rng(seed), expert_impl=impl, **kwargs,
    )
    if bias_expert is not None:
        layer.gate.wg.weight.data[:, bias_expert] += 10.0
    x = Tensor(x0.copy(), requires_grad=True)
    y = layer(x)
    ((y**2).mean() + 0.01 * layer.last_aux_loss).backward()
    return layer, x, y


def assert_three_way(x0, forward_exact=True, **kwargs):
    runs = {impl: run_layer(x0, impl, **kwargs) for impl in IMPLS}
    _, _, y_ref = runs["loop"]
    for impl in ("batched", "grouped"):
        _, _, y = runs[impl]
        if impl == "batched" or forward_exact:
            np.testing.assert_array_equal(y.data, y_ref.data, err_msg=impl)
        else:
            np.testing.assert_allclose(
                y.data, y_ref.data, atol=1e-6, err_msg=impl
            )
    layer_ref, x_ref, _ = runs["loop"]
    for impl in ("batched", "grouped"):
        layer, x, _ = runs[impl]
        np.testing.assert_allclose(
            x.grad, x_ref.grad, atol=1e-6, err_msg=f"{impl} input grad"
        )
        for (name, p), (_, p_ref) in zip(
            layer.named_parameters(), layer_ref.named_parameters()
        ):
            np.testing.assert_allclose(
                p.grad, p_ref.grad, atol=1e-6, err_msg=f"{impl} {name}"
            )


def test_topk_three_way_parity(rng):
    x0 = rng.standard_normal((24, 8)).astype(np.float32)
    assert_three_way(x0)


def test_zero_routed_tokens(rng):
    """T=0: empty segments everywhere, both gate families."""
    for gate_type in ("topk", "expert-choice"):
        layer = MoELayer(
            8, 16, 4, np.random.default_rng(3), top_k=2,
            gate_type=gate_type, expert_impl="grouped",
        )
        x = Tensor(np.zeros((0, 8), np.float32), requires_grad=True)
        y = layer(x)
        assert y.shape == (0, 8)
        ((y**2).sum() + 0.01 * layer.last_aux_loss).backward()
        assert x.grad is not None and x.grad.shape == (0, 8)


def test_all_tokens_to_one_expert(rng):
    """top_k=1 with a biased gate: one fat segment, three empty ones.

    Capacity clamps the fat expert, so this doubles as the drop case
    with maximally skewed segments.
    """
    x0 = rng.standard_normal((12, 8)).astype(np.float32)
    assert_three_way(x0, top_k=1, capacity_factor=1.0, bias_expert=2)
    # The gate really did concentrate: expert 2 fills to capacity.
    layer, _, _ = run_layer(x0, "grouped", top_k=1, capacity_factor=1.0,
                            bias_expert=2)
    out = layer.last_gate_output
    assert out.expert_load[2] == out.capacity
    assert out.dropped_tokens > 0


def test_dropped_tokens_under_capacity_pressure(rng):
    x0 = rng.standard_normal((32, 8)).astype(np.float32)
    assert_three_way(x0, capacity_factor=0.5)
    layer, _, _ = run_layer(x0, "grouped", capacity_factor=0.5)
    assert layer.last_gate_output.dropped_tokens > 0


def test_expert_choice_duplicates(rng):
    """EC routes one token to several experts (flat layout duplicates).

    Combined tokens can sum >2 contributions, so forward parity is to
    1e-6, not bitwise.
    """
    x0 = rng.standard_normal((16, 8)).astype(np.float32)
    assert_three_way(
        x0, forward_exact=False, gate_type="expert-choice",
        capacity_factor=2.0,
    )
    layer, _, _ = run_layer(x0, "grouped", gate_type="expert-choice",
                            capacity_factor=2.0)
    out = layer.last_gate_output
    tokens, counts = np.unique(out.token_indices, return_counts=True)
    assert counts.max() > 1  # a token really was chosen twice


def test_single_expert(rng):
    x0 = rng.standard_normal((10, 8)).astype(np.float32)
    assert_three_way(x0, num_experts=1, top_k=1)


def test_grouped_dispatch_combine_match_sparse(rng):
    """The sort-permutation form reproduces the sparse pair's answers."""
    from repro.moe import TopKGate

    gate = TopKGate(8, 4, np.random.default_rng(0), top_k=2,
                    capacity_factor=1.0)
    x = rng.standard_normal((20, 8)).astype(np.float32)
    out = gate(Tensor(x))

    rows, routing = dispatch_grouped(
        Tensor(x), out.expert_indices, out.slot_indices, out.num_experts,
        token_indices=out.token_indices,
    )
    assert int(routing.segment_counts.sum()) == rows.shape[0]
    np.testing.assert_array_equal(routing.segment_counts, out.expert_load)

    # Identity experts: combining the dispatched rows reproduces the
    # sparse backend's combine of the capacity buffer.
    merged_grouped = combine_grouped(
        rows, routing, out.gate_weights.detach(), out.num_tokens
    )
    buffer = dispatch_sparse(
        Tensor(x), out.expert_indices, out.slot_indices, out.num_experts,
        out.capacity,
    )
    merged_sparse = combine_sparse(
        buffer, out.expert_indices, out.slot_indices,
        out.gate_weights.detach(), out.num_tokens,
    )
    np.testing.assert_allclose(
        merged_grouped.data, merged_sparse.data, atol=1e-6
    )


@pytest.mark.parametrize("gate_type", ["topk", "expert-choice"])
def test_expert_parallel_group_grouped(rng, gate_type):
    """The multi-worker execution batches blocks via run_grouped.

    Must match both the single-process grouped layer and the loop-impl
    group (whose local compute is the one-block-at-a-time reference).
    """
    def make(impl):
        return MoELayer(
            8, 16, 4, np.random.default_rng(5), top_k=2,
            capacity_factor=2.0, gate_type=gate_type, expert_impl=impl,
        ).eval()

    x = rng.standard_normal((16, 8)).astype(np.float32)
    grouped_layer = make("grouped")
    grouped_group = ExpertParallelGroup(grouped_layer, num_workers=4)
    loop_group = ExpertParallelGroup(make("loop"), num_workers=4)
    shards = list(np.split(x, 4))

    out_grouped = grouped_group.forward_concatenated(shards)
    out_loop = loop_group.forward_concatenated(shards)
    np.testing.assert_array_equal(out_grouped, out_loop)

    if gate_type == "topk":  # EC drop sets depend on sharding
        single = grouped_layer(Tensor(x)).data
        np.testing.assert_allclose(out_grouped, single, rtol=1e-5,
                                   atol=1e-6)


def test_parallel_group_with_empty_shard(rng):
    layer = MoELayer(
        8, 16, 4, np.random.default_rng(5), top_k=2, capacity_factor=4.0,
        expert_impl="grouped",
    ).eval()
    group = ExpertParallelGroup(layer, num_workers=2)
    x = rng.standard_normal((8, 8)).astype(np.float32)
    out = group.forward_concatenated([x, np.zeros((0, 8), np.float32)])
    single = layer(Tensor(x)).data
    np.testing.assert_allclose(out, single, rtol=1e-5, atol=1e-6)


def test_transport_codec_reaches_grouped_path(rng):
    """The A2A codec roundtrip applies to the flat rows (both hops)."""
    from repro.compression import get_compressor

    def make(compressor):
        return MoELayer(
            8, 16, 4, np.random.default_rng(5), top_k=2,
            capacity_factor=2.0, expert_impl="grouped",
            compressor=compressor,
        ).eval()

    x = rng.standard_normal((16, 8)).astype(np.float32)
    clean = make(None)(Tensor(x)).data
    lossy_layer = make(get_compressor("zfp"))
    lossy = lossy_layer(Tensor(x)).data
    assert not np.array_equal(lossy, clean)
    assert np.abs(lossy - clean).max() < 0.15 * np.abs(clean).max() + 1e-3
    # last_dispatched is the flat pre-compression payload (N, M).
    out = lossy_layer.last_gate_output
    kept = int((np.asarray(out.slot_indices) >= 0).sum())
    assert lossy_layer.last_dispatched.shape == (kept, 8)


# -- shared impl-name validation ---------------------------------------------


def _expected_error(impl):
    return f"unknown expert_impl {impl!r}; expected one of {EXPERT_IMPLS}"


def test_impl_validation_is_shared_across_entry_points():
    """Every entry point rejects a typo with the identical message."""
    from repro.models import make_ffn

    rng = np.random.default_rng(0)
    entry_points = [
        lambda: Experts(2, 8, 16, rng, expert_impl="groupd"),
        lambda: MoELayer(8, 16, 2, rng, expert_impl="groupd"),
        lambda: make_ffn(8, 16, rng, moe=True, num_experts=2,
                         expert_impl="groupd"),
        lambda: default_expert_impl("groupd").__enter__(),
    ]
    for build in entry_points:
        with pytest.raises(ValueError) as err:
            build()
        assert str(err.value) == _expected_error("groupd")
    assert "grouped" in EXPERT_IMPLS  # the new impl is registered


def test_default_expert_impl_accepts_grouped():
    rng = np.random.default_rng(0)
    with default_expert_impl("grouped"):
        assert Experts(2, 8, 16, rng).expert_impl == "grouped"
        assert MoELayer(8, 16, 2, rng).experts.expert_impl == "grouped"
    assert Experts(2, 8, 16, rng).expert_impl == "grouped"
