"""Tests of expert-choice routing (the Section 8 composability claim)."""

import numpy as np
import pytest

from repro.moe import MoELayer
from repro.moe.gating_ec import ExpertChoiceGate
from repro.nn import Tensor


@pytest.fixture
def gate(rng):
    return ExpertChoiceGate(
        model_dim=16, num_experts=4, rng=rng, capacity_factor=1.0, top_k=2
    )


def tokens(rng, n=24, dim=16):
    return Tensor(rng.standard_normal((n, dim)).astype(np.float32))


def test_perfectly_balanced_by_construction(gate, rng):
    out = gate(tokens(rng))
    # Every expert is exactly at capacity: the defining property.
    assert np.all(out.expert_load == out.capacity)
    per_expert = out.dispatch_mask.sum(axis=(0, 2))
    np.testing.assert_array_equal(per_expert, out.capacity)


def test_capacity_formula(gate):
    assert gate.capacity(24) == int(np.ceil(1.0 * 2 * 24 / 4))
    # Capacity never exceeds the token count.
    assert gate.capacity(2) <= 2


def test_slots_uniquely_assigned(gate, rng):
    out = gate(tokens(rng))
    per_slot = out.dispatch_mask.sum(axis=0)
    np.testing.assert_array_equal(per_slot, 1.0)  # every slot filled


def test_tokens_can_be_unchosen(rng):
    # With low capacity, some tokens are selected by no expert.
    gate = ExpertChoiceGate(16, 2, rng, capacity_factor=0.25, top_k=1)
    out = gate(tokens(rng, n=32))
    assert out.dropped_tokens > 0
    chosen_per_token = out.dispatch_mask.sum(axis=(1, 2))
    assert (chosen_per_token == 0).sum() == out.dropped_tokens


def test_combine_weights_follow_affinity(gate, rng):
    t = tokens(rng)
    out = gate(t)
    w = out.combine_weights.data
    assert np.all(w >= 0)
    assert np.all(w[out.dispatch_mask == 0] == 0)
    assert w.max() <= 1.0 + 1e-6


def test_differentiable_through_affinity(gate, rng):
    x = Tensor(
        rng.standard_normal((12, 16)).astype(np.float32), requires_grad=True
    )
    out = gate(x)
    (out.combine_weights.sum() + out.aux_loss).backward()
    assert gate.wg.weight.grad is not None
    assert x.grad is not None


def test_validation(rng):
    with pytest.raises(ValueError):
        ExpertChoiceGate(16, 0, rng)
    with pytest.raises(ValueError):
        ExpertChoiceGate(16, 4, rng, capacity_factor=0)
    gate = ExpertChoiceGate(16, 4, rng)
    with pytest.raises(ValueError):
        gate(Tensor(np.zeros((2, 3, 16))))


def test_moe_layer_with_expert_choice_end_to_end(rng):
    layer = MoELayer(
        16, 24, 4, rng, capacity_factor=1.0, gate_type="expert-choice"
    )
    x = Tensor(
        rng.standard_normal((2, 10, 16)).astype(np.float32),
        requires_grad=True,
    )
    out = layer(x)
    assert out.shape == (2, 10, 16)
    ((out**2).mean() + 0.0 * layer.last_aux_loss).backward()
    assert x.grad is not None
    # Balanced load, unlike topk gating under the same inputs.
    go = layer.last_gate_output
    assert np.all(go.expert_load == go.capacity)


def test_unknown_gate_type_rejected(rng):
    with pytest.raises(ValueError):
        MoELayer(16, 24, 4, rng, gate_type="router-9000")
