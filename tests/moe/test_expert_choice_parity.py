"""Dense/sparse parity for expert-choice routing.

The tentpole claim of the flat sparse routing form: an
``ExpertChoiceGate`` behind ``dispatch_mode="sparse"`` computes
exactly what the dense GShard einsum reference computes — forward
values bit-for-bit, gradients (w.r.t. tokens, gate projection, and
experts) to float32 accumulation tolerance — across capacity
pressure, batches smaller than the expert count, zero-token batches,
and tokens selected by several experts at once.  The literal
multi-worker ``ExpertParallelGroup`` must agree under the same
switch.
"""

import numpy as np
import pytest

from repro.moe import MoELayer
from repro.moe.gating_ec import ExpertChoiceGate
from repro.moe.parallel import ExpertParallelGroup
from repro.nn import Tensor

CAPACITY_FACTORS = (0.5, 1.0, 2.0)


def make_ec_layers(rng_seed, capacity_factor, num_experts=4, dim=16, top_k=2):
    """Two parameter-identical EC MoELayers, one per dispatch mode."""
    layers = {}
    for mode in ("dense", "sparse"):
        rng = np.random.default_rng(rng_seed)
        layers[mode] = MoELayer(
            model_dim=dim,
            hidden_dim=2 * dim,
            num_experts=num_experts,
            rng=rng,
            top_k=top_k,
            capacity_factor=capacity_factor,
            gate_type="expert-choice",
            dispatch_mode=mode,
        )
    for p_dense, p_sparse in zip(
        layers["dense"].parameters(), layers["sparse"].parameters()
    ):
        np.testing.assert_array_equal(p_dense.data, p_sparse.data)
    return layers


def run_step(layer, x_data):
    x = Tensor(x_data.copy(), requires_grad=True)
    y = layer(x)
    # .sum(), not .mean(): the loss must survive a zero-token batch.
    loss = (y**2).sum() + 0.0 * layer.last_aux_loss
    loss.backward()
    grads = [np.array(p.grad) for p in layer.parameters()]
    return np.array(y.data), np.array(x.grad), grads


@pytest.mark.parametrize("capacity_factor", CAPACITY_FACTORS)
@pytest.mark.parametrize("num_tokens", [24, 3, 0])  # 3 < E, 0 empty
def test_ec_outputs_and_grads_match(rng, capacity_factor, num_tokens):
    layers = make_ec_layers(7, capacity_factor)
    x_data = rng.standard_normal((num_tokens, 16)).astype(np.float32)

    y_d, xg_d, grads_d = run_step(layers["dense"], x_data)
    y_s, xg_s, grads_s = run_step(layers["sparse"], x_data)

    # The sparse layer really took the sparse path.
    out = layers["sparse"].last_gate_output
    assert out.has_sparse
    assert out.expert_indices.ndim == 1  # flat expert-major form

    # Forward is bit-identical; gradients agree to float32
    # accumulation order (same tolerance as the top-k parity suite).
    np.testing.assert_array_equal(y_s, y_d)
    np.testing.assert_allclose(xg_s, xg_d, rtol=1e-5, atol=1e-6)
    for g_s, g_d in zip(grads_s, grads_d):
        np.testing.assert_allclose(g_s, g_d, rtol=1e-5, atol=1e-6)


def test_ec_gate_weight_gradient_matches(rng):
    """Gradient through the *gate weights* specifically, both forms."""
    x_data = rng.standard_normal((12, 16)).astype(np.float32)
    gate_grads = {}
    for mode in ("dense", "sparse"):
        layers = make_ec_layers(11, 1.0)
        layer = layers[mode]
        x = Tensor(x_data.copy(), requires_grad=True)
        y = layer(x)
        (y.sum() * 3.0).backward()
        gate_grads[mode] = np.array(layer.gate.wg.weight.grad)
    np.testing.assert_allclose(
        gate_grads["sparse"], gate_grads["dense"], rtol=1e-5, atol=1e-6
    )


@pytest.mark.parametrize("capacity_factor", CAPACITY_FACTORS)
def test_ec_dropped_tokens_agree_and_zero_out(rng, capacity_factor):
    """Dropped (never-selected) tokens get zero output in both modes."""
    # top_k=1 keeps the capacity budget at E * C <= T for f <= 1, so
    # the low-capacity case is guaranteed to leave tokens unselected.
    layers = make_ec_layers(3, capacity_factor, num_experts=2, top_k=1)
    x_data = rng.standard_normal((32, 16)).astype(np.float32)
    y_d, _, _ = run_step(layers["dense"], x_data)
    y_s, _, _ = run_step(layers["sparse"], x_data)

    out_d = layers["dense"].last_gate_output
    out_s = layers["sparse"].last_gate_output
    assert out_s.dropped_tokens == out_d.dropped_tokens
    if capacity_factor < 1.0:
        assert out_s.dropped_tokens > 0
    chosen = np.zeros(32, dtype=bool)
    chosen[out_s.token_indices[out_s.slot_indices >= 0]] = True
    assert (~chosen).sum() == out_s.dropped_tokens
    np.testing.assert_array_equal(y_s[~chosen], 0.0)
    np.testing.assert_array_equal(y_d[~chosen], 0.0)


def test_ec_duplicate_selection_accumulates(rng):
    """A token picked by several experts sums their contributions."""
    # With E=4 and a generous capacity every expert picks nearly every
    # token, so duplicates are guaranteed.
    layers = make_ec_layers(5, 2.0)
    x_data = rng.standard_normal((8, 16)).astype(np.float32)
    out = layers["sparse"].gate(Tensor(x_data))
    counts = np.bincount(out.token_indices, minlength=8)
    assert counts.max() > 1
    y_d, xg_d, _ = run_step(layers["dense"], x_data)
    y_s, xg_s, _ = run_step(layers["sparse"], x_data)
    np.testing.assert_array_equal(y_s, y_d)
    np.testing.assert_allclose(xg_s, xg_d, rtol=1e-5, atol=1e-6)


def test_ec_densification_matches_legacy_dense_form(rng):
    """The lazy (T, E, C) arrays equal the direct dense construction."""
    gate = ExpertChoiceGate(16, 4, np.random.default_rng(2))
    x = Tensor(rng.standard_normal((20, 16)).astype(np.float32))
    out = gate(x)
    probs_data = None
    # Rebuild the pre-refactor dense arrays from the sparse fields.
    from repro.nn import functional as F

    logits = gate.wg(x)
    probs = F.softmax(logits, axis=-1)
    probs_data = probs.data
    cap = out.capacity
    chosen = F.top_k_indices(probs_data.T, cap, axis=-1)
    dispatch = np.zeros((20, 4, cap), dtype=np.float32)
    expert_ids = np.repeat(np.arange(4), cap)
    slot_ids = np.tile(np.arange(cap), 4)
    token_ids = chosen.reshape(-1)
    dispatch[token_ids, expert_ids, slot_ids] = 1.0
    combine = np.einsum("te,tec->tec", probs_data, dispatch)

    np.testing.assert_array_equal(out.dispatch_mask, dispatch)
    np.testing.assert_array_equal(out.combine_weights.data, combine)


@pytest.mark.parametrize("num_workers", [1, 2, 4])
@pytest.mark.parametrize("capacity_factor", CAPACITY_FACTORS)
def test_ec_parallel_group_sparse_matches_dense(rng, num_workers, capacity_factor):
    """Literal multi-worker exchange: sparse buffers == dense einsums."""
    tokens = rng.standard_normal((24, 16)).astype(np.float32)
    shards = list(np.split(tokens, num_workers))
    results = {}
    for mode in ("dense", "sparse"):
        layers = make_ec_layers(13, capacity_factor)
        group = ExpertParallelGroup(layers[mode].eval(), num_workers)
        results[mode] = group.forward_concatenated(shards)
    np.testing.assert_allclose(
        results["sparse"], results["dense"], rtol=1e-5, atol=1e-6
    )


def test_ec_parallel_single_worker_matches_layer(rng):
    """One worker's literal execution equals the sparse MoELayer."""
    layers = make_ec_layers(17, 1.0)
    layer = layers["sparse"].eval()
    tokens = rng.standard_normal((20, 16)).astype(np.float32)
    single = layer(Tensor(tokens)).data
    group = ExpertParallelGroup(layer, num_workers=1)
    parallel = group.forward_concatenated([tokens])
    np.testing.assert_allclose(parallel, single, rtol=1e-5, atol=1e-6)
