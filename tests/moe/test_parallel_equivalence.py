"""Equivalence of single-process and literal multi-worker execution.

These tests back the reproduction's central substitution claim: the
single-process MoE layer used for the convergence study computes
exactly what P synchronized expert-parallel workers compute with real
dispatch/exchange/combine buffer movement (paper Fig. 2).
"""

import numpy as np
import pytest

from repro.compression import get_compressor
from repro.moe import MoELayer
from repro.moe.parallel import ExpertParallelGroup
from repro.nn import Tensor


def make_layer(rng, compressor=None, num_experts=4, capacity_factor=4.0):
    # capacity_factor >= E/k guarantees no token is ever dropped, which
    # is required for exact equivalence (drop resolution is FCFS in
    # token order and depends on how tokens are grouped).
    return MoELayer(
        model_dim=16,
        hidden_dim=24,
        num_experts=num_experts,
        rng=rng,
        top_k=2,
        capacity_factor=capacity_factor,
        compressor=compressor,
    )


@pytest.mark.parametrize("num_workers", [1, 2, 4])
def test_parallel_matches_single_process(rng, num_workers):
    layer = make_layer(rng).eval()
    group = ExpertParallelGroup(layer, num_workers=num_workers)
    tokens = rng.standard_normal((24, 16)).astype(np.float32)
    shards = np.split(tokens, num_workers)

    single = layer(Tensor(tokens)).data
    parallel = group.forward_concatenated(list(shards))
    np.testing.assert_allclose(parallel, single, rtol=1e-5, atol=1e-6)


def test_parallel_with_uneven_shards(rng):
    layer = make_layer(rng).eval()
    group = ExpertParallelGroup(layer, num_workers=2)
    tokens = rng.standard_normal((18, 16)).astype(np.float32)
    shards = [tokens[:6], tokens[6:]]
    single = layer(Tensor(tokens)).data
    parallel = group.forward_concatenated(shards)
    np.testing.assert_allclose(parallel, single, rtol=1e-5, atol=1e-6)


def test_traffic_accounting(rng):
    layer = make_layer(rng).eval()
    group = ExpertParallelGroup(layer, num_workers=4)
    tokens = rng.standard_normal((32, 16)).astype(np.float32)
    group.forward(list(np.split(tokens, 4)))
    dispatch = group.last_dispatch_traffic
    combine = group.last_combine_traffic
    assert dispatch.total_bytes > 0
    # Every (src, dst) pair ships the flat routed rows destined for
    # dst's experts — no capacity padding in the payload.
    assert dispatch.matrix.shape == (4, 4)
    assert dispatch.off_diagonal_bytes > 0
    # Combine returns exactly the dispatched volume (row for row).
    assert combine.total_bytes == pytest.approx(dispatch.total_bytes)


def test_compressed_parallel_is_close_not_exact(rng):
    clean_rng = np.random.default_rng(7)
    layer = make_layer(clean_rng).eval()
    group = ExpertParallelGroup(layer, num_workers=2)
    tokens = rng.standard_normal((16, 16)).astype(np.float32)
    shards = [tokens[:8], tokens[8:]]
    clean = group.forward_concatenated(shards)

    lossy_rng = np.random.default_rng(7)
    lossy_layer = make_layer(lossy_rng, compressor=get_compressor("zfp")).eval()
    lossy_group = ExpertParallelGroup(lossy_layer, num_workers=2)
    lossy = lossy_group.forward_concatenated(shards)
    assert not np.array_equal(lossy, clean)
    assert np.abs(lossy - clean).max() < 0.15 * np.abs(clean).max() + 1e-3


def test_validation_errors(rng):
    layer = make_layer(rng)
    with pytest.raises(ValueError):
        ExpertParallelGroup(layer, num_workers=3)  # 4 % 3 != 0
    group = ExpertParallelGroup(layer, num_workers=2)
    with pytest.raises(ValueError):
        group.forward([np.zeros((4, 16), np.float32)])  # wrong shard count
    with pytest.raises(ValueError):
        group.forward(
            [np.zeros((4, 8), np.float32), np.zeros((4, 8), np.float32)]
        )  # wrong model dim


def test_expert_placement(rng):
    layer = make_layer(rng, num_experts=8)
    group = ExpertParallelGroup(layer, num_workers=4)
    assert group.experts_per_worker == 2
    assert group.placement.owner(0) == 0
    assert group.placement.owner(7) == 3
    assert group.placement.is_contiguous
    assert group.placement.version == 0


def test_non_contiguous_placement_matches_single_process(rng):
    from repro.moe import ExpertPlacement

    layer = make_layer(rng, num_experts=8).eval()
    tokens = rng.standard_normal((24, 16)).astype(np.float32)
    single = layer(Tensor(tokens)).data
    placement = ExpertPlacement(
        8, 4, owners=(3, 0, 2, 0, 1, 3, 0, 2), version=5
    )
    for pipeline in ("sync", "overlap"):
        group = ExpertParallelGroup(
            layer, num_workers=4, pipeline=pipeline, num_chunks=2,
            placement=placement,
        )
        out = group.forward_concatenated(list(np.split(tokens, 4)))
        np.testing.assert_array_equal(out, single)


def test_unequal_placement_counts(rng):
    from repro.moe import ExpertPlacement

    layer = make_layer(rng, num_experts=8).eval()
    placement = ExpertPlacement(8, 3, owners=(0, 0, 0, 0, 1, 1, 2, 2))
    group = ExpertParallelGroup(layer, num_workers=3, placement=placement)
    # The historical uniform-shard attribute has no meaning here.
    with pytest.raises(AttributeError):
        group.experts_per_worker
    tokens = rng.standard_normal((24, 16)).astype(np.float32)
    out = group.forward_concatenated([tokens[:8], tokens[8:16], tokens[16:]])
    np.testing.assert_array_equal(out, layer(Tensor(tokens)).data)


def test_placement_shape_validation(rng):
    from repro.moe import ExpertPlacement

    layer = make_layer(rng, num_experts=8).eval()
    group = ExpertParallelGroup(layer, num_workers=4)
    with pytest.raises(ValueError, match="experts"):
        group.set_placement(ExpertPlacement.contiguous(4, 4))
    with pytest.raises(ValueError, match="workers"):
        group.set_placement(ExpertPlacement.contiguous(8, 2))
    with pytest.raises(ValueError):
        ExpertParallelGroup(
            layer, num_workers=2, placement=ExpertPlacement.contiguous(8, 4)
        )
