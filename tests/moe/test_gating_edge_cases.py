"""Regression tests for gating edge cases and the vectorized FCFS path.

Covers the corners the index-based rewrite exposed: zero-token
batches, capacity requests larger than the batch, and bit-exactness
of the vectorized slot assignment against the original greedy loop.
"""

import numpy as np
import pytest

from repro.moe import TopKGate, assign_capacity_slots
from repro.moe.gating_ec import ExpertChoiceGate
from repro.nn import Tensor


def greedy_slots(top_idx, num_experts, capacity):
    """The original O(T * k) Python reference."""
    num_tokens, top_k = top_idx.shape
    positions = np.full((num_tokens, top_k), -1, dtype=np.int64)
    fill = np.zeros(num_experts, dtype=np.int64)
    for choice in range(top_k):
        for token in range(num_tokens):
            expert = top_idx[token, choice]
            if fill[expert] < capacity:
                positions[token, choice] = fill[expert]
                fill[expert] += 1
    return positions


@pytest.mark.parametrize("top_k", [1, 2, 3])
@pytest.mark.parametrize("capacity", [0, 1, 3, 100])
def test_vectorized_slots_match_greedy(rng, top_k, capacity):
    top_idx = rng.integers(0, 5, size=(40, top_k))
    expected = greedy_slots(top_idx, 5, capacity)
    actual = assign_capacity_slots(top_idx, 5, capacity)
    np.testing.assert_array_equal(actual, expected)


def test_slots_empty_batch():
    empty = np.zeros((0, 2), dtype=np.int64)
    assert assign_capacity_slots(empty, 4, 3).shape == (0, 2)


@pytest.fixture
def gate(rng):
    return TopKGate(
        model_dim=8, num_experts=4, rng=rng, top_k=2, capacity_factor=1.0
    )


def test_capacity_zero_tokens(gate):
    assert gate.capacity(0) == 0


def test_capacity_negative_tokens_rejected(gate):
    with pytest.raises(ValueError):
        gate.capacity(-1)


def test_capacity_clamped_to_batch(rng):
    # f * k / E > 1 would give capacity > T; one slot per token is the
    # most any expert can ever receive, so C is clamped to T.
    gate = TopKGate(
        model_dim=8, num_experts=2, rng=rng, top_k=2, capacity_factor=8.0
    )
    assert gate.capacity(3) <= 3
    assert gate.capacity(1) == 1


def test_gate_forward_zero_tokens(gate):
    out = gate(Tensor(np.zeros((0, 8), dtype=np.float32)))
    assert out.num_tokens == 0
    assert out.capacity == 0
    assert out.dropped_tokens == 0
    assert out.drop_fraction == 0.0
    assert out.dispatch_mask.shape == (0, 4, 0)
    assert np.isfinite(out.aux_loss.data)
    out.aux_loss.backward()  # the tape must survive an empty batch


def test_drop_fraction_counts_dropped(rng):
    gate = TopKGate(
        model_dim=8, num_experts=4, rng=rng, top_k=2, capacity_factor=0.25
    )
    out = gate(Tensor(rng.standard_normal((32, 8)).astype(np.float32)))
    assert out.dropped_tokens > 0
    # Normalized per token (matches the seed contract); with k > 1 it
    # counts dropped *assignments*, so it can legitimately exceed 1.0.
    assert out.drop_fraction == out.dropped_tokens / 32


def test_expert_choice_capacity_edges(rng):
    gate = ExpertChoiceGate(model_dim=8, num_experts=4, rng=rng)
    assert gate.capacity(0) == 0
    with pytest.raises(ValueError):
        gate.capacity(-5)
    assert gate.capacity(1) == 1


def test_expert_choice_forward_zero_tokens(rng):
    gate = ExpertChoiceGate(model_dim=8, num_experts=4, rng=rng)
    out = gate(Tensor(np.zeros((0, 8), dtype=np.float32)))
    assert out.capacity == 0
    assert out.has_sparse
    assert out.dispatch_mask.shape == (0, 4, 0)
    assert np.isfinite(out.aux_loss.data)
    out.aux_loss.backward()  # tape survives the empty batch


@pytest.mark.parametrize("bad_capacity", [-1, -100])
def test_expert_choice_negative_capacity_rejected(rng, bad_capacity):
    # Regression: min(cap, num_tokens) used to pass a negative
    # explicit capacity straight through to top_k_indices, failing
    # later with a cryptic shape error (or silently misrouting).
    gate = ExpertChoiceGate(model_dim=8, num_experts=4, rng=rng)
    x = Tensor(np.zeros((6, 8), dtype=np.float32))
    with pytest.raises(ValueError, match="capacity"):
        gate(x, capacity=bad_capacity)


@pytest.mark.parametrize("bad_capacity", [-1, -100])
def test_topk_negative_capacity_rejected(gate, bad_capacity):
    # Mirrors the expert-choice validation on the top-k gate.
    x = Tensor(np.zeros((6, 8), dtype=np.float32))
    with pytest.raises(ValueError, match="capacity"):
        gate(x, capacity=bad_capacity)


def test_expert_choice_explicit_zero_capacity_drops_everything(rng):
    # capacity=0 with tokens present is valid: every token dropped.
    gate = ExpertChoiceGate(model_dim=8, num_experts=4, rng=rng)
    out = gate(Tensor(np.zeros((6, 8), dtype=np.float32)), capacity=0)
    assert out.capacity == 0
    assert out.dropped_tokens == 6
    assert out.dispatch_mask.shape == (6, 4, 0)
