"""Property-based tests of gating invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moe import TopKGate
from repro.moe.gating_ec import ExpertChoiceGate
from repro.nn import Tensor


@settings(max_examples=30, deadline=None)
@given(
    num_tokens=st.integers(min_value=1, max_value=48),
    num_experts=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_topk_gate_invariants(num_tokens, num_experts, data):
    top_k = data.draw(st.integers(min_value=1, max_value=num_experts))
    capacity_factor = data.draw(
        st.floats(min_value=0.25, max_value=4.0, allow_nan=False)
    )
    rng = np.random.default_rng(0)
    gate = TopKGate(
        8, num_experts, rng, top_k=top_k, capacity_factor=capacity_factor
    )
    tokens = Tensor(
        rng.standard_normal((num_tokens, 8)).astype(np.float32)
    )
    out = gate(tokens)

    # Shapes are (T, E, C) with C = ceil(f*k*T/E), >= 1.
    cap = out.capacity
    assert cap >= 1
    assert out.dispatch_mask.shape == (num_tokens, num_experts, cap)

    # Per-expert intake never exceeds capacity; slots never shared.
    assert np.all(out.dispatch_mask.sum(axis=(0, 2)) <= cap)
    assert np.all(out.dispatch_mask.sum(axis=0) <= 1)

    # Per-token assignments never exceed k, and routed + dropped = k*T
    # assignment opportunities.
    per_token = out.dispatch_mask.sum(axis=(1, 2))
    assert np.all(per_token <= top_k)
    assert int(out.dispatch_mask.sum()) + out.dropped_tokens == (
        top_k * num_tokens
    )

    # Combine weights live on dispatched slots only and are a
    # sub-distribution per token.
    w = out.combine_weights.data
    assert np.all(w >= -1e-7)
    assert np.all(w[out.dispatch_mask == 0] == 0)
    assert np.all(w.sum(axis=(1, 2)) <= 1.0 + 1e-5)


@settings(max_examples=30, deadline=None)
@given(
    num_tokens=st.integers(min_value=2, max_value=48),
    num_experts=st.integers(min_value=1, max_value=8),
)
def test_expert_choice_always_balanced(num_tokens, num_experts):
    rng = np.random.default_rng(1)
    gate = ExpertChoiceGate(8, num_experts, rng, capacity_factor=1.0)
    tokens = Tensor(
        rng.standard_normal((num_tokens, 8)).astype(np.float32)
    )
    out = gate(tokens)
    assert np.all(out.expert_load == out.capacity)
    assert np.all(out.dispatch_mask.sum(axis=0) == 1)


@settings(max_examples=20, deadline=None)
@given(num_tokens=st.integers(min_value=1, max_value=32))
def test_generous_capacity_drops_nothing(num_tokens):
    """capacity_factor >= E/k guarantees zero drops."""
    rng = np.random.default_rng(2)
    gate = TopKGate(8, 4, rng, top_k=2, capacity_factor=2.0)
    out = gate(Tensor(rng.standard_normal((num_tokens, 8)).astype(np.float32)))
    assert out.dropped_tokens == 0
