#!/usr/bin/env python
"""Train a Transformer-MoE translator with lossy A2A compression.

A scaled-down version of the paper's Table 6 workflow: train the dense
Base model and the MoE model (with ZFP-compressed A2A payloads) on the
synthetic topic-conditional translation corpus, then compare their
validation BLEU and inspect expert utilization.

Run:  python examples/translation_training.py        (~1-2 minutes)
"""

import numpy as np

from repro.compression import get_compressor
from repro.data import SyntheticTranslation, TranslationConfig
from repro.models import Seq2SeqTransformer
from repro.moe import MoELayer
from repro.training import train_translation

STEPS = 900
LR = 5e-3
CORPUS = TranslationConfig(
    num_words=12, num_topics=4, min_len=3, max_len=5, seed=3
)


def build(moe: bool, corpus: SyntheticTranslation) -> Seq2SeqTransformer:
    return Seq2SeqTransformer(
        src_vocab=corpus.src_vocab_size,
        tgt_vocab=corpus.tgt_vocab_size,
        model_dim=32,
        hidden_dim=24,
        num_layers=2,
        num_heads=4,
        max_seq_len=corpus.max_seq_len,
        moe=moe,
        num_experts=5,
        top_k=2,
        capacity_factor=1.5,
        compressor=get_compressor("zfp") if moe else None,
        seed=0,
    )


def main() -> None:
    corpus = SyntheticTranslation(CORPUS)
    print(f"corpus: {CORPUS.num_topics} topics x {CORPUS.num_words} words, "
          f"vocab {corpus.src_vocab_size}")

    print(f"\ntraining Base (dense) for {STEPS} steps...")
    base = build(moe=False, corpus=corpus)
    base_hist = train_translation(
        base, corpus, steps=STEPS, batch_size=16, lr=LR
    )
    print(f"  final loss {base_hist.smoothed_final_loss():.3f}  "
          f"validation BLEU {base_hist.metric:.2f}")

    print(f"\ntraining MoE w/ZFP (5 experts) for {STEPS} steps...")
    moe = build(moe=True, corpus=corpus)
    moe_hist = train_translation(
        moe, corpus, steps=STEPS, batch_size=16, lr=LR
    )
    print(f"  final loss {moe_hist.smoothed_final_loss():.3f}  "
          f"validation BLEU {moe_hist.metric:.2f}")

    print("\nexpert load of the last forward pass, per MoE layer:")
    for i, module in enumerate(m for m in moe.modules() if isinstance(m, MoELayer)):
        gate = module.last_gate_output
        if gate is not None:
            print(f"  layer {i}: load={gate.expert_load.tolist()} "
                  f"dropped={gate.dropped_tokens}")

    print("\nsample decodes (source topic token first):")
    src, _tgt_in, tgt_out = next(corpus.batches(4, 1, seed=123))
    hyp = moe.greedy_decode(src, bos_id=1, eos_id=2, max_len=10)
    for s, h, r in zip(src, hyp, tgt_out):
        print(f"  src={[int(t) for t in s if t]} ->"
              f" hyp={[int(t) for t in h if t]} | ref={[int(t) for t in r if t]}")

    verdict = "MoE wins" if moe_hist.metric > base_hist.metric else "dense wins"
    print(f"\nBLEU: Base={base_hist.metric:.2f} vs MoE={moe_hist.metric:.2f} "
          f"({verdict})")


if __name__ == "__main__":
    main()
