#!/usr/bin/env python
"""Quickstart: the ScheMoE layer as module and as system.

Mirrors the paper's Listing 2: build an MoE layer configured with a
compressor, an all-to-all algorithm and a scheduler; train it for a
few steps like any module; then ask it how it would execute on the
paper's 32-GPU testbed.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ScheMoELayer, paper_testbed
from repro.nn import Adam, Tensor


def main() -> None:
    rng = np.random.default_rng(0)

    # --- Listing 2: moe_module = schemoe.MoE(...) ---------------------
    layer = ScheMoELayer(
        model_dim=64,
        hidden_dim=128,
        num_experts=8,
        rng=rng,
        top_k=2,
        capacity_factor=1.25,
        compress_name="zfp",      # AbsCompressor plugin
        comm_name="pipe",         # AbsAlltoAll plugin (Pipe-A2A)
        scheduler_name="optsche", # the Theorem-1 optimal order
        partitions=2,
    )

    # --- it is a normal module: fit a toy regression ------------------
    x = rng.standard_normal((64, 64)).astype(np.float32)
    target = np.tanh(x[:, ::-1].copy())
    optimizer = Adam(layer.parameters(), lr=3e-3)
    print("training the MoE layer on a toy target:")
    for step in range(40):
        optimizer.zero_grad()
        out = layer(Tensor(x))
        loss = ((out - Tensor(target)) ** 2).mean()
        loss = loss + 0.01 * layer.last_aux_loss
        loss.backward()
        optimizer.step()
        if step % 10 == 0 or step == 39:
            gate = layer.last_gate_output
            print(
                f"  step {step:>2}: loss={float(loss.data):.4f} "
                f"expert load={gate.expert_load.tolist()} "
                f"dropped={gate.dropped_tokens}"
            )

    # --- and a system object: plan execution on the testbed -----------
    spec = paper_testbed()
    plan = layer.plan(spec, batch_per_gpu=8, seq_len=512)
    print(f"\nexecution plan on {spec.name} "
          f"({spec.world_size} simulated GPUs):")
    print(f"  per-chunk durations: compress={plan.durations.compress*1e3:.3f}ms "
          f"a2a={plan.durations.a2a*1e3:.3f}ms "
          f"decompress={plan.durations.decompress*1e3:.3f}ms "
          f"expert={plan.durations.expert*1e3:.3f}ms")
    print(f"  forward makespan:  {plan.forward.makespan*1e3:.3f} ms "
          f"(hidden {plan.forward.hidden_time*1e3:.3f} ms)")
    print(f"  backward makespan: {plan.backward.makespan*1e3:.3f} ms")
    print("\nforward timeline (paper Fig. 5(c) shape):")
    print(plan.forward.render(width=64))


if __name__ == "__main__":
    main()
