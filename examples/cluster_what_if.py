#!/usr/bin/env python
"""What-if study: where does ScheMoE's advantage come from, and when
does it disappear?

Uses the step-time simulator to re-run the paper's CT-MoE-24 and
BERT-Large-MoE comparisons on three different clusters:

* the paper's testbed (PCIe 2080 Ti boxes, 100 Gb/s IB) — intra and
  inter costs comparable, Pipe-A2A and scheduling pay off;
* an NVLink DGX-style cluster — intra transfers nearly free, so
  Pipe-A2A's overlap buys almost nothing (paper Section 7);
* a 25 Gb/s Ethernet cluster — communication overwhelms everything and
  compression becomes the dominant lever.

The step tables run through :func:`repro.systems.run_sweep`, sharing
the benchmark suite's result cache
(``benchmarks/out/sweep_cache.json``): any (config, policy, cluster)
point a benchmark already simulated replays from disk, and points
first computed here are cached for the benchmarks in turn.

Run:  python examples/cluster_what_if.py
"""

from pathlib import Path

from repro.cluster import ethernet_cluster, nvlink_dgx, paper_testbed
from repro.collectives import get_a2a, measure_a2a, theoretical_max_speedup
from repro.models import bert_large_moe, ct_moe
from repro.systems import SweepTask, comparison_suite, run_sweep

CACHE_PATH = (
    Path(__file__).resolve().parents[1] / "benchmarks" / "out"
    / "sweep_cache.json"
)

CLUSTERS = [
    ("paper 8x4 2080Ti + IB100", paper_testbed()),
    ("DGX 4x8 A100 + NVLink", nvlink_dgx()),
    ("commodity 8x4 + 25GbE", ethernet_cluster()),
]


def main() -> None:
    size = 2.56e8
    print(f"Pipe-A2A vs NCCL-A2A at {size / 1e6:.0f} MB per GPU:")
    for label, spec in CLUSTERS:
        nccl = measure_a2a(get_a2a("nccl"), spec, size).seconds
        pipe = measure_a2a(get_a2a("pipe"), spec, size).seconds
        bound = theoretical_max_speedup(spec, size)
        print(f"  {label:<28} {nccl / pipe:5.2f}x (Eq.18 bound {bound:.2f}x)")

    for cfg in (ct_moe(24), bert_large_moe()):
        print(f"\n{cfg.name} step time by system and cluster (ms):")
        header = f"  {'cluster':<28}" + "".join(
            f"{p.name:>12}" for p in comparison_suite()
        )
        print(header)
        for label, spec in CLUSTERS:
            tasks = [SweepTask(cfg, policy) for policy in comparison_suite()]
            results = run_sweep(tasks, spec, cache_path=CACHE_PATH)
            cells = "".join(
                f"{'OOM':>12}"
                if result.oom
                else f"{result.total_s * 1e3:>12.0f}"
                for result in results
            )
            print(f"  {label:<28}{cells}")

    print(
        "\nReading: on NVLink the Tutel/ScheMoE gap flips — with "
        "communication nearly free,\nZFP's compute cost has nothing "
        "to pay for (the paper's Section 7 warning);\non slow "
        "Ethernet the gap widens (the 4x volume cut dominates)."
    )


if __name__ == "__main__":
    main()
