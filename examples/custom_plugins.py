#!/usr/bin/env python
"""Extensibility demo: register a custom compressor and a custom
all-to-all, then schedule them with OptSche — the paper's Listing 1 +
Listing 2 workflow, end to end.

The custom pieces here are deliberately simple but real:

* ``TopKSparsifier`` — an AbsCompressor that keeps only the largest
  25% of values (plus indices), a classic gradient-sparsification
  codec the paper's framework was designed to admit;
* ``EagerInterA2A`` — an AbsAlltoAll variant that issues all
  inter-node messages first and intra-node messages second on a
  single stream (a plausible-but-worse design, which the harness can
  now quantify against Pipe-A2A).

Run:  python examples/custom_plugins.py
"""

import numpy as np

from repro import ScheMoELayer, paper_testbed, register_plugins
from repro.collectives import AllToAll, get_a2a, measure_a2a
from repro.collectives.ordering import node_aligned_peers, num_intra_rounds
from repro.compression import CompressedTensor, Compressor


class TopKSparsifier(Compressor):
    """Keep the top 25% of values by magnitude; 4x + indices on wire."""

    name = "topk25"
    bits_per_value = 16.0  # 8 value bits + 8 index bits amortized
    fixed_cost_s = 3.0e-4
    compress_bandwidth_bps = 40.0e9
    decompress_bandwidth_bps = 80.0e9

    def compress(self, tensor: np.ndarray) -> CompressedTensor:
        arr = np.ascontiguousarray(tensor, dtype=np.float32)
        flat = arr.ravel()
        keep = max(1, flat.size // 4)
        idx = np.argpartition(np.abs(flat), -keep)[-keep:].astype(np.int32)
        return CompressedTensor(
            codec=self.name,
            shape=arr.shape,
            dtype=np.dtype(np.float32),
            payload={"values": flat[idx], "indices": idx},
            meta={"size": flat.size},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        out = np.zeros(compressed.meta["size"], dtype=np.float32)
        out[compressed.payload["indices"]] = compressed.payload["values"]
        return out.reshape(compressed.shape)


class EagerInterA2A(AllToAll):
    """Inter-node rounds first, intra-node after, one stream."""

    name = "eager-inter"

    def schedule(self, cluster, streams, nbytes):
        spec = cluster.spec
        chunk = nbytes / spec.world_size
        peers = [node_aligned_peers(spec, r) for r in cluster.iter_ranks()]
        intra = num_intra_rounds(spec)
        order = list(range(intra, spec.world_size)) + list(range(intra))
        prev = []
        for step in order:
            this = []
            for rank in cluster.iter_ranks():
                peer = peers[rank][step]
                this.append(
                    streams[rank].comm.submit(
                        self._xfer(cluster, rank, peer, chunk),
                        after=prev,
                    )
                )
            prev = this
        return prev

    @staticmethod
    def _xfer(cluster, src, dst, chunk):
        def work():
            yield from cluster.transfer(src, dst, chunk)

        return work


def main() -> None:
    # Listing 2, lines 4-5: register the custom implementations.
    register_plugins(compressor=TopKSparsifier, a2a=EagerInterA2A)

    # The custom codec behaves like any built-in.
    rng = np.random.default_rng(0)
    x = rng.standard_normal((256, 64)).astype(np.float32)
    codec = TopKSparsifier()
    recovered = codec.roundtrip(x)
    kept = np.count_nonzero(recovered)
    print(f"TopKSparsifier: kept {kept}/{x.size} values "
          f"({100 * kept / x.size:.0f}%), wire ratio {codec.ratio:.1f}x")

    # The custom A2A is measurable against the built-ins.
    spec = paper_testbed()
    size = 2.56e8
    for name in ("nccl", "eager-inter", "pipe"):
        result = measure_a2a(get_a2a(name), spec, size)
        print(f"  {name:>12}: {result.seconds * 1e3:8.2f} ms "
              f"for {size / 1e6:.0f} MB per GPU")

    # And both plug straight into the scheduled MoE layer.
    layer = ScheMoELayer(
        model_dim=64,
        hidden_dim=128,
        num_experts=32,
        rng=rng,
        compress_name="topk25",
        comm_name="eager-inter",
        scheduler_name="optsche",
        partitions=2,
    )
    plan = layer.plan(spec, batch_per_gpu=8, seq_len=1024)
    print(f"\nScheMoE layer with custom plugins: "
          f"forward {plan.forward.makespan * 1e3:.2f} ms, "
          f"backward {plan.backward.makespan * 1e3:.2f} ms")
    better = ScheMoELayer(
        model_dim=64, hidden_dim=128, num_experts=32, rng=rng,
        compress_name="zfp", comm_name="pipe",
        scheduler_name="optsche", partitions=2,
    ).plan(spec, batch_per_gpu=8, seq_len=1024)
    print(f"reference (zfp + pipe):          "
          f"forward {better.forward.makespan * 1e3:.2f} ms, "
          f"backward {better.backward.makespan * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
