"""Ablation: Pipe-A2A gain vs the intra/inter bandwidth ratio (Eq. 18).

The paper's discussion (Section 7, "Performance of Pipe-A2A") predicts
the maximum speedup S_max = (t_intra + t_inter) / max(t_intra,
t_inter): largest when the two phases are balanced, approaching 1 when
one dominates (e.g. NVLink boxes where intra is nearly free).

This bench sweeps the intra-fabric bandwidth on the paper-testbed
shape and compares the simulated NCCL->Pipe speedup against Eq. 18,
plus spot-checks the NVLink and Ethernet presets.
"""

from __future__ import annotations

from repro.cluster import custom_ratio_testbed, ethernet_cluster, nvlink_dgx
from repro.collectives import get_a2a, measure_a2a, theoretical_max_speedup

from _util import emit, once

SIZE = 2.56e8  # bandwidth-bound
RATIOS = (0.05, 0.2, 0.5, 1.0, 2.0, 8.0)
INTER = 7.5e9


def run_topology_sweep():
    rows = []
    for ratio in RATIOS:
        spec = custom_ratio_testbed(
            intra_bandwidth_bps=INTER * ratio, inter_bandwidth_bps=INTER
        )
        t_nccl = measure_a2a(get_a2a("nccl"), spec, SIZE).seconds
        t_pipe = measure_a2a(get_a2a("pipe"), spec, SIZE).seconds
        rows.append(
            {
                "ratio": ratio,
                "simulated": t_nccl / t_pipe,
                "eq18": theoretical_max_speedup(spec, SIZE),
            }
        )
    extra = {}
    for label, spec in (("nvlink_dgx", nvlink_dgx()), ("ethernet", ethernet_cluster())):
        t_nccl = measure_a2a(get_a2a("nccl"), spec, SIZE).seconds
        t_pipe = measure_a2a(get_a2a("pipe"), spec, SIZE).seconds
        extra[label] = (t_nccl / t_pipe, theoretical_max_speedup(spec, SIZE))
    return rows, extra


def render(rows, extra) -> str:
    lines = [f"{'intra/inter':>11} {'simulated':>10} {'Eq.18 bound':>12}"]
    for e in rows:
        lines.append(
            f"{e['ratio']:>11.2f} {e['simulated']:>9.2f}x {e['eq18']:>11.2f}x"
        )
    lines.append("")
    for label, (sim, bound) in extra.items():
        lines.append(f"{label:<12} simulated={sim:.2f}x eq18={bound:.2f}x")
    return "\n".join(lines)


def test_topology_ablation(benchmark):
    rows, extra = once(benchmark, run_topology_sweep)
    emit("ablation_topology", render(rows, extra))
    for e in rows:
        # The simulator respects and approaches the analytic bound.
        assert e["simulated"] <= e["eq18"] * 1.02
        assert e["simulated"] >= e["eq18"] * 0.85
    # Gain peaks where intra and inter phase times balance.
    peak = max(rows, key=lambda e: e["eq18"])
    assert peak["ratio"] not in (RATIOS[0], RATIOS[-1])
    # NVLink boxes gain almost nothing (paper Section 7).
    nvlink_sim, _ = extra["nvlink_dgx"]
    assert nvlink_sim < 1.1
