"""Ablation: Pipe-A2A gain vs the intra/inter bandwidth ratio (Eq. 18).

The paper's discussion (Section 7, "Performance of Pipe-A2A") predicts
the maximum speedup S_max = (t_intra + t_inter) / max(t_intra,
t_inter): largest when the two phases are balanced, approaching 1 when
one dominates (e.g. NVLink boxes where intra is nearly free).

This bench sweeps the intra-fabric bandwidth on the paper-testbed
shape and compares the simulated NCCL->Pipe speedup against Eq. 18,
plus spot-checks the NVLink and Ethernet presets.

The measurements run through :func:`repro.systems.run_sweep` like the
other grids: each point is a pair of single-layer step simulations
(sequential scheduler, one partition, no codec) whose A2A task
duration *is* the raw all-to-all time of the probe payload, and every
result lands in the shared keyed cache
(``benchmarks/out/sweep_cache.json``), so re-runs replay from disk.
"""

from __future__ import annotations

from repro.cluster import custom_ratio_testbed, ethernet_cluster, nvlink_dgx
from repro.collectives import theoretical_max_speedup
from repro.core.system import SystemPolicy
from repro.models.configs import MoEModelConfig
from repro.systems import SweepTask, naive, run_sweep

from _util import OUT_DIR, emit, once

CACHE_PATH = OUT_DIR / "sweep_cache.json"

SIZE = 2.56e8  # bandwidth-bound
RATIOS = (0.05, 0.2, 0.5, 1.0, 2.0, 8.0)
INTER = 7.5e9

#: Single-MoE-layer probe whose per-GPU A2A payload (paper Eq. 2:
#: f * k * B * L * M * 4 bytes = 64000 * 1000 * 4) equals ``SIZE``
#: exactly, so the simulated A2A task time is the raw all-to-all time
#: of the bandwidth-bound payload the Eq. 18 bound is evaluated at.
PROBE = MoEModelConfig(
    name="topology-probe",
    num_layers=1,
    batch_per_gpu=32,
    seq_len=2000,
    hidden_dim=1,
    model_dim=1000,
    top_k=1,
    num_experts=32,
    capacity_factor=1.0,
    layer_only=True,
)

assert PROBE.a2a_bytes == SIZE


def pipe_sequential() -> SystemPolicy:
    """Pipe-A2A with no pipelining/codec: isolates the algorithm."""
    return SystemPolicy(
        name="Pipe-Sequential",
        compressor="none",
        a2a="pipe",
        scheduler="sequential",
        partitions=1,
    )


def measured_speedup(spec, cache_path=CACHE_PATH) -> float:
    """Simulated NCCL->Pipe A2A speedup on ``spec`` via run_sweep."""
    nccl, pipe = run_sweep(
        [SweepTask(PROBE, naive()), SweepTask(PROBE, pipe_sequential())],
        spec,
        cache_path=cache_path,
        processes=1,
    )
    return nccl.moe_layer.durations.a2a / pipe.moe_layer.durations.a2a


def run_topology_sweep():
    rows = []
    for ratio in RATIOS:
        spec = custom_ratio_testbed(
            intra_bandwidth_bps=INTER * ratio, inter_bandwidth_bps=INTER
        )
        rows.append(
            {
                "ratio": ratio,
                "simulated": measured_speedup(spec),
                "eq18": theoretical_max_speedup(spec, SIZE),
            }
        )
    extra = {}
    for label, spec in (("nvlink_dgx", nvlink_dgx()), ("ethernet", ethernet_cluster())):
        extra[label] = (
            measured_speedup(spec),
            theoretical_max_speedup(spec, SIZE),
        )
    return rows, extra


def render(rows, extra) -> str:
    lines = [f"{'intra/inter':>11} {'simulated':>10} {'Eq.18 bound':>12}"]
    for e in rows:
        lines.append(
            f"{e['ratio']:>11.2f} {e['simulated']:>9.2f}x {e['eq18']:>11.2f}x"
        )
    lines.append("")
    for label, (sim, bound) in extra.items():
        lines.append(f"{label:<12} simulated={sim:.2f}x eq18={bound:.2f}x")
    return "\n".join(lines)


def test_topology_ablation(benchmark):
    rows, extra = once(benchmark, run_topology_sweep)
    emit("ablation_topology", render(rows, extra))
    for e in rows:
        # The simulator respects and approaches the analytic bound.
        assert e["simulated"] <= e["eq18"] * 1.02
        assert e["simulated"] >= e["eq18"] * 0.85
    # Gain peaks where intra and inter phase times balance.
    peak = max(rows, key=lambda e: e["eq18"])
    assert peak["ratio"] not in (RATIOS[0], RATIOS[-1])
    # NVLink boxes gain almost nothing (paper Section 7).
    nvlink_sim, _ = extra["nvlink_dgx"]
    assert nvlink_sim < 1.1
