"""Paper Table 8: end-to-end BERT-Large-MoE (~6.5B parameters).

Paper's measured rows: Tutel 783.3+/-11.8 ms (1.0x), ScheMoE
672.9+/-28.4 ms (1.16x), Faster-MoE runs OOM.

Reproduction target: ScheMoE a modest >1x over Tutel and FasterMoE
out-of-memory (its shadow-expert pools exceed the 2080 Ti's 11 GB).
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.models import bert_large_moe
from repro.systems import SystemRunner, comparison_suite

from _util import emit, once


def run_table8():
    runner = SystemRunner(paper_testbed())
    return runner.compare(bert_large_moe(), comparison_suite())


def render(results) -> str:
    tutel_t = results["Tutel"].total_s
    lines = [f"{'Name':<12} {'Time(ms)':>10} {'Speedup':>8} {'Mem(GiB)':>9}"]
    for name in ("Tutel", "Faster-MoE", "ScheMoE"):
        r = results[name]
        time_s = "OOM" if r.oom else f"{r.total_s * 1e3:.1f}"
        speed = "-" if r.oom else f"{tutel_t / r.total_s:.2f}x"
        lines.append(
            f"{name:<12} {time_s:>10} {speed:>8} "
            f"{r.memory_bytes / 2**30:>9.1f}"
        )
    return "\n".join(lines)


def test_table8_bert_large(benchmark):
    results = once(benchmark, run_table8)
    emit("table8_bert_large", render(results))
    assert results["Faster-MoE"].oom
    assert not results["Tutel"].oom and not results["ScheMoE"].oom
    speedup = results["Tutel"].total_s / results["ScheMoE"].total_s
    assert 1.05 < speedup < 1.40
