"""Ablation: dynamic routing imbalance (paper Section 2.1).

The paper motivates the capacity mechanism with the gate's "extremely
unbalanced" dynamic workloads, and attributes FasterMoE's BERT-Large
OOM to "improper handling of imbalanced tokens".  This bench sweeps a
Zipf routing skew and shows the divide:

* capacity-enforcing systems (Tutel, ScheMoE) are flat — Eq. 1 clips
  the hot expert at f times the balanced load (paying with dropped
  tokens instead);
* the capacity-free FasterMoE policy slows with the hot expert and
  grows its receive buffers until the 11 GB card OOMs.
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.core import RoutingSkew
from repro.models import bert_large_moe, ct_moe
from repro.systems import SweepTask, fastermoe, run_sweep, schemoe, tutel

from _util import OUT_DIR, emit, once

SKEWS = (0.0, 0.5, 1.0, 1.5, 2.0)


def run_imbalance():
    spec = paper_testbed()
    cfg = ct_moe(12)
    policies = (tutel(), fastermoe(), schemoe())
    tasks = [
        SweepTask(cfg, policy, skew=RoutingSkew(s))
        for s in SKEWS
        for policy in policies
    ]
    # The OOM story: BERT-Large under FasterMoE at realistic skew.
    tasks.append(
        SweepTask(bert_large_moe(), fastermoe(), skew=RoutingSkew(1.0))
    )
    results = run_sweep(
        tasks, spec, cache_path=OUT_DIR / "sweep_cache.json"
    )
    bert = results.pop()

    rows = []
    for i, s in enumerate(SKEWS):
        skew = RoutingSkew(s)
        entry = {
            "s": s,
            "hot": skew.hot_expert_ratio(cfg.num_experts),
            "drop": skew.dropped_fraction(
                cfg.num_experts, cfg.capacity_factor
            ),
        }
        for j, policy in enumerate(policies):
            result = results[i * len(policies) + j]
            entry[policy.name] = (
                float("inf") if result.oom else result.total_s
            )
        rows.append(entry)
    return rows, bert


def render(rows, bert) -> str:
    lines = [
        f"{'zipf s':>7} {'hot/avg':>8} {'dropped':>8} "
        f"{'Tutel':>9} {'FasterMoE':>10} {'ScheMoE':>9}"
    ]
    for e in rows:
        def fmt(name):
            v = e[name]
            return "OOM".rjust(9) if v == float("inf") else f"{v * 1e3:8.0f}m"

        lines.append(
            f"{e['s']:>7.1f} {e['hot']:>7.2f}x {e['drop'] * 100:>7.1f}% "
            f"{fmt('Tutel')} {fmt('Faster-MoE'):>10} {fmt('ScheMoE')}"
        )
    lines.append(
        f"\nBERT-Large-MoE under Faster-MoE at skew 1.0: "
        f"{'OOM' if bert.oom else 'fits'} "
        f"({bert.memory_bytes / 2**30:.1f} GiB needed)"
    )
    return "\n".join(lines)


def test_imbalance_ablation(benchmark):
    rows, bert = once(benchmark, run_imbalance)
    emit("ablation_imbalance", render(rows, bert))
    # Capacity systems are flat across the sweep.
    for name in ("Tutel", "ScheMoE"):
        values = [e[name] for e in rows]
        assert max(values) / min(values) < 1.01
    # FasterMoE degrades monotonically.
    fm = [e["Faster-MoE"] for e in rows]
    finite = [v for v in fm if v != float("inf")]
    assert finite == sorted(finite)
    assert finite[-1] > finite[0] * 1.05
    # ...and the BERT-Large + skew combination is (still) OOM.
    assert bert.oom
