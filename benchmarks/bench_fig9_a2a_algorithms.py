"""Paper Figure 9: all-to-all algorithm comparison by message size.

Three regimes on the 32-GPU testbed — (a) small [1 KB, 1 MB],
(b) median [1 MB, 200 MB], (c) large [200 MB, 2 GB].

Reproduction targets (paper Section 6.4):
* Pipe-A2A is the fastest at every size;
* small/median: Pipe-A2A only a few percent over NCCL-A2A;
* large: ~1.4x over NCCL-A2A and up to ~2x over 2DH-A2A;
* 1DH-A2A is far slower everywhere and OOMs at large tensors;
* the simulated Pipe gain tracks the analytic bound of Eq. 18.
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.collectives import get_a2a, measure_a2a, theoretical_max_speedup

from _util import emit, once

ALGORITHMS = ("nccl", "1dh", "2dh", "pipe")
SIZES = {
    "small": [1e3, 1e4, 1e5, 1e6],
    "median": [4e6, 1.6e7, 6.4e7, 2e8],
    "large": [4e8, 6.4e8, 1e9, 2e9],
}


def run_fig9():
    spec = paper_testbed()
    rows = []
    for regime, sizes in SIZES.items():
        for size in sizes:
            entry = {"regime": regime, "size": size}
            for name in ALGORITHMS:
                result = measure_a2a(get_a2a(name), spec, size)
                entry[name] = float("inf") if result.oom else result.seconds
            entry["eq18"] = theoretical_max_speedup(spec, size)
            rows.append(entry)
    return rows


def render(rows) -> str:
    lines = [
        f"{'regime':>7} {'size(B)':>9} "
        + " ".join(f"{n + '(ms)':>10}" for n in ALGORITHMS)
        + f" {'p/nccl':>7} {'p/2dh':>6} {'eq18':>5}"
    ]
    for e in rows:
        cells = []
        for name in ALGORITHMS:
            cells.append(
                "OOM".rjust(10)
                if e[name] == float("inf")
                else f"{e[name] * 1e3:>10.3f}"
            )
        p_nccl = e["nccl"] / e["pipe"]
        p_2dh = (
            float("nan") if e["2dh"] == float("inf") else e["2dh"] / e["pipe"]
        )
        lines.append(
            f"{e['regime']:>7} {e['size']:>9.0e} "
            + " ".join(cells)
            + f" {p_nccl:>7.2f} {p_2dh:>6.2f} {e['eq18']:>5.2f}"
        )
    return "\n".join(lines)


def test_fig9_a2a_algorithms(benchmark):
    rows = once(benchmark, run_fig9)
    emit("fig9_a2a_algorithms", render(rows))
    for e in rows:
        # Pipe always wins (paper: "Pipe-A2A outperforms all the other
        # A2A algorithms in all cases" vs NCCL/1DH; 2DH's aggregation
        # is allowed a tiny edge only at latency-bound sizes).
        assert e["pipe"] <= e["nccl"]
        assert e["pipe"] <= e["1dh"]
        if e["size"] >= 1e6:
            assert e["pipe"] <= e["2dh"]
        if e["regime"] == "large":
            assert 1.25 < e["nccl"] / e["pipe"] < 1.6
            if e["2dh"] != float("inf"):
                assert 1.7 < e["2dh"] / e["pipe"] < 2.4
    # 1DH OOMs at the top of the large range.
    assert rows[-1]["1dh"] == float("inf")
