"""Hot-path micro-benchmark: sparse routing and batched experts.

Times the MoE numerical hot path — gating, dispatch, combine, expert
execution, and a full training step (forward + backward) — comparing
the reference formulations against the optimized defaults:

* dispatch: ``dense`` GShard einsums over one-hot (T, E, C) masks
  (``O(T * E * C * M)`` work) vs ``sparse`` index-based
  gather/scatter (``O(T * k * M)`` work);
* experts: the per-expert Python ``loop`` over full capacity slices
  vs the ``batched`` stacked bank (two ``bmm``, occupancy-aware —
  GEMM work scales with the occupied slot prefix, not E * C);
* capacity-freedom: the ``grouped`` routed step (sort the flat rows
  by expert, segment-matmul, combine from the flat rows — no
  (E, C, M) buffer) vs the batched capacity buffer, swept across
  capacity factors 1..8 — grouped step time must stay ~flat while
  batched scales with C;
* fused routing: the single-sort ``route_fused`` kernel vs the
  legacy chain it replaced (the ``O(T * k * E)`` one-hot-cumsum slot
  assignment, then ``np.nonzero`` + stable argsort + ``bincount`` to
  recover the kept coordinates, grouped permutation and segment
  counts), bit-identical plans asserted before timing.

Both the top-k and the expert-choice gate are timed — the latter
emits the flat expert-major sparse form, the case that used to fall
back to the dense einsums.  The training-step row compounds the
levers: dense dispatch + loop experts (the original reference hot
path) against sparse dispatch + batched experts (the optimized
pair; the process-wide expert default is now ``grouped``).

The ``overlap`` section sweeps the chunked task-graph executor
(``pipeline="overlap"``) against the sequential schedule across
partition degrees r, with the zfp codec and the 1 Gb/s wire-time
model enabled — the ScheMoE Figure-9-style sync-vs-overlap
comparison, bit-identical outputs asserted before timing.

Emits a machine-readable ``BENCH_hotpath.json`` at the repository
root (plus the usual ``benchmarks/out/`` block) so the perf
trajectory of the hot path is tracked PR over PR.

Run directly (``--tiny`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--tiny]

or via pytest-benchmark like the other benches.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.moe import (
    Experts,
    MoELayer,
    TopKGate,
    combine,
    combine_grouped,
    combine_sparse,
    dispatch,
    dispatch_grouped,
    dispatch_sparse,
)
from repro.moe.gating import assign_capacity_slots
from repro.moe.gating_ec import ExpertChoiceGate
from repro.moe.routing import route_fused
from repro.nn import Tensor

from _util import emit, once

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: The acceptance configuration for dispatch+combine (T, E, k, M).
FULL = {"tokens": 4096, "experts": 32, "top_k": 2, "model_dim": 1024}
#: Table-6-style full-training-step layer (kept smaller so the dense
#: reference finishes quickly even on one core).
FULL_STEP = {
    "tokens": 1024,
    "experts": 16,
    "top_k": 2,
    "model_dim": 256,
    "hidden_dim": 512,
}
#: Expert-bank acceptance configuration: the loop reference pays for
#: every one of the C = 4 * T * k / E capacity slots; the batched bank
#: only for the occupied prefix (~T * k / E under balanced routing).
FULL_BANK = {
    "tokens": 4096,
    "experts": 32,
    "top_k": 2,
    "model_dim": 1024,
    "hidden_dim": 512,
    "capacity_factor": 4.0,
}
#: Grouped-vs-batched acceptance configuration.  At cf=4.0 the gate's
#: capacity buffer is only ~25% occupied; the batched bank still pays
#: the (E, C, M) scatter/concatenate traffic for every slot, while the
#: capacity-free grouped path touches the N routed rows only — its
#: step time must stay ~flat as cf grows.
FULL_GROUPED = {
    "tokens": 4096,
    "experts": 32,
    "top_k": 2,
    "model_dim": 1024,
    "hidden_dim": 512,
    "capacity_factors": [1.0, 2.0, 4.0, 8.0],
    "headline_cf": 4.0,
}
#: Fused-routing acceptance configuration: one stable sort over the
#: (T * k,) flat expert ids vs the legacy chain, whose slot stage
#: alone materializes a (T * k, E) one-hot cumsum.  E=32 is the
#: headline (same shape as the dispatch rows); E=256 shows the gap
#: widening with expert count — the fused kernel never sees E beyond
#: a bincount, the one-hot reference scales linearly in it.
FULL_FUSED = {
    "tokens": 4096,
    "top_k": 2,
    "capacity_factor": 2.0,
    "experts_sweep": [32, 256],
    "headline_experts": 32,
}
#: Sync-vs-overlap acceptance configuration.  One core cannot overlap
#: two CPU-bound threads, so compute/compute overlap is off the table
#: here; what the pipeline hides is *wire time* — the link-occupancy
#: model (`link_bandwidth`) sleeps for the cross-worker bytes each A2A
#: ships, exactly the resource ScheMoE hides behind expert GEMMs.  At
#: 1 Gb/s the A2A share of a step lands in the paper's Table-1 range
#: (30-60%), scaled to this substrate's ~50 GFLOP/s GEMM throughput.
FULL_OVERLAP = {
    "tokens": 4096,
    "experts": 32,
    "top_k": 2,
    "model_dim": 1024,
    "hidden_dim": 512,
    "capacity_factor": 2.0,
    "workers": 4,
    "compressor": "zfp",
    "link_gbps": 1.0,
    "num_chunks_sweep": [1, 2, 4, 8],
    "headline_chunks": 4,
}
TINY = {"tokens": 64, "experts": 4, "top_k": 2, "model_dim": 16}
TINY_STEP = {
    "tokens": 64,
    "experts": 4,
    "top_k": 2,
    "model_dim": 16,
    "hidden_dim": 32,
}
TINY_BANK = {
    "tokens": 64,
    "experts": 4,
    "top_k": 2,
    "model_dim": 16,
    "hidden_dim": 32,
    "capacity_factor": 4.0,
}
TINY_GROUPED = {
    "tokens": 64,
    "experts": 4,
    "top_k": 2,
    "model_dim": 16,
    "hidden_dim": 32,
    "capacity_factors": [1.0, 4.0],
    "headline_cf": 4.0,
}
TINY_FUSED = {
    "tokens": 64,
    "top_k": 2,
    "capacity_factor": 2.0,
    "experts_sweep": [4, 16],
    "headline_experts": 4,
}
TINY_OVERLAP = {
    "tokens": 64,
    "experts": 4,
    "top_k": 2,
    "model_dim": 16,
    "hidden_dim": 32,
    "capacity_factor": 2.0,
    "workers": 2,
    "compressor": "zfp",
    "link_gbps": 1.0,
    "num_chunks_sweep": [1, 2],
    "headline_chunks": 2,
}


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_routing(cfg: dict, repeats: int) -> dict:
    """Gating / dispatch / combine timings in both modes."""
    tokens, experts = cfg["tokens"], cfg["experts"]
    top_k, model_dim = cfg["top_k"], cfg["model_dim"]
    rng = np.random.default_rng(0)
    gate = TopKGate(model_dim, experts, rng, top_k=top_k)
    x = Tensor(
        rng.standard_normal((tokens, model_dim)).astype(np.float32),
        requires_grad=True,
    )

    gating_sparse = _best_of(lambda: gate(x.detach()), repeats)
    out = gate(x.detach())

    def densify():
        fresh = gate(x.detach())
        fresh.dispatch_mask
        fresh.combine_weights
    gating_dense = _best_of(densify, repeats)

    mask = out.dispatch_mask
    weights = out.combine_weights.detach()
    gate_weights = out.gate_weights.detach()
    seed = np.ones((tokens, model_dim), dtype=np.float32)

    def dense_roundtrip():
        x.zero_grad()
        routed = dispatch(x, mask)
        merged = combine(routed, weights)
        merged.backward(seed)

    def sparse_roundtrip():
        x.zero_grad()
        routed = dispatch_sparse(
            x, out.expert_indices, out.slot_indices, experts, out.capacity
        )
        merged = combine_sparse(
            routed,
            out.expert_indices,
            out.slot_indices,
            gate_weights,
            tokens,
        )
        merged.backward(seed)

    dense_dc = _best_of(dense_roundtrip, repeats)
    sparse_dc = _best_of(sparse_roundtrip, repeats)
    return {
        "config": dict(cfg, capacity=out.capacity),
        "gating": {"dense_s": gating_dense, "sparse_s": gating_sparse},
        "dispatch_combine_fwd_bwd": {
            "dense_s": dense_dc,
            "sparse_s": sparse_dc,
            "speedup": dense_dc / sparse_dc,
        },
    }


def bench_routing_ec(cfg: dict, repeats: int) -> dict:
    """Expert-choice dispatch/combine timings in both modes.

    Same harness as :func:`bench_routing`, but the gate emits the
    *flat* sparse routing form (expert-major assignments) — the case
    that used to densify and fall back to the dense einsums.
    """
    tokens, experts = cfg["tokens"], cfg["experts"]
    top_k, model_dim = cfg["top_k"], cfg["model_dim"]
    rng = np.random.default_rng(0)
    gate = ExpertChoiceGate(model_dim, experts, rng, top_k=top_k)
    x = Tensor(
        rng.standard_normal((tokens, model_dim)).astype(np.float32),
        requires_grad=True,
    )

    gating_sparse = _best_of(lambda: gate(x.detach()), repeats)
    out = gate(x.detach())
    assert out.has_sparse  # the point of this row

    def densify():
        fresh = gate(x.detach())
        fresh.dispatch_mask
        fresh.combine_weights
    gating_dense = _best_of(densify, repeats)

    mask = out.dispatch_mask
    weights = out.combine_weights.detach()
    gate_weights = out.gate_weights.detach()
    seed = np.ones((tokens, model_dim), dtype=np.float32)

    def dense_roundtrip():
        x.zero_grad()
        routed = dispatch(x, mask)
        merged = combine(routed, weights)
        merged.backward(seed)

    def sparse_roundtrip():
        x.zero_grad()
        routed = dispatch_sparse(
            x,
            out.expert_indices,
            out.slot_indices,
            experts,
            out.capacity,
            token_indices=out.token_indices,
        )
        merged = combine_sparse(
            routed,
            out.expert_indices,
            out.slot_indices,
            gate_weights,
            tokens,
            token_indices=out.token_indices,
        )
        merged.backward(seed)

    dense_dc = _best_of(dense_roundtrip, repeats)
    sparse_dc = _best_of(sparse_roundtrip, repeats)
    return {
        "config": dict(cfg, capacity=out.capacity),
        "gating": {"dense_s": gating_dense, "sparse_s": gating_sparse},
        "dispatch_combine_fwd_bwd": {
            "dense_s": dense_dc,
            "sparse_s": sparse_dc,
            "speedup": dense_dc / sparse_dc,
        },
    }


def bench_fused_routing(cfg: dict, repeats: int) -> dict:
    """Single-sort ``route_fused`` vs the legacy routing chain.

    The legacy formulation is exactly what the consumers used to run
    between the gate's top-k and the first expert GEMM: the one-hot
    cumsum slot assignment (``assign_capacity_slots``), the
    ``np.nonzero`` kept scan, the gather of kept expert ids, a stable
    argsort into expert-major order, the segment ``bincount``, and
    the first-choice ``bincount`` the aux loss needs.  The fused
    kernel produces the identical plan from one stable sort of the
    flat ``(T * k,)`` expert ids.  Plans are asserted bit-identical
    field by field before timing.
    """
    tokens, top_k = cfg["tokens"], cfg["top_k"]
    rows = []
    for experts in cfg["experts_sweep"]:
        rng = np.random.default_rng(0)
        # Distinct experts per token, like a real top-k gate emits.
        top_idx = np.argsort(
            rng.random((tokens, experts)), axis=1
        )[:, :top_k]
        capacity = max(
            int(cfg["capacity_factor"] * tokens * top_k / experts), 1
        )

        def legacy_chain():
            slots = assign_capacity_slots(top_idx, experts, capacity)
            tok, choice = np.nonzero(slots >= 0)
            e_ids = top_idx[tok, choice]
            order = np.argsort(e_ids, kind="stable")
            return dict(
                slot_indices=slots,
                kept_token_ids=tok,
                kept_choice_ids=choice,
                kept_expert_ids=e_ids,
                kept_slot_ids=slots[tok, choice],
                grouped_token_ids=tok[order],
                grouped_expert_ids=e_ids[order],
                segment_counts=np.bincount(
                    e_ids, minlength=experts
                ).astype(np.int64),
                first_choice_counts=np.bincount(
                    top_idx[:, 0], minlength=experts
                ),
            )

        # Same plan before timing — a speedup over a different
        # permutation would be a wrong answer, not a win.
        plan = route_fused(top_idx, experts, capacity)
        ref = legacy_chain()
        np.testing.assert_array_equal(
            plan.slot_indices, ref["slot_indices"]
        )
        np.testing.assert_array_equal(
            plan.kept_token_ids, ref["kept_token_ids"]
        )
        np.testing.assert_array_equal(
            plan.kept_slot_ids, ref["kept_slot_ids"]
        )
        np.testing.assert_array_equal(
            plan.grouped_token_ids, ref["grouped_token_ids"]
        )
        np.testing.assert_array_equal(
            plan.grouped_expert_ids, ref["grouped_expert_ids"]
        )
        np.testing.assert_array_equal(
            plan.segment_counts, ref["segment_counts"]
        )
        np.testing.assert_array_equal(
            plan.choice_counts[:, 0], ref["first_choice_counts"]
        )

        legacy_s = _best_of(legacy_chain, repeats)
        fused_s = _best_of(
            lambda: route_fused(top_idx, experts, capacity), repeats
        )
        rows.append({
            "experts": experts,
            "capacity": capacity,
            "kept": int(plan.num_kept),
            "legacy_s": legacy_s,
            "fused_s": fused_s,
            "speedup": legacy_s / fused_s,
        })

    headline = next(
        r for r in rows if r["experts"] == cfg["headline_experts"]
    )
    return {
        "config": {k: v for k, v in cfg.items() if k != "experts_sweep"},
        "by_experts": rows,
        "headline": headline,
    }


def bench_expert_bank(cfg: dict, repeats: int) -> dict:
    """Batched stacked bank vs per-expert loop (fwd + bwd).

    Routes real tokens through a top-k gate so the batched path sees a
    realistic occupancy profile, then times just the expert execution
    on the dispatched capacity buffer.  Asserts bitwise-identical
    forwards before timing — a speedup over a wrong answer is not a
    speedup.
    """
    rng = np.random.default_rng(0)
    gate = TopKGate(
        cfg["model_dim"],
        cfg["experts"],
        rng,
        top_k=cfg["top_k"],
        capacity_factor=cfg["capacity_factor"],
    )
    x = Tensor(
        rng.standard_normal(
            (cfg["tokens"], cfg["model_dim"])
        ).astype(np.float32)
    )
    out = gate(x)
    routed = dispatch_sparse(
        x, out.expert_indices, out.slot_indices,
        cfg["experts"], out.capacity,
    ).detach()

    def make_bank(impl):
        return Experts(
            cfg["experts"], cfg["model_dim"], cfg["hidden_dim"],
            np.random.default_rng(1), expert_impl=impl,
        )

    loop, batched = make_bank("loop"), make_bank("batched")
    # Bitwise at occupied slots; the batched path zero-fills the
    # padding the loop reference runs the FFN on (no combine reads
    # those slots — every combine weight there is zero).
    occ = (
        np.arange(out.capacity)[None, :] < out.expert_load[:, None]
    )
    bat = batched(routed, expert_load=out.expert_load).data
    ref = loop(routed).data
    np.testing.assert_array_equal(bat[occ], ref[occ])
    assert not bat[~occ].any()
    seed = np.ones(routed.data.shape, dtype=np.float32)

    def run(bank, **kwargs):
        def fn():
            for p in bank.parameters():
                p.zero_grad()
            bank(routed, **kwargs).backward(seed)
        return fn

    loop_s = _best_of(run(loop), repeats)
    batched_s = _best_of(
        run(batched, expert_load=out.expert_load), repeats
    )
    return {
        "config": dict(
            cfg,
            capacity=out.capacity,
            max_fill=int(out.expert_load.max()),
            occupancy=float(
                out.expert_load.sum()
                / (cfg["experts"] * max(out.capacity, 1))
            ),
        ),
        "loop_s": loop_s,
        "batched_s": batched_s,
        "speedup": loop_s / batched_s,
    }


def bench_grouped(cfg: dict, repeats: int) -> dict:
    """Capacity-free grouped path vs the batched capacity buffer.

    Times the full *routed step* — dispatch, expert execution, combine,
    forward and backward — from the same gate output, across a sweep
    of capacity factors.  The batched bank's cost scales with the
    (E, C, M) buffer it must scatter into and concatenate padding for;
    the grouped path sorts the flat N routed rows once and never sees
    C, so its row stays ~flat as cf grows.  Outputs are checked close
    (1e-4 relative) before timing.
    """
    tokens, experts = cfg["tokens"], cfg["experts"]
    top_k, model_dim = cfg["top_k"], cfg["model_dim"]
    hidden_dim = cfg["hidden_dim"]

    def make_bank(impl):
        return Experts(
            experts, model_dim, hidden_dim,
            np.random.default_rng(1), expert_impl=impl,
        )

    batched_bank, grouped_bank = make_bank("batched"), make_bank("grouped")
    rows_out = []
    for cf in cfg["capacity_factors"]:
        rng = np.random.default_rng(0)
        gate = TopKGate(
            model_dim, experts, rng, top_k=top_k, capacity_factor=cf
        )
        x = Tensor(
            rng.standard_normal((tokens, model_dim)).astype(np.float32),
            requires_grad=True,
        )
        out = gate(x.detach())
        gate_weights = out.gate_weights.detach()
        seed = np.ones((tokens, model_dim), dtype=np.float32)

        # Both steps reuse the gate's cached RoutingPlan, exactly as
        # MoELayer's hot path does — no per-step re-sort or kept scan.
        def batched_step():
            x.zero_grad()
            for p in batched_bank.parameters():
                p.zero_grad()
            routed = dispatch_sparse(
                x, out.expert_indices, out.slot_indices, experts,
                out.capacity, plan=out.plan,
            )
            expert_out = batched_bank(routed, expert_load=out.expert_load)
            combine_sparse(
                expert_out, out.expert_indices, out.slot_indices,
                gate_weights, tokens, plan=out.plan,
            ).backward(seed)

        def grouped_step():
            x.zero_grad()
            for p in grouped_bank.parameters():
                p.zero_grad()
            flat, routing = dispatch_grouped(
                x, out.expert_indices, out.slot_indices, experts,
                plan=out.plan,
            )
            expert_rows = grouped_bank.run_grouped(
                flat, routing.segment_counts
            )
            combine_grouped(
                expert_rows, routing, gate_weights, tokens
            ).backward(seed)

        # Same answers before timing (combine accumulation order may
        # reassociate, so close, not bitwise).
        flat, routing = dispatch_grouped(
            x.detach(), out.expert_indices, out.slot_indices, experts
        )
        merged_g = combine_grouped(
            grouped_bank.run_grouped(flat, routing.segment_counts),
            routing, gate_weights, tokens,
        )
        routed = dispatch_sparse(
            x.detach(), out.expert_indices, out.slot_indices, experts,
            out.capacity,
        )
        merged_b = combine_sparse(
            batched_bank(routed, expert_load=out.expert_load),
            out.expert_indices, out.slot_indices, gate_weights, tokens,
        )
        np.testing.assert_allclose(
            merged_g.data, merged_b.data, rtol=1e-4, atol=1e-5
        )

        batched_s = _best_of(batched_step, repeats)
        grouped_s = _best_of(grouped_step, repeats)
        rows_out.append({
            "capacity_factor": cf,
            "capacity": out.capacity,
            "occupancy": float(
                out.expert_load.sum() / (experts * max(out.capacity, 1))
            ),
            "batched_s": batched_s,
            "grouped_s": grouped_s,
            "speedup": batched_s / grouped_s,
        })

    headline = next(
        r for r in rows_out if r["capacity_factor"] == cfg["headline_cf"]
    )
    grouped_times = [r["grouped_s"] for r in rows_out]
    return {
        "config": {
            k: v for k, v in cfg.items() if k != "capacity_factors"
        },
        "by_capacity_factor": rows_out,
        "headline": headline,
        # max/min grouped step time across the cf sweep — ~1.0 means
        # the capacity factor really left the hot path.
        "grouped_cf_flatness": max(grouped_times) / min(grouped_times),
    }


def bench_overlap(cfg: dict, repeats: int) -> dict:
    """Chunked task-graph pipeline vs the sequential schedule.

    Runs the expert-parallel forward through ``ExpertParallelGroup``
    in both pipeline modes across a sweep of partition degrees
    (``num_chunks``), with the codec and the wire-time link model
    enabled.  Outputs are asserted *bit-identical* between modes
    before timing — both drive the same task callables, only the
    interleaving differs.
    """
    from repro.compression import get_compressor
    from repro.moe.parallel import ExpertParallelGroup

    rng = np.random.default_rng(0)
    layer = MoELayer(
        cfg["model_dim"],
        cfg["hidden_dim"],
        cfg["experts"],
        rng,
        top_k=cfg["top_k"],
        capacity_factor=cfg["capacity_factor"],
        compressor=get_compressor(cfg["compressor"]),
        expert_impl="grouped",
    ).eval()
    data = rng.standard_normal(
        (cfg["tokens"], cfg["model_dim"])
    ).astype(np.float32)
    shards = list(np.split(data, cfg["workers"]))
    bandwidth = cfg["link_gbps"] * 1e9 / 8

    rows = []
    for num_chunks in cfg["num_chunks_sweep"]:
        groups = {
            pipeline: ExpertParallelGroup(
                layer,
                cfg["workers"],
                pipeline=pipeline,
                num_chunks=num_chunks,
                link_bandwidth=bandwidth,
            )
            for pipeline in ("sync", "overlap")
        }
        outs = {
            pipeline: group.forward_concatenated(shards)
            for pipeline, group in groups.items()
        }
        np.testing.assert_array_equal(outs["overlap"], outs["sync"])
        sync_s = _best_of(lambda: groups["sync"].forward(shards), repeats)
        overlap_s = _best_of(
            lambda: groups["overlap"].forward(shards), repeats
        )
        rows.append({
            "num_chunks": num_chunks,
            "sync_s": sync_s,
            "overlap_s": overlap_s,
            "speedup": sync_s / overlap_s,
        })

    headline = next(
        r for r in rows if r["num_chunks"] == cfg["headline_chunks"]
    )
    return {
        "config": {
            k: v for k, v in cfg.items() if k != "num_chunks_sweep"
        },
        "by_num_chunks": rows,
        "headline": headline,
    }


def bench_train_step(cfg: dict, repeats: int) -> dict:
    """One full MoE-layer training step (fwd + loss + bwd) per mode.

    ``reference`` is the original hot path (dense einsum dispatch and
    the per-expert Python loop); ``optimized`` is today's default
    (sparse index dispatch and the batched expert bank).
    """
    timings = {}
    modes = {
        "reference": {"dispatch_mode": "dense", "expert_impl": "loop"},
        "optimized": {"dispatch_mode": "sparse", "expert_impl": "batched"},
    }
    for mode, layer_kwargs in modes.items():
        rng = np.random.default_rng(7)
        layer = MoELayer(
            cfg["model_dim"],
            cfg["hidden_dim"],
            cfg["experts"],
            rng,
            top_k=cfg["top_k"],
            **layer_kwargs,
        )
        x = Tensor(
            rng.standard_normal(
                (cfg["tokens"], cfg["model_dim"])
            ).astype(np.float32),
            requires_grad=True,
        )

        def step():
            x.zero_grad()
            for p in layer.parameters():
                p.zero_grad()
            y = layer(x)
            ((y**2).mean() + 0.01 * layer.last_aux_loss).backward()

        timings[f"{mode}_s"] = _best_of(step, repeats)
    timings["speedup"] = timings["reference_s"] / timings["optimized_s"]
    return {"config": dict(cfg), **timings}


def run_hotpath(tiny: bool = False, repeats: int = 3) -> dict:
    routing_cfg = TINY if tiny else FULL
    step_cfg = TINY_STEP if tiny else FULL_STEP
    bank_cfg = TINY_BANK if tiny else FULL_BANK
    grouped_cfg = TINY_GROUPED if tiny else FULL_GROUPED
    fused_cfg = TINY_FUSED if tiny else FULL_FUSED
    overlap_cfg = TINY_OVERLAP if tiny else FULL_OVERLAP
    routing = bench_routing(routing_cfg, repeats)
    routing_ec = bench_routing_ec(routing_cfg, repeats)
    fused = bench_fused_routing(fused_cfg, repeats)
    bank = bench_expert_bank(bank_cfg, repeats)
    grouped = bench_grouped(grouped_cfg, repeats)
    overlap = bench_overlap(overlap_cfg, repeats)
    step = bench_train_step(step_cfg, repeats)
    return {
        "bench": "hotpath",
        "mode": "tiny" if tiny else "full",
        "routing": routing,
        "routing_expert_choice": routing_ec,
        "routing_fused": fused,
        "expert_bank": bank,
        "grouped": grouped,
        "overlap": overlap,
        "train_step": step,
        "acceptance": {
            "overlap_speedup": overlap["headline"]["speedup"],
            "routing_fused_speedup": fused["headline"]["speedup"],
            "dispatch_combine_speedup": routing[
                "dispatch_combine_fwd_bwd"
            ]["speedup"],
            "ec_dispatch_combine_speedup": routing_ec[
                "dispatch_combine_fwd_bwd"
            ]["speedup"],
            "expert_bank_speedup": bank["speedup"],
            "grouped_vs_batched_speedup": grouped["headline"]["speedup"],
            "grouped_cf_flatness": grouped["grouped_cf_flatness"],
            "train_step_speedup": step["speedup"],
        },
    }


def render(report: dict) -> str:
    routing = report["routing"]
    dc = routing["dispatch_combine_fwd_bwd"]
    ec = report["routing_expert_choice"]
    ec_dc = ec["dispatch_combine_fwd_bwd"]
    bank = report["expert_bank"]
    bc = bank["config"]
    step = report["train_step"]
    c = routing["config"]
    lines = [
        f"config: T={c['tokens']} E={c['experts']} k={c['top_k']} "
        f"M={c['model_dim']} C={c['capacity']}  ({report['mode']})",
        f"expert-choice C={ec['config']['capacity']}",
        (
            f"expert bank: E={bc['experts']} M={bc['model_dim']} "
            f"H={bc['hidden_dim']} C={bc['capacity']} "
            f"max_fill={bc['max_fill']} "
            f"(occupancy {bc['occupancy'] * 100:.0f}%)"
        ),
        "",
        f"{'section':<26} {'reference':>10} {'optimized':>10} {'speedup':>8}",
        (
            f"{'gating (+densify)':<26} "
            f"{routing['gating']['dense_s'] * 1e3:>8.1f}ms "
            f"{routing['gating']['sparse_s'] * 1e3:>8.1f}ms "
            f"{routing['gating']['dense_s'] / max(routing['gating']['sparse_s'], 1e-12):>7.1f}x"
        ),
        (
            f"{'dispatch+combine f+b':<26} "
            f"{dc['dense_s'] * 1e3:>8.1f}ms {dc['sparse_s'] * 1e3:>8.1f}ms "
            f"{dc['speedup']:>7.1f}x"
        ),
        (
            f"{'EC dispatch+combine f+b':<26} "
            f"{ec_dc['dense_s'] * 1e3:>8.1f}ms "
            f"{ec_dc['sparse_s'] * 1e3:>8.1f}ms "
            f"{ec_dc['speedup']:>7.1f}x"
        ),
        (
            f"{'experts loop vs batched':<26} "
            f"{bank['loop_s'] * 1e3:>8.1f}ms "
            f"{bank['batched_s'] * 1e3:>8.1f}ms "
            f"{bank['speedup']:>7.1f}x"
        ),
        (
            f"{'full training step':<26} "
            f"{step['reference_s'] * 1e3:>8.1f}ms "
            f"{step['optimized_s'] * 1e3:>8.1f}ms "
            f"{step['speedup']:>7.1f}x"
        ),
        "",
        "grouped (capacity-free) vs batched, routed step f+b:",
        f"{'cf':>6} {'C':>6} {'occ':>6} {'batched':>10} {'grouped':>10} "
        f"{'speedup':>8}",
    ]
    grouped = report["grouped"]
    for row in grouped["by_capacity_factor"]:
        lines.append(
            f"{row['capacity_factor']:>6.1f} {row['capacity']:>6d} "
            f"{row['occupancy'] * 100:>5.0f}% "
            f"{row['batched_s'] * 1e3:>8.1f}ms "
            f"{row['grouped_s'] * 1e3:>8.1f}ms "
            f"{row['speedup']:>7.1f}x"
        )
    lines.append(
        f"grouped step-time spread across cf sweep: "
        f"{grouped['grouped_cf_flatness']:.2f}x (1.00x = perfectly flat)"
    )
    fused = report["routing_fused"]
    fc = fused["config"]
    lines += [
        "",
        (
            f"fused routing kernel vs legacy chain "
            f"(T={fc['tokens']} k={fc['top_k']} cf={fc['capacity_factor']:g}):"
        ),
        f"{'E':>6} {'C':>6} {'kept':>7} {'legacy':>10} {'fused':>10} "
        f"{'speedup':>8}",
    ]
    for row in fused["by_experts"]:
        lines.append(
            f"{row['experts']:>6d} {row['capacity']:>6d} "
            f"{row['kept']:>7d} "
            f"{row['legacy_s'] * 1e3:>8.2f}ms "
            f"{row['fused_s'] * 1e3:>8.2f}ms "
            f"{row['speedup']:>7.1f}x"
        )
    overlap = report["overlap"]
    oc = overlap["config"]
    lines += [
        "",
        (
            f"pipeline overlap vs sync (P={oc['workers']} "
            f"codec={oc['compressor']} link={oc['link_gbps']:g} Gb/s):"
        ),
        f"{'chunks':>6} {'sync':>10} {'overlap':>10} {'speedup':>8}",
    ]
    for row in overlap["by_num_chunks"]:
        lines.append(
            f"{row['num_chunks']:>6d} "
            f"{row['sync_s'] * 1e3:>8.1f}ms "
            f"{row['overlap_s'] * 1e3:>8.1f}ms "
            f"{row['speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def write_report(report: dict) -> None:
    emit("hotpath", render(report), data=report)
    # The root artifact tracks the acceptance configuration only — a
    # --tiny smoke run must not clobber the recorded full numbers, and
    # a hot-path rerun must not drop the `inference` section that
    # bench_inference.py merges into the same file.
    if report["mode"] == "full":
        merged = dict(report)
        if ROOT_JSON.exists():
            try:
                prior = json.loads(
                    ROOT_JSON.read_text(encoding="utf-8")
                )
            except json.JSONDecodeError:
                prior = {}
            if "inference" in prior:
                merged["inference"] = prior["inference"]
        ROOT_JSON.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def test_hotpath_sparse_speedup(benchmark):
    report = once(benchmark, run_hotpath)
    write_report(report)
    # Acceptance: index routing is >= 5x faster than the dense einsum
    # reference for dispatch+combine at T=4096, E=32, k=2, M=1024 —
    # for the top-k *and* the expert-choice gate; the batched expert
    # bank beats the per-expert loop >= 3x at E=32, M=1024; the
    # capacity-free grouped path beats the batched capacity buffer
    # >= 1.3x on the low-occupancy cf=4.0 config (the margin shrank
    # from 1.5x when the batched baseline stopped computing the
    # empty-slot broadcast and its backward — the *baseline* got
    # faster, grouped step time is unchanged) and stays ~flat
    # across cf in {1, 2, 4, 8}; the fused single-sort routing
    # kernel beats the legacy one-hot-cumsum chain >= 3x at T=4096,
    # E=32, k=2; the chunked pipeline hides >= 15% of the sync step
    # at the headline partition degree (E=32, M=1024, codec + wire
    # model on); and a full training step is measurably faster
    # end-to-end.
    assert report["acceptance"]["routing_fused_speedup"] >= 3.0
    assert report["acceptance"]["dispatch_combine_speedup"] >= 5.0
    assert report["acceptance"]["ec_dispatch_combine_speedup"] >= 5.0
    assert report["acceptance"]["expert_bank_speedup"] >= 3.0
    assert report["acceptance"]["grouped_vs_batched_speedup"] >= 1.3
    assert report["acceptance"]["grouped_cf_flatness"] <= 2.0
    assert report["acceptance"]["overlap_speedup"] >= 1.15
    assert report["acceptance"]["train_step_speedup"] > 1.2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke configuration for CI (seconds, not minutes)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run_hotpath(tiny=args.tiny, repeats=args.repeats)
    write_report(report)
    if not args.tiny:
        assert report["acceptance"]["routing_fused_speedup"] >= 3.0
        assert report["acceptance"]["dispatch_combine_speedup"] >= 5.0
        assert report["acceptance"]["ec_dispatch_combine_speedup"] >= 5.0
        assert report["acceptance"]["expert_bank_speedup"] >= 3.0
        assert report["acceptance"]["grouped_vs_batched_speedup"] >= 1.3
        assert report["acceptance"]["grouped_cf_flatness"] <= 2.0
        assert report["acceptance"]["overlap_speedup"] >= 1.15


if __name__ == "__main__":
    main()
