"""Auto-tuning planner: calibrate, search analytically, validate top-K.

The planner (:mod:`repro.systems.planner`) replaces an exhaustive
sweep with a three-stage loop: a budgeted probe set fits alpha-beta
link and GEMM-roofline cost models, the full joint knob space
(scheduler x A2A x codec x partition degree x capacity factor) is
scored against the fitted models through the *unchanged* step
simulator (a :class:`~repro.systems.planner.FittedProfiler` answers
task measurements from the fits), and only the analytic top-K are
validated with real simulations landing in the shared sweep cache
(``benchmarks/out/sweep_cache.json``).

Reproduction target: on CT-MoE-12 + the paper testbed the planner must
recommend a configuration within 5% of the optimum of the exhaustive
sweep over the same 72-point grid while simulating strictly fewer
configurations — and the whole report must be byte-deterministic (same
seed + probes -> identical recommendation JSON), which is what the CI
sidecar gate diffs.
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.models import ct_moe
from repro.systems import PlanSpace, plan

from _util import OUT_DIR, emit, once

CACHE_PATH = OUT_DIR / "sweep_cache.json"

#: 3 schedulers x 2 A2A x 2 codecs x 3 degrees x 2 capacity factors.
GRID = PlanSpace(
    schedulers=("sequential", "chunk-pipeline", "optsche"),
    a2a_algorithms=("nccl", "pipe"),
    compressors=("none", "zfp"),
    partition_degrees=(1, 2, 4),
    capacity_factors=(1.0, 1.2),
)


def run_planner(cache_path=CACHE_PATH, processes=None):
    def one_run():
        return plan(
            ct_moe(12),
            paper_testbed(),
            space=GRID,
            seed=0,
            budget=40,
            top_k=6,
            cache_path=cache_path,
            processes=processes,
            regret=True,
        )

    report = one_run()
    # Same seed + probes -> byte-identical recommendation JSON (the
    # second run replays validation from the cache the first filled).
    rerun = one_run()
    assert report.to_json() == rerun.to_json(), "planner is nondeterministic"
    assert rerun.cache_hits == rerun.simulated  # validation fully cached
    return report


def test_planner(benchmark):
    report = once(benchmark, run_planner)
    emit(
        "planner",
        "\n".join(report.summary_lines()),
        data=report.to_dict(),
    )
    assert report.simulated < report.space.size  # fewer sims than sweep
    assert report.regret is not None
    assert report.regret["regret_pct"] <= 5.0  # within 5% of the optimum
    assert abs(report.prediction_error_pct) <= 5.0
