"""Inference fast path: autograd-free forward with pooled buffers.

Measures the forward-only MoE hot path added for the serving
substrate — ``inference_mode()`` (no backward closures, no
``_parents``, no tape) plus an arena of pooled scratch buffers with
step-scoped reset — against the regular training-tape forward of the
same ``eval()`` layer:

* parity: the inference forward must be *bit-identical* to the
  training-tape forward, for the top-k and the expert-choice gate —
  it runs the same floating-point operations in the same order, only
  without gradient bookkeeping;
* reuse: after the first (warm-up) step, a steady-state inference
  loop must stop accumulating buffer-pool misses — every large
  intermediate is served from the arena's free lists, so the
  steady-state forward performs zero large allocations;
* throughput / memory (full mode only): forward tokens/sec for both
  paths and their tracemalloc peaks.  The acceptance floor —
  inference >= 1.5x the training-tape forward at T=4096, E=32, k=2 —
  is asserted in full mode and recorded into ``BENCH_hotpath.json``
  as the ``inference`` section.

The parity/reuse section is deterministic (booleans and allocation
counters, no wall-clock), so its ``benchmarks/out/`` sidecar
participates in the CI sidecar drift gate; timings live only in
stdout and the root ``BENCH_hotpath.json``, which the gate does not
diff.

The full configuration uses M=256, H=256 — the fine-grained
narrow-expert regime (many small experts, DeepSeek-style) where
routing and combine overheads, not the expert GEMMs, dominate the
step; that is exactly the regime the tape-free path accelerates.  At
wider experts the same absolute savings apply but the GEMM wall
compresses the ratio.

Run directly (``--tiny`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_inference.py [--tiny]

or via pytest-benchmark like the other benches.
"""

from __future__ import annotations

import argparse
import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.moe import MoELayer
from repro.nn import Tensor

from _util import emit, once

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: Acceptance configuration: the issue-pinned T=4096, E=32, k=2 at
#: fine-grained narrow experts (see module docstring).
FULL = {
    "tokens": 4096,
    "experts": 32,
    "top_k": 2,
    "model_dim": 256,
    "hidden_dim": 256,
    "capacity_factor": 2.0,
    "steps": 4,
}
TINY = {
    "tokens": 256,
    "experts": 8,
    "top_k": 2,
    "model_dim": 64,
    "hidden_dim": 64,
    "capacity_factor": 2.0,
    "steps": 3,
}


def _make_layer(cfg: dict, gate_type: str) -> MoELayer:
    return MoELayer(
        model_dim=cfg["model_dim"],
        hidden_dim=cfg["hidden_dim"],
        num_experts=cfg["experts"],
        rng=np.random.default_rng(0),
        top_k=cfg["top_k"],
        capacity_factor=cfg["capacity_factor"],
        gate_type=gate_type,
        expert_impl="grouped",
    ).eval()


def _make_input(cfg: dict) -> Tensor:
    rng = np.random.default_rng(1)
    return Tensor(
        rng.standard_normal(
            (cfg["tokens"], cfg["model_dim"])
        ).astype(np.float32)
    )


def check_parity_and_reuse(cfg: dict) -> dict:
    """Deterministic section: bit parity + steady-state pool reuse.

    Runs ``steps`` inference forwards per gate type, comparing each
    against the training-tape forward of the same ``eval()`` layer,
    and snapshots the arena's pool counters after the warm-up step
    and at the end — no new misses may accumulate in between.
    """
    gates = {}
    for gate_type in ("topk", "expert-choice"):
        layer = _make_layer(cfg, gate_type)
        x = _make_input(cfg)
        baseline = layer(x).data.copy()  # training-tape forward

        bit_identical = True
        no_tape = True
        layer.forward_inference(x)  # warm-up: populates the pool
        warm = layer._inference_arena.stats()
        for _ in range(cfg["steps"]):
            y = layer.forward_inference(x)
            bit_identical &= bool(np.array_equal(baseline, y.data))
            no_tape &= y._parents == () and y._backward is None
        steady = layer._inference_arena.stats()

        gates[gate_type] = {
            "bit_identical": bit_identical,
            "no_tape": no_tape,
            "pool_after_warmup": {
                "hits": warm["hits"],
                "misses": warm["misses"],
                "bytes_allocated": warm["bytes_allocated"],
            },
            "pool_steady_state": {
                "hits": steady["hits"],
                "misses": steady["misses"],
                "bytes_allocated": steady["bytes_allocated"],
            },
            "zero_steady_state_misses": (
                steady["misses"] == warm["misses"]
            ),
        }
    return {"config": dict(cfg), "gates": gates}


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _traced_peak(fn) -> int:
    """Peak traced bytes across one call (numpy data included)."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def bench_throughput(cfg: dict, repeats: int) -> dict:
    """Timed section: tokens/sec and peak memory, both paths.

    Wall-clock and tracemalloc numbers are machine-dependent, so this
    section only ever lands in stdout and the root
    ``BENCH_hotpath.json`` — never in the gate-diffed sidecar.
    """
    layer = _make_layer(cfg, "topk")
    x = _make_input(cfg)

    layer(x)  # warm numpy/np.matmul caches
    train_s = _best_of(lambda: layer(x), repeats)
    layer.forward_inference(x)  # warm the arena pool
    infer_s = _best_of(lambda: layer.forward_inference(x), repeats)

    # Memory phase, separate from timing: tracemalloc slows every
    # allocation, so its overhead must not pollute the timings above.
    # The training-tape forward pays its full allocation peak on
    # *every* step (all intermediates are allocated fresh and pinned
    # by the tape); the steady-state inference step draws everything
    # from the warm arena, so its traced peak is the near-zero
    # residue of small (sub-threshold) allocations.  The arena's
    # resident working set — paid once at warm-up, reused forever —
    # is reported alongside.
    train_peak = _traced_peak(lambda: layer(x))
    infer_steady_peak = _traced_peak(lambda: layer.forward_inference(x))
    arena_bytes = layer._inference_arena.pool.bytes_allocated

    tokens = cfg["tokens"]
    return {
        "train_forward_s": train_s,
        "infer_forward_s": infer_s,
        "train_tokens_per_s": tokens / train_s,
        "infer_tokens_per_s": tokens / infer_s,
        "speedup": train_s / infer_s,
        "train_step_peak_bytes": train_peak,
        "infer_steady_step_peak_bytes": infer_steady_peak,
        "arena_working_set_bytes": int(arena_bytes),
        "steady_step_peak_ratio": infer_steady_peak / max(train_peak, 1),
    }


def run_inference_bench(tiny: bool = False, repeats: int = 3) -> dict:
    cfg = TINY if tiny else FULL
    report = {
        "bench": "inference",
        "mode": "tiny" if tiny else "full",
        "parity": check_parity_and_reuse(cfg),
        "throughput": bench_throughput(cfg, repeats),
    }
    parity = report["parity"]["gates"]
    report["acceptance"] = {
        "bit_identical": all(
            g["bit_identical"] for g in parity.values()
        ),
        "zero_steady_state_misses": all(
            g["zero_steady_state_misses"] for g in parity.values()
        ),
        "forward_speedup": report["throughput"]["speedup"],
        "forward_speedup_floor": 1.5,
        "steady_step_peak_ratio": report["throughput"][
            "steady_step_peak_ratio"
        ],
    }
    return report


def render_deterministic(parity: dict) -> str:
    """The gate-safe block: config, parity booleans, pool counters."""
    c = parity["config"]
    lines = [
        f"config: T={c['tokens']} E={c['experts']} k={c['top_k']} "
        f"M={c['model_dim']} H={c['hidden_dim']} "
        f"cf={c['capacity_factor']:g} steps={c['steps']}",
        "",
        f"{'gate':<16} {'bit-identical':>14} {'no tape':>8} "
        f"{'pool misses':>12} {'steady misses':>14}",
    ]
    for gate_type, g in parity["gates"].items():
        lines.append(
            f"{gate_type:<16} {str(g['bit_identical']):>14} "
            f"{str(g['no_tape']):>8} "
            f"{g['pool_steady_state']['misses']:>12d} "
            f"{'+0' if g['zero_steady_state_misses'] else 'GREW':>14}"
        )
    lines.append("")
    lines.append(
        "steady-state inference forward performs zero large "
        "allocations: "
        + str(all(
            g["zero_steady_state_misses"]
            for g in parity["gates"].values()
        ))
    )
    return "\n".join(lines)


def render_throughput(report: dict) -> str:
    t = report["throughput"]
    return "\n".join([
        f"training-tape forward: {t['train_forward_s'] * 1e3:8.2f} ms "
        f"({t['train_tokens_per_s']:,.0f} tok/s, "
        f"allocates {t['train_step_peak_bytes'] / 2**20:.1f} MiB "
        f"peak per step)",
        f"inference forward:     {t['infer_forward_s'] * 1e3:8.2f} ms "
        f"({t['infer_tokens_per_s']:,.0f} tok/s, "
        f"allocates {t['infer_steady_step_peak_bytes'] / 2**20:.2f} MiB "
        f"peak per steady-state step; arena working set "
        f"{t['arena_working_set_bytes'] / 2**20:.1f} MiB, reused)",
        f"speedup: {t['speedup']:.2f}x "
        f"(floor {report['acceptance']['forward_speedup_floor']}x); "
        f"steady-state step allocation peak is "
        f"{t['steady_step_peak_ratio'] * 100:.1f}% of training's",
    ])


def write_report(report: dict) -> None:
    # Only the deterministic parity/reuse section goes to the sidecar
    # (the gate diffs it); print the timings to stdout separately.
    emit(
        "inference",
        render_deterministic(report["parity"]),
        data={
            "bench": "inference",
            "mode": report["mode"],
            "parity": report["parity"],
        },
    )
    print(render_throughput(report))
    if report["mode"] == "full":
        # Merge the inference section into the root hot-path artifact
        # without clobbering bench_hotpath's sections.
        root = {}
        if ROOT_JSON.exists():
            try:
                root = json.loads(ROOT_JSON.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                root = {}
        root["inference"] = {
            "config": report["parity"]["config"],
            "throughput": report["throughput"],
            "acceptance": report["acceptance"],
        }
        ROOT_JSON.write_text(
            json.dumps(root, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def test_inference_parity_and_reuse(benchmark):
    # Full *shape*, but only the deterministic checks are asserted
    # here — the wall-clock floor is full-mode-only (machine noise on
    # shared CI runners must not flake the drift gate).
    report = once(benchmark, run_inference_bench)
    write_report(report)
    assert report["acceptance"]["bit_identical"]
    assert report["acceptance"]["zero_steady_state_misses"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke configuration for CI (seconds, not minutes)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    report = run_inference_bench(tiny=args.tiny, repeats=args.repeats)
    write_report(report)
    assert report["acceptance"]["bit_identical"]
    assert report["acceptance"]["zero_steady_state_misses"]
    if not args.tiny:
        floor = report["acceptance"]["forward_speedup_floor"]
        speedup = report["acceptance"]["forward_speedup"]
        assert speedup >= floor, (
            f"inference forward speedup {speedup:.2f}x below the "
            f"{floor}x floor"
        )
        ratio = report["acceptance"]["steady_step_peak_ratio"]
        assert ratio <= 0.5, (
            f"steady-state inference step allocation peak is "
            f"{ratio:.2f}x the training step's — the arena is not "
            f"absorbing the large allocations"
        )


if __name__ == "__main__":
    main()
