"""Paper Table 6: convergence under data compression (real training).

Paper's measured table:

    Method       Transformer-MoE (BLEU)   GPT2-Tiny-MoE (PPL)
    Base         45.51                    128.8
    MoE          46.61                    106.8
    MoE w/FP16   46.59                    106.85
    MoE w/INT8   46.68                    110.35
    MoE w/ZFP    46.58                    106.87

Reproduction targets (absolute metrics differ — synthetic corpora,
CPU-scale models — but the orderings must hold):
* MoE clearly beats Base on both tasks;
* FP16 and ZFP track plain MoE closely on both tasks;
* INT8 is the damaged variant: on the (hard) translation task its
  per-tensor gradient quantization prevents convergence entirely
  within the step budget, and its mechanism shows as the lowest SNR
  on the live backward-A2A gradient tensors.  (On the easier LM task
  the final-perplexity effect is below seed noise at CPU scale; the
  paper needed 500k iterations to surface it there.  EXPERIMENTS.md
  discusses.)

This bench trains 10 real models with the numpy autograd stack and is
by far the slowest in the harness (~5-8 minutes).
"""

from __future__ import annotations

import numpy as np

from repro.compression.fidelity import collect_a2a_tensors, measure_fidelity
from repro.models.gpt2_tiny import TransformerLM
from repro.moe import default_dispatch_mode, default_expert_impl
from repro.training import (
    default_lm_corpus,
    run_lm_convergence,
    run_translation_convergence,
)
from repro.training.convergence import VARIANTS, _lm_model
from repro.training.trainer import train_lm

from _util import emit, once

LM_STEPS = 450
MT_STEPS = 900


def gradient_fidelity():
    """SNR of each codec on a trained model's live A2A tensors.

    Pinned to the numerics the recorded SNRs were measured under —
    sparse dispatch + the batched bank, the process defaults at
    recording time — so the sidecar stays byte-stable as the
    process-wide execution defaults evolve (grouped reassociates
    weight-grad reductions, which shifts this chaotic 150-step run).
    """
    corpus = default_lm_corpus()
    with default_dispatch_mode("sparse"), default_expert_impl("batched"):
        model = _lm_model("MoE", corpus, "tiny", seed=0)
        train_lm(model, corpus, steps=150, batch_size=16)
        model.zero_grad()
        tokens = next(corpus.batches(16, 1, seed=999))
        model.loss(tokens).backward()
        tensors = collect_a2a_tensors(model)
    return measure_fidelity(
        tensors["gradients"], codecs=("fp16", "zfp", "int8", "int8c")
    )


def run_table6():
    lm = run_lm_convergence(steps=LM_STEPS, batch_size=16, scale="tiny")
    mt = run_translation_convergence(
        steps=MT_STEPS, batch_size=16, scale="tiny"
    )
    fidelity = gradient_fidelity()
    return mt, lm, fidelity


def render(mt, lm, fidelity) -> str:
    lines = [
        f"{'Method':<12} {'Transformer-MoE (BLEU)':>24} "
        f"{'GPT2-Tiny-MoE (PPL)':>20}"
    ]
    for name in VARIANTS:
        lines.append(
            f"{name:<12} {mt.metrics[name]:>24.2f} {lm.metrics[name]:>20.3f}"
        )
    lines.append("")
    lines.append("codec SNR on live backward-A2A gradient tensors:")
    lines.append(fidelity.render())
    return "\n".join(lines)


def test_table6_convergence(benchmark):
    mt, lm, fidelity = once(benchmark, run_table6)
    emit("table6_convergence", render(mt, lm, fidelity))
    # MoE beats Base on both tasks (the paper's first finding).
    assert mt.metrics["MoE"] > mt.metrics["Base"] + 20.0
    assert lm.metrics["MoE"] < lm.metrics["Base"] - 0.05
    # FP16 and ZFP remain usable: close to plain MoE on both tasks.
    for codec in ("MoE w/FP16", "MoE w/ZFP"):
        assert lm.metrics[codec] < lm.metrics["Base"] - 0.05
        assert abs(lm.metrics[codec] - lm.metrics["MoE"]) < 0.10
        assert mt.metrics[codec] > mt.metrics["MoE"] - 20.0
    # INT8 is the damaged variant: it fails the hard translation task
    # (paper: "the current INT8 compression approach could not be
    # applied in MoE models in some applications")...
    assert mt.metrics["MoE w/INT8"] < mt.metrics["MoE"] - 20.0
    # ...without diverging outright on the easier LM task.
    assert lm.metrics["MoE w/INT8"] < lm.metrics["Base"] - 0.05
    # INT8's mechanism: lowest gradient fidelity among the codecs.
    assert fidelity.snr_db["fp16"] > fidelity.snr_db["int8"] + 10.0
    assert fidelity.snr_db["zfp"] > fidelity.snr_db["int8"]
