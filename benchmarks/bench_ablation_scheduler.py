"""Ablation: scheduling policies vs the brute-force optimum.

Runs the three built-in policies and the exhaustive search over 200
random task-duration profiles (r=2) and reports how often and by how
much each policy trails the true optimum — verifying Theorem 1
(OptSche always matches) and quantifying the cost of the baselines'
orders, which is the gap the paper's scheduler feature closes.
"""

from __future__ import annotations

import random

from repro.core import TaskDurations, get_scheduler

from _util import emit, once

TRIALS = 200
POLICIES = ("sequential", "chunk-pipeline", "optsche")


def run_scheduler_study():
    rng = random.Random(2024)
    gaps = {name: [] for name in POLICIES}
    optimal_matches = 0
    for _ in range(TRIALS):
        durations = TaskDurations(
            compress=rng.uniform(0.05, 2.0),
            a2a=rng.uniform(0.05, 4.0),
            decompress=rng.uniform(0.05, 2.0),
            expert=rng.uniform(0.05, 4.0),
        )
        best = get_scheduler("brute-force").schedule(2, durations).makespan
        for name in POLICIES:
            makespan = get_scheduler(name).schedule(2, durations).makespan
            gaps[name].append(makespan / best)
        if abs(gaps["optsche"][-1] - 1.0) < 1e-9:
            optimal_matches += 1
    return gaps, optimal_matches


def render(gaps, optimal_matches) -> str:
    lines = [
        f"{'policy':<16} {'mean/opt':>9} {'worst/opt':>10} {'optimal%':>9}"
    ]
    for name in POLICIES:
        values = gaps[name]
        mean = sum(values) / len(values)
        worst = max(values)
        share = 100.0 * sum(1 for v in values if v < 1.0 + 1e-9) / len(values)
        lines.append(
            f"{name:<16} {mean:>9.3f} {worst:>10.3f} {share:>8.1f}%"
        )
    lines.append(f"\nOptSche matched the exhaustive optimum in "
                 f"{optimal_matches}/{TRIALS} trials")
    return "\n".join(lines)


def test_scheduler_ablation(benchmark):
    gaps, optimal_matches = once(benchmark, run_scheduler_study)
    emit("ablation_scheduler", render(gaps, optimal_matches))
    assert optimal_matches == TRIALS  # Theorem 1, empirically
    mean_seq = sum(gaps["sequential"]) / TRIALS
    mean_cp = sum(gaps["chunk-pipeline"]) / TRIALS
    assert mean_seq > mean_cp > 1.0
