"""Paper Table 10: component ablation on the big MoE layer.

The layer (B=8, f=1.2, L=2048, H=8192, M=8192) has a ~644 MB A2A
payload.  Paper's measured rows:

    Naive       2401+/-22 ms  1.0x
    ScheMoE-Z   1264+/-5  ms  1.9x
    ScheMoE-ZP  1110+/-5  ms  2.2x
    ScheMoE     1019+/-2  ms  2.4x

Reproduction target: strictly monotone improvement with ZFP as the
largest single contributor and a composite speedup in the 2-3x range.
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.models import ablation_layer
from repro.systems import SweepTask, ablation_suite, run_sweep

from _util import OUT_DIR, emit, once

ORDER = ("Naive", "ScheMoE-Z", "ScheMoE-ZP", "ScheMoE")


def run_table10():
    policies = ablation_suite()
    cfg = ablation_layer()
    results = run_sweep(
        [SweepTask(cfg, p) for p in policies],
        paper_testbed(),
        cache_path=OUT_DIR / "sweep_cache.json",
    )
    return {p.name: r for p, r in zip(policies, results)}


def render(results) -> str:
    base = results["Naive"].total_s
    lines = [f"{'Name':<12} {'Time(ms)':>10} {'Speedup':>8}"]
    for name in ORDER:
        r = results[name]
        lines.append(
            f"{name:<12} {r.total_s * 1e3:>10.0f} "
            f"{base / r.total_s:>7.2f}x"
        )
    return "\n".join(lines)


def test_table10_ablation(benchmark):
    results = once(benchmark, run_table10)
    emit("table10_ablation", render(results))
    times = [results[name].total_s for name in ORDER]
    assert times == sorted(times, reverse=True)  # monotone improvement
    base = times[0]
    z_gain = base / results["ScheMoE-Z"].total_s
    zp_gain = base / results["ScheMoE-ZP"].total_s
    full_gain = base / results["ScheMoE"].total_s
    assert 1.4 < z_gain < 2.2
    assert z_gain < zp_gain < full_gain
    assert 2.0 < full_gain < 3.0
    # ZFP is the single largest contributor (paper Section 6.5).
    assert (base - results["ScheMoE-Z"].total_s) > (
        results["ScheMoE-Z"].total_s - results["ScheMoE"].total_s
    )
