"""Ablation: step time vs pipeline partition degree r.

The paper treats choosing r as an orthogonal problem (Section 4,
citing PipeMoE [43]) and notes the trade-off: larger r overlaps more
but shrinks per-kernel work (launch overhead + lower arithmetic
intensity) and multiplies per-invocation codec costs.

This bench sweeps r for two regimes — the huge ablation layer (where
overlap pays) and CT-MoE's small layer (where chunking overhead
dominates) — demonstrating why an adaptive degree is necessary.
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.collectives import get_a2a
from repro.compression import get_compressor
from repro.core import Profiler, get_scheduler
from repro.models import ablation_layer, ct_moe

from _util import emit, once

DEGREES = (1, 2, 3, 4, 6, 8)


def run_partition_sweep():
    spec = paper_testbed()
    profiler = Profiler(
        spec, a2a=get_a2a("pipe"), compressor=get_compressor("zfp")
    )
    scheduler = get_scheduler("optsche")
    table = {}
    for label, cfg in (("ablation-layer", ablation_layer()), ("ct-moe-layer", ct_moe(12))):
        row = {}
        for r in DEGREES:
            durations = profiler.profile_layer(cfg, r)
            row[r] = scheduler.schedule(r, durations).makespan
        table[label] = row
    return table


def render(table) -> str:
    lines = [f"{'layer':<16}" + "".join(f" r={r:<9}" for r in DEGREES)]
    for label, row in table.items():
        cells = "".join(f" {row[r] * 1e3:>8.2f}ms" for r in DEGREES)
        best = min(row, key=row.get)
        lines.append(f"{label:<16}{cells}   (best r={best})")
    return "\n".join(lines)


def test_partition_degree_tradeoff(benchmark):
    table = once(benchmark, run_partition_sweep)
    emit("ablation_partition_degree", render(table))
    big = table["ablation-layer"]
    small = table["ct-moe-layer"]
    # Large layer: some pipelining beats none.
    assert min(big[r] for r in DEGREES if r > 1) < big[1]
    # Small layer: r=1 is optimal (chunking overhead dominates).
    assert small[1] <= min(small.values()) + 1e-9
    # Extreme chunking is never free on the small layer.
    assert small[8] > small[1]
