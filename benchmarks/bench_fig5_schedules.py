"""Paper Figures 3 and 5: execution timelines of MoE-layer schedules.

Renders the three timelines of Fig. 5 — (a) no overlap at r=1,
(b) default pipelining at r=2, (c) the optimal OptSche overlap at
r=2 — for the CT-MoE layer's profiled task durations, and reports each
schedule's makespan and hidden time (Eqs. 10-11).

Reproduction target: sequential > chunk-pipeline > OptSche, and the
r=1 sequential makespan equals the sum of all task durations (Eq. 10).
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.collectives import get_a2a
from repro.compression import get_compressor
from repro.core import Profiler, get_scheduler
from repro.models import ct_moe

from _util import emit, once


def run_fig5():
    spec = paper_testbed()
    profiler = Profiler(
        spec, a2a=get_a2a("pipe"), compressor=get_compressor("zfp")
    )
    cfg = ct_moe(12)
    results = {}
    durations_r1 = profiler.profile_layer(cfg, 1)
    results["(a) sequential, r=1"] = (
        get_scheduler("sequential").schedule(1, durations_r1),
        durations_r1.total_sequential(1),
    )
    durations_r2 = profiler.profile_layer(cfg, 2)
    results["(b) chunk-pipeline, r=2"] = (
        get_scheduler("chunk-pipeline").schedule(2, durations_r2),
        durations_r2.total_sequential(2),
    )
    results["(c) OptSche, r=2"] = (
        get_scheduler("optsche").schedule(2, durations_r2),
        durations_r2.total_sequential(2),
    )
    return results


def render(results) -> str:
    blocks = []
    for label, (schedule, eq10) in results.items():
        blocks.append(
            f"{label}: makespan={schedule.makespan * 1e3:.3f} ms, "
            f"Eq.10 total={eq10 * 1e3:.3f} ms, "
            f"hidden={schedule.hidden_time * 1e3:.3f} ms"
        )
        blocks.append(schedule.render(width=64))
        blocks.append("")
    return "\n".join(blocks)


def test_fig5_schedules(benchmark):
    results = once(benchmark, run_fig5)
    emit("fig5_schedules", render(results))
    seq, eq10 = results["(a) sequential, r=1"]
    assert seq.makespan == eq10  # Eq. 10 exactly, no overlap at r=1
    cp, _ = results["(b) chunk-pipeline, r=2"]
    opt, _ = results["(c) OptSche, r=2"]
    assert opt.makespan <= cp.makespan
    assert opt.hidden_time >= cp.hidden_time
