"""Ablation (beyond paper): cross-layer chunk pipelining.

The paper schedules within one MoE layer; at the layer boundary the
next layer's attention waits for every chunk of the previous layer.
The dependency structure allows finer overlap: attention chunk i of
layer l+1 needs only D2^i of layer l, so with an interleaved enqueue
order the previous layer's trailing A2A communication hides under the
next layer's attention — a natural extension of OptSche's
"un-block later tasks quicker" principle across layers.

This bench quantifies the gain at event granularity for comm-bound
and comm-hidden regimes.
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.collectives import get_a2a
from repro.compression import get_compressor
from repro.core.model_executor import ModelExecutor
from repro.models import bert_large_moe, ct_moe

from _util import emit, once

CASES = [
    # (label, cfg-factory, a2a, codec, partitions)
    ("CT-MoE-12  nccl raw   r=2", lambda: ct_moe(12), "nccl", "none", 2),
    ("CT-MoE-12  pipe raw   r=4", lambda: ct_moe(12), "pipe", "none", 4),
    ("BERT-Large nccl raw   r=4", bert_large_moe, "nccl", "none", 4),
    ("BERT-Large pipe raw   r=4", bert_large_moe, "pipe", "none", 4),
    ("CT-MoE-12  pipe zfp   r=2", lambda: ct_moe(12), "pipe", "zfp", 2),
]


def run_cross_layer():
    spec = paper_testbed()
    rows = []
    for label, factory, a2a, codec, r in CASES:
        executor = ModelExecutor(
            spec, get_a2a(a2a), get_compressor(codec), partitions=r
        )
        cfg = factory()
        barrier = executor.run(cfg, mode="layer-barrier").makespan
        chunked = executor.run(cfg, mode="chunked").makespan
        rows.append(
            {
                "label": label,
                "barrier": barrier,
                "chunked": chunked,
            }
        )
    return rows


def render(rows) -> str:
    lines = [
        f"{'configuration':<26} {'barrier':>9} {'chunked':>9} {'gain':>7}"
    ]
    for e in rows:
        gain = (e["barrier"] / e["chunked"] - 1.0) * 100.0
        lines.append(
            f"{e['label']:<26} {e['barrier'] * 1e3:>8.1f}m "
            f"{e['chunked'] * 1e3:>8.1f}m {gain:>6.1f}%"
        )
    return "\n".join(lines)


def test_cross_layer_ablation(benchmark):
    rows = once(benchmark, run_cross_layer)
    emit("ablation_cross_layer", render(rows))
    by_label = {e["label"]: e for e in rows}
    # Never slower.
    for e in rows:
        assert e["chunked"] <= e["barrier"] + 1e-12
    # Comm-bound BERT gains substantially.
    bert = by_label["BERT-Large nccl raw   r=4"]
    assert bert["barrier"] / bert["chunked"] > 1.15
    # With compression the comm tail is already hidden: no gain left.
    hidden = by_label["CT-MoE-12  pipe zfp   r=2"]
    assert hidden["barrier"] / hidden["chunked"] < 1.02
