"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper and emits a
paper-formatted text block: printed to stdout (visible with ``-s``)
and saved under ``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

OUT_DIR = Path(__file__).resolve().parent / "out"


def emit(name: str, text: str) -> str:
    """Print and persist one bench's output block."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    block = banner + text.rstrip() + "\n"
    print(block)
    (OUT_DIR / f"{name}.txt").write_text(block, encoding="utf-8")
    return block


def once(benchmark, fn):
    """Run a slow simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
