"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper and emits a
paper-formatted text block: printed to stdout (visible with ``-s``)
and saved under ``benchmarks/out/`` for EXPERIMENTS.md.  Each text
block also gets a JSON sidecar (``out/<name>.json``) so every bench
output is machine-diffable — benches pass structured ``data`` where
they have it, and the sidecar always carries the rendered lines.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

OUT_DIR = Path(__file__).resolve().parent / "out"


def emit(name: str, text: str, data: Optional[dict] = None) -> str:
    """Print and persist one bench's output block (+ JSON sidecar)."""
    OUT_DIR.mkdir(exist_ok=True)
    banner = f"\n===== {name} =====\n"
    block = banner + text.rstrip() + "\n"
    print(block)
    (OUT_DIR / f"{name}.txt").write_text(block, encoding="utf-8")
    sidecar = {"name": name, "lines": text.rstrip().splitlines()}
    if data is not None:
        sidecar["data"] = data
    (OUT_DIR / f"{name}.json").write_text(
        json.dumps(sidecar, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return block


def once(benchmark, fn):
    """Run a slow simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
