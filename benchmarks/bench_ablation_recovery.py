"""Ablation: elastic re-sharding — recover and rebalance vs train degraded.

Exercises the recovery state machine end to end on both substrates.

On the **numerical substrate** a 4-worker expert-parallel group loses a
worker, the survivors adopt its experts
(:class:`~repro.faults.recovery.RecoveryController`), parameters are
re-instantiated from a crash-safe checkpoint (bit-exact) or by seeded
re-init (deterministic), and a fifth worker is then admitted.  The
section records the parity *facts* the recovery guarantee promises:
the recovered forward is bit-identical to a freshly built group on the
same placement, checkpoint restore reproduces the pre-kill output
exactly, and re-init replays identically run after run.

On the **timing substrate** the paper testbed loses node 0 (4 of 32
ranks).  The choice the controller prices: keep training *degraded* on
the 7 surviving nodes with 28 experts, or pay one re-shard all-to-all
(the adopted experts' parameter slices) and train the *full* 32-expert
model on 7 nodes.  Per step the degraded model is cheaper — it does
less work — so the time-only recommendation is "continue"; the bench
records that honestly (the reason to reshard is model quality, which
no step-time metric sees).  When a replacement node arrives the same
hook prices the rebalance back to 8 nodes, where the time saving is
real and the breakeven horizon finite.

Everything is seeded or simulated-time, so the report is bit-for-bit
deterministic (asserted by building it twice).  The ``recovery``
section is merged into the root ``BENCH_faults.json`` artifact —
preserving the fault grid written by ``bench_ablation_faults`` — and
the ``benchmarks/out/ablation_recovery.json`` sidecar joins the CI
drift gate.

Run directly (``--tiny`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_ablation_recovery.py [--tiny]

or via pytest-benchmark like the other benches.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.cluster import paper_testbed
from repro.collectives import get_a2a, measure_a2a
from repro.compression import get_compressor
from repro.core import EventExecutor, get_scheduler
from repro.faults.recovery import RecoveryController, reshard_vs_degraded
from repro.models import ct_moe
from repro.moe import MoELayer
from repro.moe.parallel import ExpertParallelGroup
from repro.moe.placement import (
    ExpertPlacement,
    expert_param_bytes,
    reshard_moves,
    reshard_traffic,
)
from repro.nn.serialization import save_checkpoint

from _util import emit, once

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

FULL = {
    "layers": 12,
    "algo": "pipe",
    "scheduler": "optsche",
    "horizons": [10, 100, 1000],
    "tokens": 64,
}
TINY = {
    "layers": 12,
    "algo": "pipe",
    "scheduler": "optsche",
    "horizons": [100],
    "tokens": 32,
}

#: Numerical-substrate scenario (kept small: parity is exact at any
#: size, so more tokens buy nothing).
NUMERIC = {
    "num_workers": 4,
    "num_experts": 8,
    "model_dim": 32,
    "hidden_dim": 32,
    "kill_worker": 1,
    "seed": 0,
}


def _make_layer() -> MoELayer:
    return MoELayer(
        model_dim=NUMERIC["model_dim"],
        hidden_dim=NUMERIC["hidden_dim"],
        num_experts=NUMERIC["num_experts"],
        rng=np.random.default_rng(NUMERIC["seed"]),
        top_k=2,
        # cf >= E/k: no drops, the precondition for exact parity.
        capacity_factor=NUMERIC["num_experts"] / 2.0,
        expert_impl="grouped",
    ).eval()


def _parity_study(cfg: dict) -> dict:
    """Kill → recover → scale-up on real numerics; record parity facts."""
    tokens_n = cfg["tokens"] - cfg["tokens"] % NUMERIC["num_workers"]
    rng = np.random.default_rng(NUMERIC["seed"] + 1)
    tokens = rng.standard_normal(
        (tokens_n, NUMERIC["model_dim"])
    ).astype(np.float32)
    shards = list(np.split(tokens, NUMERIC["num_workers"]))
    kill = NUMERIC["kill_worker"]

    # -- checkpoint strategy ----------------------------------------------
    layer = _make_layer()
    group = ExpertParallelGroup(layer, NUMERIC["num_workers"])
    from repro.nn import Tensor

    single = layer(Tensor(tokens)).data.copy()
    healthy = group.forward_concatenated(shards)
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        ck = Path(tmp) / "healthy.npz"
        save_checkpoint(layer, ck, placement=group.placement)
        group.set_dead_workers({kill})
        degraded = group.forward_concatenated(shards)
        ctrl = RecoveryController(group, checkpoint=ck)
        event = ctrl.recover()
        recovered = group.forward_concatenated(shards)
    fresh = ExpertParallelGroup(
        layer, NUMERIC["num_workers"], placement=group.placement
    ).forward_concatenated(shards)
    overlap = ExpertParallelGroup(
        layer,
        NUMERIC["num_workers"],
        pipeline="overlap",
        num_chunks=2,
        placement=group.placement,
    ).forward_concatenated(shards)
    scale_event = ctrl.scale_up()
    grown = group.forward_concatenated(shards + [tokens[:0]])

    # -- re-init strategy (twice, to record determinism) ------------------
    def reinit_run():
        layer_r = _make_layer()
        group_r = ExpertParallelGroup(layer_r, NUMERIC["num_workers"])
        group_r.set_dead_workers({kill})
        RecoveryController(group_r, reinit_seed=7).recover()
        return group_r.forward_concatenated(shards)

    reinit_a, reinit_b = reinit_run(), reinit_run()

    return {
        "scenario": dict(NUMERIC, tokens=tokens_n),
        "kill_worker": kill,
        "lost_experts": [int(e) for e in event.adopted_experts],
        "moves": [[int(v) for v in m] for m in event.moves],
        "placement_version": [event.old_version, event.new_version],
        "reshard_bytes_per_gpu": int(event.reshard_per_gpu_bytes),
        "scale_up_moves": [[int(v) for v in m] for m in scale_event.moves],
        "checks": {
            # Zero-fault guarantee: the placement-threaded group still
            # matches the single-process layer bit for bit.
            "group_matches_single_process": bool(
                np.array_equal(healthy, single)
            ),
            "degraded_differs_from_healthy": bool(
                not np.array_equal(degraded, healthy)
            ),
            # The recovery parity guarantee, three ways.
            "recovered_matches_fresh_group": bool(
                np.array_equal(recovered, fresh)
            ),
            "recovered_matches_overlap_pipeline": bool(
                np.array_equal(recovered, overlap)
            ),
            "checkpoint_restore_matches_healthy": bool(
                np.array_equal(recovered, healthy)
            ),
            "scale_up_output_unchanged": bool(
                np.array_equal(grown, recovered)
            ),
            "reinit_deterministic": bool(
                np.array_equal(reinit_a, reinit_b)
            ),
            "reinit_differs_from_checkpoint": bool(
                not np.array_equal(reinit_a, recovered)
            ),
        },
    }


def _pricing_study(cfg: dict) -> dict:
    """Price reshard-vs-degraded after losing node 0 of the testbed."""
    model = ct_moe(cfg["layers"])
    spec8 = paper_testbed(num_nodes=8)
    spec7 = paper_testbed(num_nodes=7)
    gpus = spec8.gpus_per_node

    # Expert placement over the 32 ranks; node 0 takes ranks 0..3 down.
    old = ExpertPlacement.contiguous(model.num_experts, spec8.world_size)
    dead = frozenset(range(gpus))
    survivors_pl = old.with_workers_removed(dead)
    moves = reshard_moves(old, survivors_pl)
    bytes_per_expert = expert_param_bytes(
        model.model_dim, model.hidden_dim
    )
    traffic = reshard_traffic(
        moves, bytes_per_expert, survivors_pl.num_workers
    )
    # The exchange runs on the surviving 7-node cluster.
    reshard_s = measure_a2a(
        get_a2a(cfg["algo"]), spec7, traffic["per_gpu_bytes"]
    ).seconds

    def makespan(spec, m):
        return EventExecutor(
            spec,
            get_a2a(cfg["algo"]),
            get_compressor("zfp"),
            get_scheduler(cfg["scheduler"]),
            partitions=2,
        ).run(m).makespan

    # The job's global batch is fixed (strong scaling): the 7
    # survivors each carry 8/7 of the tokens, so every post-failure
    # step is slower than the healthy one regardless of expert count.
    survivor_batch = -(-model.batch_per_gpu * spec8.num_nodes // spec7.num_nodes)
    degraded_model = dataclasses.replace(
        model,
        name=model.name + "-degraded",
        num_experts=model.num_experts - len(dead),
        batch_per_gpu=survivor_batch,
    )
    recovered_model = dataclasses.replace(
        model,
        name=model.name + "-recovered",
        batch_per_gpu=survivor_batch,
    )
    healthy_s = makespan(spec8, model)  # pre-failure reference
    degraded_s = makespan(spec7, degraded_model)  # continue as-is
    recovered_s = makespan(spec7, recovered_model)  # full model, 7 nodes

    decisions = [
        dataclasses.asdict(
            reshard_vs_degraded(reshard_s, degraded_s, recovered_s, h)
        )
        for h in cfg["horizons"]
    ]

    # A replacement node arrives: rebalance back to the contiguous
    # 8-node placement.  Here the per-step saving is real.
    restored = ExpertPlacement.contiguous(
        model.num_experts, spec8.world_size, version=survivors_pl.version + 1
    )
    back_moves = reshard_moves(survivors_pl, restored)
    back_traffic = reshard_traffic(
        back_moves, bytes_per_expert, spec8.world_size
    )
    back_s = measure_a2a(
        get_a2a(cfg["algo"]), spec8, back_traffic["per_gpu_bytes"]
    ).seconds
    back = dataclasses.asdict(
        reshard_vs_degraded(
            back_s, recovered_s, healthy_s, max(cfg["horizons"])
        )
    )

    return {
        "model": model.name,
        "cluster": spec8.name,
        "dead_node": 0,
        "dead_ranks": sorted(dead),
        "adopted_experts": len(moves),
        "bytes_per_expert": int(bytes_per_expert),
        "reshard_total_bytes": int(traffic["total_bytes"]),
        "reshard_per_gpu_bytes": int(traffic["per_gpu_bytes"]),
        "reshard_s": reshard_s,
        "healthy_step_s": healthy_s,
        "degraded_step_s": degraded_s,
        "recovered_step_s": recovered_s,
        "decisions": decisions,
        "scale_back": dict(
            back,
            moves=len(back_moves),
            per_gpu_bytes=int(back_traffic["per_gpu_bytes"]),
        ),
    }


def run_recovery_study(tiny: bool = False) -> dict:
    cfg = TINY if tiny else FULL
    parity = _parity_study(cfg)
    pricing = _pricing_study(cfg)
    return {
        "bench": "ablation_recovery",
        "mode": "tiny" if tiny else "full",
        "parity": parity,
        "pricing": pricing,
        "acceptance": {
            "all_parity_checks_pass": all(parity["checks"].values()),
            "reshard_priced_positive": pricing["reshard_s"] > 0,
            "scale_back_breakeven_finite": (
                pricing["scale_back"]["breakeven_steps"] != float("inf")
            ),
        },
    }


def render(report: dict) -> str:
    par = report["parity"]
    pri = report["pricing"]
    lines = [
        f"numerical parity (E={par['scenario']['num_experts']} "
        f"P={par['scenario']['num_workers']}, kill worker "
        f"{par['kill_worker']}, experts {par['lost_experts']} adopted, "
        f"placement v{par['placement_version'][0]} -> "
        f"v{par['placement_version'][1]})  ({report['mode']})",
    ]
    for name, ok in par["checks"].items():
        lines.append(f"  {name:<40} {ok}")
    lines += [
        "",
        f"pricing: {pri['model']} on {pri['cluster']}, node "
        f"{pri['dead_node']} dies (ranks {pri['dead_ranks']}, "
        f"{pri['adopted_experts']} experts adopted)",
        f"  re-shard A2A: {pri['reshard_per_gpu_bytes']:,} B/GPU -> "
        f"{pri['reshard_s'] * 1e3:.3f} ms on the 7 surviving nodes",
        f"  step: healthy {pri['healthy_step_s'] * 1e3:.2f} ms, "
        f"degraded(28E) {pri['degraded_step_s'] * 1e3:.2f} ms, "
        f"recovered(32E) {pri['recovered_step_s'] * 1e3:.2f} ms",
    ]
    for d in pri["decisions"]:
        be = (
            "inf"
            if d["breakeven_steps"] == float("inf")
            else f"{d['breakeven_steps']:.1f}"
        )
        lines.append(
            f"  horizon {d['horizon_steps']:>5}: continue "
            f"{d['continue_total_s'] * 1e3:9.2f} ms vs reshard "
            f"{d['reshard_total_s'] * 1e3:9.2f} ms (breakeven {be}) "
            f"-> {d['recommendation']}"
        )
    sb = pri["scale_back"]
    lines.append(
        f"  replacement node: rebalance back costs "
        f"{sb['reshard_s'] * 1e3:.3f} ms, saves "
        f"{(sb['continue_step_s'] - sb['reshard_step_s']) * 1e3:.2f} "
        f"ms/step, breakeven {sb['breakeven_steps']:.1f} steps "
        f"-> {sb['recommendation']}"
    )
    return "\n".join(lines)


def _assert_acceptance(report: dict) -> None:
    acc = report["acceptance"]
    assert acc["all_parity_checks_pass"], report["parity"]["checks"]
    assert acc["reshard_priced_positive"]
    assert acc["scale_back_breakeven_finite"]
    # Degraded training does less work per step; the honest time-only
    # call is "continue" — quality is why you reshard anyway.
    pri = report["pricing"]
    assert pri["degraded_step_s"] <= pri["recovered_step_s"] + 1e-12
    # Rebalancing onto the replacement node recovers the healthy rate.
    assert pri["scale_back"]["reshard_step_s"] <= pri["recovered_step_s"]


def write_report(report: dict) -> None:
    emit("ablation_recovery", render(report), data=report)
    # The root fault artifact gains a "recovery" section; everything
    # bench_ablation_faults wrote there is preserved.
    if report["mode"] == "full" and ROOT_JSON.exists():
        merged = json.loads(ROOT_JSON.read_text(encoding="utf-8"))
        merged["recovery"] = report
        ROOT_JSON.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def test_recovery_ablation(benchmark):
    report = once(benchmark, run_recovery_study)
    # Seeded numerics + simulated time: the same scenario must
    # reproduce the exact report, byte for byte.
    replay = run_recovery_study()
    assert json.dumps(report, sort_keys=True) == json.dumps(
        replay, sort_keys=True
    )
    write_report(report)
    _assert_acceptance(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke configuration for CI (seconds, not minutes)",
    )
    args = parser.parse_args()
    report = run_recovery_study(tiny=args.tiny)
    replay = run_recovery_study(tiny=args.tiny)
    assert json.dumps(report, sort_keys=True) == json.dumps(
        replay, sort_keys=True
    ), "recovery study is not deterministic"
    write_report(report)
    _assert_acceptance(report)


if __name__ == "__main__":
    main()
