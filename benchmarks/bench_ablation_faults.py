"""Ablation: schedules and A2A algorithms under injected faults.

Sweeps a straggler GPU (rank 0, compute slowdown 1x..4x) across every
scheduling policy x A2A algorithm combination and executes the CT-MoE
layer pass on the faulted event-level cluster.  The schedule is always
planned against the *healthy* profile — the scheduler does not know
about the straggler — so the sweep measures how gracefully each
policy's overlap absorbs a slow GPU it did not plan for.  Two
communication-fault studies ride along: a flapping inter-node link
(periodic bandwidth collapse in the alpha-beta model) and transient
transfer failures with seeded retry/backoff.

Everything runs in simulated time, so the output is bit-for-bit
deterministic: the same :class:`~repro.faults.FaultPlan` seed must
yield a byte-identical ``BENCH_faults.json`` on every machine and
every rerun (asserted below by building the report twice).  The root
artifact and the ``benchmarks/out/ablation_faults.json`` sidecar are
both part of the deterministic drift gate in CI.

Run directly (``--tiny`` for the CI smoke configuration)::

    PYTHONPATH=src python benchmarks/bench_ablation_faults.py [--tiny]

or via pytest-benchmark like the other benches.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cluster import paper_testbed
from repro.collectives import get_a2a, measure_a2a
from repro.compression import get_compressor
from repro.core import EventExecutor, get_scheduler
from repro.faults import FaultPlan, TransientFaults, flapping_link, single_straggler
from repro.models import ct_moe

from _util import emit, once

ROOT_JSON = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

FULL = {
    "layers": 12,
    "slowdowns": [1.0, 1.5, 2.0, 4.0],
    "schedulers": ["sequential", "chunk-pipeline", "optsche"],
    "a2a": ["nccl", "2dh", "pipe"],
    "transient_algos": ["nccl", "pipe"],
}
TINY = {
    "layers": 12,
    "slowdowns": [1.0, 2.0],
    "schedulers": ["optsche"],
    "a2a": ["pipe"],
    "transient_algos": ["pipe"],
}

#: Message size for the communication-fault studies (bytes per GPU).
A2A_BYTES = 6.4e7
#: Transient-failure scenario: seeded per-transfer failure probability
#: with exponential backoff; the seed makes the whole retry history a
#: pure function of the plan.
TRANSIENT = {
    "probability": 0.05,
    "max_retries": 6,
    "backoff_s": 100e-6,
    "backoff_multiplier": 2.0,
    "seed": 7,
}
#: Flapping-link scenario: node 0's NIC collapses to 10% bandwidth for
#: the first half of every 2 ms period.
FLAPPING = {
    "node": 0,
    "link": "nic",
    "period_s": 2e-3,
    "down_fraction": 0.5,
    "cycles": 50,
    "bandwidth_factor": 0.1,
}


def _straggler_grid(cfg: dict, spec) -> list:
    model = ct_moe(cfg["layers"])
    rows = []
    for sched in cfg["schedulers"]:
        for a2a in cfg["a2a"]:
            for slowdown in cfg["slowdowns"]:
                # slowdown 1.0 is the healthy baseline: no plan at all,
                # exercising the documented zero-faults == historical
                # path guarantee.
                faults = (
                    None
                    if slowdown == 1.0
                    else single_straggler(rank=0, slowdown=slowdown)
                )
                report = EventExecutor(
                    spec,
                    get_a2a(a2a),
                    get_compressor("zfp"),
                    get_scheduler(sched),
                    partitions=2,
                    faults=faults,
                ).run(model)
                rows.append({
                    "scheduler": sched,
                    "a2a": a2a,
                    "slowdown": slowdown,
                    "makespan_s": report.makespan,
                })
    healthy = {
        (r["scheduler"], r["a2a"]): r["makespan_s"]
        for r in rows
        if r["slowdown"] == 1.0
    }
    for r in rows:
        r["degradation"] = (
            r["makespan_s"] / healthy[(r["scheduler"], r["a2a"])]
        )
    return rows


def _flapping_study(cfg: dict, spec) -> dict:
    plan = FaultPlan(seed=0, links=flapping_link(**FLAPPING))
    out = {"config": dict(FLAPPING), "by_algo": {}}
    for name in cfg["a2a"]:
        clean = measure_a2a(get_a2a(name), spec, A2A_BYTES)
        hurt = measure_a2a(get_a2a(name), spec, A2A_BYTES, faults=plan)
        out["by_algo"][name] = {
            "healthy_s": clean.seconds,
            "flapping_s": hurt.seconds,
            "slowdown": hurt.seconds / clean.seconds,
        }
    return out


def _transient_study(cfg: dict, spec) -> dict:
    plan = FaultPlan(
        seed=TRANSIENT["seed"],
        transient=TransientFaults(
            probability=TRANSIENT["probability"],
            link="any",
            max_retries=TRANSIENT["max_retries"],
            backoff_s=TRANSIENT["backoff_s"],
            backoff_multiplier=TRANSIENT["backoff_multiplier"],
        ),
    )
    out = {"config": dict(TRANSIENT), "by_algo": {}}
    for name in cfg["transient_algos"]:
        clean = measure_a2a(get_a2a(name), spec, A2A_BYTES)
        hurt = measure_a2a(get_a2a(name), spec, A2A_BYTES, faults=plan)
        out["by_algo"][name] = {
            "healthy_s": clean.seconds,
            "faulted_s": hurt.seconds,
            "slowdown": hurt.seconds / clean.seconds,
            "failures": hurt.stats["transient_failures"],
            "retries": hurt.stats["transient_retries"],
        }
    return out


def run_faults_study(tiny: bool = False) -> dict:
    cfg = TINY if tiny else FULL
    spec = paper_testbed()
    stragglers = _straggler_grid(cfg, spec)
    flapping = _flapping_study(cfg, spec)
    transient = _transient_study(cfg, spec)
    degradations = [r["degradation"] for r in stragglers]
    monotone = all(
        a["makespan_s"] <= b["makespan_s"] + 1e-12
        for a, b in zip(stragglers, stragglers[1:])
        if (a["scheduler"], a["a2a"]) == (b["scheduler"], b["a2a"])
    )
    return {
        "bench": "ablation_faults",
        "mode": "tiny" if tiny else "full",
        "model": f"ct_moe({cfg['layers']})",
        "straggler_rank": 0,
        "stragglers": stragglers,
        "flapping_link": flapping,
        "transient": transient,
        "acceptance": {
            # A straggler can only hurt, and never by more than its own
            # slowdown factor (communication time is unscaled).
            "degradation_monotone_in_slowdown": monotone,
            "max_degradation": max(degradations),
            "min_degradation": min(degradations),
            "transient_retries_observed": min(
                a["retries"] for a in transient["by_algo"].values()
            ),
        },
    }


def render(report: dict) -> str:
    lines = [
        f"model {report['model']}, straggler on rank "
        f"{report['straggler_rank']}  ({report['mode']})",
        "",
        f"{'scheduler':<16} {'a2a':<6} {'slowdown':>9} {'makespan':>10} "
        f"{'degrade':>8}",
    ]
    for r in report["stragglers"]:
        lines.append(
            f"{r['scheduler']:<16} {r['a2a']:<6} {r['slowdown']:>8.1f}x "
            f"{r['makespan_s'] * 1e3:>8.2f}ms {r['degradation']:>7.2f}x"
        )
    lines.append("")
    lines.append(
        "flapping inter-node link "
        f"(node {report['flapping_link']['config']['node']}, "
        f"{report['flapping_link']['config']['bandwidth_factor'] * 100:.0f}%"
        " bandwidth half of every period):"
    )
    for name, row in sorted(report["flapping_link"]["by_algo"].items()):
        lines.append(
            f"  {name:<6} {row['healthy_s'] * 1e3:>8.2f}ms -> "
            f"{row['flapping_s'] * 1e3:>8.2f}ms ({row['slowdown']:.2f}x)"
        )
    t = report["transient"]
    lines.append(
        f"transient failures (p={t['config']['probability']}, "
        f"seed={t['config']['seed']}, retry budget "
        f"{t['config']['max_retries']}):"
    )
    for name, row in sorted(t["by_algo"].items()):
        lines.append(
            f"  {name:<6} {row['healthy_s'] * 1e3:>8.2f}ms -> "
            f"{row['faulted_s'] * 1e3:>8.2f}ms ({row['slowdown']:.2f}x, "
            f"{row['failures']:.0f} failures, {row['retries']:.0f} retries)"
        )
    return "\n".join(lines)


def _assert_acceptance(report: dict) -> None:
    acc = report["acceptance"]
    assert acc["degradation_monotone_in_slowdown"]
    assert acc["min_degradation"] >= 1.0 - 1e-9
    assert acc["max_degradation"] <= max(
        r["slowdown"] for r in report["stragglers"]
    ) + 1e-9
    assert acc["transient_retries_observed"] > 0
    for row in report["flapping_link"]["by_algo"].values():
        assert row["slowdown"] > 1.0


def write_report(report: dict) -> None:
    emit("ablation_faults", render(report), data=report)
    # The root artifact tracks the full grid only — a --tiny smoke run
    # must not clobber the recorded numbers.
    if report["mode"] == "full":
        merged = dict(report)
        if ROOT_JSON.exists():
            # bench_ablation_recovery owns the "recovery" section of the
            # root artifact; rewriting the fault grid must not drop it.
            prior = json.loads(ROOT_JSON.read_text(encoding="utf-8"))
            if "recovery" in prior:
                merged["recovery"] = prior["recovery"]
        ROOT_JSON.write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def test_faults_ablation(benchmark):
    report = once(benchmark, run_faults_study)
    # Simulated time has no wall clock in it: the same fault plan must
    # reproduce the exact report, byte for byte.
    replay = run_faults_study()
    assert json.dumps(report, sort_keys=True) == json.dumps(
        replay, sort_keys=True
    )
    write_report(report)
    _assert_acceptance(report)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="smoke configuration for CI (seconds, not minutes)",
    )
    args = parser.parse_args()
    report = run_faults_study(tiny=args.tiny)
    replay = run_faults_study(tiny=args.tiny)
    assert json.dumps(report, sort_keys=True) == json.dumps(
        replay, sort_keys=True
    ), "fault injection is not deterministic"
    write_report(report)
    _assert_acceptance(report)


if __name__ == "__main__":
    main()
