"""Paper Table 1: A2A time vs step time on CT-MoE-x under Tutel.

Paper's measured rows (32x RTX 2080 Ti, 100 Gb/s IB):

    layers  A2A(ms)  step(ms)  ratio
    12      252.6    497.1     50.8%
    16      324.8    623.0     52.1%
    20      419.3    768.9     54.5%
    24      507.4    863.6     58.8%

Reproduction target: A2A occupies at least half the step and the ratio
grows with depth.
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.models import ct_moe
from repro.systems import SystemRunner, tutel

from _util import emit, once


def run_table1() -> str:
    runner = SystemRunner(paper_testbed())
    lines = [
        f"{'#Layers':>8} {'#Params(M)':>11} {'A2A(ms)':>9} "
        f"{'Step(ms)':>9} {'Ratio(%)':>9}"
    ]
    for layers in (12, 16, 20, 24):
        cfg = ct_moe(layers)
        step = runner.step(cfg, tutel())
        lines.append(
            f"{layers:>8} {cfg.total_params / 1e6:>11.0f} "
            f"{step.a2a_total_s * 1e3:>9.1f} {step.total_s * 1e3:>9.1f} "
            f"{step.a2a_ratio * 100:>9.1f}"
        )
    return "\n".join(lines)


def test_table1_a2a_ratio(benchmark):
    text = once(benchmark, run_table1)
    emit("table1_a2a_ratio", text)
    # Shape assertions: A2A >= 50% and monotone in depth.
    ratios = [float(line.split()[-1]) for line in text.splitlines()[1:]]
    assert all(r >= 50.0 for r in ratios)
    assert ratios == sorted(ratios)
