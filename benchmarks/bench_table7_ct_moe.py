"""Paper Table 7: CT-MoE-x step time across training systems.

Paper's measured rows (ms):

    x     Tutel   Faster-MoE   ScheMoE
    12    497+/-9    506+/-7    454+/-4
    16    623+/-2    640+/-8    552+/-1
    20    769+/-3    845+/-10   658+/-1
    24    864+/-3   1003+/-16   774+/-8

Reproduction target: ScheMoE 9-17% over Tutel, 11-30% over FasterMoE,
with the FasterMoE gap widening with depth.
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.models import ct_moe
from repro.systems import SystemRunner, comparison_suite

from _util import emit, once


def run_table7():
    runner = SystemRunner(paper_testbed())
    rows = []
    for layers in (12, 16, 20, 24):
        results = runner.compare(ct_moe(layers), comparison_suite())
        rows.append((layers, results))
    return rows


def render(rows) -> str:
    lines = [
        f"{'x':>4} {'Tutel(ms)':>10} {'FasterMoE(ms)':>14} "
        f"{'ScheMoE(ms)':>12} {'T/S':>6} {'F/S':>6}"
    ]
    for layers, results in rows:
        t = results["Tutel"].total_s
        f = results["Faster-MoE"].total_s
        s = results["ScheMoE"].total_s
        lines.append(
            f"{layers:>4} {t * 1e3:>10.0f} {f * 1e3:>14.0f} "
            f"{s * 1e3:>12.0f} {t / s:>6.2f} {f / s:>6.2f}"
        )
    return "\n".join(lines)


def test_table7_ct_moe(benchmark):
    rows = once(benchmark, run_table7)
    emit("table7_ct_moe", render(rows))
    for _layers, results in rows:
        t = results["Tutel"].total_s
        f = results["Faster-MoE"].total_s
        s = results["ScheMoE"].total_s
        assert s < t < f  # ScheMoE wins; FasterMoE trails Tutel
        assert 1.05 < t / s < 1.30
        assert 1.10 < f / s < 1.40
