"""Paper Figure 8: ScheMoE speedup over Tutel across the Table 4 grid.

The paper sweeps B x f x L x H x M (675 combinations, k=2, E=32 on the
32-GPU testbed), excludes OOM cases, and reports the distribution of
per-configuration speedups of ScheMoE over Tutel — mean ~1.22x, with
ScheMoE faster in every valid case.

The sweep runs ScheMoE's system machinery (Pipe-A2A + OptSche,
adaptive degree) on raw fp32 payloads: the paper introduces lossy
compression separately via the convergence study (Section 6.2), and
only the uncompressed configuration reproduces Figure 8's modest
1.0-1.5x band — with ZFP enabled the bandwidth-bound half of the grid
jumps to 2-4x (see EXPERIMENTS.md).

The 1350 simulations run through :func:`repro.systems.run_sweep`: cache
misses fan out over a process pool and every result lands in the keyed
JSON cache (``benchmarks/out/sweep_cache.json``), so a re-run replays
from disk near-instantly.  The simulator is deterministic, so the
statistics are byte-identical however the sweep is executed.

Reproduction target: ScheMoE >= Tutel on every valid configuration
and a mean speedup near the paper's 1.22x.
"""

from __future__ import annotations

from repro.cluster import paper_testbed
from repro.models import layer_config_from_grid, table4_grid
from repro.systems import (
    SpeedupStats,
    SweepTask,
    run_sweep,
    schemoe_no_compression,
    tutel,
)

from _util import OUT_DIR, emit, once

CACHE_PATH = OUT_DIR / "sweep_cache.json"


def run_fig8(cache_path=CACHE_PATH, processes=None):
    tutel_policy = tutel()
    schemoe_policy = schemoe_no_compression()
    tasks = []
    for point in table4_grid():
        cfg = layer_config_from_grid(point)
        tasks.append(SweepTask(cfg, tutel_policy))
        tasks.append(SweepTask(cfg, schemoe_policy))
    results = run_sweep(
        tasks, paper_testbed(), cache_path=cache_path, processes=processes
    )

    speedups = []
    oom = 0
    slower = 0
    for t, s in zip(results[0::2], results[1::2]):
        if t.oom or s.oom:
            oom += 1
            continue
        ratio = t.total_s / s.total_s
        speedups.append(ratio)
        if ratio < 1.0:
            slower += 1
    return speedups, oom, slower


def render(speedups, oom, slower) -> str:
    stats = SpeedupStats.from_values(
        speedups, bin_edges=[1.0, 1.05, 1.1, 1.2, 1.3, 1.4, 1.5, 2.0]
    )
    lines = [
        f"valid configurations: {stats.count} (OOM excluded: {oom})",
        f"ScheMoE slower than Tutel in {slower} cases",
        "",
        stats.render(width=48),
    ]
    return "\n".join(lines)


def test_fig8_speedup_sweep(benchmark):
    speedups, oom, slower = once(benchmark, run_fig8)
    stats = SpeedupStats.from_values(speedups)
    emit(
        "fig8_speedup_sweep",
        render(speedups, oom, slower),
        data={
            "valid": stats.count,
            "oom": oom,
            "slower": slower,
            "mean": stats.mean,
            "min": stats.minimum,
            "max": stats.maximum,
        },
    )
    assert stats.count >= 600  # nearly all 675 points are valid
    # Paper: 22% average improvement; our simulated grid is uniformly
    # bandwidth-bound (every payload is >= 8.4 MB at k=2), so Pipe-A2A
    # contributes its full ~1.4x at most points and the mean lands
    # higher (see EXPERIMENTS.md for the deviation discussion).
    assert 1.10 < stats.mean < 1.60
    assert stats.minimum >= 1.0  # ScheMoE is always faster (paper)
    assert slower == 0
