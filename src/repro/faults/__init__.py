"""Seeded, deterministic fault injection for both substrates.

ScheMoE's evaluation assumes a healthy cluster, but its headline
mechanisms — OptSche's provably-optimal ordering and Pipe-A2A's
intra/inter overlap — are exactly what degrades first under
stragglers, flapping links and failed ranks.  This module gives the
reproduction a way to ask "what happens then":

* a :class:`FaultPlan` is a pure-literal description of the faults to
  inject — straggler GPUs (compute slowdown over a simulated-time
  window), degraded or flapping links (bandwidth cut / latency spike
  in the alpha-beta model), and transient transfer failures that
  trigger retry with exponential backoff — fully reproducible from its
  ``seed``;
* a :class:`FaultInjector` is the per-:class:`~repro.cluster.topology.
  SimCluster` runtime that answers "how long does this kernel/transfer
  actually take, starting now?" by piecewise integration over the
  plan's fault windows, and draws transient-failure decisions from a
  counter-indexed hash of the seed (no wall clock, no global RNG
  state), so the same plan produces byte-identical simulations.

The numerical substrate consumes the companion degradation hooks
directly (:meth:`repro.moe.gating.GateOutput.with_experts_dropped`,
``MoELayer.set_dead_experts``, ``ExpertParallelGroup.set_dead_workers``,
``repro.training.AnomalyGuard``); this module owns the *timing* side.

An empty plan is guaranteed to leave every code path bit-identical to
the fault-free simulator: :class:`~repro.cluster.topology.SimCluster`
skips injector construction entirely when ``FaultPlan.is_empty()``.

Degrading is only half a fault story.  The companion submodule
:mod:`repro.faults.recovery` closes the loop — detect a dead worker,
re-shard its experts onto survivors (placement swap + parameter
re-instantiation from checkpoint or seeded re-init), price the
re-shard all-to-all through the timing substrate, and decide
reshard-vs-degraded — so a run returns to full expert count instead of
training degraded forever.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..cluster.costmodel import LinkModel
from ..cluster.engine import SimulationError

#: Link classes a fault can target (``"any"`` is transient-only).
LINK_KINDS = ("fabric", "nic")


class FaultError(SimulationError):
    """Raised when a fault cannot be degraded around (e.g. a transfer
    exhausts its transient-retry budget)."""


@dataclass(frozen=True)
class StragglerFault:
    """One GPU computing slower by ``slowdown``x during a time window.

    Models a thermally throttled / contended / misbehaving device: all
    kernels on ``rank``'s compute stream take ``slowdown`` times their
    healthy duration while the simulated clock is inside
    ``[start_s, end_s)``.  Kernels spanning a window edge are priced
    piecewise, so a 2x straggler that recovers halfway through a
    kernel slows exactly the first half.
    """

    rank: int
    slowdown: float
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.slowdown < 1.0:
            raise ValueError(
                f"slowdown must be >= 1 (1 = healthy), got {self.slowdown}"
            )
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class LinkFault:
    """A degraded link: bandwidth cut and/or latency spike in a window.

    ``link`` selects the resource class — ``"nic"`` degrades the
    node's inter-node egress, ``"fabric"`` its intra-node fabric (both
    the pairwise and bulk paths; the fault is the wire, not the
    protocol).  ``node=-1`` applies to every node.  Flapping links are
    expressed as several short windows (:func:`flapping_link`).
    """

    node: int
    link: str
    bandwidth_factor: float = 1.0
    extra_latency_s: float = 0.0
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.node < -1:
            raise ValueError(f"node must be >= -1, got {self.node}")
        if self.link not in LINK_KINDS:
            raise ValueError(
                f"link must be one of {LINK_KINDS}, got {self.link!r}"
            )
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError(
                "bandwidth_factor must be in (0, 1], got "
                f"{self.bandwidth_factor}"
            )
        if self.extra_latency_s < 0:
            raise ValueError(
                f"extra_latency_s must be >= 0, got {self.extra_latency_s}"
            )
        _check_window(self.start_s, self.end_s)


@dataclass(frozen=True)
class TransientFaults:
    """Seeded random per-message transfer failures with retry/backoff.

    Inside ``[start_s, end_s)`` every matching transfer attempt fails
    independently with ``probability``; a failed attempt still occupies
    its link for the full transfer duration (the bytes moved, then the
    CRC said no), after which the sender backs off
    :meth:`backoff_delay` simulated seconds (exponential in the attempt
    number, saturating at :data:`BACKOFF_EXPONENT_CAP`) and
    retries.  After ``max_retries`` failed retries the transfer raises
    :class:`FaultError` — the fault is no longer transient.

    Decisions are drawn from a hash of ``(plan seed, attempt index)``
    so a plan replays identically run after run.
    """

    probability: float
    link: str = "any"
    max_retries: int = 5
    backoff_s: float = 100e-6
    backoff_multiplier: float = 2.0
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability < 1.0:
            raise ValueError(
                f"probability must be in [0, 1), got {self.probability}"
            )
        if self.link not in LINK_KINDS + ("any",):
            raise ValueError(
                f"link must be one of {LINK_KINDS + ('any',)}, "
                f"got {self.link!r}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                "backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        _check_window(self.start_s, self.end_s)

    def matches(self, kind: str) -> bool:
        """Whether this fault class applies to link class ``kind``."""
        return self.link == "any" or self.link == kind

    #: Cap on the backoff exponent: beyond this the delay saturates
    #: instead of growing.  2**30 ≈ 1e9 multiplier is already far past
    #: any plausible budget; without the cap a pathological
    #: ``max_retries`` (say 10_000) overflows float64 to ``inf`` and
    #: the simulated clock never advances past the retry loop.
    BACKOFF_EXPONENT_CAP = 30

    def backoff_delay(self, attempt: int) -> float:
        """Simulated wait before retry number ``attempt`` (0-based).

        Exponential with a saturating exponent: attempts past
        :data:`BACKOFF_EXPONENT_CAP` all wait the capped delay, so the
        delay is always finite no matter the retry budget.
        """
        exponent = min(attempt, self.BACKOFF_EXPONENT_CAP)
        return self.backoff_s * self.backoff_multiplier**exponent


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible fault scenario for one simulation.

    Pure-literal dataclasses all the way down: two plans with equal
    fields inject byte-identical fault sequences, and ``seed`` is the
    only source of (pseudo-)randomness — transient failure decisions
    hash ``(seed, attempt index)``, never wall clock or process state.
    """

    seed: int = 0
    stragglers: Tuple[StragglerFault, ...] = ()
    links: Tuple[LinkFault, ...] = ()
    transient: Optional[TransientFaults] = None

    def __post_init__(self) -> None:
        # Tolerate lists (e.g. a plan parsed from JSON).
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "links", tuple(self.links))

    def is_empty(self) -> bool:
        """True when the plan injects nothing (healthy cluster)."""
        return (
            not self.stragglers and not self.links and self.transient is None
        )

    # -- (de)serialization ------------------------------------------------
    def to_json_dict(self) -> dict:
        """A JSON-encodable view (``inf`` windows become ``null``)."""
        blob = asdict(self)
        for group in ("stragglers", "links"):
            blob[group] = [_window_to_json(f) for f in blob[group]]
        if blob["transient"] is not None:
            blob["transient"] = _window_to_json(blob["transient"])
        return blob

    @staticmethod
    def from_json_dict(blob: dict) -> "FaultPlan":
        """Inverse of :meth:`to_json_dict` (strict on unknown keys)."""
        known = {"seed", "stragglers", "links", "transient"}
        unknown = set(blob) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        transient = blob.get("transient")
        return FaultPlan(
            seed=int(blob.get("seed", 0)),
            stragglers=tuple(
                StragglerFault(**_window_from_json(f))
                for f in blob.get("stragglers", ())
            ),
            links=tuple(
                LinkFault(**_window_from_json(f))
                for f in blob.get("links", ())
            ),
            transient=(
                TransientFaults(**_window_from_json(transient))
                if transient is not None
                else None
            ),
        )


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0:
        raise ValueError(f"start_s must be >= 0, got {start_s}")
    if end_s <= start_s:
        raise ValueError(
            f"window must satisfy end_s > start_s, got [{start_s}, {end_s})"
        )


def _window_to_json(fields: dict) -> dict:
    out = dict(fields)
    if out.get("end_s") == math.inf:
        out["end_s"] = None
    return out


def _window_from_json(fields: dict) -> dict:
    out = dict(fields)
    if out.get("end_s", math.inf) is None:
        out["end_s"] = math.inf
    return out


def save_fault_plan(plan: FaultPlan, path: Union[str, Path]) -> None:
    """Write a plan as a JSON file (the CLI's ``--faults`` format)."""
    Path(path).write_text(
        json.dumps(plan.to_json_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read a plan written by :func:`save_fault_plan`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no fault plan at {path}")
    return FaultPlan.from_json_dict(
        json.loads(path.read_text(encoding="utf-8"))
    )


def single_straggler(
    rank: int,
    slowdown: float,
    start_s: float = 0.0,
    end_s: float = math.inf,
    seed: int = 0,
) -> FaultPlan:
    """The canonical one-slow-GPU scenario (the faults ablation's axis)."""
    return FaultPlan(
        seed=seed,
        stragglers=(
            StragglerFault(
                rank=rank, slowdown=slowdown, start_s=start_s, end_s=end_s
            ),
        ),
    )


def flapping_link(
    node: int,
    link: str,
    period_s: float,
    down_fraction: float,
    cycles: int,
    bandwidth_factor: float = 0.1,
    extra_latency_s: float = 0.0,
    start_s: float = 0.0,
) -> Tuple[LinkFault, ...]:
    """Degradation windows of a flapping link.

    Each of ``cycles`` periods of ``period_s`` seconds starts with a
    "down" phase of ``down_fraction`` of the period in which the link
    runs at ``bandwidth_factor`` of its bandwidth (plus an optional
    latency spike), then recovers for the rest of the period.
    """
    if period_s <= 0:
        raise ValueError(f"period_s must be positive, got {period_s}")
    if not 0.0 < down_fraction <= 1.0:
        raise ValueError(
            f"down_fraction must be in (0, 1], got {down_fraction}"
        )
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    return tuple(
        LinkFault(
            node=node,
            link=link,
            bandwidth_factor=bandwidth_factor,
            extra_latency_s=extra_latency_s,
            start_s=start_s + c * period_s,
            end_s=start_s + c * period_s + down_fraction * period_s,
        )
        for c in range(cycles)
    )


# --------------------------------------------------------------------------
# Runtime
# --------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1


def _hash_uniform(seed: int, index: int) -> float:
    """Deterministic uniform in [0, 1) from (seed, index).

    A splitmix64 finalizer over the golden-ratio-spread combination —
    no RNG object, no state, so failure decisions depend only on the
    plan's seed and the attempt's position in the simulation.
    """
    x = (seed * 0x9E3779B97F4A7C15 + index + 1) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0**64


def _piecewise_finish(
    start: float,
    work: float,
    rate_at: Callable[[float], float],
    boundaries: List[float],
) -> float:
    """Completion time of ``work`` units begun at ``start``.

    ``rate_at(t)`` is the instantaneous completion rate (units/sec),
    constant between consecutive ``boundaries`` (sorted ascending,
    finite).  This is the one integration routine both fault classes
    share: compute work in healthy-seconds against slowdown factors,
    transfer work in bytes against degraded bandwidth.
    """
    if work <= 0:
        return start
    t = start
    remaining = work
    for edge in boundaries:
        if edge <= t:
            continue
        rate = rate_at(t)
        capacity = (edge - t) * rate
        if remaining <= capacity:
            return t + remaining / rate
        remaining -= capacity
        t = edge
    rate = rate_at(t)
    if rate <= 0:
        raise FaultError(
            f"work stalls forever at t={t:.6g}s: rate dropped to zero "
            "with no later recovery window"
        )
    return t + remaining / rate


class FaultInjector:
    """Evaluates one :class:`FaultPlan` against one simulated cluster.

    Holds the per-simulation transient-attempt counter; create a fresh
    injector per :class:`~repro.cluster.topology.SimCluster` (the
    cluster does this itself) so repeated simulations of the same plan
    replay identically.
    """

    def __init__(self, plan: FaultPlan, world_size: int, num_nodes: int):
        for s in plan.stragglers:
            if s.rank >= world_size:
                raise ValueError(
                    f"straggler rank {s.rank} out of range "
                    f"[0, {world_size})"
                )
        for lf in plan.links:
            if lf.node >= num_nodes:
                raise ValueError(
                    f"link fault node {lf.node} out of range "
                    f"[0, {num_nodes})"
                )
        self.plan = plan
        self._attempts = 0
        self._stragglers_by_rank: Dict[int, List[StragglerFault]] = {}
        for s in plan.stragglers:
            self._stragglers_by_rank.setdefault(s.rank, []).append(s)
        self._links_by_key: Dict[Tuple[str, int], List[LinkFault]] = {}
        for lf in plan.links:
            nodes = range(num_nodes) if lf.node == -1 else (lf.node,)
            for node in nodes:
                self._links_by_key.setdefault((lf.link, node), []).append(lf)

    # -- compute ----------------------------------------------------------
    def compute_finish(self, rank: int, start: float, seconds: float) -> float:
        """When a kernel of ``seconds`` healthy time, started at
        ``start`` on ``rank``, actually finishes."""
        faults = self._stragglers_by_rank.get(rank)
        if not faults:
            return start + seconds

        def rate_at(t: float) -> float:
            factor = 1.0
            for f in faults:
                if f.start_s <= t < f.end_s:
                    factor *= f.slowdown
            return 1.0 / factor

        return _piecewise_finish(
            start, seconds, rate_at, _edges(faults, start)
        )

    # -- links ------------------------------------------------------------
    def transfer_finish(
        self,
        kind: str,
        node: int,
        start: float,
        nbytes: float,
        link: LinkModel,
    ) -> float:
        """When a transfer of ``nbytes`` over ``link`` (class ``kind``
        on ``node``), started at ``start``, actually finishes.

        The fixed latency term is priced at the transfer's start (a
        latency spike delays message setup); the byte drain integrates
        the bandwidth cut piecewise across windows.
        """
        faults = self._links_by_key.get((kind, node))
        if not faults:
            return start + link.transfer_time(nbytes)
        latency = link.latency_s
        for f in faults:
            if f.start_s <= start < f.end_s:
                latency += f.extra_latency_s
        drain_start = start + latency

        def rate_at(t: float) -> float:
            factor = 1.0
            for f in faults:
                if f.start_s <= t < f.end_s:
                    factor *= f.bandwidth_factor
            return link.bandwidth_bps * factor

        return _piecewise_finish(
            drain_start, nbytes, rate_at, _edges(faults, drain_start)
        )

    # -- transient failures ----------------------------------------------
    def transfer_attempt_fails(self, kind: str, when: float) -> bool:
        """Seeded verdict for one transfer attempt starting at ``when``."""
        t = self.plan.transient
        if t is None or not t.matches(kind):
            return False
        if not t.start_s <= when < t.end_s:
            return False
        index = self._attempts
        self._attempts += 1
        return _hash_uniform(self.plan.seed, index) < t.probability


def _edges(faults, after: float) -> List[float]:
    """Finite window edges strictly after ``after``, sorted."""
    edges = set()
    for f in faults:
        for edge in (f.start_s, f.end_s):
            if after < edge < math.inf:
                edges.add(edge)
    return sorted(edges)
