"""Elastic recovery: detect → adopt → re-instantiate → rebalance.

The graceful-degradation layer (PR 5) answers "a worker died, keep
stepping" by capacity-dropping the dead worker's experts with gate
renormalization — correct, but permanent: the model then trains with
fewer experts forever.  This module closes the loop with the recovery
state machine the ROADMAP names:

1. **detect** — a worker is declared dead
   (:meth:`~repro.moe.parallel.ExpertParallelGroup.set_dead_workers`,
   usually driven by a :class:`~repro.faults.FaultPlan` scenario);
2. **adopt** — survivors take over the lost experts with a minimal-move
   placement rebalance
   (:meth:`~repro.moe.placement.ExpertPlacement.with_workers_removed`,
   version bumped);
3. **re-instantiate** — the lost experts' parameters are restored on
   their new hosts, either exactly from the last crash-safe checkpoint
   or by *seeded re-init* (documented semantics: expert ``e`` is drawn
   from ``np.random.default_rng((reinit_seed, placement_version, e))``
   exactly as the :class:`~repro.moe.experts.Experts` constructor
   draws one expert — fc1 xavier, fc2 xavier, zero biases — so every
   replay of the same recovery produces identical parameters);
4. **renorm removal** — the dead-worker set is cleared, so gating
   returns to the full expert count with no renormalization: the
   recovered group's forward is bit-identical to a freshly constructed
   group with the same placement and parameters.

Scale-up is the same machinery pointed the other way
(:meth:`RecoveryController.scale_up` /
:meth:`~repro.moe.parallel.ExpertParallelGroup.admit_worker`): a new
worker is admitted mid-run and receives its fair share of experts with
the minimal move set.

Every transition is priced through the *timing* substrate: the expert
slices that must move are counted in bytes
(:func:`~repro.moe.placement.reshard_traffic`) and converted to
simulated seconds by :func:`~repro.collectives.measure_a2a` — on a
healthy cluster or under a :class:`~repro.faults.FaultPlan` (the
re-shard happens on the *degraded* cluster, after all).
:func:`reshard_vs_degraded` turns those numbers into the planner's
decision hook: pay the one-off re-shard or keep stepping as-is.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from . import FaultPlan
from ..moe.placement import (
    ExpertPlacement,
    expert_param_bytes,
    reshard_moves,
    reshard_traffic,
)

__all__ = [
    "RecoveryController",
    "RecoveryEvent",
    "RecoveryDemo",
    "ReshardDecision",
    "load_recovery_demo",
    "price_reshard",
    "reshard_vs_degraded",
    "save_recovery_demo",
]


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed recovery or scale-up transition (the audit record)."""

    kind: str  # "recover" | "scale-up"
    dead_workers: Tuple[int, ...]
    adopted_experts: Tuple[int, ...]
    moves: Tuple[Tuple[int, int, int], ...]  # (expert, src, dst)
    old_version: int
    new_version: int
    source: str  # "checkpoint" | "reinit" | "move"
    reshard_total_bytes: int
    reshard_per_gpu_bytes: int


@dataclass(frozen=True)
class ReshardDecision:
    """The reshard-vs-continue tradeoff, priced in simulated seconds.

    ``continue_step_s`` is the per-step cost of keeping the current
    configuration; ``reshard_step_s`` the per-step cost after paying
    the one-off ``reshard_s``.  ``breakeven_steps`` is the horizon
    beyond which resharding is cheaper (``inf`` when resharding never
    pays off *in time* — after a worker death, degraded steps are
    usually cheaper per step because fewer experts run, and the reason
    to reshard anyway is model quality: the recovered run serves the
    full expert count, which no step-time metric captures).
    """

    reshard_s: float
    continue_step_s: float
    reshard_step_s: float
    horizon_steps: int
    continue_total_s: float
    reshard_total_s: float
    breakeven_steps: float
    recommendation: str  # "reshard" | "continue"


def reshard_vs_degraded(
    reshard_s: float,
    continue_step_s: float,
    reshard_step_s: float,
    horizon_steps: int,
) -> ReshardDecision:
    """The planner's decision hook: pay the re-shard or keep stepping.

    Pure arithmetic over simulated seconds, so callers can price any
    pair of configurations — degraded vs recovered, pre- vs
    post-scale-up — over a planning horizon.
    """
    if horizon_steps < 0:
        raise ValueError(
            f"horizon_steps must be >= 0, got {horizon_steps}"
        )
    if reshard_s < 0:
        raise ValueError(f"reshard_s must be >= 0, got {reshard_s}")
    saving = continue_step_s - reshard_step_s
    breakeven = reshard_s / saving if saving > 0 else math.inf
    continue_total = horizon_steps * continue_step_s
    reshard_total = reshard_s + horizon_steps * reshard_step_s
    return ReshardDecision(
        reshard_s=reshard_s,
        continue_step_s=continue_step_s,
        reshard_step_s=reshard_step_s,
        horizon_steps=horizon_steps,
        continue_total_s=continue_total,
        reshard_total_s=reshard_total,
        breakeven_steps=breakeven,
        recommendation=(
            "reshard" if reshard_total < continue_total else "continue"
        ),
    )


def price_reshard(
    spec,
    per_gpu_bytes: Union[int, float],
    algo: str = "pipe",
    faults: Optional[FaultPlan] = None,
) -> float:
    """Simulated seconds to move ``per_gpu_bytes`` of expert slices.

    The re-shard exchange is all-to-all-shaped (several workers send
    expert slices to several others at once), so it is priced as one
    A2A of the busiest endpoint's payload
    (``reshard_traffic(...)["per_gpu_bytes"]``) — a conservative bound,
    since the real exchange is sparser.  ``faults`` prices it on a
    degraded cluster: recovering *through* the fault costs more than
    the healthy number, and that difference is part of the decision.
    """
    per_gpu_bytes = float(per_gpu_bytes)
    if per_gpu_bytes < 0:
        raise ValueError(
            f"per_gpu_bytes must be >= 0, got {per_gpu_bytes}"
        )
    if per_gpu_bytes == 0:
        return 0.0
    from ..collectives import get_a2a, measure_a2a

    result = measure_a2a(
        get_a2a(algo), spec, per_gpu_bytes, faults=faults
    )
    if result.oom:
        raise MemoryError(
            f"re-shard A2A of {per_gpu_bytes:.3e} B/GPU does not fit "
            f"on the cluster (peak {result.peak_bytes_per_gpu:.3e} B)"
        )
    return result.seconds


class RecoveryController:
    """Drives a live :class:`ExpertParallelGroup` through recovery.

    ``checkpoint`` (optional) is a crash-safe archive written by
    :func:`repro.nn.serialization.save_checkpoint`; when given, lost
    experts are restored *exactly* from it (the training loss picks up
    where the checkpoint left those experts).  Without one, lost
    experts are seeded-re-initialized — deterministic (see the module
    docstring) but fresh, so those experts restart learning.
    ``bank_prefix`` names the expert bank inside the checkpoint when
    the archive holds more than one (e.g. ``"experts"`` for a bare
    :class:`MoELayer` checkpoint, ``"layers.3.moe.experts"`` inside a
    full LM); with exactly one bank it is found automatically.

    The controller remembers every worker it has retired, so repeated
    failures never rebalance experts back onto a dead rank, and each
    transition appends a :class:`RecoveryEvent` to :attr:`events`.
    """

    def __init__(
        self,
        group,
        checkpoint: Optional[Union[str, Path]] = None,
        reinit_seed: int = 0,
        bank_prefix: Optional[str] = None,
    ):
        self.group = group
        self.checkpoint = Path(checkpoint) if checkpoint else None
        self.reinit_seed = int(reinit_seed)
        self.bank_prefix = bank_prefix
        self.retired: frozenset = frozenset()
        self.events: List[RecoveryEvent] = []

    # -- helpers -----------------------------------------------------------
    def _bytes_per_expert(self) -> int:
        experts = self.group.layer.experts
        return expert_param_bytes(experts.model_dim, experts.hidden_dim)

    def _checkpoint_bank(self) -> Dict[str, np.ndarray]:
        """The stacked w1/b1/w2/b2 bank stored in the checkpoint."""
        from ..nn.serialization import (
            _EXTRA_PREFIX,
            _META_KEY,
            _bank_bases,
            stack_expert_state,
        )

        experts = self.group.layer.experts
        with np.load(self.checkpoint, allow_pickle=False) as archive:
            state = {
                name: archive[name]
                for name in archive.files
                if name != _META_KEY
                and not name.startswith(_EXTRA_PREFIX)
            }
        state = stack_expert_state(state)
        bases = _bank_bases(state, experts.num_experts)
        if self.bank_prefix is not None:
            base = self.bank_prefix
            if base and not base.endswith("."):
                base += "."
            if base not in bases:
                raise KeyError(
                    f"no expert bank {self.bank_prefix!r} in "
                    f"{self.checkpoint} (found: {sorted(bases)})"
                )
        elif len(bases) == 1:
            base = bases[0]
        elif not bases:
            raise KeyError(
                f"no stacked expert bank with "
                f"{experts.num_experts} experts in {self.checkpoint}"
            )
        else:
            raise KeyError(
                f"{self.checkpoint} holds {len(bases)} expert banks "
                f"({sorted(bases)}); pass bank_prefix= to pick one"
            )
        bank = {n: state[base + n] for n in ("w1", "b1", "w2", "b2")}
        if bank["w1"].shape != (
            experts.num_experts, experts.model_dim, experts.hidden_dim
        ):
            raise ValueError(
                f"checkpoint bank shape {bank['w1'].shape} does not "
                f"match the live bank ({experts.num_experts}, "
                f"{experts.model_dim}, {experts.hidden_dim})"
            )
        return bank

    def _restore_experts(
        self, lost: Tuple[int, ...], new_version: int
    ) -> str:
        experts = self.group.layer.experts
        if self.checkpoint is not None:
            bank = self._checkpoint_bank()
            for e in lost:
                experts.load_expert_slice(
                    e,
                    bank["w1"][e],
                    bank["b1"][e],
                    bank["w2"][e],
                    bank["b2"][e],
                )
            return "checkpoint"
        for e in lost:
            # Seeded re-init: deterministic in (seed, version, expert),
            # independent of recovery order and of how many experts
            # were lost together.
            rng = np.random.default_rng(
                (self.reinit_seed, new_version, e)
            )
            experts.reinit_expert(e, rng)
        return "reinit"

    # -- transitions -------------------------------------------------------
    def recover(self, dead_workers=None) -> RecoveryEvent:
        """Adopt + re-instantiate a dead worker's experts on survivors.

        ``dead_workers`` defaults to the group's currently declared
        dead set (the usual flow: ``group.set_dead_workers({w})`` on
        detection, possibly some degraded steps, then ``recover()``).
        Afterwards the group is healthy again: full expert count, no
        gate renormalization, placement version bumped — and its
        forward is bit-identical to a freshly built group with the
        same placement and parameters.
        """
        group = self.group
        dead = frozenset(
            int(w)
            for w in (
                group.dead_workers if dead_workers is None else dead_workers
            )
        )
        if not dead:
            raise ValueError(
                "no dead workers to recover from: declare them via "
                "group.set_dead_workers(...) or pass dead_workers="
            )
        old = group.placement
        lost = tuple(
            sorted(e for w in dead for e in old.experts_of(w))
        )
        # Never rebalance onto a previously retired rank either.
        new = old.with_workers_removed(dead | self.retired)
        moves = reshard_moves(old, new)
        source = self._restore_experts(lost, new.version)
        group.set_placement(new)
        group.set_dead_workers(())  # renorm removal: full expert count
        self.retired |= dead
        traffic = reshard_traffic(
            moves, self._bytes_per_expert(), new.num_workers
        )
        event = RecoveryEvent(
            kind="recover",
            dead_workers=tuple(sorted(dead)),
            adopted_experts=lost,
            moves=moves,
            old_version=old.version,
            new_version=new.version,
            source=source,
            reshard_total_bytes=traffic["total_bytes"],
            reshard_per_gpu_bytes=traffic["per_gpu_bytes"],
        )
        self.events.append(event)
        return event

    def scale_up(self) -> RecoveryEvent:
        """Admit a new worker and move its fair share of experts to it.

        The group must be healthy (recover first); the new rank is
        ``group.num_workers`` before the call.  Parameters never
        change — expert slices only *move* (the shared bank makes that
        a no-op single-process; the byte cost of the real movement is
        in the returned event).
        """
        group = self.group
        if group.dead_workers:
            raise RuntimeError(
                "cannot scale up around dead workers "
                f"{sorted(group.dead_workers)}; recover() first"
            )
        old = group.placement
        new = group.admit_worker()
        moves = reshard_moves(old, new)
        traffic = reshard_traffic(
            moves, self._bytes_per_expert(), new.num_workers
        )
        event = RecoveryEvent(
            kind="scale-up",
            dead_workers=(),
            adopted_experts=tuple(e for e, _, _ in moves),
            moves=moves,
            old_version=old.version,
            new_version=new.version,
            source="move",
            reshard_total_bytes=traffic["total_bytes"],
            reshard_per_gpu_bytes=traffic["per_gpu_bytes"],
        )
        self.events.append(event)
        return event

    # -- pricing -----------------------------------------------------------
    def price_event(
        self,
        event: RecoveryEvent,
        spec,
        algo: str = "pipe",
        faults: Optional[FaultPlan] = None,
    ) -> float:
        """Simulated seconds the event's re-shard exchange takes."""
        return price_reshard(
            spec, event.reshard_per_gpu_bytes, algo=algo, faults=faults
        )


# --------------------------------------------------------------------------
# Demo plans (``python -m repro faults --write-demo --recovery`` /
# ``python -m repro reshard --plan``)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RecoveryDemo:
    """A self-contained kill→recover(→scale-up) scenario description.

    Everything ``python -m repro reshard`` needs to exercise the
    controller end to end on the numerical substrate, bundled with the
    :class:`FaultPlan` that prices the re-shard on the timing
    substrate.  ``strategy`` selects parameter re-instantiation:
    ``"reinit"`` (seeded) or ``"checkpoint"`` (a checkpoint of the
    healthy layer is cut before the kill and restored from).
    """

    num_workers: int = 4
    num_experts: int = 8
    model_dim: int = 32
    hidden_dim: int = 32
    tokens: int = 64
    kill_worker: int = 1
    scale_up: bool = True
    seed: int = 0
    strategy: str = "reinit"
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if not 0 <= self.kill_worker < self.num_workers:
            raise ValueError(
                f"kill_worker {self.kill_worker} out of range "
                f"[0, {self.num_workers})"
            )
        if self.strategy not in ("reinit", "checkpoint"):
            raise ValueError(
                "strategy must be 'reinit' or 'checkpoint', got "
                f"{self.strategy!r}"
            )
        if self.num_experts % self.num_workers != 0:
            raise ValueError(
                "the demo starts from the contiguous placement: "
                f"num_experts {self.num_experts} must be divisible by "
                f"num_workers {self.num_workers}"
            )

    def to_json_dict(self) -> dict:
        blob = {
            "num_workers": self.num_workers,
            "num_experts": self.num_experts,
            "model_dim": self.model_dim,
            "hidden_dim": self.hidden_dim,
            "tokens": self.tokens,
            "kill_worker": self.kill_worker,
            "scale_up": self.scale_up,
            "seed": self.seed,
            "strategy": self.strategy,
            "faults": self.faults.to_json_dict(),
        }
        return blob

    @staticmethod
    def from_json_dict(blob: dict) -> "RecoveryDemo":
        known = {
            "num_workers", "num_experts", "model_dim", "hidden_dim",
            "tokens", "kill_worker", "scale_up", "seed", "strategy",
            "faults",
        }
        unknown = set(blob) - known
        if unknown:
            raise ValueError(
                f"unknown recovery-demo keys: {sorted(unknown)}"
            )
        kwargs = {k: blob[k] for k in known - {"faults"} if k in blob}
        if "faults" in blob:
            kwargs["faults"] = FaultPlan.from_json_dict(blob["faults"])
        return RecoveryDemo(**kwargs)


def save_recovery_demo(
    demo: RecoveryDemo, path: Union[str, Path]
) -> None:
    """Write a demo scenario as JSON (``repro reshard --plan`` format)."""
    Path(path).write_text(
        json.dumps(demo.to_json_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_recovery_demo(path: Union[str, Path]) -> RecoveryDemo:
    """Read a scenario written by :func:`save_recovery_demo`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no recovery demo at {path}")
    return RecoveryDemo.from_json_dict(
        json.loads(path.read_text(encoding="utf-8"))
    )
