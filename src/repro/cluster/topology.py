"""Cluster topology: nodes, GPUs, links, and the simulation runtime.

The topology mirrors the paper's testbed shape: ``N`` nodes, each with
``M`` GPUs behind a shared intra-node fabric (PCIe switch / host
staging) and one NIC to the inter-node network.

Resource model
--------------
* Each GPU owns a **compute** resource: one kernel at a time (expert
  GEMMs, compression kernels).
* Each node owns an **intra-node fabric** resource: all GPU-to-GPU
  transfers inside the node serialize on it (aggregate-bandwidth
  model; the 2080 Ti has no GPUDirect P2P, so every intra transfer is
  staged through host memory and contends on the same root complex).
* Each node owns a **NIC-send** resource: all egress inter-node
  transfers of the node serialize on it.  The receive direction is not
  modeled separately; the NIC is full duplex and all workloads in the
  paper (all-to-all and allreduce) are volume-symmetric, so egress
  serialization alone captures the bottleneck.

Memory accounting
-----------------
GPUs track allocated bytes so that algorithms with pathological
staging footprints (1DH-A2A's leader buffers, FasterMoE's imbalanced
token buffers) run out of memory in the simulator exactly where the
paper observed OOM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from .costmodel import GpuModel, LinkModel
from .engine import Engine, ProcessGenerator, Resource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..faults import FaultPlan


class SimulatedOOM(RuntimeError):
    """Raised when a simulated GPU allocation exceeds device memory."""


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster.

    ``intra_link.bandwidth_bps`` is the *aggregate* effective bandwidth
    of one node's internal fabric for fine-grained pairwise send/recv
    (NCCL P2P protocol staged through shared host memory — slow on
    GPUs without GPUDirect P2P such as the 2080 Ti);
    ``intra_bulk_link`` is the same fabric driven by fused bulk staged
    copies (large contiguous ``cudaMemcpy`` DMA), which sustain much
    higher utilization and are what hierarchical algorithms use for
    their aggregated intra-node phases.  ``inter_link.bandwidth_bps``
    is the effective egress bandwidth of one NIC.
    """

    name: str
    num_nodes: int
    gpus_per_node: int
    gpu: GpuModel
    intra_link: LinkModel
    inter_link: LinkModel
    intra_bulk_link: Optional[LinkModel] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.gpus_per_node < 1:
            raise ValueError(
                f"gpus_per_node must be >= 1, got {self.gpus_per_node}"
            )
        if self.intra_bulk_link is None:
            object.__setattr__(self, "intra_bulk_link", self.intra_link)

    @property
    def world_size(self) -> int:
        """Total number of GPUs, P = N x M."""
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting global GPU ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def local_rank(self, rank: int) -> int:
        """Index of GPU ``rank`` inside its node."""
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two global ranks share a node."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def ranks_of_node(self, node: int) -> List[int]:
        """Global ranks of all GPUs in ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")
        base = node * self.gpus_per_node
        return list(range(base, base + self.gpus_per_node))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")


@dataclass
class GpuRuntime:
    """Per-GPU simulation state."""

    rank: int
    node: int
    local_rank: int
    model: GpuModel
    compute: Resource
    allocated_bytes: float = 0.0
    peak_allocated_bytes: float = 0.0

    def allocate(self, nbytes: float) -> None:
        """Reserve simulated device memory; raise on exhaustion."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        self.allocated_bytes += nbytes
        self.peak_allocated_bytes = max(
            self.peak_allocated_bytes, self.allocated_bytes
        )
        if self.allocated_bytes > self.model.memory_bytes:
            raise SimulatedOOM(
                f"GPU {self.rank}: allocation of {nbytes:.3e} B exceeds "
                f"{self.model.memory_bytes:.3e} B device memory "
                f"(in use: {self.allocated_bytes - nbytes:.3e} B)"
            )

    def free(self, nbytes: float) -> None:
        """Release simulated device memory."""
        if nbytes < 0:
            raise ValueError(f"negative free: {nbytes}")
        self.allocated_bytes = max(0.0, self.allocated_bytes - nbytes)


@dataclass
class NodeRuntime:
    """Per-node simulation state: shared fabric and NIC resources."""

    index: int
    fabric: Resource
    nic_send: Resource
    gpus: List[GpuRuntime] = field(default_factory=list)


class SimCluster:
    """A cluster instantiated on a simulation :class:`Engine`.

    Provides the transfer primitives collectives are written against:
    :meth:`transfer` yields a process generator that occupies the right
    resource (fabric or NIC) for the alpha-beta duration of the message.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        engine: Engine | None = None,
        faults: "FaultPlan | None" = None,
    ):
        self.spec = spec
        self.engine = engine if engine is not None else Engine()
        # Fault injection is strictly opt-in: with no plan (or an empty
        # one) the injector stays ``None`` and every primitive takes
        # exactly the historical code path — bit-identical simulations.
        self._injector = None
        if faults is not None and not faults.is_empty():
            from ..faults import FaultInjector

            self._injector = FaultInjector(
                faults, spec.world_size, spec.num_nodes
            )
        self.nodes: List[NodeRuntime] = []
        self.gpus: List[GpuRuntime] = []
        for n in range(spec.num_nodes):
            node = NodeRuntime(
                index=n,
                fabric=Resource(self.engine, name=f"fabric[{n}]"),
                nic_send=Resource(self.engine, name=f"nic[{n}]"),
            )
            for m in range(spec.gpus_per_node):
                rank = n * spec.gpus_per_node + m
                gpu = GpuRuntime(
                    rank=rank,
                    node=n,
                    local_rank=m,
                    model=spec.gpu,
                    compute=Resource(self.engine, name=f"compute[{rank}]"),
                )
                node.gpus.append(gpu)
                self.gpus.append(gpu)
            self.nodes.append(node)
        self._stats: Dict[str, float] = {
            "intra_bytes": 0.0,
            "inter_bytes": 0.0,
            "intra_messages": 0.0,
            "inter_messages": 0.0,
        }
        if self._injector is not None:
            # Only faulted clusters report failure counters, so the
            # healthy stats dict (serialized into benchmark sidecars)
            # is unchanged by the existence of the fault layer.
            self._stats["transient_failures"] = 0.0
            self._stats["transient_retries"] = 0.0

    # -- accessors ------------------------------------------------------
    @property
    def world_size(self) -> int:
        """Total number of GPUs."""
        return self.spec.world_size

    def gpu(self, rank: int) -> GpuRuntime:
        """Runtime state of global GPU ``rank``."""
        self.spec._check_rank(rank)
        return self.gpus[rank]

    def node(self, index: int) -> NodeRuntime:
        """Runtime state of node ``index``."""
        return self.nodes[index]

    def iter_ranks(self) -> Iterator[int]:
        """All global GPU ranks."""
        return iter(range(self.world_size))

    @property
    def stats(self) -> Dict[str, float]:
        """Cumulative traffic statistics of this cluster instance."""
        return dict(self._stats)

    @property
    def fault_injector(self):
        """The active :class:`~repro.faults.FaultInjector`, or ``None``."""
        return self._injector

    # -- primitives -----------------------------------------------------
    def transfer(
        self, src: int, dst: int, nbytes: float, bulk: bool = False
    ) -> ProcessGenerator:
        """Process generator moving ``nbytes`` from GPU src to GPU dst.

        Intra-node messages occupy the source node's fabric; inter-node
        messages occupy the source node's NIC.  ``bulk=True`` selects
        the fused bulk-copy path for intra-node messages (hierarchical
        algorithms' aggregated transfers), which sustains higher fabric
        utilization than pairwise send/recv.  A self-transfer is an
        on-device copy costed by the GPU memory system with no shared
        resource held (and never faulted — it does not cross a link).

        Under an active fault plan the transfer is priced against any
        link faults covering its time window (piecewise, so degradation
        windows that open or close mid-transfer price exactly the bytes
        they cover), and transient faults can fail an attempt *after*
        it occupied the link — the sender then backs off exponentially
        in simulated time, releasing the link during the backoff, and
        retries until the plan's retry budget is exhausted
        (:class:`~repro.faults.FaultError`).
        """
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        if src == dst:
            yield self.engine.timeout(self.spec.gpu.memory_time(2.0 * nbytes))
            return
        src_node = self.spec.node_of(src)
        dst_node = self.spec.node_of(dst)
        if src_node == dst_node:
            self._stats["intra_bytes"] += nbytes
            self._stats["intra_messages"] += 1
            resource = self.nodes[src_node].fabric
            link = self.spec.intra_bulk_link if bulk else self.spec.intra_link
            kind = "fabric"
        else:
            self._stats["inter_bytes"] += nbytes
            self._stats["inter_messages"] += 1
            resource = self.nodes[src_node].nic_send
            link = self.spec.inter_link
            kind = "nic"
        if self._injector is None:
            duration = link.transfer_time(nbytes)
            with (yield from resource.acquire()):
                yield self.engine.timeout(duration)
            return
        yield from self._faulted_transfer(
            kind, src_node, resource, link, nbytes
        )

    def _faulted_transfer(
        self,
        kind: str,
        src_node: int,
        resource: Resource,
        link: LinkModel,
        nbytes: float,
    ) -> ProcessGenerator:
        """Transfer under an active fault plan: degraded timing plus the
        transient-failure retry/backoff loop."""
        from ..faults import FaultError

        injector = self._injector
        attempt = 0
        while True:
            with (yield from resource.acquire()):
                start = self.engine.now
                failed = injector.transfer_attempt_fails(kind, start)
                finish = injector.transfer_finish(
                    kind, src_node, start, nbytes, link
                )
                # A failed attempt still occupied the link for its full
                # duration — the bytes moved, then the checksum said no.
                yield self.engine.timeout(finish - start)
            if not failed:
                return
            self._stats["transient_failures"] += 1
            transient = injector.plan.transient
            if attempt >= transient.max_retries:
                raise FaultError(
                    f"transfer of {nbytes:.0f} B over {kind}[{src_node}] "
                    f"failed {attempt + 1} attempt(s); retry budget "
                    f"({transient.max_retries}) exhausted at "
                    f"t={self.engine.now:.6g}s"
                )
            self._stats["transient_retries"] += 1
            yield self.engine.timeout(transient.backoff_delay(attempt))
            attempt += 1

    def compute(self, rank: int, seconds: float) -> ProcessGenerator:
        """Process generator occupying GPU ``rank``'s compute engine.

        ``seconds`` is the *healthy* kernel duration; an active
        straggler fault on ``rank`` stretches it piecewise over the
        fault's time window.
        """
        if seconds < 0:
            raise ValueError(f"negative compute duration: {seconds}")
        gpu = self.gpu(rank)
        with (yield from gpu.compute.acquire()):
            if self._injector is None:
                yield self.engine.timeout(seconds)
            else:
                start = self.engine.now
                finish = self._injector.compute_finish(rank, start, seconds)
                yield self.engine.timeout(finish - start)

    def reset_memory(self) -> None:
        """Zero all simulated allocations (between experiments)."""
        for gpu in self.gpus:
            gpu.allocated_bytes = 0.0
            gpu.peak_allocated_bytes = 0.0
