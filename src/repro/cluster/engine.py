"""Discrete-event simulation engine.

A small, deterministic, generator-based event engine in the style of
SimPy, purpose-built for simulating GPU clusters: processes model CUDA
streams and collective algorithms, resources model exclusive hardware
(a compute engine, a link, a NIC).

The engine is deterministic: events scheduled at the same timestamp are
processed in FIFO order of scheduling, so repeated runs of the same
simulation produce identical traces.

Example
-------
>>> eng = Engine()
>>> link = Resource(eng, name="nic")
>>> def sender(eng, link, results):
...     with (yield from link.acquire()):
...         yield eng.timeout(2.0)
...     results.append(eng.now)
>>> out = []
>>> eng.process(sender(eng, link, out))
<Process ...>
>>> eng.process(sender(eng, link, out))
<Process ...>
>>> eng.run()
>>> out
[2.0, 4.0]
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an invalid state."""


class Event:
    """A one-shot occurrence processes can wait on.

    An event starts pending; :meth:`succeed` fires it, after which all
    registered callbacks run at the current simulation time.  Waiting on
    an already-fired event resumes the waiter immediately (at the same
    timestamp, via the event queue, preserving determinism).
    """

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self.fired = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, scheduling all callbacks at the current time."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        for cb in self._callbacks:
            self.engine._schedule_callback(cb, self)
        self._callbacks.clear()
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` when the event fires (immediately if fired)."""
        if self.fired:
            self.engine._schedule_callback(cb, self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "pending"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, engine: "Engine", delay: float, name: str = ""):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        super().__init__(engine, name or f"timeout({delay:g})")
        engine._schedule_at(engine.now + delay, self)


class AllOf(Event):
    """Fires once every child event has fired."""

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str = ""):
        super().__init__(engine, name or "all_of")
        self._pending = 0
        events = list(events)
        for ev in events:
            if not ev.fired:
                self._pending += 1
                ev.add_callback(self._child_fired)
        if self._pending == 0:
            self.succeed([ev.value for ev in events])
        else:
            self._children = events

    def _child_fired(self, _ev: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.fired:
            self.succeed([ev.value for ev in self._children])


class AnyOf(Event):
    """Fires as soon as any child event fires."""

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str = ""):
        super().__init__(engine, name or "any_of")
        for ev in events:
            ev.add_callback(self._child_fired)

    def _child_fired(self, ev: Event) -> None:
        if not self.fired:
            self.succeed(ev.value)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A coroutine driven by the engine.

    The wrapped generator yields :class:`Event` objects; the process is
    resumed with the event's value once the event fires.  The process
    itself is an event that fires (with the generator's return value)
    when the generator finishes, so processes can wait on each other.
    """

    def __init__(self, engine: "Engine", gen: ProcessGenerator, name: str = ""):
        super().__init__(engine, name or getattr(gen, "__name__", "process"))
        self._gen = gen
        #: The event this process is currently blocked on (deadlock
        #: diagnostics); ``None`` while runnable or finished.
        self.waiting_on: Optional[Event] = None
        engine._live_processes.append(self)
        engine._schedule_callback(self._resume, _START)

    def _resume(self, ev: Event) -> None:
        self.waiting_on = None
        try:
            if ev is _START:
                target = self._gen.send(None)
            else:
                target = self._gen.send(ev.value)
        except StopIteration as stop:
            self.engine._live_processes.remove(self)
            self.succeed(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        self.waiting_on = target
        target.add_callback(self._resume)


class _Sentinel(Event):
    def __init__(self):  # noqa: D401 - internal marker, no engine attached
        self.fired = True
        self.value = None


_START = _Sentinel()


class Engine:
    """The event loop: a priority queue of (time, seq, action) triples."""

    def __init__(self):
        self.now: float = 0.0
        self._queue: list = []
        self._seq = itertools.count()
        self._live_processes: List["Process"] = []

    # -- scheduling ---------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        heapq.heappush(self._queue, (when, next(self._seq), "fire", event, None))

    def _schedule_callback(self, cb: Callable[[Event], None], ev: Event) -> None:
        heapq.heappush(self._queue, (self.now, next(self._seq), "call", cb, ev))

    # -- public api ---------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name)

    def timeout(self, delay: float, name: str = "") -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, name)

    def process(self, gen: ProcessGenerator, name: str = "") -> Process:
        """Launch a generator as a simulated process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue; returns the final simulation time.

        ``until`` caps the simulated time; events past the cap stay
        queued and ``now`` is advanced to ``until``.

        Raises :class:`SimulationError` when the queue drains while
        processes are still blocked on events nobody can fire anymore —
        a deadlock.  The message names the blocked processes and what
        each is waiting on (an ``until`` cap suppresses the check:
        stopping early legitimately strands in-flight processes).
        """
        while self._queue:
            when, _seq, kind, target, arg = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            if when < self.now:
                raise SimulationError("time went backwards")
            self.now = when
            if kind == "fire":
                if not target.fired:
                    target.succeed()
            else:
                target(arg)
        if until is None and self._live_processes:
            raise SimulationError(self._deadlock_message())
        return self.now

    def _deadlock_message(self, limit: int = 8) -> str:
        blocked = list(self._live_processes)
        lines = [
            f"deadlock at t={self.now:g}s: event queue drained with "
            f"{len(blocked)} process(es) still blocked on unfired events:"
        ]
        for proc in blocked[:limit]:
            waiting = proc.waiting_on
            what = (
                f"{type(waiting).__name__} {waiting.name!r}"
                if waiting is not None
                else "nothing (never started)"
            )
            lines.append(f"  - process {proc.name!r} waiting on {what}")
        if len(blocked) > limit:
            lines.append(f"  ... and {len(blocked) - limit} more")
        return "\n".join(lines)


class Resource:
    """An exclusive-use resource with a FIFO wait queue.

    Models hardware that serializes work: a GPU's compute engine, a
    PCIe fabric, a NIC.  ``capacity`` > 1 models resources that admit a
    fixed number of concurrent users.
    """

    def __init__(self, engine: Engine, name: str = "", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[Event] = []

    @property
    def in_use(self) -> int:
        """Number of current holders."""
        return self._in_use

    def request(self) -> Event:
        """An event firing when a slot is granted (caller must release)."""
        ev = self.engine.event(f"req:{self.name}")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Free a slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            ev = self._waiters.pop(0)
            ev.succeed(self)
        else:
            self._in_use -= 1

    def acquire(self) -> ProcessGenerator:
        """``yield from``-able acquisition returning a context manager.

        Usage inside a process::

            with (yield from resource.acquire()):
                yield engine.timeout(dt)
        """
        yield self.request()
        return _Held(self)


class _Held:
    """Context manager releasing a resource slot on exit."""

    def __init__(self, resource: Resource):
        self._resource = resource

    def __enter__(self) -> Resource:
        return self._resource

    def __exit__(self, *exc: Any) -> None:
        self._resource.release()
