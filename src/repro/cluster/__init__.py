"""Simulated GPU cluster: the timing substrate of the reproduction.

This package replaces the paper's physical 32-GPU testbed with a
deterministic discrete-event simulator (see DESIGN.md, substitution
table).  It provides:

* :mod:`~repro.cluster.engine` — the event loop, processes, resources;
* :mod:`~repro.cluster.topology` — nodes / GPUs / links and the
  :class:`~repro.cluster.topology.SimCluster` runtime;
* :mod:`~repro.cluster.streams` — CUDA-stream (FIFO) semantics;
* :mod:`~repro.cluster.costmodel` — alpha-beta links and GPU roofline;
* :mod:`~repro.cluster.presets` — calibrated testbeds, including the
  paper's 8x4 RTX 2080 Ti / 100 Gb/s InfiniBand cluster.
"""

from .costmodel import (
    GpuModel,
    LinkModel,
    a2a_input_bytes,
    bytes_of,
    expert_capacity,
    fit_alpha_beta,
    fit_gemm_roofline,
    fit_link_model,
)
from .engine import AllOf, AnyOf, Engine, Event, Process, Resource, Timeout
from .presets import (
    PRESETS,
    custom_ratio_testbed,
    ethernet_cluster,
    get_preset,
    nvlink_dgx,
    paper_testbed,
)
from .streams import GpuStreams, Stream, make_streams
from .topology import ClusterSpec, GpuRuntime, NodeRuntime, SimCluster, SimulatedOOM

__all__ = [
    "AllOf",
    "AnyOf",
    "ClusterSpec",
    "Engine",
    "Event",
    "GpuModel",
    "GpuRuntime",
    "GpuStreams",
    "LinkModel",
    "NodeRuntime",
    "PRESETS",
    "Process",
    "Resource",
    "SimCluster",
    "SimulatedOOM",
    "Stream",
    "Timeout",
    "a2a_input_bytes",
    "bytes_of",
    "custom_ratio_testbed",
    "ethernet_cluster",
    "expert_capacity",
    "fit_alpha_beta",
    "fit_gemm_roofline",
    "fit_link_model",
    "get_preset",
    "make_streams",
    "nvlink_dgx",
    "paper_testbed",
]
