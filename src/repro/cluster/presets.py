"""Calibrated cluster presets.

``paper_testbed`` mirrors the EuroSys '24 evaluation hardware (Table 3
of the paper): 8 nodes x 4 Nvidia RTX 2080 Ti, PCIe3 x16 intra-node,
one 100 Gb/s ConnectX-5 InfiniBand NIC per node.

Calibration notes
-----------------
* **NIC**: 100 Gb/s line rate is 12.5 GB/s.  With four GPUs funneling
  staged (non-GPUDirect) traffic through one ConnectX-5 via host
  memory, the sustained effective egress rate is far lower; 7.5 GB/s
  reproduces the paper's absolute A2A times (Table 1's ~250 ms of A2A
  per CT-MoE-12 step, Table 10's ~2.4 s naive ablation step).
* **Intra-node fabric**: the 2080 Ti exposes no GPUDirect P2P, so every
  intra-node GPU-to-GPU copy stages through pinned host memory and all
  four GPUs contend on the same PCIe root complex / QPI.  Two effective
  rates are modeled: fine-grained pairwise send/recv (the NCCL P2P/SHM
  protocol) sustains ~1.9 GB/s node-aggregate, while fused bulk staged
  copies (large contiguous DMA, used by the hierarchical algorithms'
  aggregated phases) sustain ~6.4 GB/s.  This split reproduces the
  paper's Figure 9(c) ratios simultaneously: NCCL-A2A pays a pairwise
  intra phase worth ~0.4x of its inter phase (hence Pipe-A2A's ~1.4x),
  while 2DH-A2A moves 8x more intra volume but at bulk rate (hence
  Pipe-A2A's ~2x over it).
* **GPU**: RTX 2080 Ti fp32 peak is 13.45 TFLOP/s (transformer GEMMs
  sustain ~65-70 %); tensor-core fp16 peak is 53.8 TFLOP/s.  Expert
  fflayers are priced at the tensor-core rate (standard mixed
  precision), attention/head/optimizer at fp32.
* With these constants, simulating CT-MoE-x on the Tutel policy lands
  the A2A share of step time in the 50-60 % band of paper Table 1 and
  the ablation layer's naive step time near Table 10's 2.4 s.
"""

from __future__ import annotations

from .costmodel import GpuModel, LinkModel
from .topology import ClusterSpec

GIB = 1024.0**3
GB = 1.0e9


def rtx2080ti() -> GpuModel:
    """The paper testbed's accelerator."""
    return GpuModel(
        name="RTX2080Ti",
        peak_flops=13.45e12,
        memory_bandwidth_bps=616.0 * GB,
        memory_bytes=11.0 * GIB,
        peak_efficiency=0.68,
        tensor_flops=53.8e12,
        tensor_efficiency=0.70,
        half_saturation_flops=2.0e9,
        kernel_launch_s=8.0e-6,
    )


def a100() -> GpuModel:
    """A modern datacenter accelerator, for what-if studies."""
    return GpuModel(
        name="A100-80G",
        peak_flops=19.5e12,
        memory_bandwidth_bps=2039.0 * GB,
        memory_bytes=80.0 * GIB,
        peak_efficiency=0.80,
        tensor_flops=312.0e12,
        tensor_efficiency=0.60,
        half_saturation_flops=4.0e9,
        kernel_launch_s=6.0e-6,
    )


def paper_testbed(num_nodes: int = 8, gpus_per_node: int = 4) -> ClusterSpec:
    """8 nodes x 4 RTX 2080 Ti, PCIe3 staging intra, 100 Gb/s IB inter."""
    return ClusterSpec(
        name=f"paper-{num_nodes}x{gpus_per_node}-2080ti-ib100",
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        gpu=rtx2080ti(),
        intra_link=LinkModel(
            name="pcie3-p2p-sr", latency_s=1.0e-6, bandwidth_bps=1.9 * GB
        ),
        intra_bulk_link=LinkModel(
            name="pcie3-bulk-staged", latency_s=15.0e-6, bandwidth_bps=6.4 * GB
        ),
        inter_link=LinkModel(
            name="ib-100gbps", latency_s=3.0e-6, bandwidth_bps=7.5 * GB
        ),
    )


def nvlink_dgx(num_nodes: int = 4, gpus_per_node: int = 8) -> ClusterSpec:
    """NVLink-class intra-node fabric: intra >> inter bandwidth.

    On such clusters intra-node transfers are nearly free relative to
    the NIC, so Pipe-A2A's overlap yields little (paper Section 7,
    'Performance of Pipe-A2A': small when t_intra and t_inter differ a
    lot).  Used by the topology ablation bench.
    """
    return ClusterSpec(
        name=f"dgx-{num_nodes}x{gpus_per_node}-a100-nvlink",
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        gpu=a100(),
        intra_link=LinkModel(
            name="nvlink3", latency_s=2.0e-6, bandwidth_bps=300.0 * GB
        ),
        intra_bulk_link=LinkModel(
            name="nvlink3-bulk", latency_s=6.0e-6, bandwidth_bps=400.0 * GB
        ),
        inter_link=LinkModel(
            name="ib-200gbps", latency_s=4.0e-6, bandwidth_bps=21.0 * GB
        ),
    )


def ethernet_cluster(num_nodes: int = 8, gpus_per_node: int = 4) -> ClusterSpec:
    """Commodity 25 Gb/s Ethernet cluster: inter-node-bound."""
    return ClusterSpec(
        name=f"eth-{num_nodes}x{gpus_per_node}-2080ti-25gbe",
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        gpu=rtx2080ti(),
        intra_link=LinkModel(
            name="pcie3-p2p-sr", latency_s=1.0e-6, bandwidth_bps=1.9 * GB
        ),
        intra_bulk_link=LinkModel(
            name="pcie3-bulk-staged", latency_s=15.0e-6, bandwidth_bps=6.4 * GB
        ),
        inter_link=LinkModel(
            name="eth-25gbps", latency_s=15.0e-6, bandwidth_bps=1.8 * GB
        ),
    )


def custom_ratio_testbed(
    intra_bandwidth_bps: float,
    inter_bandwidth_bps: float,
    num_nodes: int = 8,
    gpus_per_node: int = 4,
) -> ClusterSpec:
    """Paper-testbed shape with free intra/inter bandwidths.

    Used by the Eq. 18 ablation: sweep the bandwidth ratio and compare
    the simulated Pipe-A2A speedup against the analytic maximum.
    """
    if intra_bandwidth_bps <= 0 or inter_bandwidth_bps <= 0:
        raise ValueError("bandwidths must be positive")
    return ClusterSpec(
        name=f"custom-{num_nodes}x{gpus_per_node}",
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        gpu=rtx2080ti(),
        intra_link=LinkModel(
            name="intra", latency_s=1.0e-6, bandwidth_bps=intra_bandwidth_bps
        ),
        intra_bulk_link=LinkModel(
            name="intra-bulk",
            latency_s=15.0e-6,
            bandwidth_bps=3.0 * intra_bandwidth_bps,
        ),
        inter_link=LinkModel(
            name="inter", latency_s=3.0e-6, bandwidth_bps=inter_bandwidth_bps
        ),
    )


PRESETS = {
    "paper_testbed": paper_testbed,
    "nvlink_dgx": nvlink_dgx,
    "ethernet_cluster": ethernet_cluster,
}


def get_preset(name: str) -> ClusterSpec:
    """Look up a preset cluster by name."""
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown cluster preset {name!r}; known: {known}")
    return factory()
