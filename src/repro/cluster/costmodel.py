"""Analytic cost models for simulated hardware.

Communication follows the classic alpha-beta model: a transfer of *n*
bytes over a link costs ``alpha + n / bandwidth`` seconds of link
occupancy.  Computation follows a throughput model: a GEMM of *f* flops
runs at ``peak_flops * efficiency`` where efficiency degrades for
low-arithmetic-intensity (small) kernels, which is what makes a high
partition degree *r* unattractive in the paper's discussion of
pipelining (Section 4).

The default constants in :mod:`repro.cluster.presets` are calibrated to
the paper's testbed (RTX 2080 Ti, PCIe3 x16 staged through host memory,
100 Gb/s InfiniBand) so that Table 1's regime — A2A occupying 50-60 % of
step time — is reproduced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LinkModel:
    """Alpha-beta cost model of a communication resource.

    Attributes
    ----------
    latency_s:
        Per-message fixed cost (software stack + wire latency).
    bandwidth_bps:
        Effective bandwidth in bytes/second of the serializing
        resource (a node's NIC, or a node's intra-node fabric in
        aggregate).
    """

    name: str
    latency_s: float
    bandwidth_bps: float

    def transfer_time(self, nbytes: float) -> float:
        """Occupancy of the link for one message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative message size: {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bps

    def degraded(
        self, bandwidth_factor: float = 1.0, extra_latency_s: float = 0.0
    ) -> "LinkModel":
        """This link under a fault: bandwidth cut and/or latency spike.

        Alpha-beta composes cleanly with degradation — a cut multiplies
        beta's denominator, a spike adds to alpha — so a degraded link
        is just another :class:`LinkModel`.  Used by the fault layer
        (:mod:`repro.faults`) for whole-window degradation; transfers
        that *straddle* a fault window are priced piecewise by the
        injector instead.
        """
        if not 0.0 < bandwidth_factor <= 1.0:
            raise ValueError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
            )
        if extra_latency_s < 0:
            raise ValueError(
                f"extra_latency_s must be >= 0, got {extra_latency_s}"
            )
        if bandwidth_factor == 1.0 and extra_latency_s == 0.0:
            return self
        return LinkModel(
            name=f"{self.name}[degraded]",
            latency_s=self.latency_s + extra_latency_s,
            bandwidth_bps=self.bandwidth_bps * bandwidth_factor,
        )


@dataclass(frozen=True)
class GpuModel:
    """Throughput model of a single accelerator.

    ``gemm_efficiency`` follows a saturating curve in the kernel's flop
    count: tiny kernels are launch/memory bound, large GEMMs approach
    ``peak_efficiency`` of the theoretical peak.
    """

    name: str
    peak_flops: float  # fp32 FLOP/s
    memory_bandwidth_bps: float
    memory_bytes: float
    peak_efficiency: float = 0.68
    # Mixed-precision (tensor core) peak; 0 means "no tensor cores",
    # falling back to the fp32 path.  Expert fflayers run here (the
    # standard mixed-precision setup the paper assumes when it notes
    # FP16 "enables mixed-precision training ... with tensor cores").
    tensor_flops: float = 0.0
    tensor_efficiency: float = 0.70
    # Kernel flop count at which efficiency reaches half of peak.
    half_saturation_flops: float = 2.0e9
    kernel_launch_s: float = 8.0e-6

    def gemm_efficiency(self, flops: float, tensor_core: bool = False) -> float:
        """Fraction of peak achieved by a kernel of ``flops`` flops."""
        peak_eff = (
            self.tensor_efficiency
            if tensor_core and self.tensor_flops > 0
            else self.peak_efficiency
        )
        if flops <= 0:
            return peak_eff
        return peak_eff * flops / (flops + self.half_saturation_flops)

    def gemm_time(self, flops: float, tensor_core: bool = False) -> float:
        """Wall time of a dense kernel with ``flops`` total flops.

        ``tensor_core=True`` prices the kernel at the mixed-precision
        rate when the device has tensor cores.
        """
        if flops < 0:
            raise ValueError(f"negative flop count: {flops}")
        if flops == 0:
            return self.kernel_launch_s
        use_tc = tensor_core and self.tensor_flops > 0
        peak = self.tensor_flops if use_tc else self.peak_flops
        eff = self.gemm_efficiency(flops, tensor_core=use_tc)
        return self.kernel_launch_s + flops / (peak * eff)

    def memory_time(self, nbytes: float) -> float:
        """Wall time of a memory-bound kernel touching ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        return self.kernel_launch_s + nbytes / self.memory_bandwidth_bps


def ffn_forward_flops(tokens: int, model_dim: int, hidden_dim: int) -> float:
    """Flops of one expert FFN forward pass (two GEMMs M->H->M)."""
    return 2.0 * tokens * model_dim * hidden_dim * 2.0


def ffn_backward_flops(tokens: int, model_dim: int, hidden_dim: int) -> float:
    """Backward pass costs roughly 2x forward (dgrad + wgrad)."""
    return 2.0 * ffn_forward_flops(tokens, model_dim, hidden_dim)


def attention_forward_flops(tokens: int, model_dim: int, seq_len: int) -> float:
    """Approximate flops of a multi-head attention block forward.

    QKV + output projections (4 GEMMs of M x M) plus the two
    (tokens x seq_len x dim) batched products.
    """
    proj = 2.0 * tokens * model_dim * model_dim * 4.0
    scores = 2.0 * tokens * seq_len * model_dim * 2.0
    return proj + scores


def bytes_of(num_elements: float, bits: int = 32) -> float:
    """Message size in bytes of ``num_elements`` at ``bits`` precision."""
    if bits <= 0:
        raise ValueError(f"bits must be positive, got {bits}")
    return num_elements * bits / 8.0


def a2a_input_bytes(
    batch: int,
    seq_len: int,
    model_dim: int,
    capacity_factor: float,
    top_k: int,
    bits: int = 32,
) -> float:
    """Paper Eq. (2): per-GPU A2A payload S = f*k*B*L*M*b/8 bytes."""
    elements = capacity_factor * top_k * batch * seq_len * model_dim
    return bytes_of(elements, bits)


def expert_capacity(
    batch: int, seq_len: int, num_experts: int, capacity_factor: float, top_k: int
) -> int:
    """Paper Eq. (1): C = f * k * B * L / E, rounded up."""
    if num_experts <= 0:
        raise ValueError(f"num_experts must be positive, got {num_experts}")
    return int(math.ceil(capacity_factor * top_k * batch * seq_len / num_experts))


# -- fitting measured costs back into model form -----------------------------
#
# The auto-tuning planner (repro.systems.planner) runs a handful of
# probe measurements and recovers the cost-model parameters from them
# by least squares.  Both model families above are affine in their
# size argument, which makes the fits exact on synthetic data:
#
# * a LinkModel transfer is  t(n) = latency + n / bandwidth  — affine
#   in bytes with alpha = latency, beta = 1 / bandwidth;
# * a GpuModel GEMM is  t(f) = launch + f / (peak * eff(f))  with the
#   saturating  eff(f) = peak_eff * f / (f + K),  which collapses to
#   t(f) = [launch + K / (peak * peak_eff)] + f / (peak * peak_eff)
#   — affine in flops.  The roofline's saturated rate is exactly
#   1 / beta; launch and K are not separately identifiable from step
#   times alone, so the fit pins K and solves for the launch term.


def fit_alpha_beta(
    sizes: Sequence[float], times: Sequence[float]
) -> Tuple[float, float]:
    """Least-squares ``(alpha, beta)`` of ``t(size) = alpha + beta*size``."""
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need at least two (size, time) measurements")
    a = np.vstack([np.ones(len(sizes)), np.asarray(sizes, float)]).T
    coef, *_ = np.linalg.lstsq(a, np.asarray(times, float), rcond=None)
    return float(coef[0]), float(coef[1])


def fit_link_model(
    sizes: Sequence[float], times: Sequence[float], name: str = "fitted"
) -> LinkModel:
    """Recover a :class:`LinkModel` from (bytes, seconds) measurements.

    ``alpha`` maps to the per-message latency (clipped at zero: noisy
    fits may place the intercept marginally below it) and ``beta`` to
    the inverse bandwidth.  A non-positive slope means the points do
    not describe a link at all and is rejected.
    """
    alpha, beta = fit_alpha_beta(sizes, times)
    if beta <= 0.0:
        raise ValueError(
            f"non-physical link fit (beta={beta:.3e} s/B): time must "
            "grow with message size"
        )
    return LinkModel(
        name=name, latency_s=max(alpha, 0.0), bandwidth_bps=1.0 / beta
    )


def fit_gemm_roofline(
    flops: Sequence[float],
    times: Sequence[float],
    name: str = "fitted-gpu",
    half_saturation_flops: float = 2.0e9,
    memory_bandwidth_bps: float = 1.0e12,
    memory_bytes: float = float("inf"),
) -> GpuModel:
    """Recover a :class:`GpuModel` from (flops, seconds) measurements.

    The fitted model reproduces the affine fit exactly through
    :meth:`GpuModel.gemm_time` (see the identity above): the saturated
    rate is ``1/beta`` (expressed as ``peak_flops`` at efficiency 1.0)
    and the launch cost absorbs the remainder of the intercept after
    the pinned ``half_saturation_flops``.  The memory-side parameters
    are pass-throughs for callers that know them; GEMM probes carry no
    information about them.
    """
    alpha, beta = fit_alpha_beta(flops, times)
    if beta <= 0.0:
        raise ValueError(
            f"non-physical GEMM fit (beta={beta:.3e} s/flop): time "
            "must grow with flop count"
        )
    return GpuModel(
        name=name,
        peak_flops=1.0 / beta,
        memory_bandwidth_bps=memory_bandwidth_bps,
        memory_bytes=memory_bytes,
        peak_efficiency=1.0,
        half_saturation_flops=half_saturation_flops,
        kernel_launch_s=max(alpha - half_saturation_flops * beta, 0.0),
    )
