"""CUDA-stream semantics for the simulator.

A :class:`Stream` executes submitted work items strictly in submission
order (FIFO), like a CUDA stream: a later item does not start before
all earlier items on the same stream have finished, even if its own
dependencies are already satisfied.  Work on *different* streams runs
concurrently, subject only to the shared resources it acquires.

This is exactly the execution model the paper's scheduling theory
assumes: the scheduler's output is an *enqueue order* per stream, and
the makespan follows from FIFO-per-stream plus cross-stream data
dependencies — which is why task *ordering* matters at all.

Pipe-A2A (paper Section 5) uses two communication streams per GPU, an
Intra-Stream and an Inter-Stream, so intra-node and inter-node
send/recv operations proceed concurrently.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from .engine import Engine, Event, ProcessGenerator


class Stream:
    """A FIFO execution queue on a simulation engine."""

    def __init__(self, engine: Engine, name: str = "stream"):
        self.engine = engine
        self.name = name
        self._tail: Optional[Event] = None
        self._submitted = 0
        self._inflight: dict = {}  # label -> completion Event

    @property
    def depth(self) -> int:
        """Number of items ever submitted (for diagnostics)."""
        return self._submitted

    def outstanding(self) -> List[str]:
        """Labels of submitted items that have not completed yet.

        Under fault injection a stalled or deadlocked simulation is
        diagnosed by which stream items never finished — the engine's
        deadlock report names processes, this names them per stream in
        submission order.
        """
        return [
            label for label, ev in self._inflight.items() if not ev.fired
        ]

    def submit(
        self,
        work: Callable[[], ProcessGenerator],
        after: Iterable[Event] = (),
        name: str = "",
    ) -> Event:
        """Enqueue ``work`` behind everything already on this stream.

        ``work`` is a zero-argument callable returning a fresh process
        generator; it is instantiated only when the stream reaches it.
        ``after`` adds cross-stream dependencies: the item additionally
        waits for those events before starting (but it still blocks
        everything submitted later on this stream while it waits —
        FIFO, as on hardware).

        Returns the completion event of the submitted item.
        """
        deps: List[Event] = list(after)
        if self._tail is not None:
            deps.append(self._tail)
        self._submitted += 1
        label = name or f"{self.name}#{self._submitted}"
        proc = self.engine.process(self._run(deps, work), name=label)
        self._tail = proc
        self._inflight[label] = proc
        proc.add_callback(lambda _ev, label=label: self._inflight.pop(label, None))
        return proc

    def _run(
        self, deps: List[Event], work: Callable[[], ProcessGenerator]
    ) -> ProcessGenerator:
        if deps:
            yield self.engine.all_of(deps)
        result = yield from work()
        return result

    def barrier(self) -> Event:
        """An event firing when everything submitted so far is done."""
        if self._tail is None:
            ev = self.engine.event(f"{self.name}:barrier")
            ev.succeed()
            return ev
        return self._tail


class GpuStreams:
    """The per-GPU stream set used by ScheMoE.

    ``compute`` carries kernels (experts, codecs); ``comm`` is the
    default communication stream (NCCL-style single stream); ``intra``
    and ``inter`` are Pipe-A2A's two concurrent communication streams.
    """

    def __init__(self, engine: Engine, rank: int):
        self.rank = rank
        self.compute = Stream(engine, name=f"gpu{rank}:compute")
        self.comm = Stream(engine, name=f"gpu{rank}:comm")
        self.intra = Stream(engine, name=f"gpu{rank}:intra")
        self.inter = Stream(engine, name=f"gpu{rank}:inter")

    def all_streams(self) -> List[Stream]:
        """Every stream of this GPU."""
        return [self.compute, self.comm, self.intra, self.inter]


def make_streams(engine: Engine, world_size: int) -> List[GpuStreams]:
    """Create one :class:`GpuStreams` per rank."""
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    return [GpuStreams(engine, rank) for rank in range(world_size)]
