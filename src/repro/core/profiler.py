"""The Profiler: measures task durations and fits performance models.

As in the paper (Fig. 4), every task the abstraction modules emit is
profiled so the scheduler can order tasks from measured time, not
assumptions: communication tasks are measured by actually running the
configured all-to-all algorithm on the simulated cluster;
compress/decompress tasks are priced by the codec's cost model; expert
tasks by the GPU GEMM model.

Alongside point measurements the profiler fits linear (alpha + beta *
size) performance models so durations at unmeasured sizes can be
predicted — the "meta-data (e.g. time performance models)" the paper's
scheduler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster.costmodel import ffn_forward_flops
from ..cluster.topology import ClusterSpec
from ..collectives.base import AllToAll, measure_a2a
from ..compression.base import Compressor
from ..models.configs import MoEModelConfig
from .tasks import TaskDurations


@dataclass(frozen=True)
class LinearPerfModel:
    """t(size) = alpha + beta * size, least-squares fitted."""

    alpha: float
    beta: float

    def predict(self, size: float) -> float:
        """Predicted seconds for a payload of ``size`` bytes."""
        return max(0.0, self.alpha + self.beta * size)

    @staticmethod
    def fit(sizes: List[float], times: List[float]) -> "LinearPerfModel":
        """Least-squares fit through (size, time) measurements."""
        if len(sizes) != len(times) or len(sizes) < 2:
            raise ValueError("need at least two (size, time) points")
        a = np.vstack([np.ones(len(sizes)), np.asarray(sizes, float)]).T
        coef, *_ = np.linalg.lstsq(a, np.asarray(times, float), rcond=None)
        return LinearPerfModel(alpha=float(coef[0]), beta=float(coef[1]))


class Profiler:
    """Profiles the tasks of an MoE layer under one system policy.

    One instance caches all-to-all measurements (keyed by algorithm
    and payload size), so parameter sweeps such as the paper's 675-
    configuration Figure 8 reuse measurements across configurations.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        a2a: AllToAll,
        compressor: Compressor,
    ):
        self.spec = spec
        self.a2a = a2a
        self.compressor = compressor
        self._a2a_cache: Dict[Tuple[str, int], float] = {}
        self._oom_cache: Dict[Tuple[str, int], bool] = {}
        #: Real (cache-missing) A2A measurements this profiler ran —
        #: the planner's probe accounting reads it.
        self.a2a_measurements = 0

    # -- individual task measurements -----------------------------------
    def measure_a2a_seconds(self, wire_bytes: float) -> float:
        """All-to-all time for a per-GPU payload of ``wire_bytes``.

        Returns ``inf`` when the algorithm runs out of simulated
        device memory (paper Fig. 9(c), 1DH-A2A at large tensors).
        """
        key = (self.a2a.name, int(round(wire_bytes)))
        if key not in self._a2a_cache:
            result = measure_a2a(self.a2a, self.spec, wire_bytes)
            self._a2a_cache[key] = result.seconds
            self._oom_cache[key] = result.oom
            self.a2a_measurements += 1
        return self._a2a_cache[key]

    def compress_seconds(self, raw_bytes: float) -> float:
        """One compression task over ``raw_bytes`` of fp32 payload."""
        return self.compressor.compress_cost(self.spec.gpu, raw_bytes)

    def decompress_seconds(self, raw_bytes: float) -> float:
        """One decompression task back to ``raw_bytes`` of fp32."""
        return self.compressor.decompress_cost(self.spec.gpu, raw_bytes)

    def expert_seconds(self, tokens: int, model_dim: int, hidden_dim: int) -> float:
        """Forward time of one GPU's local experts over ``tokens``."""
        flops = ffn_forward_flops(tokens, model_dim, hidden_dim)
        return self.spec.gpu.gemm_time(flops, tensor_core=True)

    # -- layer-level profile ----------------------------------------------
    def expert_tokens_per_gpu(self, cfg: MoEModelConfig) -> int:
        """Tokens each GPU's local experts process per pass.

        Each of the E experts receives up to C tokens from each of the
        P GPUs; with E experts spread over P GPUs a GPU computes
        ``(E / P) * C * P = E * C`` tokens — which equals
        ``f * k * B * L`` (all of a GPU's routed assignments,
        rebalanced by the capacity mechanism).
        """
        return cfg.num_experts * cfg.capacity

    def profile_layer(
        self, cfg: MoEModelConfig, partitions: int
    ) -> TaskDurations:
        """Per-chunk task durations for one MoE layer of ``cfg``."""
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        raw_chunk = cfg.a2a_bytes / partitions
        wire_chunk = self.compressor.compressed_bytes(raw_chunk)
        tokens_chunk = max(1, self.expert_tokens_per_gpu(cfg) // partitions)
        return TaskDurations(
            compress=self.compress_seconds(raw_chunk),
            a2a=self.measure_a2a_seconds(wire_chunk),
            decompress=self.decompress_seconds(raw_chunk),
            expert=self.expert_seconds(
                tokens_chunk, cfg.model_dim, cfg.hidden_dim
            ),
        )

    # -- probe hooks (the planner's calibration stage) ---------------------
    def probe_a2a(
        self, wire_sizes: List[float]
    ) -> List[Tuple[float, float]]:
        """Measure the A2A at each wire size -> ``(bytes, seconds)``.

        OOM sizes report ``inf`` seconds like
        :meth:`measure_a2a_seconds`; callers decide whether to fit
        around them or treat them as a feasibility boundary.
        """
        return [
            (float(s), self.measure_a2a_seconds(float(s)))
            for s in wire_sizes
        ]

    def probe_codec(
        self, raw_sizes: List[float]
    ) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]:
        """Codec cost curves -> (compress, decompress) point lists."""
        compress = [
            (float(s), self.compress_seconds(float(s))) for s in raw_sizes
        ]
        decompress = [
            (float(s), self.decompress_seconds(float(s))) for s in raw_sizes
        ]
        return compress, decompress

    def probe_expert(
        self, token_counts: List[int], model_dim: int, hidden_dim: int
    ) -> List[Tuple[float, float]]:
        """Expert GEMM curve -> ``(flops, seconds)`` per token count."""
        points = []
        for tokens in token_counts:
            flops = ffn_forward_flops(int(tokens), model_dim, hidden_dim)
            points.append(
                (flops, self.expert_seconds(int(tokens), model_dim, hidden_dim))
            )
        return points

    # -- performance-model fitting ----------------------------------------
    def fit_a2a_model(
        self, sizes: Optional[List[float]] = None
    ) -> LinearPerfModel:
        """Fit alpha + beta * bytes over a range of payload sizes."""
        if sizes is None:
            sizes = [1e5, 1e6, 4e6, 1.6e7, 6.4e7]
        times = [self.measure_a2a_seconds(s) for s in sizes]
        finite = [(s, t) for s, t in zip(sizes, times) if np.isfinite(t)]
        if len(finite) < 2:
            raise RuntimeError("not enough finite A2A measurements to fit")
        return LinearPerfModel.fit(
            [s for s, _ in finite], [t for _, t in finite]
        )
