"""Dynamic routing imbalance (paper Section 2.1, "Dynamic workloads").

The gate's learned routing makes expert loads uneven and time-varying;
the paper notes this is why the capacity mechanism (Eq. 1) exists, and
attributes FasterMoE's BERT-Large-MoE OOM to "improper handling of
imbalanced tokens".  This module models the phenomenon for the
step-time simulator:

* expert popularity follows a Zipf distribution with skew ``s``
  (s = 0 is perfectly balanced; real gates early in training sit
  around s ~ 0.5-1);
* systems that enforce capacity (GShard/Tutel/ScheMoE) clip the
  hottest expert's intake at ``f`` times the balanced load — their
  step time and memory are insensitive to skew beyond that, at the
  price of dropped tokens;
* systems without capacity (FasterMoE) process every routed token:
  the synchronized step waits for the hottest expert's GPU and the
  receive buffers grow with the skew.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RoutingSkew:
    """Zipf-shaped expert popularity."""

    zipf_s: float = 0.0

    def __post_init__(self) -> None:
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")

    def expert_shares(self, num_experts: int) -> np.ndarray:
        """Fraction of all routed tokens each expert attracts."""
        if num_experts < 1:
            raise ValueError("num_experts must be >= 1")
        ranks = np.arange(1, num_experts + 1, dtype=np.float64)
        weights = ranks ** (-self.zipf_s)
        return weights / weights.sum()

    def hot_expert_ratio(self, num_experts: int) -> float:
        """Hottest expert's load relative to the balanced load."""
        shares = self.expert_shares(num_experts)
        return float(shares.max() * num_experts)

    def load_factor(
        self,
        num_experts: int,
        capacity_factor: float,
        enforce_capacity: bool,
    ) -> float:
        """Slowdown of the expert-computation task under this skew.

        Expert parallelism synchronizes at the combine A2A, so the
        step waits for the GPU hosting the hottest expert.  With
        capacity enforced, intake is clipped at ``capacity_factor``
        times the balanced load (Eq. 1); without it the full Zipf
        head lands on one GPU.
        """
        ratio = self.hot_expert_ratio(num_experts)
        if enforce_capacity:
            return min(ratio, capacity_factor)
        return ratio

    def dropped_fraction(
        self, num_experts: int, capacity_factor: float
    ) -> float:
        """Fraction of routed tokens a capacity system drops.

        Each expert keeps at most ``capacity_factor / num_experts`` of
        all tokens; anything above the cap is dropped (GShard
        semantics).
        """
        shares = self.expert_shares(num_experts)
        cap = capacity_factor / num_experts
        kept = np.minimum(shares, cap).sum()
        return float(1.0 - kept)

    def buffer_factor(self, num_experts: int) -> float:
        """Worst-case receive-buffer growth of a capacity-free system
        relative to balanced buffers."""
        return self.hot_expert_ratio(num_experts)


BALANCED = RoutingSkew(0.0)
