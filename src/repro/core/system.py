"""End-to-end step-time model: a whole MoE model on a cluster.

Combines everything below it: per-MoE-layer task durations from the
:class:`~repro.core.profiler.Profiler`, a scheduling policy ordering
those tasks, dense-component costs (attention, gate, embedding/head,
optimizer) from the GPU model, and the data-parallel gradient
allreduce — yielding the per-step wall time the paper's Tables 1, 7, 8
and 10 and Figure 8 report.

Backward pass: the paper notes the dependency structure reverses but
the scheduling problem is symmetric; we model it by re-running the
schedule with :meth:`TaskDurations.backward` durations — compress and
decompress swap roles (the wire carries gradients), A2A payloads stay
the same size, and the expert costs 2x (dgrad + wgrad).

Memory: a simple but explicit per-GPU accounting (parameter state,
activations, A2A buffers, policy-specific overheads) reproduces the
OOM behaviours the paper observed — FasterMoE on BERT-Large-MoE
(Table 8, shadow-expert pools) and the largest Table 4 grid points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.costmodel import attention_forward_flops
from ..cluster.topology import ClusterSpec
from ..collectives.allreduce import hierarchical_allreduce_time
from ..collectives.base import get_a2a
from ..compression.base import get_compressor
from ..models.configs import MoEModelConfig
from .profiler import Profiler
from .scheduler import get_scheduler
from .tasks import TaskDurations

#: Bytes of optimizer/parameter state per trainable parameter:
#: fp16 working copy (2) + fp32 master (4) + grad (4) + Adam m, v (8),
#: rounded up for allocator slack.
PARAM_STATE_BYTES = 20.0

#: Expert backward costs roughly 2x forward (dgrad + wgrad GEMMs).
BACKWARD_EXPERT_FACTOR = 2.0

#: Per-step host-side overhead of a full training step (data loading,
#: Python driver, launch gaps between layers).  Layer microbenchmarks
#: (``layer_only`` configs) run a tight kernel loop and skip it.
HOST_OVERHEAD_S = 25.0e-3


@dataclass(frozen=True)
class SystemPolicy:
    """One training-system configuration (a row of paper Table 9).

    ``shadow_expert_layers`` prices policy-specific buffers: for the
    FasterMoE policy it is the shadow-expert pool (replicas of popular
    experts kept for several in-flight layers), the mechanism behind
    its BERT-Large-MoE OOM in paper Table 8.
    """

    name: str
    compressor: str = "none"
    a2a: str = "nccl"
    scheduler: str = "sequential"
    partitions: int = 1
    #: Partition degrees the system's heuristic may choose among; when
    #: non-empty the simulator picks the degree with the best layer
    #: makespan, mirroring Tutel's heuristic search and ScheMoE's
    #: adaptive choice (paper Section 4 cites PipeMoE [43] for
    #: selecting r).  FasterMoE keeps a fixed degree of 2 (Section 8).
    partition_candidates: tuple = ()
    shadow_expert_layers: int = 0
    #: Multiplier on A2A task durations: prices implementation slack
    #: of a system's own grouped send/recv path relative to plain
    #: NCCL (FasterMoE's custom A2A shows such slack in paper Table 7).
    comm_inefficiency: float = 1.0
    #: Whether the system clips per-expert intake at the Eq. 1
    #: capacity (GShard/Tutel/ScheMoE do; FasterMoE processes every
    #: routed token).  Governs sensitivity to routing imbalance.
    enforces_capacity: bool = True

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise ValueError("partitions must be >= 1")
        if self.comm_inefficiency < 1.0:
            raise ValueError("comm_inefficiency must be >= 1")


@dataclass
class LayerTiming:
    """Timing of one MoE layer under the policy."""

    forward_s: float
    backward_s: float
    durations: TaskDurations

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s


@dataclass
class StepBreakdown:
    """Per-component step time (seconds, per training step)."""

    model: str
    policy: str
    moe_layer: LayerTiming
    num_moe_layers: int
    attention_s: float
    gate_s: float
    head_s: float
    allreduce_s: float
    optimizer_s: float
    memory_bytes: float
    oom: bool = False

    @property
    def moe_total_s(self) -> float:
        return self.moe_layer.total_s * self.num_moe_layers

    @property
    def a2a_total_s(self) -> float:
        """Total time attributable to A2A communication tasks.

        The paper's Table 1 "A2A time" counts the communication tasks'
        elapsed time within the step (whether or not overlapped).
        """
        per_layer = 4.0 * self.moe_layer.durations.a2a * self._partitions
        return per_layer * self.num_moe_layers

    @property
    def total_s(self) -> float:
        if self.oom:
            return float("inf")
        return (
            self.moe_total_s
            + self.attention_s
            + self.gate_s
            + self.head_s
            + self.allreduce_s
            + self.optimizer_s
        )

    @property
    def a2a_ratio(self) -> float:
        """A2A time over step time (paper Table 1's "Ratio")."""
        total = self.total_s
        if total <= 0 or self.oom:
            return 0.0
        return min(1.0, self.a2a_total_s / total)

    def tokens_per_second(self, tokens_per_gpu_step: int, world_size: int) -> float:
        """Cluster-wide training throughput at this step time."""
        if self.oom or self.total_s <= 0:
            return 0.0
        return tokens_per_gpu_step * world_size / self.total_s

    _partitions: int = 1


def dense_param_count(cfg: MoEModelConfig) -> int:
    """Data-parallel (replicated) parameters: attention, embeddings, gates."""
    gates = cfg.num_layers * cfg.model_dim * cfg.num_experts
    return cfg.attention_params + cfg.embedding_params + gates


def local_param_count(cfg: MoEModelConfig, spec: ClusterSpec) -> int:
    """Parameters resident on one GPU (local experts + replicated dense)."""
    experts_per_gpu = max(1, cfg.num_experts // spec.world_size)
    local_experts = cfg.num_layers * experts_per_gpu * cfg.expert_params
    return local_experts + dense_param_count(cfg)


def estimate_memory_bytes(
    cfg: MoEModelConfig, spec: ClusterSpec, policy: SystemPolicy
) -> float:
    """Per-GPU memory of training ``cfg`` under ``policy``.

    Terms: parameter/optimizer state, MoE activations kept for
    backward (activation checkpointing at layer granularity: one
    layer's working set plus per-layer boundaries), A2A wire buffers,
    and the policy's shadow-expert pool.
    """
    params = local_param_count(cfg, spec) * PARAM_STATE_BYTES

    tokens = cfg.tokens_per_gpu
    assignments = cfg.num_experts * cfg.capacity  # ~ f * k * B * L
    elem = 4.0
    # Live working set of one MoE layer: input/output token tensors,
    # dispatched input and expert output at capacity, expert hidden.
    working = (
        2.0 * tokens * cfg.model_dim * elem
        + 2.0 * assignments * cfg.model_dim * elem
        + assignments * cfg.hidden_dim * elem
    )
    # Checkpointed boundaries of every layer.
    boundaries = cfg.num_layers * tokens * cfg.model_dim * elem

    codec = get_compressor(policy.compressor)
    wire = codec.compressed_bytes(cfg.a2a_bytes)
    a2a_buffers = 2.0 * wire  # send + recv staging

    shadow = (
        policy.shadow_expert_layers
        * cfg.num_experts
        * cfg.expert_params
        * 4.0
    )
    return params + working + boundaries + a2a_buffers + shadow


def simulate_model_step(
    cfg: MoEModelConfig,
    spec: ClusterSpec,
    policy: SystemPolicy,
    profiler: Optional[Profiler] = None,
    skew: Optional["RoutingSkew"] = None,
) -> StepBreakdown:
    """Simulate one training step; returns the component breakdown.

    ``skew`` injects dynamic routing imbalance (paper Section 2.1):
    the expert task slows by the hot expert's load factor — clipped at
    the capacity factor for capacity-enforcing systems — and
    capacity-free systems additionally grow their receive buffers.

    An out-of-memory policy/model combination yields ``oom=True`` with
    infinite total time (the way the paper reports FasterMoE on
    BERT-Large-MoE) rather than raising.
    """
    if profiler is None:
        profiler = Profiler(
            spec,
            a2a=get_a2a(policy.a2a),
            compressor=get_compressor(policy.compressor),
        )
    scheduler = get_scheduler(policy.scheduler)
    gpu = spec.gpu

    candidates = policy.partition_candidates or (policy.partitions,)

    expert_factor = 1.0
    if skew is not None:
        expert_factor = skew.load_factor(
            cfg.num_experts, cfg.capacity_factor, policy.enforces_capacity
        )

    def layer_timing(partitions: int) -> LayerTiming:
        durations = profiler.profile_layer(cfg, partitions)
        if (
            policy.comm_inefficiency > 1.0 or expert_factor > 1.0
        ) and durations.a2a != float("inf"):
            durations = TaskDurations(
                compress=durations.compress,
                a2a=durations.a2a * policy.comm_inefficiency,
                decompress=durations.decompress,
                expert=durations.expert * expert_factor,
            )
        if durations.a2a == float("inf"):
            return LayerTiming(float("inf"), float("inf"), durations)
        forward = scheduler.schedule(partitions, durations).makespan
        backward = scheduler.schedule(
            partitions, durations.backward(BACKWARD_EXPERT_FACTOR)
        ).makespan
        return LayerTiming(forward, backward, durations)

    best_partitions = candidates[0]
    layer = layer_timing(candidates[0])
    for r in candidates[1:]:
        candidate = layer_timing(r)
        if candidate.total_s < layer.total_s:
            layer = candidate
            best_partitions = r

    memory = estimate_memory_bytes(cfg, spec, policy)
    if skew is not None and not policy.enforces_capacity:
        # Capacity-free systems size receive buffers for the hot
        # expert's actual intake on its GPU.
        assignments = cfg.num_experts * cfg.capacity
        working = (
            2.0 * assignments * cfg.model_dim
            + assignments * cfg.hidden_dim
        ) * 4.0
        memory += (skew.buffer_factor(cfg.num_experts) - 1.0) * working
    oom = memory > gpu.memory_bytes or layer.forward_s == float("inf")

    if oom:
        return StepBreakdown(
            model=cfg.name,
            policy=policy.name,
            moe_layer=layer,
            num_moe_layers=cfg.num_layers,
            attention_s=0.0,
            gate_s=0.0,
            head_s=0.0,
            allreduce_s=0.0,
            optimizer_s=0.0,
            memory_bytes=memory,
            oom=True,
            _partitions=best_partitions,
        )

    tokens = cfg.tokens_per_gpu
    if cfg.layer_only:
        attention = 0.0
        head = 0.0
    else:
        # Attention runs in fp32: the softmax/masking chain and the
        # fp32 A2A-era activation layout keep it off tensor cores.
        attn_fwd = gpu.gemm_time(
            attention_forward_flops(tokens, cfg.model_dim, cfg.seq_len)
        ) + gpu.memory_time(8.0 * tokens * cfg.model_dim * 4.0)
        attention = cfg.num_layers * 3.0 * attn_fwd  # fwd + 2x bwd

        head_fwd = gpu.gemm_time(
            2.0 * tokens * cfg.model_dim * cfg.vocab_size
        )
        embed = gpu.memory_time(2.0 * tokens * cfg.model_dim * 4.0)
        head = 3.0 * head_fwd + 3.0 * embed

    gate_fwd = gpu.gemm_time(
        2.0 * tokens * cfg.model_dim * cfg.num_experts
    ) + gpu.memory_time(4.0 * tokens * cfg.num_experts * 4.0)
    gate = cfg.num_layers * 3.0 * gate_fwd

    # Dense gradients are reduced in fp16 (standard mixed precision);
    # every compared system overlaps roughly half the allreduce with
    # backward compute, so only half is exposed in the step time.
    allreduce = 0.5 * hierarchical_allreduce_time(
        spec, dense_param_count(cfg) * 2.0
    )
    optimizer = gpu.memory_time(
        local_param_count(cfg, spec) * PARAM_STATE_BYTES
    )
    if not cfg.layer_only:
        optimizer += HOST_OVERHEAD_S

    return StepBreakdown(
        model=cfg.name,
        policy=policy.name,
        moe_layer=layer,
        num_moe_layers=cfg.num_layers,
        attention_s=attention,
        gate_s=gate,
        head_s=head,
        allreduce_s=allreduce,
        optimizer_s=optimizer,
        memory_bytes=memory,
        _partitions=best_partitions,
    )
