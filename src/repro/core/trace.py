"""Chrome-trace export of schedules (view in chrome://tracing / Perfetto).

Turns a :class:`~repro.core.scheduler.ScheduleResult` (or a whole
model's per-layer schedule) into the Trace Event JSON format, with the
computing stream and the communication stream as separate "threads" —
the same visualization the paper's Fig. 3/5 timelines convey.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .scheduler import ScheduleResult
from .tasks import Task, TaskKind

#: Trace-viewer category colors keyed by task kind.
_COLORS = {
    TaskKind.C1: "thread_state_runnable",
    TaskKind.C2: "thread_state_runnable",
    TaskKind.D1: "thread_state_iowait",
    TaskKind.D2: "thread_state_iowait",
    TaskKind.E: "thread_state_running",
    TaskKind.A1: "rail_response",
    TaskKind.A2: "rail_response",
}

COMP_TID = 0
COMM_TID = 1


def schedule_to_trace_events(
    result: ScheduleResult,
    pid: int = 0,
    time_offset_s: float = 0.0,
    label_prefix: str = "",
) -> List[Dict]:
    """Trace events (microsecond timestamps) of one schedule."""
    events: List[Dict] = []
    for task, (start, end) in sorted(
        result.timeline.items(), key=lambda kv: kv[1][0]
    ):
        events.append(
            {
                "name": f"{label_prefix}{task}",
                "cat": "comm" if task.is_comm else "comp",
                "ph": "X",
                "ts": (time_offset_s + start) * 1e6,
                "dur": (end - start) * 1e6,
                "pid": pid,
                "tid": COMM_TID if task.is_comm else COMP_TID,
                "cname": _COLORS[task.kind],
                "args": {"chunk": task.chunk, "kind": task.kind.name},
            }
        )
    return events


def _thread_metadata(pid: int) -> List[Dict]:
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": COMP_TID,
            "args": {"name": "compute stream"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": COMM_TID,
            "args": {"name": "communication stream"},
        },
    ]


def export_schedule_trace(
    result: ScheduleResult,
    path: Optional[str] = None,
    process_name: str = "MoE layer",
) -> str:
    """Serialize one schedule as a Trace Event JSON string.

    When ``path`` is given the JSON is also written there.
    """
    events = _thread_metadata(0)
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": process_name},
        }
    )
    events.extend(schedule_to_trace_events(result))
    payload = json.dumps({"traceEvents": events}, indent=1)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)
    return payload


def export_layer_sequence_trace(
    schedules: List[ScheduleResult],
    path: Optional[str] = None,
    labels: Optional[List[str]] = None,
) -> str:
    """Chain several schedules back-to-back (e.g. fwd of every layer).

    Each schedule starts when the previous one's makespan ends, which
    is how the step-time simulator composes layers.
    """
    if labels is not None and len(labels) != len(schedules):
        raise ValueError("labels must match schedules")
    events = _thread_metadata(0)
    offset = 0.0
    for i, result in enumerate(schedules):
        prefix = f"{labels[i]}:" if labels else f"L{i}:"
        events.extend(
            schedule_to_trace_events(
                result, time_offset_s=offset, label_prefix=prefix
            )
        )
        offset += result.makespan
    payload = json.dumps({"traceEvents": events}, indent=1)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload)
    return payload
