"""The task model of the ScheMoE scheduling framework (paper Section 4).

One MoE layer pass decomposes into seven task types —
C1 A1 D1 E C2 A2 D2 (first compression, first all-to-all, first
decompression, expert computation, second compression, second
all-to-all, second decompression) — and partitioning the input into
``r`` equal chunks yields ``7 r`` tasks (paper Eq. 3) whose only
dependencies are the per-chunk chain of Eqs. (4)-(9).

A1/A2 are communication tasks, everything else computes; the resource
assumption (paper Section 4.1) is that two tasks of the same class
never run concurrently while a computing and a communication task may.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class TaskKind(enum.Enum):
    """The seven task types of one MoE layer pass."""

    C1 = "compress-1"
    A1 = "a2a-1"
    D1 = "decompress-1"
    E = "expert"
    C2 = "compress-2"
    A2 = "a2a-2"
    D2 = "decompress-2"

    @property
    def is_comm(self) -> bool:
        """Communication tasks occupy the network, not the GPU."""
        return self in (TaskKind.A1, TaskKind.A2)


#: The per-chunk dependency chain of paper Eqs. (4)-(9).
CHAIN: Tuple[TaskKind, ...] = (
    TaskKind.C1,
    TaskKind.A1,
    TaskKind.D1,
    TaskKind.E,
    TaskKind.C2,
    TaskKind.A2,
    TaskKind.D2,
)

_PREDECESSOR: Dict[TaskKind, Optional[TaskKind]] = {
    kind: (CHAIN[i - 1] if i > 0 else None) for i, kind in enumerate(CHAIN)
}


@dataclass(frozen=True, order=True)
class Task:
    """One sub-task: a task type applied to chunk ``chunk`` (0-based)."""

    kind: TaskKind
    chunk: int

    @property
    def is_comm(self) -> bool:
        return self.kind.is_comm

    def predecessor(self) -> Optional["Task"]:
        """The immediately preceding task of the same chunk (or None)."""
        prev = _PREDECESSOR[self.kind]
        if prev is None:
            return None
        return Task(prev, self.chunk)

    def __repr__(self) -> str:
        return f"{self.kind.name}^{self.chunk + 1}"


def make_tasks(partitions: int) -> List[Task]:
    """All ``7 r`` tasks of one layer pass (paper Eq. 3)."""
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    return [
        Task(kind, chunk)
        for chunk in range(partitions)
        for kind in CHAIN
    ]


@dataclass(frozen=True)
class TaskDurations:
    """Per-chunk elapsed time of each task type, in seconds.

    The paper assumes uniform partitioning, so durations depend on the
    task type only (first and second instances of the same type cost
    the same — Section 4.1).
    """

    compress: float
    a2a: float
    decompress: float
    expert: float

    def __post_init__(self) -> None:
        for field_name in ("compress", "a2a", "decompress", "expert"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} duration must be >= 0")

    def of(self, kind: TaskKind) -> float:
        """Duration of one chunk of ``kind``."""
        if kind in (TaskKind.C1, TaskKind.C2):
            return self.compress
        if kind in (TaskKind.A1, TaskKind.A2):
            return self.a2a
        if kind in (TaskKind.D1, TaskKind.D2):
            return self.decompress
        return self.expert

    def total_sequential(self, partitions: int) -> float:
        """Paper Eq. 10: no-overlap execution time of all 7r tasks."""
        per_chunk = (
            2 * self.compress + 2 * self.a2a + 2 * self.decompress + self.expert
        )
        return per_chunk * partitions

    def comm_total(self, partitions: int) -> float:
        """Total communication time across chunks."""
        return 2 * self.a2a * partitions

    def comp_total(self, partitions: int) -> float:
        """Total computing time across chunks."""
        return (
            2 * self.compress + 2 * self.decompress + self.expert
        ) * partitions

    def scaled(self, expert_factor: float = 1.0) -> "TaskDurations":
        """A copy with the expert duration scaled (backward ~2x)."""
        return TaskDurations(
            compress=self.compress,
            a2a=self.a2a,
            decompress=self.decompress,
            expert=self.expert * expert_factor,
        )

    def backward(self, expert_factor: float = 2.0) -> "TaskDurations":
        """Durations of the reversed (backward) pass.

        The paper notes the data dependency simply reverses during
        backpropagation; structurally the chain is again C-A-D-E-C-A-D
        with gradients flowing the other way, so the same scheduling
        problem applies with (a) compress and decompress swapping
        roles (where an activation was compressed, its gradient is
        decompressed) and (b) the expert costing ~2x (dgrad + wgrad).
        """
        return TaskDurations(
            compress=self.decompress,
            a2a=self.a2a,
            decompress=self.compress,
            expert=self.expert * expert_factor,
        )
