"""Real threaded execution of the 7r task graph (paper Section 4).

Everything in :mod:`repro.core.scheduler` evaluates schedules in
*simulated* time.  This module runs the same task graph with real
work: callers hand :class:`StreamExecutor` one callable per
:class:`~repro.core.tasks.Task` and it drives them on two worker
threads — one per stream, mirroring the paper's resource model — in
exactly the FIFO enqueue orders a registered
:class:`~repro.core.scheduler.Scheduler` policy produces.  Each thread
executes its queue strictly in order, waiting on a task's chain
predecessor (paper Eqs. 4-9) via a per-task event before starting it,
which is precisely the semantics :func:`~repro.core.scheduler.simulate_order`
encodes for simulated durations.

NumPy releases the GIL inside GEMMs, codec transforms and large
memcpys, so the two threads genuinely overlap: the expert computation
of chunk *i* on the computing stream proceeds while the communication
stream roundtrips chunk *i+1* through the codec — the paper's central
mechanism, made real by
:class:`~repro.moe.parallel.ExpertParallelGroup` and the MoE layer's
``pipeline="overlap"`` mode.

``run_inline`` executes the same callables chunk-major on the calling
thread — the ``pipeline="sync"`` baseline.  Both entry points run
every task exactly once with identical per-task work, so any output
difference between the modes is a scheduling bug, not numerics; the
parity tests assert bit-identical results.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Mapping, Tuple, Union

import numpy as np

from .scheduler import Scheduler, get_scheduler
from .tasks import Task, TaskDurations, make_tasks

__all__ = [
    "PIPELINE_MODES",
    "StreamExecutor",
    "chunk_bounds",
    "run_inline",
    "validate_pipeline",
]

#: Valid values of the ``pipeline`` switch plumbed through
#: :class:`~repro.moe.layer.MoELayer`, the models and the CLI.
PIPELINE_MODES = ("sync", "overlap")

#: Orders from the built-in policies ignore durations, but the
#: :class:`Scheduler` interface requires them; unit costs are the
#: neutral choice for ordering real (unprofiled) work.
_UNIT_DURATIONS = TaskDurations(
    compress=1.0, a2a=1.0, decompress=1.0, expert=1.0
)

TaskFns = Mapping[Task, Callable[[], None]]
Timeline = Dict[Task, Tuple[float, float]]


def validate_pipeline(pipeline: str) -> str:
    """Check ``pipeline`` against :data:`PIPELINE_MODES` and return it."""
    if pipeline not in PIPELINE_MODES:
        raise ValueError(
            f"unknown pipeline {pipeline!r}; expected one of {PIPELINE_MODES}"
        )
    return pipeline


def chunk_bounds(num_tokens: int, num_chunks: int):
    """Token-range chunk boundaries, ``np.array_split`` semantics.

    Chunks are contiguous *token* ranges (never splits of one token's
    routed assignments): all k copies of a token stay in one chunk, so
    the per-token combine accumulation order — and therefore the
    float32 output — is independent of the chunk count.  More chunks
    than tokens simply leaves trailing chunks empty.
    """
    div, mod = divmod(int(num_tokens), int(num_chunks))
    sizes = np.full(num_chunks, div, dtype=np.int64)
    sizes[:mod] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


def _check_coverage(partitions: int, fns: TaskFns) -> None:
    expected = set(make_tasks(partitions))
    got = set(fns)
    if got != expected:
        missing = sorted(map(str, expected - got))
        extra = sorted(map(str, got - expected))
        raise ValueError(
            f"task callables do not cover the {7 * partitions} tasks of "
            f"{partitions} chunks (missing {missing}, extra {extra})"
        )


def run_inline(partitions: int, fns: TaskFns) -> Timeline:
    """Execute all tasks chunk-major on the calling thread (no overlap).

    This is the sequential baseline — C1 A1 D1 E C2 A2 D2 per chunk,
    chunks in order, exactly the
    :class:`~repro.core.scheduler.SequentialScheduler` execution — and
    the reference the overlap executor must match bit-for-bit.
    """
    _check_coverage(partitions, fns)
    timeline: Timeline = {}
    t0 = time.perf_counter()
    for task in make_tasks(partitions):
        start = time.perf_counter() - t0
        fns[task]()
        timeline[task] = (start, time.perf_counter() - t0)
    return timeline


class StreamExecutor:
    """Two real FIFO streams driving one layer pass's task graph.

    ``scheduler`` picks the enqueue orders (a registry name or a
    :class:`~repro.core.scheduler.Scheduler` instance) — the *same*
    policy objects that order the simulator, so OptSche's Theorem 1
    order schedules real numpy work.
    """

    def __init__(
        self, scheduler: Union[str, Scheduler] = "optsche"
    ):
        if isinstance(scheduler, str):
            scheduler = get_scheduler(scheduler)
        self.scheduler = scheduler

    def run(
        self,
        partitions: int,
        fns: TaskFns,
        durations: TaskDurations = _UNIT_DURATIONS,
    ) -> Timeline:
        """Execute every task once; returns the measured timeline.

        Each stream thread walks its enqueue order strictly FIFO,
        blocking on the chain predecessor's completion event before a
        task starts — real-thread :func:`simulate_order` semantics.
        The first task exception aborts the pass (remaining tasks are
        skipped, events still fire so neither stream deadlocks) and is
        re-raised here on the calling thread.
        """
        comp_order, comm_order = self.scheduler.order(partitions, durations)
        fns = dict(fns)
        _check_coverage(partitions, fns)
        done = {task: threading.Event() for task in fns}
        abort = threading.Event()
        failures = []
        timeline: Timeline = {}
        t0 = time.perf_counter()

        def drive(order):
            for task in order:
                pred = task.predecessor()
                if pred is not None:
                    done[pred].wait()
                if not abort.is_set():
                    start = time.perf_counter() - t0
                    try:
                        fns[task]()
                        timeline[task] = (start, time.perf_counter() - t0)
                    except BaseException as exc:  # re-raised below
                        failures.append(exc)
                        abort.set()
                # Always fire, even when skipped after an abort, so a
                # task blocked on this one in the other stream wakes
                # up and observes the abort instead of hanging.
                done[task].set()

        threads = [
            threading.Thread(
                target=drive, args=(order,), name=f"stream-{kind}"
            )
            for kind, order in (("comp", comp_order), ("comm", comm_order))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        return timeline
