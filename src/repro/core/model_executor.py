"""Multi-layer event execution with optional cross-layer pipelining.

The paper schedules tasks *within* one MoE layer; layers execute back
to back.  But the dependency structure allows more: the next layer's
attention only needs the previous layer's combined tokens, which
materialize chunk by chunk as the D2^i decompressions finish — so at
partition degree r, attention chunk i of layer l+1 can start as soon
as D2^i of layer l completes, overlapping the previous layer's
trailing A2A/decompress tail.  This module executes an n-layer forward
pass at event granularity in two modes:

* ``layer-barrier`` — the paper's model: layer l+1 starts when layer l
  is fully done;
* ``chunked`` — cross-layer chunk pipelining (a natural extension in
  the spirit of the paper's future work).

The ``bench_ablation_cross_layer.py`` bench quantifies the gain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cluster.engine import Event
from ..cluster.streams import make_streams
from ..cluster.topology import ClusterSpec, SimCluster
from ..collectives.base import AllToAll
from ..compression.base import Compressor
from ..models.configs import MoEModelConfig
from ..cluster.costmodel import attention_forward_flops
from .profiler import Profiler
from .tasks import TaskKind

MODES = ("layer-barrier", "chunked")

#: Per-chunk computing chain inside one layer (attention prepended).
_COMP_CHAIN = (
    "ATTN",
    TaskKind.C1,
    TaskKind.D1,
    TaskKind.E,
    TaskKind.C2,
    TaskKind.D2,
)


@dataclass
class ModelExecutionReport:
    """Outcome of one multi-layer forward execution."""

    mode: str
    num_layers: int
    partitions: int
    makespan: float


class ModelExecutor:
    """Event-level forward pass of all MoE blocks of a model."""

    def __init__(
        self,
        spec: ClusterSpec,
        a2a: AllToAll,
        compressor: Compressor,
        partitions: int = 2,
    ):
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.spec = spec
        self.a2a = a2a
        self.compressor = compressor
        self.partitions = partitions
        self._profiler = Profiler(spec, a2a=a2a, compressor=compressor)

    def run(self, cfg: MoEModelConfig, mode: str = "chunked") -> ModelExecutionReport:
        """Execute ``cfg.num_layers`` transformer blocks' forward."""
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        r = self.partitions
        durations = self._profiler.profile_layer(cfg, r)
        attn_seconds = self._attention_seconds(cfg) / r

        comp_seconds = {
            "ATTN": attn_seconds,
            TaskKind.C1: durations.compress,
            TaskKind.C2: durations.compress,
            TaskKind.D1: durations.decompress,
            TaskKind.D2: durations.decompress,
            TaskKind.E: durations.expert,
        }
        wire_chunk = self.compressor.compressed_bytes(cfg.a2a_bytes / r)

        cluster = SimCluster(self.spec)
        engine = cluster.engine
        streams = make_streams(engine, self.spec.world_size)

        done: Dict[Tuple[int, object, int], Event] = {}

        def comp_deps(layer: int, kind, chunk: int) -> List[Event]:
            idx = _COMP_CHAIN.index(kind)
            if idx > 0:
                # Chain predecessor within the layer (D1 and D2 are
                # submitted explicitly below because their dependency
                # is a communication task, not the previous comp task).
                return [done[(layer, _COMP_CHAIN[idx - 1], chunk)]]
            # Attention chunk: depends on the previous layer's output.
            if layer == 0:
                return []
            if mode == "layer-barrier":
                return [
                    done[(layer - 1, TaskKind.D2, c)] for c in range(r)
                ]
            return [done[(layer - 1, TaskKind.D2, chunk)]]

        def submit_comp(layer: int, kind, chunk: int) -> Event:
            deps = comp_deps(layer, kind, chunk)
            events = []
            for rank in cluster.iter_ranks():
                events.append(
                    streams[rank].compute.submit(
                        self._kernel(cluster, rank, comp_seconds[kind]),
                        after=deps,
                        name=f"L{layer}:{kind}^{chunk}@{rank}",
                    )
                )
            return engine.all_of(events)

        def submit_comm(layer: int, kind: TaskKind, chunk: int) -> Event:
            pred_kind = (
                TaskKind.C1 if kind == TaskKind.A1 else TaskKind.C2
            )
            dep = done[(layer, pred_kind, chunk)]
            for rank in cluster.iter_ranks():
                gpu_streams = streams[rank]
                for stream in (
                    gpu_streams.comm,
                    gpu_streams.intra,
                    gpu_streams.inter,
                ):
                    stream.submit(
                        self._wait(engine, dep),
                        name=f"gate:L{layer}:{kind}^{chunk}@{rank}",
                    )
            return engine.all_of(
                self.a2a.schedule(cluster, streams, wire_chunk)
            )

        def submit_after_comm(layer: int, kind: TaskKind, chunk: int) -> None:
            """D1/D2: compute gated on the matching A2A completion."""
            comm_kind = TaskKind.A1 if kind == TaskKind.D1 else TaskKind.A2
            deps = [done[(layer, comm_kind, chunk)]]
            events = []
            for rank in cluster.iter_ranks():
                events.append(
                    streams[rank].compute.submit(
                        self._kernel(cluster, rank, comp_seconds[kind]),
                        after=deps,
                        name=f"L{layer}:{kind}^{chunk}@{rank}",
                    )
                )
            done[(layer, kind, chunk)] = engine.all_of(events)

        def submit_d2(layer: int, chunk: int) -> None:
            submit_after_comm(layer, TaskKind.D2, chunk)

        for layer in range(cfg.num_layers):
            # Layer boundary.  In chunked mode the previous layer's
            # trailing D2 decompressions interleave with this layer's
            # attention chunks in the compute queue, so attention on
            # chunk i starts the moment D2^i lands — overlapping the
            # previous layer's remaining A2^j communication.  In
            # layer-barrier mode all D2s are enqueued first (the
            # paper's per-layer model).
            if layer > 0:
                if mode == "chunked":
                    for chunk in range(r):
                        submit_d2(layer - 1, chunk)
                        done[(layer, "ATTN", chunk)] = submit_comp(
                            layer, "ATTN", chunk
                        )
                else:
                    for chunk in range(r):
                        submit_d2(layer - 1, chunk)
                    for chunk in range(r):
                        done[(layer, "ATTN", chunk)] = submit_comp(
                            layer, "ATTN", chunk
                        )
            else:
                for chunk in range(r):
                    done[(layer, "ATTN", chunk)] = submit_comp(
                        layer, "ATTN", chunk
                    )
            # Within the layer: OptSche's order (Eq. 12), with D2
            # deferred past the layer boundary above.
            for chunk in range(r):
                done[(layer, TaskKind.C1, chunk)] = submit_comp(
                    layer, TaskKind.C1, chunk
                )
            for chunk in range(r):
                done[(layer, TaskKind.A1, chunk)] = submit_comm(
                    layer, TaskKind.A1, chunk
                )
            for chunk in range(r):
                submit_after_comm(layer, TaskKind.D1, chunk)
                done[(layer, TaskKind.E, chunk)] = submit_comp(
                    layer, TaskKind.E, chunk
                )
                done[(layer, TaskKind.C2, chunk)] = submit_comp(
                    layer, TaskKind.C2, chunk
                )
            for chunk in range(r):
                done[(layer, TaskKind.A2, chunk)] = submit_comm(
                    layer, TaskKind.A2, chunk
                )
        # Trailing D2s of the final layer.
        for chunk in range(r):
            submit_d2(cfg.num_layers - 1, chunk)

        engine.run()
        return ModelExecutionReport(
            mode=mode,
            num_layers=cfg.num_layers,
            partitions=r,
            makespan=engine.now,
        )

    def _attention_seconds(self, cfg: MoEModelConfig) -> float:
        if cfg.layer_only:
            return 0.0
        gpu = self.spec.gpu
        return gpu.gemm_time(
            attention_forward_flops(
                cfg.tokens_per_gpu, cfg.model_dim, cfg.seq_len
            )
        ) + gpu.memory_time(8.0 * cfg.tokens_per_gpu * cfg.model_dim * 4.0)

    @staticmethod
    def _kernel(cluster: SimCluster, rank: int, seconds: float):
        def work():
            yield from cluster.compute(rank, seconds)

        return work

    @staticmethod
    def _wait(engine, event: Event):
        def work():
            if not event.fired:
                yield event

        return work
