"""The three abstraction modules of ScheMoE (paper Section 3.1).

The paper modularizes the MoE layer's time-consuming operations behind
three abstract interfaces so that new implementations plug into the
scheduling framework unchanged (Listing 1):

* :class:`AbsCompressor` — data compression of A2A payloads
  (``compress`` / ``decompress``); implemented by
  :mod:`repro.compression` (none / fp16 / int8 / zfp).
* :class:`AbsAlltoAll` — the all-to-all collective (``all_to_all``);
  implemented by :mod:`repro.collectives` (nccl / 1dh / 2dh / pipe).
* :class:`AbsExpert` — expert computation; default fflayers are "fast
  enough" (paper), so the abstraction only exposes profiling hooks.

This module re-exports the two pluggable bases under their paper names
and defines :class:`AbsExpert`, plus :func:`register_plugins`, the
one-call equivalent of the paper's Listing 2 registration lines.
"""

from __future__ import annotations

from typing import Optional, Type

from ..cluster.costmodel import GpuModel, ffn_forward_flops
from ..collectives.base import AllToAll as AbsAlltoAll
from ..collectives.base import register_a2a
from ..compression.base import Compressor as AbsCompressor
from ..compression.base import register_compressor


class AbsExpert:
    """Expert-computation abstraction: an fflayer cost/profiling hook.

    The paper does not make experts customizable ("the default
    fflayers are fast enough") but abstracts them so the profiler can
    time them and the scheduler can partition them into sub-tasks.
    """

    def __init__(self, model_dim: int, hidden_dim: int):
        if model_dim < 1 or hidden_dim < 1:
            raise ValueError("dimensions must be >= 1")
        self.model_dim = model_dim
        self.hidden_dim = hidden_dim

    def forward_flops(self, tokens: int) -> float:
        """Flops of one forward pass over ``tokens``."""
        return ffn_forward_flops(tokens, self.model_dim, self.hidden_dim)

    def forward_seconds(self, gpu: GpuModel, tokens: int) -> float:
        """Predicted forward time on ``gpu``."""
        return gpu.gemm_time(self.forward_flops(tokens), tensor_core=True)

    def backward_seconds(self, gpu: GpuModel, tokens: int) -> float:
        """Predicted backward time (dgrad + wgrad ~ 2x forward)."""
        return 2.0 * self.forward_seconds(gpu, tokens)


def register_plugins(
    compressor: Optional[Type[AbsCompressor]] = None,
    a2a: Optional[Type[AbsAlltoAll]] = None,
) -> None:
    """Register user implementations (paper Listing 2, lines 4-5).

    Equivalent to::

        schemoe.register_compressor(MyCompressor)
        schemoe.register_a2a(MyAlltoAll)
    """
    if compressor is not None:
        register_compressor(compressor)
    if a2a is not None:
        register_a2a(a2a)
