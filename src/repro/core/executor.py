"""Event-granularity execution of a scheduled MoE layer pass.

:func:`~repro.core.scheduler.simulate_order` evaluates a schedule
under the paper's *analytic* resource model (one comp stream, one comm
"resource", fixed task durations).  This module executes the same
schedule on the :class:`~repro.cluster.topology.SimCluster` event
engine instead: every rank runs its computing tasks on its GPU's
compute stream, and every A2A task launches the *actual* configured
collective algorithm — per-message transfers, link contention, stream
FIFO and all.

Purpose: cross-validate the two levels.  The analytic model is what
Theorem 1's optimality argument lives in; the event executor shows its
makespans agree with message-level simulation (see
``tests/core/test_executor.py``), closing the loop between the
scheduling theory and the cluster model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cluster.engine import Event
from ..cluster.streams import make_streams
from ..cluster.topology import ClusterSpec, SimCluster
from ..collectives.base import AllToAll
from ..compression.base import Compressor
from ..models.configs import MoEModelConfig
from .profiler import Profiler
from .scheduler import Scheduler
from .tasks import Task, TaskKind


@dataclass
class ExecutionReport:
    """Outcome of one event-level layer execution."""

    makespan: float
    task_finish: Dict[Task, float]
    traffic: Dict[str, float]

    @property
    def comm_finish(self) -> float:
        """Completion time of the last communication task."""
        comm = [t for t in self.task_finish if t.is_comm]
        return max(self.task_finish[t] for t in comm) if comm else 0.0


class EventExecutor:
    """Runs one layer pass per the schedule, at event granularity."""

    def __init__(
        self,
        spec: ClusterSpec,
        a2a: AllToAll,
        compressor: Compressor,
        scheduler: Scheduler,
        partitions: int = 2,
        faults=None,
    ):
        if partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {partitions}")
        self.spec = spec
        self.a2a = a2a
        self.compressor = compressor
        self.scheduler = scheduler
        self.partitions = partitions
        #: Optional :class:`~repro.faults.FaultPlan` applied to every
        #: execution.  Profiling (and therefore the schedule) stays
        #: *healthy*: the scheduler plans for the cluster it believes
        #: it has, and the faults hit at execution time — exactly the
        #: mismatch a straggler study wants to measure.
        self.faults = faults
        self._profiler = Profiler(spec, a2a=a2a, compressor=compressor)

    def run(self, cfg: MoEModelConfig) -> ExecutionReport:
        """Execute one forward pass of ``cfg``'s MoE layer."""
        durations = self._profiler.profile_layer(cfg, self.partitions)
        comp_order, comm_order = self.scheduler.order(
            self.partitions, durations
        )

        cluster = SimCluster(self.spec, faults=self.faults)
        engine = cluster.engine
        streams = make_streams(engine, self.spec.world_size)

        raw_chunk = cfg.a2a_bytes / self.partitions
        wire_chunk = self.compressor.compressed_bytes(raw_chunk)
        comp_seconds = {
            TaskKind.C1: durations.compress,
            TaskKind.C2: durations.compress,
            TaskKind.D1: durations.decompress,
            TaskKind.D2: durations.decompress,
            TaskKind.E: durations.expert,
        }

        done: Dict[Task, Event] = {}

        # Computing tasks: identical work on every rank's compute
        # stream, gated on the task's chain predecessor.
        def submit_comp(task: Task) -> Event:
            pred = task.predecessor()
            deps = [done[pred]] if pred is not None else []
            events = []
            for rank in cluster.iter_ranks():
                events.append(
                    streams[rank].compute.submit(
                        self._kernel(cluster, rank, comp_seconds[task.kind]),
                        after=deps,
                        name=f"{task}@{rank}",
                    )
                )
            return engine.all_of(events)

        # Communication tasks: gate the comm streams on the chain
        # predecessor (a blocking no-op holds the FIFO head), then let
        # the real algorithm post its messages.
        def submit_comm(task: Task) -> Event:
            pred = task.predecessor()
            if pred is not None:
                dep = done[pred]
                for rank in cluster.iter_ranks():
                    gpu_streams = streams[rank]
                    for stream in (
                        gpu_streams.comm,
                        gpu_streams.intra,
                        gpu_streams.inter,
                    ):
                        stream.submit(
                            self._wait(engine, dep),
                            name=f"gate:{task}@{rank}",
                        )
            completions = self.a2a.schedule(cluster, streams, wire_chunk)
            return engine.all_of(completions)

        # Enqueue in schedule order.  Dependencies of later tasks refer
        # to earlier completions, so submission interleaves the two
        # orders: submit any stream head whose predecessor is already
        # submitted, preserving each stream's order (every scheduler's
        # output is causally orderable this way).
        finish_times: Dict[Task, float] = {}

        def recorder(task: Task):
            def callback(_event):
                finish_times[task] = engine.now

            return callback

        remaining = {False: list(comp_order), True: list(comm_order)}
        heads = {False: 0, True: 0}
        total = len(comp_order) + len(comm_order)
        submitted = 0
        while submitted < total:
            progressed = False
            for is_comm in (False, True):
                queue = remaining[is_comm]
                while heads[is_comm] < len(queue):
                    task = queue[heads[is_comm]]
                    pred = task.predecessor()
                    if pred is not None and pred not in done:
                        break
                    event = (
                        submit_comm(task) if is_comm else submit_comp(task)
                    )
                    event.add_callback(recorder(task))
                    done[task] = event
                    heads[is_comm] += 1
                    submitted += 1
                    progressed = True
            if not progressed:
                raise RuntimeError(
                    "schedule is not causally ordered; cannot execute"
                )

        engine.run()
        return ExecutionReport(
            makespan=engine.now,
            task_finish=finish_times,
            traffic=cluster.stats,
        )

    @staticmethod
    def _kernel(cluster: SimCluster, rank: int, seconds: float):
        def work():
            yield from cluster.compute(rank, seconds)

        return work

    @staticmethod
    def _wait(engine, event: Event):
        def work():
            if not event.fired:
                yield event

        return work
