"""The ScheMoE core: abstractions, task queue, profiler, schedulers.

The paper's primary contribution (Sections 3-4): time-consuming MoE
operations are modularized behind ``AbsCompressor`` / ``AbsAlltoAll``
/ ``AbsExpert``; the resulting tasks are profiled and re-ordered by a
pluggable scheduler, with :class:`OptScheScheduler` implementing the
provably optimal order of Theorem 1.
"""

from .abstractions import AbsAlltoAll, AbsCompressor, AbsExpert, register_plugins
from .executor import EventExecutor, ExecutionReport
from .imbalance import BALANCED, RoutingSkew
from .model_executor import ModelExecutionReport, ModelExecutor
from .moe_layer import LayerPlan, ScheMoELayer
from .profiler import LinearPerfModel, Profiler
from .runtime import (
    PIPELINE_MODES,
    StreamExecutor,
    chunk_bounds,
    run_inline,
    validate_pipeline,
)
from .scheduler import (
    BruteForceScheduler,
    ChunkPipelineScheduler,
    InvalidScheduleError,
    OptScheScheduler,
    ScheduleResult,
    Scheduler,
    SequentialScheduler,
    available_schedulers,
    get_scheduler,
    register_scheduler,
    sample_comp_orders,
    simulate_order,
    valid_comp_orders,
)
from .system import (
    PARAM_STATE_BYTES,
    LayerTiming,
    StepBreakdown,
    SystemPolicy,
    dense_param_count,
    estimate_memory_bytes,
    local_param_count,
    simulate_model_step,
)
from .tasks import CHAIN, Task, TaskDurations, TaskKind, make_tasks

__all__ = [
    "AbsAlltoAll",
    "AbsCompressor",
    "AbsExpert",
    "BruteForceScheduler",
    "BALANCED",
    "CHAIN",
    "ChunkPipelineScheduler",
    "EventExecutor",
    "ExecutionReport",
    "InvalidScheduleError",
    "LayerPlan",
    "LayerTiming",
    "LinearPerfModel",
    "ModelExecutionReport",
    "ModelExecutor",
    "OptScheScheduler",
    "PARAM_STATE_BYTES",
    "PIPELINE_MODES",
    "Profiler",
    "RoutingSkew",
    "StreamExecutor",
    "ScheMoELayer",
    "ScheduleResult",
    "Scheduler",
    "SequentialScheduler",
    "StepBreakdown",
    "SystemPolicy",
    "Task",
    "TaskDurations",
    "TaskKind",
    "available_schedulers",
    "chunk_bounds",
    "dense_param_count",
    "estimate_memory_bytes",
    "get_scheduler",
    "local_param_count",
    "make_tasks",
    "register_plugins",
    "register_scheduler",
    "run_inline",
    "sample_comp_orders",
    "simulate_model_step",
    "simulate_order",
    "valid_comp_orders",
    "validate_pipeline",
]
