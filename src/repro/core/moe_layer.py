"""The user-facing ScheMoE MoE layer (paper Listing 2).

``ScheMoELayer`` is the reproduction of::

    moe_module = schemoe.MoE(compress_name='zfp', comm_name='pipe', ...)

It is simultaneously:

* a numerical module — forward/backward through gate, dispatch,
  codec-corrupted transport, experts and combine, usable inside any
  :class:`~repro.nn.Module` model exactly like the paper's
  ``nn.Module``; and
* a system handle — :meth:`plan` profiles its own task sizes on a
  cluster and returns the scheduled execution plan (timeline +
  makespan) its configuration would achieve, which is what the
  benchmark harness aggregates into step times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster.topology import ClusterSpec
from ..collectives.base import get_a2a
from ..compression.base import get_compressor
from ..models.configs import MoEModelConfig
from ..moe.layer import MoELayer
from .profiler import Profiler
from .scheduler import ScheduleResult, get_scheduler
from .tasks import TaskDurations


@dataclass
class LayerPlan:
    """The scheduled execution plan of one layer pass."""

    durations: TaskDurations
    forward: ScheduleResult
    backward: ScheduleResult

    @property
    def step_seconds(self) -> float:
        """Forward + backward makespan of this MoE layer."""
        return self.forward.makespan + self.backward.makespan


class ScheMoELayer(MoELayer):
    """An MoE layer wired into the ScheMoE scheduling framework."""

    def __init__(
        self,
        model_dim: int,
        hidden_dim: int,
        num_experts: int,
        rng: np.random.Generator,
        top_k: int = 2,
        capacity_factor: float = 1.0,
        compress_name: str = "zfp",
        comm_name: str = "pipe",
        scheduler_name: str = "optsche",
        partitions="auto",
        activation: str = "relu",
    ):
        compressor = get_compressor(compress_name)
        super().__init__(
            model_dim,
            hidden_dim,
            num_experts,
            rng,
            top_k=top_k,
            capacity_factor=capacity_factor,
            compressor=compressor,
            activation=activation,
        )
        if partitions != "auto" and (
            not isinstance(partitions, int) or partitions < 1
        ):
            raise ValueError(
                f"partitions must be 'auto' or an int >= 1, got {partitions}"
            )
        # Validate names eagerly so misconfiguration fails at build time.
        get_a2a(comm_name)
        get_scheduler(scheduler_name)
        self.compress_name = compress_name
        self.comm_name = comm_name
        self.scheduler_name = scheduler_name
        self.partitions = partitions

    # -- system side -----------------------------------------------------
    def layer_config(
        self, batch_per_gpu: int, seq_len: int
    ) -> MoEModelConfig:
        """This layer's shape as a single-layer model config."""
        return MoEModelConfig(
            name="schemoe-layer",
            num_layers=1,
            batch_per_gpu=batch_per_gpu,
            seq_len=seq_len,
            hidden_dim=self.experts.hidden_dim,
            model_dim=self.model_dim,
            top_k=self.gate.top_k,
            num_experts=self.gate.num_experts,
            capacity_factor=self.gate.capacity_factor,
        )

    #: Degrees tried when ``partitions="auto"`` (the adaptive choice
    #: the paper delegates to PipeMoE [43]).
    AUTO_PARTITION_CANDIDATES = (1, 2, 4)

    def plan(
        self,
        spec: ClusterSpec,
        batch_per_gpu: int,
        seq_len: int,
        profiler: Optional[Profiler] = None,
    ) -> LayerPlan:
        """Profile and schedule this layer's tasks on ``spec``.

        With ``partitions="auto"`` the plan with the smallest
        forward+backward makespan across the candidate degrees wins.
        """
        cfg = self.layer_config(batch_per_gpu, seq_len)
        if profiler is None:
            profiler = Profiler(
                spec,
                a2a=get_a2a(self.comm_name),
                compressor=get_compressor(self.compress_name),
            )
        scheduler = get_scheduler(self.scheduler_name)
        candidates = (
            self.AUTO_PARTITION_CANDIDATES
            if self.partitions == "auto"
            else (self.partitions,)
        )
        best: Optional[LayerPlan] = None
        for r in candidates:
            durations = profiler.profile_layer(cfg, r)
            plan = LayerPlan(
                durations=durations,
                forward=scheduler.schedule(r, durations),
                backward=scheduler.schedule(r, durations.backward()),
            )
            if best is None or plan.step_seconds < best.step_seconds:
                best = plan
        return best
