"""Schedulers and the stream-execution model they are evaluated under.

A schedule is a pair of enqueue orders — one for the computing stream,
one for the communication stream.  Execution follows CUDA-stream
semantics: each stream runs its queue strictly FIFO (a task whose
dependencies are not yet satisfied blocks everything behind it on the
same stream), tasks on different streams run concurrently, and a task
starts as soon as its stream reaches it *and* its chain predecessor
(paper Eqs. 4-9) has finished.  :func:`simulate_order` computes the
makespan of any such schedule; all schedulers, the optimality property
tests and the step-time simulator share it, so there is exactly one
encoding of the paper's resource model.

Built-in scheduling policies:

* :class:`SequentialScheduler` — no overlap at all (paper Fig. 5(a),
  the "default execution order" / Naive baseline, any r);
* :class:`ChunkPipelineScheduler` — the chunk-major pipelining of
  existing systems (paper Fig. 3(b) / Fig. 5(b): FasterMoE's fixed
  degree-2 pipeline and Tutel's heuristic both take this shape);
* :class:`OptScheScheduler` — the provably optimal order of paper
  Theorem 1 / Eq. 12;
* :class:`BruteForceScheduler` — exhaustive (or sampled) search over
  valid orders, used to verify Theorem 1 empirically.

Custom schedulers subclass :class:`Scheduler` and register with
:func:`register_scheduler` — the paper's "user-friendly interface to
decide the scheduling scheme".
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from .tasks import CHAIN, Task, TaskDurations, TaskKind, make_tasks


@dataclass
class ScheduleResult:
    """Outcome of executing one schedule."""

    makespan: float
    timeline: Dict[Task, Tuple[float, float]]
    comp_order: Tuple[Task, ...]
    comm_order: Tuple[Task, ...]

    @property
    def hidden_time(self) -> float:
        """Paper Eq. 11's t_hidden: total task time minus makespan."""
        total = sum(end - start for start, end in self.timeline.values())
        return total - self.makespan

    def render(self, width: int = 72) -> str:
        """ASCII timeline (one row per task) for the Fig. 5 bench."""
        if not self.timeline:
            return "(empty schedule)"
        scale = width / self.makespan if self.makespan > 0 else 0.0
        rows = []
        ordered = sorted(
            self.timeline.items(), key=lambda kv: (kv[1][0], str(kv[0]))
        )
        for task, (start, end) in ordered:
            lead = int(round(start * scale))
            span = max(1, int(round((end - start) * scale)))
            char = "#" if task.is_comm else "="
            rows.append(f"{str(task):>5} |{' ' * lead}{char * span}")
        rows.append(f"{'':>5} +{'-' * width}> {self.makespan * 1e3:.3f} ms")
        return "\n".join(rows)


class InvalidScheduleError(ValueError):
    """Raised when a schedule deadlocks or is malformed."""


def _validate(order: Sequence[Task], expect_comm: bool, partitions: int) -> None:
    expected = {
        t for t in make_tasks(partitions) if t.is_comm == expect_comm
    }
    got = list(order)
    if len(set(got)) != len(got):
        raise InvalidScheduleError("duplicate tasks in order")
    if set(got) != expected:
        raise InvalidScheduleError(
            f"order must contain exactly the "
            f"{'comm' if expect_comm else 'comp'} tasks of {partitions} "
            f"chunks"
        )


def simulate_order(
    comp_order: Sequence[Task],
    comm_order: Sequence[Task],
    durations: TaskDurations,
    validate: bool = True,
    partitions: Optional[int] = None,
) -> ScheduleResult:
    """Execute a schedule under the FIFO-stream resource model.

    Returns the timeline and makespan.  Raises
    :class:`InvalidScheduleError` on circular waiting (an order that
    can never execute, e.g. a chunk's A2A enqueued before its
    compression on the same stream pair in conflicting positions).
    """
    if partitions is None:
        partitions = (len(comp_order) + len(comm_order)) // 7
    if validate:
        _validate(comp_order, expect_comm=False, partitions=partitions)
        _validate(comm_order, expect_comm=True, partitions=partitions)

    finish: Dict[Task, float] = {}
    timeline: Dict[Task, Tuple[float, float]] = {}
    stream_free = {"comp": 0.0, "comm": 0.0}
    queues = {"comp": list(comp_order), "comm": list(comm_order)}
    heads = {"comp": 0, "comm": 0}

    def try_advance(stream: str) -> bool:
        head = heads[stream]
        queue = queues[stream]
        if head >= len(queue):
            return False
        task = queue[head]
        pred = task.predecessor()
        if pred is not None and pred not in finish:
            return False
        ready = finish[pred] if pred is not None else 0.0
        start = max(stream_free[stream], ready)
        end = start + durations.of(task.kind)
        finish[task] = end
        timeline[task] = (start, end)
        stream_free[stream] = end
        heads[stream] += 1
        return True

    total = len(comp_order) + len(comm_order)
    while len(finish) < total:
        advanced = try_advance("comp") | try_advance("comm")
        if not advanced:
            blocked_comp = (
                queues["comp"][heads["comp"]]
                if heads["comp"] < len(queues["comp"])
                else None
            )
            blocked_comm = (
                queues["comm"][heads["comm"]]
                if heads["comm"] < len(queues["comm"])
                else None
            )
            raise InvalidScheduleError(
                f"schedule deadlocked at comp={blocked_comp}, "
                f"comm={blocked_comm}"
            )
    makespan = max(stream_free.values())
    return ScheduleResult(
        makespan=makespan,
        timeline=timeline,
        comp_order=tuple(comp_order),
        comm_order=tuple(comm_order),
    )


# --------------------------------------------------------------------------
# Scheduler interface + registry
# --------------------------------------------------------------------------


class Scheduler(ABC):
    """Maps (partitions, durations) to stream enqueue orders."""

    #: Registry key; subclasses must override.
    name: str = ""

    @abstractmethod
    def order(
        self, partitions: int, durations: TaskDurations
    ) -> Tuple[List[Task], List[Task]]:
        """(comp_order, comm_order) for one layer pass."""

    def schedule(
        self, partitions: int, durations: TaskDurations
    ) -> ScheduleResult:
        """Order then simulate, in one call."""
        comp, comm = self.order(partitions, durations)
        return simulate_order(comp, comm, durations, partitions=partitions)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: Dict[str, Type[Scheduler]] = {}


def register_scheduler(cls: Type[Scheduler]) -> Type[Scheduler]:
    """Class decorator adding a scheduling policy to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"scheduler {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_scheduler(name: str) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scheduler {name!r}; known: {known}")
    return cls()


def available_schedulers() -> List[str]:
    """Names of all registered schedulers."""
    return sorted(_REGISTRY)


# --------------------------------------------------------------------------
# Built-in policies
# --------------------------------------------------------------------------


def _comm_order(partitions: int) -> List[Task]:
    """A1^1..A1^r then A2^1..A2^r (paper Eqs. 13-14)."""
    return [Task(TaskKind.A1, i) for i in range(partitions)] + [
        Task(TaskKind.A2, i) for i in range(partitions)
    ]


@register_scheduler
class SequentialScheduler(Scheduler):
    """No overlap: the default execution order of paper Fig. 5(a).

    Chunk-major C1 A1 D1 E C2 A2 D2; the communication stream is fed
    in the same chunk order, and because every computing task between
    two A2As of a chunk depends on the previous one, the streams never
    actually overlap across chunks either — matching Eq. 10's
    sum-of-everything time when r = 1 and staying near it for r > 1.
    """

    name = "sequential"

    def order(self, partitions, durations):
        comp, comm = [], []
        for chunk in range(partitions):
            for kind in CHAIN:
                task = Task(kind, chunk)
                (comm if task.is_comm else comp).append(task)
        return comp, comm


@register_scheduler
class ChunkPipelineScheduler(Scheduler):
    """Chunk-major pipelining (paper Fig. 3(b) / Fig. 5(b)).

    This is the schedule shape of FasterMoE's fixed degree-2 pipeline
    and Tutel's heuristic: kick off every chunk's first compression,
    then process each chunk to completion in order (D1 E C2 D2 per
    chunk).  Compared to OptSche the second decompressions are
    enqueued eagerly per chunk, delaying the later chunks' C2 and thus
    the start of their A2A — the suboptimality Fig. 5(c) removes.
    """

    name = "chunk-pipeline"

    def order(self, partitions, durations):
        comp = [Task(TaskKind.C1, i) for i in range(partitions)]
        for chunk in range(partitions):
            comp.extend(
                Task(kind, chunk)
                for kind in (TaskKind.D1, TaskKind.E, TaskKind.C2, TaskKind.D2)
            )
        return comp, _comm_order(partitions)


@register_scheduler
class OptScheScheduler(Scheduler):
    """The optimal order of paper Theorem 1 (Eq. 12).

    ``(C1^1..C1^r)(D1^1 E^1 C2^1)...(D1^r E^r C2^r)(D2^1..D2^r)``:
    all first compressions run first so the A2A pipeline starts as
    early as possible; each chunk is then driven straight to its
    second A2A; all second decompressions are deferred to the end
    because nothing downstream waits on them.
    """

    name = "optsche"

    def order(self, partitions, durations):
        comp = [Task(TaskKind.C1, i) for i in range(partitions)]
        for chunk in range(partitions):
            comp.extend(
                Task(kind, chunk)
                for kind in (TaskKind.D1, TaskKind.E, TaskKind.C2)
            )
        comp.extend(Task(TaskKind.D2, i) for i in range(partitions))
        return comp, _comm_order(partitions)


def valid_comp_orders(partitions: int) -> Iterable[List[Task]]:
    """All computing-task orders preserving each chunk's chain order.

    (Orders violating a chunk's internal precedence can never win:
    under FIFO blocking they only delay the stream, so the search
    space for the brute-force optimum is the set of interleavings of r
    identical 5-task chains.)
    """
    chains = [
        [
            Task(kind, chunk)
            for kind in (
                TaskKind.C1,
                TaskKind.D1,
                TaskKind.E,
                TaskKind.C2,
                TaskKind.D2,
            )
        ]
        for chunk in range(partitions)
    ]
    remaining = [5] * partitions
    order: List[Task] = []

    def emit():
        if len(order) == 5 * partitions:
            yield list(order)
            return
        for chunk in range(partitions):
            if remaining[chunk] == 0:
                continue
            order.append(chains[chunk][5 - remaining[chunk]])
            remaining[chunk] -= 1
            yield from emit()
            remaining[chunk] += 1
            order.pop()

    yield from emit()


def sample_comp_orders(
    partitions: int, count: int, seed: int = 0
) -> Iterable[List[Task]]:
    """Random distinct interleavings (for r where exhaustion explodes)."""
    import random as _random

    rng = _random.Random(seed)
    chains_kinds = (
        TaskKind.C1,
        TaskKind.D1,
        TaskKind.E,
        TaskKind.C2,
        TaskKind.D2,
    )
    seen = set()
    attempts = 0
    while len(seen) < count and attempts < count * 20:
        attempts += 1
        slots = []
        for chunk in range(partitions):
            slots.extend([chunk] * 5)
        rng.shuffle(slots)
        key = tuple(slots)
        if key in seen:
            continue
        seen.add(key)
        positions = [0] * partitions
        order = []
        for chunk in slots:
            order.append(Task(chains_kinds[positions[chunk]], chunk))
            positions[chunk] += 1
        yield order


@register_scheduler
class BruteForceScheduler(Scheduler):
    """Exhaustive search over valid interleavings (small r only).

    Used by the property tests and the scheduler ablation to verify
    that OptSche's makespan matches the true optimum.  r = 2 is
    exhaustive (252 interleavings); larger r samples
    ``sample_count`` random interleavings plus the OptSche order.
    """

    name = "brute-force"

    #: Exhaustive up to here; the interleaving count is multinomial
    #: C(5r; 5, ..., 5) and explodes beyond r = 2.
    max_exhaustive_partitions = 2
    sample_count = 4000

    def order(self, partitions, durations):
        comm = _comm_order(partitions)
        if partitions <= self.max_exhaustive_partitions:
            candidates: Iterable[List[Task]] = valid_comp_orders(partitions)
        else:
            opt_comp, _ = OptScheScheduler().order(partitions, durations)
            candidates = itertools.chain(
                [opt_comp],
                sample_comp_orders(partitions, self.sample_count),
            )
        best = None
        best_order = None
        for comp in candidates:
            try:
                result = simulate_order(
                    comp, comm, durations, validate=False, partitions=partitions
                )
            except InvalidScheduleError:
                # Some interleavings deadlock under FIFO streams (e.g.
                # a chunk's D2 enqueued before a later chunk's C1 while
                # the comm stream still owes that chunk's A1); they are
                # simply infeasible schedules.
                continue
            if best is None or result.makespan < best - 1e-15:
                best = result.makespan
                best_order = comp
        return list(best_order), comm
