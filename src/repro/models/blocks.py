"""Transformer building blocks, dense or MoE.

Each block is pre-norm attention plus a feed-forward sublayer; the
feed-forward is either a dense fflayer (the "Base" models of paper
Table 6) or an :class:`~repro.moe.MoELayer` (the "-MoE" models, where
the paper replaces *all* feed-forward layers with MoE layers).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compression.base import Compressor
from ..moe import MoELayer
from ..nn.modules import (
    Dropout,
    FeedForward,
    LayerNorm,
    Module,
    MultiHeadAttention,
)
from ..nn.tensor import Tensor


def make_ffn(
    model_dim: int,
    hidden_dim: int,
    rng: np.random.Generator,
    moe: bool = False,
    num_experts: int = 8,
    top_k: int = 2,
    capacity_factor: float = 1.0,
    compressor: Optional[Compressor] = None,
    activation: str = "relu",
    expert_impl: Optional[str] = None,
    pipeline: str = "sync",
    num_chunks: int = 1,
) -> Module:
    """Dense fflayer or MoE layer, per the model variant."""
    if not moe:
        return FeedForward(model_dim, hidden_dim, rng, activation=activation)
    return MoELayer(
        model_dim,
        hidden_dim,
        num_experts,
        rng,
        top_k=top_k,
        capacity_factor=capacity_factor,
        compressor=compressor,
        activation=activation,
        expert_impl=expert_impl,
        pipeline=pipeline,
        num_chunks=num_chunks,
    )


class TransformerBlock(Module):
    """Pre-norm block: (self-attn) [+ cross-attn] + ffn, residuals."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        ffn: Module,
        rng: np.random.Generator,
        causal: bool = False,
        cross_attention: bool = False,
        dropout: float = 0.0,
    ):
        super().__init__()
        self.norm1 = LayerNorm(model_dim)
        self.attn = MultiHeadAttention(model_dim, num_heads, rng, causal=causal)
        self.cross = None
        self.norm_cross = None
        if cross_attention:
            self.norm_cross = LayerNorm(model_dim)
            self.cross = MultiHeadAttention(model_dim, num_heads, rng)
        self.norm2 = LayerNorm(model_dim)
        self.ffn = ffn
        self.drop = Dropout(dropout, rng) if dropout > 0 else None

    def _maybe_drop(self, x: Tensor) -> Tensor:
        return self.drop(x) if self.drop is not None else x

    def forward(
        self,
        x: Tensor,
        context: Optional[Tensor] = None,
        self_mask: Optional[np.ndarray] = None,
        context_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        x = x + self._maybe_drop(self.attn(self.norm1(x), mask=self_mask))
        if self.cross is not None:
            if context is None:
                raise ValueError("cross-attention block requires context")
            x = x + self._maybe_drop(
                self.cross(self.norm_cross(x), context=context, mask=context_mask)
            )
        x = x + self._maybe_drop(self.ffn(self.norm2(x)))
        return x

    @property
    def moe_layer(self) -> Optional[MoELayer]:
        """The block's MoE layer, if its ffn is one."""
        return self.ffn if isinstance(self.ffn, MoELayer) else None


def collect_aux_loss(module: Module) -> Optional[Tensor]:
    """Sum the load-balancing losses of every MoE layer in a model."""
    total: Optional[Tensor] = None
    for sub in module.modules():
        if isinstance(sub, MoELayer) and sub.last_aux_loss is not None:
            total = sub.last_aux_loss if total is None else total + sub.last_aux_loss
    return total


def sinusoidal_positions(seq_len: int, dim: int) -> np.ndarray:
    """Standard sinusoidal positional encoding, (seq_len, dim)."""
    positions = np.arange(seq_len)[:, None].astype(np.float32)
    div = np.exp(
        np.arange(0, dim, 2, dtype=np.float32) * (-np.log(10000.0) / dim)
    )
    enc = np.zeros((seq_len, dim), dtype=np.float32)
    enc[:, 0::2] = np.sin(positions * div)
    enc[:, 1::2] = np.cos(positions * div[: enc[:, 1::2].shape[1]])
    return enc
