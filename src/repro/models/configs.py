"""Model configurations of the paper's evaluation (Tables 1, 4, 5).

These drive the step-time simulator: each config yields per-layer task
sizes (A2A payload via paper Eq. 2, expert flops, gate flops, dense
attention flops) without instantiating numerical weights — BERT-Large-
MoE's 6.4 B parameters never have to exist in RAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List


@dataclass(frozen=True)
class MoEModelConfig:
    """One row of paper Table 5 (plus derived quantities).

    Notation follows paper Table 2: per-GPU batch B, sequence length
    L, expert hidden size H, embedding size M, top-k k, experts E,
    capacity factor f.
    """

    name: str
    num_layers: int
    batch_per_gpu: int
    seq_len: int
    hidden_dim: int
    model_dim: int
    top_k: int
    num_experts: int
    capacity_factor: float = 1.0
    vocab_size: int = 32768
    num_heads: int = 8
    dtype_bits: int = 32
    #: Microbenchmark mode: a bare MoE layer with no attention,
    #: embedding or LM head around it (the paper's Table 4 sweep and
    #: Section 6.5 ablation are layer benchmarks, not full models).
    layer_only: bool = False

    def __post_init__(self) -> None:
        for attr in (
            "num_layers",
            "batch_per_gpu",
            "seq_len",
            "hidden_dim",
            "model_dim",
            "top_k",
            "num_experts",
        ):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1")
        if self.capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")

    # -- paper quantities ------------------------------------------------
    @property
    def tokens_per_gpu(self) -> int:
        """B x L."""
        return self.batch_per_gpu * self.seq_len

    @property
    def capacity(self) -> int:
        """Paper Eq. (1)."""
        return max(
            1,
            int(
                math.ceil(
                    self.capacity_factor
                    * self.top_k
                    * self.tokens_per_gpu
                    / self.num_experts
                )
            ),
        )

    @property
    def a2a_bytes(self) -> float:
        """Paper Eq. (2): per-GPU A2A payload per MoE layer direction."""
        elements = (
            self.capacity_factor
            * self.top_k
            * self.tokens_per_gpu
            * self.model_dim
        )
        return elements * self.dtype_bits / 8.0

    @property
    def expert_params(self) -> int:
        """Parameters of one expert fflayer (two weight matrices + biases)."""
        return 2 * self.model_dim * self.hidden_dim + self.hidden_dim + self.model_dim

    @property
    def moe_params(self) -> int:
        """All experts + gates across layers."""
        gate = self.model_dim * self.num_experts
        return self.num_layers * (self.num_experts * self.expert_params + gate)

    @property
    def attention_params(self) -> int:
        """Per-layer attention projections (4 M x M) across layers."""
        if self.layer_only:
            return 0
        per_layer = 4 * (self.model_dim * self.model_dim + self.model_dim)
        return self.num_layers * per_layer

    @property
    def embedding_params(self) -> int:
        """Token-embedding parameters (0 for layer microbenchmarks)."""
        if self.layer_only:
            return 0
        return self.vocab_size * self.model_dim

    @property
    def dense_equivalent_params(self) -> int:
        """Parameter count if every MoE layer were a single fflayer."""
        return (
            self.num_layers * self.expert_params
            + self.attention_params
            + self.embedding_params
        )

    @property
    def total_params(self) -> int:
        """All parameters: experts + gates + attention + embeddings."""
        return self.moe_params + self.attention_params + self.embedding_params

    def with_layers(self, num_layers: int) -> "MoEModelConfig":
        """CT-MoE-x style depth variant."""
        return replace(self, name=f"{self.name.rsplit('-', 1)[0]}-{num_layers}", num_layers=num_layers)


def transformer_moe() -> MoEModelConfig:
    """Table 5 row 1: Transformer-MoE (B*L = 4096, H=2048, M=512, k=1, E=8)."""
    return MoEModelConfig(
        name="Transformer-MoE",
        num_layers=12,
        batch_per_gpu=8,
        seq_len=512,
        hidden_dim=2048,
        model_dim=512,
        top_k=1,
        num_experts=8,
        capacity_factor=1.0,
    )


def gpt2_tiny_moe() -> MoEModelConfig:
    """Table 5 row 2: GPT2-Tiny-MoE (B=4, L=256, H=64, M=64, k=2, E=32)."""
    return MoEModelConfig(
        name="GPT2-Tiny-MoE",
        num_layers=12,
        batch_per_gpu=4,
        seq_len=256,
        hidden_dim=64,
        model_dim=64,
        top_k=2,
        num_experts=32,
        capacity_factor=1.0,
    )


def ct_moe(num_layers: int = 12) -> MoEModelConfig:
    """Table 5 row 3: CT-MoE-x (B=136, L=31, H=512, M=512, k=1, E=32).

    The x in CT-MoE-x is the layer count (12, 16, 20, 24 in Tables 1
    and 7).
    """
    return MoEModelConfig(
        name=f"CT-MoE-{num_layers}",
        num_layers=num_layers,
        batch_per_gpu=136,
        seq_len=31,
        hidden_dim=512,
        model_dim=512,
        top_k=1,
        num_experts=32,
        capacity_factor=1.0,
    )


def bert_large_moe() -> MoEModelConfig:
    """Table 5 row 4: BERT-Large-MoE.

    The table row reads f=1.0, B=1, L=4096, H=1024, M=1, k=32, E=32,
    which is internally inconsistent (M=1 makes no tensor sense).  We
    adopt the standard BERT-Large geometry (24 layers, M=1024,
    H=4096) with the table's B=1, L=4096: the per-GPU A2A payload is
    then 1*4096*1024*4 = 16.8 MB and each of the 32 per-peer chunks is
    exactly 524,288 bytes — the "input size for the A2A collective"
    of paper Section 6.3.  Total parameters land at ~6.6 B with E=32
    experts per layer, matching the paper's "~6.5 billion".
    """
    return MoEModelConfig(
        name="BERT-Large-MoE",
        num_layers=24,
        batch_per_gpu=1,
        seq_len=4096,
        hidden_dim=4096,
        model_dim=1024,
        top_k=1,
        num_experts=32,
        capacity_factor=1.0,
        num_heads=16,
    )


def ablation_layer() -> MoEModelConfig:
    """Section 6.5's single MoE layer: B=8, f=1.2, L=2048, H=8192,

    M=8192 — its A2A payload is 1.2*8*2048*8192*4 = ~644 MB, the
    regime where Pipe-A2A shines (paper: "the A2A input size of
    CT-MoE is 640MB" refers to this layer).
    """
    return MoEModelConfig(
        name="Ablation-Layer",
        num_layers=1,
        batch_per_gpu=8,
        seq_len=2048,
        hidden_dim=8192,
        model_dim=8192,
        top_k=1,
        num_experts=32,
        capacity_factor=1.2,
        layer_only=True,
    )


def table4_grid() -> List[Dict[str, float]]:
    """The customized-MoE-layer sweep of paper Table 4.

    B x f x L x H x M = 3*3*3*5*5 = 675 combinations (the paper
    measures the 675 valid non-OOM cases), with k=2 and E = #GPUs.
    """
    grid = []
    for b in (2, 4, 8):
        for f in (1.0, 1.1, 1.2):
            for l in (512, 1024, 2048):
                for h in (512, 1024, 2048, 4096, 8192):
                    for m in (512, 1024, 2048, 4096, 8192):
                        grid.append(
                            {"B": b, "f": f, "L": l, "H": h, "M": m}
                        )
    return grid


def layer_config_from_grid(
    point: Dict[str, float], num_experts: int = 32, top_k: int = 2
) -> MoEModelConfig:
    """A single-MoE-layer config for one Table 4 grid point."""
    return MoEModelConfig(
        name=f"layer-B{point['B']}-f{point['f']}-L{point['L']}-H{point['H']}-M{point['M']}",
        num_layers=1,
        batch_per_gpu=int(point["B"]),
        seq_len=int(point["L"]),
        hidden_dim=int(point["H"]),
        model_dim=int(point["M"]),
        top_k=top_k,
        num_experts=num_experts,
        capacity_factor=float(point["f"]),
        layer_only=True,
    )


PAPER_MODELS = {
    "transformer_moe": transformer_moe,
    "gpt2_tiny_moe": gpt2_tiny_moe,
    "ct_moe": ct_moe,
    "bert_large_moe": bert_large_moe,
}
