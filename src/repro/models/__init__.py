"""Models: numeric transformers for convergence runs, configs for timing.

The numeric models (:class:`TransformerLM`, :class:`Seq2SeqTransformer`)
are sized down for CPU training of Table 6; the configs
(:mod:`~repro.models.configs`) describe the paper's full-size models for
the step-time simulator (Tables 1, 7, 8; Figures 8, 9).
"""

from .blocks import (
    TransformerBlock,
    collect_aux_loss,
    make_ffn,
    sinusoidal_positions,
)
from .configs import (
    PAPER_MODELS,
    MoEModelConfig,
    ablation_layer,
    bert_large_moe,
    ct_moe,
    gpt2_tiny_moe,
    layer_config_from_grid,
    table4_grid,
    transformer_moe,
)
from .gpt2_tiny import TransformerLM
from .transformer import Seq2SeqTransformer

__all__ = [
    "MoEModelConfig",
    "PAPER_MODELS",
    "Seq2SeqTransformer",
    "TransformerBlock",
    "TransformerLM",
    "ablation_layer",
    "bert_large_moe",
    "collect_aux_loss",
    "ct_moe",
    "gpt2_tiny_moe",
    "layer_config_from_grid",
    "make_ffn",
    "sinusoidal_positions",
    "table4_grid",
    "transformer_moe",
]
