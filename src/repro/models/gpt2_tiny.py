"""Decoder-only language model (the paper's GPT2-Tiny / GPT2-Tiny-MoE).

"transformer_lm_gpt2_tiny" in fairseq is a GPT-2-shaped causal LM with
small dimensions; the MoE variant replaces every feed-forward layer
with an MoE layer.  Used for the perplexity column of paper Table 6.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compression.base import Compressor
from ..nn import functional as F
from ..nn.modules import Embedding, LayerNorm, Linear, Module, ModuleList
from ..nn.tensor import Tensor
from .blocks import TransformerBlock, collect_aux_loss, make_ffn, sinusoidal_positions


class TransformerLM(Module):
    """Causal transformer LM, dense or MoE feed-forwards."""

    def __init__(
        self,
        vocab_size: int,
        model_dim: int = 64,
        hidden_dim: int = 128,
        num_layers: int = 2,
        num_heads: int = 4,
        max_seq_len: int = 256,
        moe: bool = False,
        num_experts: int = 8,
        top_k: int = 2,
        capacity_factor: float = 1.25,
        compressor: Optional[Compressor] = None,
        dropout: float = 0.0,
        seed: int = 0,
        expert_impl: Optional[str] = None,
        pipeline: str = "sync",
        num_chunks: int = 1,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.model_dim = model_dim
        self.max_seq_len = max_seq_len
        self.embed = Embedding(vocab_size, model_dim, rng)
        self._positions = sinusoidal_positions(max_seq_len, model_dim)
        self.blocks = ModuleList(
            [
                TransformerBlock(
                    model_dim,
                    num_heads,
                    make_ffn(
                        model_dim,
                        hidden_dim,
                        rng,
                        moe=moe,
                        num_experts=num_experts,
                        top_k=top_k,
                        capacity_factor=capacity_factor,
                        compressor=compressor,
                        expert_impl=expert_impl,
                        pipeline=pipeline,
                        num_chunks=num_chunks,
                    ),
                    rng,
                    causal=True,
                    dropout=dropout,
                )
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(model_dim)
        self.head = Linear(model_dim, vocab_size, rng, bias=False)

    def forward(self, tokens: np.ndarray) -> Tensor:
        """(B, L) int tokens -> (B, L, vocab) logits."""
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ValueError(f"expected (B, L) tokens, got {tokens.shape}")
        seq_len = tokens.shape[1]
        if seq_len > self.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds max {self.max_seq_len}"
            )
        x = self.embed(tokens) + Tensor(self._positions[:seq_len])
        for block in self.blocks:
            x = block(x)
        return self.head(self.final_norm(x))

    def loss(self, tokens: np.ndarray, aux_weight: float = 0.01) -> Tensor:
        """Next-token cross entropy (+ MoE aux loss if applicable).

        Predicts tokens[:, 1:] from tokens[:, :-1].
        """
        logits = self.forward(tokens[:, :-1])
        nll = F.cross_entropy(logits, tokens[:, 1:])
        aux = collect_aux_loss(self)
        if aux is not None and aux_weight > 0:
            return nll + aux * aux_weight
        return nll

    def perplexity_loss(self, tokens: np.ndarray) -> float:
        """Pure next-token NLL (no aux), for evaluation."""
        logits = self.forward(tokens[:, :-1])
        return float(F.cross_entropy(logits, tokens[:, 1:]).data)

    def perplexity_loss_inference(self, tokens: np.ndarray) -> float:
        """:meth:`perplexity_loss` on the autograd-free fast path.

        Runs the whole model through
        :meth:`~repro.nn.modules.Module.forward_inference` — no
        backward closures, intermediates drawn from the model's arena
        — and is bit-identical to :meth:`perplexity_loss` on an
        ``eval()`` model.  This is the evaluation loop a serving or
        validation pass should use: same number, none of the
        training-tape memory.
        """
        logits = self.forward_inference(tokens[:, :-1])
        return float(F.cross_entropy(logits, tokens[:, 1:]).data)
