"""Encoder-decoder transformer (the paper's Transformer / Transformer-MoE).

Used for the translation task of Table 6 (BLEU column).  The MoE
variant replaces every feed-forward layer in both the encoder and the
decoder with an MoE layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compression.base import Compressor
from ..nn import functional as F
from ..nn.modules import Embedding, LayerNorm, Linear, Module, ModuleList
from ..nn.tensor import Tensor
from .blocks import TransformerBlock, collect_aux_loss, make_ffn, sinusoidal_positions


class Seq2SeqTransformer(Module):
    """Encoder-decoder with optional MoE feed-forwards."""

    def __init__(
        self,
        src_vocab: int,
        tgt_vocab: int,
        model_dim: int = 64,
        hidden_dim: int = 128,
        num_layers: int = 2,
        num_heads: int = 4,
        max_seq_len: int = 64,
        moe: bool = False,
        num_experts: int = 8,
        top_k: int = 2,
        capacity_factor: float = 1.25,
        compressor: Optional[Compressor] = None,
        dropout: float = 0.0,
        pad_id: int = 0,
        seed: int = 0,
        expert_impl: Optional[str] = None,
        pipeline: str = "sync",
        num_chunks: int = 1,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.pad_id = pad_id
        self.model_dim = model_dim
        self.max_seq_len = max_seq_len
        self.src_embed = Embedding(src_vocab, model_dim, rng)
        self.tgt_embed = Embedding(tgt_vocab, model_dim, rng)
        self._positions = sinusoidal_positions(max_seq_len, model_dim)

        def ffn():
            return make_ffn(
                model_dim,
                hidden_dim,
                rng,
                moe=moe,
                num_experts=num_experts,
                top_k=top_k,
                capacity_factor=capacity_factor,
                compressor=compressor,
                expert_impl=expert_impl,
                pipeline=pipeline,
                num_chunks=num_chunks,
            )

        self.encoder = ModuleList(
            [
                TransformerBlock(model_dim, num_heads, ffn(), rng, dropout=dropout)
                for _ in range(num_layers)
            ]
        )
        self.decoder = ModuleList(
            [
                TransformerBlock(
                    model_dim,
                    num_heads,
                    ffn(),
                    rng,
                    causal=True,
                    cross_attention=True,
                    dropout=dropout,
                )
                for _ in range(num_layers)
            ]
        )
        self.enc_norm = LayerNorm(model_dim)
        self.dec_norm = LayerNorm(model_dim)
        self.head = Linear(model_dim, tgt_vocab, rng, bias=False)

    def encode(self, src: np.ndarray) -> Tensor:
        """(B, Ls) int source tokens -> (B, Ls, M) memory."""
        src = np.asarray(src)
        mask = src != self.pad_id
        x = self.src_embed(src) + Tensor(self._positions[: src.shape[1]])
        for block in self.encoder:
            x = block(x, self_mask=mask)
        return self.enc_norm(x)

    def forward(self, src: np.ndarray, tgt_in: np.ndarray) -> Tensor:
        """Teacher-forced logits: (B, Lt, tgt_vocab)."""
        src = np.asarray(src)
        tgt_in = np.asarray(tgt_in)
        if src.shape[0] != tgt_in.shape[0]:
            raise ValueError("source and target batch sizes differ")
        memory = self.encode(src)
        src_mask = src != self.pad_id
        y = self.tgt_embed(tgt_in) + Tensor(self._positions[: tgt_in.shape[1]])
        for block in self.decoder:
            y = block(y, context=memory, context_mask=src_mask)
        return self.head(self.dec_norm(y))

    def loss(
        self,
        src: np.ndarray,
        tgt_in: np.ndarray,
        tgt_out: np.ndarray,
        aux_weight: float = 0.01,
    ) -> Tensor:
        """Cross entropy over non-pad target tokens (+ MoE aux loss)."""
        logits = self.forward(src, tgt_in)
        nll = F.cross_entropy(logits, tgt_out, ignore_index=self.pad_id)
        aux = collect_aux_loss(self)
        if aux is not None and aux_weight > 0:
            return nll + aux * aux_weight
        return nll

    def greedy_decode(
        self, src: np.ndarray, bos_id: int, eos_id: int, max_len: int = 32
    ) -> np.ndarray:
        """Greedy generation; returns (B, <=max_len) without BOS."""
        src = np.asarray(src)
        batch = src.shape[0]
        memory = self.encode(src)
        src_mask = src != self.pad_id
        out = np.full((batch, 1), bos_id, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        for _ in range(max_len):
            y = self.tgt_embed(out) + Tensor(self._positions[: out.shape[1]])
            for block in self.decoder:
                y = block(y, context=memory, context_mask=src_mask)
            logits = self.head(self.dec_norm(y))
            next_tokens = logits.data[:, -1].argmax(axis=-1)
            next_tokens = np.where(finished, self.pad_id, next_tokens)
            out = np.concatenate([out, next_tokens[:, None]], axis=1)
            finished |= next_tokens == eos_id
            if finished.all():
                break
        return out[:, 1:]
