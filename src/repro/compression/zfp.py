"""ZFP-style fixed-rate block floating-point codec.

The paper uses LLNL's ZFP at an average of 8 bits per element (4x
volume reduction, paper Section 6.2).  We implement the behaviourally
equivalent core mechanism: values are grouped into fixed blocks, each
block shares one exponent (taken from its largest magnitude) and
stores fixed-width mantissas relative to it.  The per-block exponent
is what separates this codec from naive INT8: resolution adapts to
each block's local dynamic range instead of the whole tensor's, so the
roundtrip error stays proportional to the *local* scale — the reason
Table 6 shows ZFP preserving convergence where INT8 does not.

Supported rates are 4, 8 and 16 mantissa bits per value; 4-bit
mantissas are packed two per byte.  The per-block exponent adds
``8 / BLOCK`` bits per value of overhead.
"""

from __future__ import annotations

import numpy as np

from .base import CompressedTensor, Compressor, register_compressor

#: Values per block (ZFP uses 4^d; we block the flattened tensor).
BLOCK = 64

_SUPPORTED_RATES = (4, 8, 16)


class ZfpLikeCompressor(Compressor):
    """Fixed-rate block floating-point compression.

    Cost model: GPU ZFP implementations on 2021-era consumer cards
    sustain on the order of 12-14 GB/s with a ~1 ms pipeline setup per
    invocation (kernel cascade + (E, C, M) layout gather/scatter +
    stream sync).  The fixed cost is what makes ZFP barely profitable
    on small A2A payloads (paper Table 8 / Section 7) while paying off
    4x-volume savings on large ones (Table 10).
    """

    name = "zfp"
    fixed_cost_s = 1.0e-3
    compress_bandwidth_bps = 12.0e9
    decompress_bandwidth_bps = 14.0e9

    def __init__(self, rate: int = 8):
        if rate not in _SUPPORTED_RATES:
            raise ValueError(
                f"rate must be one of {_SUPPORTED_RATES}, got {rate}"
            )
        self.rate = rate
        self.bits_per_value = rate + 8.0 / BLOCK

    def compress(self, tensor: np.ndarray) -> CompressedTensor:
        arr = np.asarray(tensor, dtype=np.float32)
        flat = arr.ravel()
        pad = (-flat.size) % BLOCK
        if pad:
            flat = np.concatenate([flat, np.zeros(pad, dtype=np.float32)])
        blocks = flat.reshape(-1, BLOCK)

        peaks = np.max(np.abs(blocks), axis=1)
        # frexp: |x| = m * 2^e with m in [0.5, 1); e is the exponent of
        # the block's largest magnitude (0 for all-zero blocks).
        _mant, exps = np.frexp(peaks)
        exps = exps.astype(np.int8)

        # Quantize mantissas to `rate` signed bits against 2^e: values
        # land in [-(2^(rate-1) - 1), 2^(rate-1) - 1].
        qmax = float(2 ** (self.rate - 1) - 1)
        scales = np.ldexp(np.float32(1.0), exps.astype(np.int32))  # 2^e
        quant = np.rint(blocks / scales[:, None] * qmax)
        quant = np.clip(quant, -qmax, qmax)

        if self.rate == 4:
            data = _pack_nibbles(quant.astype(np.int8))
        elif self.rate == 8:
            data = quant.astype(np.int8)
        else:
            data = quant.astype(np.int16)
        return CompressedTensor(
            codec=self.name,
            shape=arr.shape,
            dtype=np.dtype(np.float32),
            payload={"data": data, "exponents": exps},
            meta={"rate": self.rate, "pad": pad},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        rate = compressed.meta["rate"]
        pad = compressed.meta["pad"]
        exps = compressed.payload["exponents"].astype(np.int32)
        raw = compressed.payload["data"]
        if rate == 4:
            quant = _unpack_nibbles(raw).reshape(len(exps), BLOCK)
        else:
            quant = raw.reshape(len(exps), BLOCK).astype(np.float32)
        qmax = float(2 ** (rate - 1) - 1)
        scales = np.ldexp(np.float32(1.0), exps)
        blocks = quant.astype(np.float32) * (scales[:, None] / qmax)
        flat = blocks.ravel()
        if pad:
            flat = flat[:-pad]
        return flat.reshape(compressed.shape)


def _pack_nibbles(values: np.ndarray) -> np.ndarray:
    """Pack int8 values in [-7, 7] two per byte (offset-8 nibbles)."""
    offset = (values + 8).astype(np.uint8)
    lo = offset[:, 0::2]
    hi = offset[:, 1::2]
    return (lo | (hi << 4)).astype(np.uint8)


def _unpack_nibbles(packed: np.ndarray) -> np.ndarray:
    """Invert :func:`_pack_nibbles`."""
    lo = (packed & 0x0F).astype(np.int16) - 8
    hi = ((packed >> 4) & 0x0F).astype(np.int16) - 8
    out = np.empty(packed.shape[:-1] + (packed.shape[-1] * 2,), dtype=np.int16)
    out[..., 0::2] = lo
    out[..., 1::2] = hi
    return out


@register_compressor
class Zfp8Compressor(ZfpLikeCompressor):
    """The paper's operating point: ~8 bits per value, 4x reduction."""

    name = "zfp"

    def __init__(self):
        super().__init__(rate=8)


@register_compressor
class Zfp4Compressor(ZfpLikeCompressor):
    """Aggressive 4-bit variant for the compression ablation."""

    name = "zfp4"

    def __init__(self):
        super().__init__(rate=4)


@register_compressor
class Zfp16Compressor(ZfpLikeCompressor):
    """Conservative 16-bit variant (near-lossless, 2x reduction)."""

    name = "zfp16"

    def __init__(self):
        super().__init__(rate=16)
