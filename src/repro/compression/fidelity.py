"""Codec fidelity measurement on live training tensors.

The paper observes INT8's convergence damage at 500k-iteration scale
(Table 6); at CPU-reproduction scale the *final-metric* effect is
below seed noise, but its *mechanism* — per-tensor INT8 destroying the
signal of heavy-tailed tensors that block-scaled ZFP preserves — is
directly measurable.  This module quantifies it: signal-to-noise of a
codec roundtrip on the exact tensors the A2A carries (dispatched
activations forward, gradients backward).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..moe.layer import MoELayer
from ..nn.modules import Module
from .base import Compressor, get_compressor


def codec_snr_db(codec: Compressor, tensor: np.ndarray) -> float:
    """Roundtrip signal-to-noise ratio in dB (higher = more faithful)."""
    arr = np.asarray(tensor, dtype=np.float32)
    signal = float(np.sum(arr.astype(np.float64) ** 2))
    if signal == 0.0:
        return float("inf")
    noise = float(
        np.sum((codec.roundtrip(arr).astype(np.float64) - arr) ** 2)
    )
    if noise == 0.0:
        return float("inf")
    return 10.0 * math.log10(signal / noise)


def collect_a2a_tensors(model: Module) -> Dict[str, List[np.ndarray]]:
    """Tensors a trained model's MoE A2As would carry.

    Requires a forward and backward pass to have been run on the model
    (so gate outputs and parameter gradients are populated).  Returns
    ``activations`` (dispatched tokens — the forward payload) and
    ``gradients`` (expert parameter gradients — statistics stand-in
    for the backward payload, which carries gradients of the same
    layers).
    """
    activations: List[np.ndarray] = []
    gradients: List[np.ndarray] = []
    for module in model.modules():
        if not isinstance(module, MoELayer):
            continue
        if module.last_dispatched is not None:
            activations.append(module.last_dispatched)
        bank = module.experts
        for param in (bank.w1, bank.w2):
            if param.grad is not None:
                # One entry per expert, as when experts were separate
                # modules — SNR statistics are per-expert-weight.
                for e in range(bank.num_experts):
                    gradients.append(param.grad[e])
    return {"activations": activations, "gradients": gradients}


@dataclass
class FidelityReport:
    """Mean SNR per codec over a set of tensors."""

    snr_db: Dict[str, float]

    def render(self) -> str:
        """Text table of codec SNRs, best first."""
        lines = [f"{'codec':<8} {'SNR(dB)':>8}"]
        for name, value in sorted(
            self.snr_db.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"{name:<8} {value:>8.1f}")
        return "\n".join(lines)


def measure_fidelity(
    tensors: List[np.ndarray], codecs: List[str] = ("fp16", "zfp", "int8")
) -> FidelityReport:
    """Mean roundtrip SNR of each codec over ``tensors``."""
    if not tensors:
        raise ValueError("no tensors to measure")
    snr: Dict[str, float] = {}
    for name in codecs:
        codec = get_compressor(name)
        values = [codec_snr_db(codec, t) for t in tensors]
        finite = [v for v in values if math.isfinite(v)]
        snr[name] = sum(finite) / len(finite) if finite else float("inf")
    return FidelityReport(snr_db=snr)
