"""The no-op, FP16 and INT8 codecs of the paper's Table 6.

* ``none`` ships raw fp32 (the "MoE" row).
* ``fp16`` casts to IEEE half precision — 2x volume, near-lossless on
  activation magnitudes, "almost no impact on the model convergence"
  (paper Section 6.2).
* ``int8`` quantizes with a single per-tensor scale to signed 8-bit —
  4x volume, but the coarse global scale loses small-magnitude values,
  which is why the paper measures a clear perplexity regression for
  GPT2-Tiny-MoE with INT8.
"""

from __future__ import annotations

import numpy as np

from .base import CompressedTensor, Compressor, register_compressor


@register_compressor
class NoopCompressor(Compressor):
    """Identity codec: fp32 on the wire."""

    name = "none"
    bits_per_value = 32.0
    compress_passes = 0.0
    decompress_passes = 0.0

    def compress(self, tensor: np.ndarray) -> CompressedTensor:
        arr = np.ascontiguousarray(tensor, dtype=np.float32)
        return CompressedTensor(
            codec=self.name,
            shape=arr.shape,
            dtype=np.dtype(np.float32),
            payload={"data": arr},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        return compressed.payload["data"].reshape(compressed.shape)


@register_compressor
class Fp16Compressor(Compressor):
    """IEEE half-precision cast: 16 bits per value."""

    name = "fp16"
    bits_per_value = 16.0
    fixed_cost_s = 1.0e-4
    compress_bandwidth_bps = 150.0e9
    decompress_bandwidth_bps = 150.0e9

    def compress(self, tensor: np.ndarray) -> CompressedTensor:
        arr = np.asarray(tensor, dtype=np.float32)
        return CompressedTensor(
            codec=self.name,
            shape=arr.shape,
            dtype=np.dtype(np.float32),
            payload={"data": arr.astype(np.float16)},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        return compressed.payload["data"].astype(np.float32).reshape(
            compressed.shape
        )


@register_compressor
class Int8Compressor(Compressor):
    """Per-tensor symmetric 8-bit quantization.

    ``q = round(x / s)`` with ``s = max|x| / 127``; the single global
    scale makes the error proportional to the tensor's largest
    magnitude, so outliers blow away the resolution of everything
    else — the root cause of the accuracy loss in paper Table 6.
    """

    name = "int8"
    bits_per_value = 8.0
    fixed_cost_s = 1.5e-4
    compress_bandwidth_bps = 120.0e9
    decompress_bandwidth_bps = 140.0e9

    def compress(self, tensor: np.ndarray) -> CompressedTensor:
        arr = np.asarray(tensor, dtype=np.float32)
        peak = float(np.max(np.abs(arr))) if arr.size else 0.0
        scale = peak / 127.0 if peak > 0 else 1.0
        quant = np.clip(np.rint(arr / scale), -127, 127).astype(np.int8)
        return CompressedTensor(
            codec=self.name,
            shape=arr.shape,
            dtype=np.dtype(np.float32),
            payload={"data": quant},
            meta={"scale": scale},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        scale = compressed.meta["scale"]
        return (
            compressed.payload["data"].astype(np.float32) * scale
        ).reshape(compressed.shape)


@register_compressor
class Int8ChannelCompressor(Compressor):
    """Per-row (channel-wise) symmetric 8-bit quantization.

    The obvious fix for :class:`Int8Compressor`'s Table 6 failure: one
    scale per last-dimension row instead of one per tensor, so an
    outlier only ruins its own row's resolution.  Wire cost adds 4
    bytes per row (amortized to ~0 for transformer activations).
    Not in the paper — included as the kind of codec its AbsCompressor
    extension point exists to admit, and to show the failure is the
    scale granularity, not 8-bit width per se.
    """

    name = "int8c"
    bits_per_value = 8.25
    fixed_cost_s = 2.0e-4
    compress_bandwidth_bps = 100.0e9
    decompress_bandwidth_bps = 120.0e9

    def compress(self, tensor: np.ndarray) -> CompressedTensor:
        arr = np.asarray(tensor, dtype=np.float32)
        rows = arr.reshape(-1, arr.shape[-1]) if arr.ndim > 1 else arr.reshape(1, -1)
        peaks = np.abs(rows).max(axis=1)
        scales = np.where(peaks > 0, peaks / 127.0, 1.0).astype(np.float32)
        quant = np.clip(
            np.rint(rows / scales[:, None]), -127, 127
        ).astype(np.int8)
        return CompressedTensor(
            codec=self.name,
            shape=arr.shape,
            dtype=np.dtype(np.float32),
            payload={"data": quant, "scales": scales},
        )

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        quant = compressed.payload["data"].astype(np.float32)
        scales = compressed.payload["scales"]
        return (quant * scales[:, None]).reshape(compressed.shape)
