"""A2A payload compression (the paper's ``AbsCompressor`` plugins).

Real numpy codecs — roundtrips introduce the codec's genuine error, so
the Table 6 convergence study is honest — paired with cost models the
step-time scheduler uses to price the compress/decompress tasks.
"""

from .base import (
    CompressedTensor,
    Compressor,
    available_compressors,
    get_compressor,
    register_compressor,
)
from .fidelity import (
    FidelityReport,
    codec_snr_db,
    collect_a2a_tensors,
    measure_fidelity,
)
from .simple import (
    Fp16Compressor,
    Int8ChannelCompressor,
    Int8Compressor,
    NoopCompressor,
)
from .zfp import Zfp4Compressor, Zfp8Compressor, Zfp16Compressor, ZfpLikeCompressor

__all__ = [
    "CompressedTensor",
    "Compressor",
    "FidelityReport",
    "Fp16Compressor",
    "Int8ChannelCompressor",
    "codec_snr_db",
    "collect_a2a_tensors",
    "measure_fidelity",
    "Int8Compressor",
    "NoopCompressor",
    "Zfp4Compressor",
    "Zfp8Compressor",
    "Zfp16Compressor",
    "ZfpLikeCompressor",
    "available_compressors",
    "get_compressor",
    "register_compressor",
]
