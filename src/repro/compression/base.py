"""Compression abstraction (the paper's ``AbsCompressor``).

A compressor is *both* a real codec (numpy in / numpy out, so the
convergence experiments of Table 6 exercise genuine quantization
error) and a cost model (so the step-time simulator can price the
compress/decompress computing tasks the scheduler interleaves).

New codecs subclass :class:`Compressor`, implement ``compress`` /
``decompress`` (the paper's Listing 1 interface), and register with
:func:`register_compressor`; the ScheMoE scheduler then handles them
like any built-in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Type

import numpy as np

from ..cluster.costmodel import GpuModel


@dataclass
class CompressedTensor:
    """Opaque wire representation produced by a compressor.

    ``payload`` holds the codec-specific arrays; ``meta`` whatever the
    codec needs to invert them; ``nbytes`` is the wire size used for
    communication costing.
    """

    codec: str
    shape: tuple
    dtype: np.dtype
    payload: Dict[str, np.ndarray] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Total wire bytes of the payload."""
        return int(sum(arr.nbytes for arr in self.payload.values()))


class Compressor(ABC):
    """Base class of A2A payload codecs.

    ``bits_per_value`` is the average wire bits per fp32 element and
    determines the communication-volume reduction; ``compress_cost`` /
    ``decompress_cost`` price the computing tasks on a GPU model.
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: Average wire bits per input element (32 = no compression).
    bits_per_value: float = 32.0
    #: Memory passes over the data per compress kernel (fallback cost).
    compress_passes: float = 2.0
    #: Memory passes over the data per decompress kernel (fallback cost).
    decompress_passes: float = 2.0
    #: Fixed per-invocation cost (kernel pipeline launch, layout
    #: gather/scatter, stream sync).  Dominates on small payloads —
    #: the reason compression barely pays off on models with small A2A
    #: tensors (paper Sections 6.3 and 7).
    fixed_cost_s: float = 0.0
    #: Sustained codec throughput in input fp32 bytes/second; 0 falls
    #: back to the memory-pass model.
    compress_bandwidth_bps: float = 0.0
    decompress_bandwidth_bps: float = 0.0

    @abstractmethod
    def compress(self, tensor: np.ndarray) -> CompressedTensor:
        """Encode an fp32 tensor into its wire representation."""

    @abstractmethod
    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        """Invert :meth:`compress`; returns an fp32 tensor."""

    def roundtrip(self, tensor: np.ndarray) -> np.ndarray:
        """compress + decompress, as experienced by the receiving expert.

        Rejects non-finite input: a NaN/Inf activation would otherwise
        silently poison scale factors (INT8's global max, ZFP's block
        exponents) and corrupt every other value in the payload.
        """
        arr = np.asarray(tensor, dtype=np.float32)
        if not np.all(np.isfinite(arr)):
            raise ValueError(
                f"{self.name}: payload contains non-finite values; "
                "refusing to compress (scale factors would be poisoned)"
            )
        return self.decompress(self.compress(arr))

    @property
    def ratio(self) -> float:
        """Volume reduction factor over fp32."""
        return 32.0 / self.bits_per_value

    def compressed_bytes(self, nbytes: float) -> float:
        """Wire size of an fp32 payload of ``nbytes``."""
        return nbytes / self.ratio

    def compress_cost(self, gpu: GpuModel, nbytes: float) -> float:
        """Seconds of GPU time to compress an fp32 payload of ``nbytes``."""
        if self.compress_bandwidth_bps > 0:
            return self.fixed_cost_s + nbytes / self.compress_bandwidth_bps
        if self.compress_passes <= 0:
            return 0.0
        return self.fixed_cost_s + gpu.memory_time(self.compress_passes * nbytes)

    def decompress_cost(self, gpu: GpuModel, nbytes: float) -> float:
        """Seconds of GPU time to decompress back to ``nbytes`` of fp32."""
        if self.decompress_bandwidth_bps > 0:
            return self.fixed_cost_s + nbytes / self.decompress_bandwidth_bps
        if self.decompress_passes <= 0:
            return 0.0
        return self.fixed_cost_s + gpu.memory_time(
            self.decompress_passes * nbytes
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} {self.bits_per_value:g}b>"


_REGISTRY: Dict[str, Type[Compressor]] = {}


def register_compressor(cls: Type[Compressor]) -> Type[Compressor]:
    """Class decorator adding a codec to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"compressor {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_compressor(name: str) -> Compressor:
    """Instantiate a registered codec by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown compressor {name!r}; known: {known}")
    return cls()


def available_compressors() -> List[str]:
    """Names of all registered codecs."""
    return sorted(_REGISTRY)
