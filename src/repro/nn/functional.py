"""Differentiable neural-network primitives on :class:`Tensor`.

Everything the paper's models need: activations, normalization,
softmax/log-softmax (for gates and output heads), embedding lookup,
dropout and the cross-entropy loss.

Under :func:`~repro.nn.tensor.inference_mode` the hot primitives
(relu/gelu, softmax, layer_norm, embedding) skip their backward-only
intermediates and write results into the ambient arena's pooled
buffers via ``out=`` — same floating-point operations in the same
order, so outputs stay bit-identical to the training-mode forward on
finite inputs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, _arena_out, is_inference


def relu(x: Tensor) -> Tensor:
    """max(x, 0)."""
    if is_inference():
        # No backward, so no mask array; np.maximum matches the
        # masked-where result everywhere on finite inputs (both return
        # +0.0 for x = -0.0; they differ only on NaN, which where()
        # silently mapped to 0.0 and maximum propagates).
        return Tensor(
            np.maximum(x.data, np.float32(0.0), out=_arena_out(x.shape))
        )
    mask = x.data > 0

    def backward(g):
        return ((x, g * mask),)

    return x._make(np.where(mask, x.data, 0.0), (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    c = np.float32(np.sqrt(2.0 / np.pi))
    u = c * (x.data + 0.044715 * x.data**3)
    t = np.tanh(u, out=u) if is_inference() else np.tanh(u)
    if is_inference():
        # Same expression tree as below — ((0.5 * x) * (1 + t)) — with
        # the final product landing in a pooled buffer.
        return Tensor(
            np.multiply(0.5 * x.data, 1.0 + t, out=_arena_out(x.shape))
        )
    out = 0.5 * x.data * (1.0 + t)

    def backward(g):
        du = c * (1.0 + 3 * 0.044715 * x.data**2)
        dt = (1.0 - t * t) * du
        grad = 0.5 * (1.0 + t) + 0.5 * x.data * dt
        return ((x, g * grad),)

    return x._make(out, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    t = np.tanh(x.data)

    def backward(g):
        return ((x, g * (1.0 - t * t)),)

    return x._make(t, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic function."""
    s = 1.0 / (1.0 + np.exp(-x.data))

    def backward(g):
        return ((x, g * s * (1.0 - s)),)

    return x._make(s, (x,), backward)


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    e = np.exp(x.data)

    def backward(g):
        return ((x, g * e),)

    return x._make(e, (x,), backward)


def log(x: Tensor) -> Tensor:
    """Elementwise natural log."""

    def backward(g):
        return ((x, g / x.data),)

    return x._make(np.log(x.data), (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    if is_inference():
        # Same subtract / exp / divide sequence as below, fused into a
        # single pooled buffer (exp and the final divide run in place).
        s = np.subtract(
            x.data, x.data.max(axis=axis, keepdims=True), out=_arena_out(x.shape)
        )
        np.exp(s, out=s)
        np.divide(s, s.sum(axis=axis, keepdims=True), out=s)
        return Tensor(s)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    s = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * s).sum(axis=axis, keepdims=True)
        return ((x, s * (g - dot)),)

    return x._make(s, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - logsumexp
    if is_inference():
        # Skip the backward-only exp(out) materialization.
        return Tensor(out)
    s = np.exp(out)

    def backward(g):
        return ((x, g - s * g.sum(axis=axis, keepdims=True)),)

    return x._make(out, (x,), backward)


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)

    def backward(g):
        return ((x, g * keep),)

    return x._make(x.data * keep, (x,), backward)


def layer_norm(
    x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalization over the last dimension."""
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    if is_inference():
        # Identical op sequence to the training path — (x - mu) * inv,
        # * weight, + bias — chained in place through one pooled buffer.
        xhat = np.subtract(x.data, mu, out=_arena_out(x.shape))
        np.multiply(xhat, inv, out=xhat)
        np.multiply(xhat, weight.data, out=xhat)
        np.add(xhat, bias.data, out=xhat)
        return Tensor(xhat)
    xhat = (x.data - mu) * inv
    out = xhat * weight.data + bias.data

    def backward(g):
        d = x.data.shape[-1]
        gx_hat = g * weight.data
        gx = (
            inv
            / d
            * (
                d * gx_hat
                - gx_hat.sum(axis=-1, keepdims=True)
                - xhat * (gx_hat * xhat).sum(axis=-1, keepdims=True)
            )
        )
        axes = tuple(range(g.ndim - 1))
        return (
            (x, gx),
            (weight, (g * xhat).sum(axis=axes)),
            (bias, g.sum(axis=axes)),
        )

    if Tensor._needs_grad(x, weight, bias):
        return Tensor(out, _parents=(x, weight, bias), _backward=backward)
    return Tensor(out)


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add gradient."""
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"indices must be integers, got {idx.dtype}")
    if is_inference():
        out = _arena_out(idx.shape + weight.data.shape[1:])
        if out is not None:
            return Tensor(np.take(weight.data, idx, axis=0, out=out))
        return Tensor(weight.data[idx])

    def backward(g):
        grad = np.zeros_like(weight.data)
        np.add.at(grad, idx, g)
        return ((weight, grad),)

    return weight._make(weight.data[idx], (weight,), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean token-level cross entropy from raw logits.

    ``logits`` has shape (..., vocab); ``targets`` the matching integer
    shape.  ``ignore_index`` masks padding tokens out of the mean.
    """
    targets = np.asarray(targets)
    if targets.shape != logits.shape[:-1]:
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits "
            f"{logits.shape}"
        )
    flat_logits = logits.data.reshape(-1, logits.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        mask = flat_targets != ignore_index
    else:
        mask = np.ones_like(flat_targets, dtype=bool)
    count = max(int(mask.sum()), 1)
    safe_targets = np.where(mask, flat_targets, 0)

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logp = shifted - logsumexp
    rows = np.arange(flat_targets.shape[0])
    losses = -logp[rows, safe_targets] * mask
    value = losses.sum() / count

    def backward(g):
        probs = np.exp(logp)
        probs[rows, safe_targets] -= 1.0
        probs *= (mask / count)[:, None]
        return ((logits, (g * probs).reshape(logits.shape)),)

    if Tensor._needs_grad(logits):
        return Tensor(value, _parents=(logits,), _backward=backward)
    return Tensor(value)


def top_k_indices(scores: np.ndarray, k: int, axis: int = -1) -> np.ndarray:
    """Indices of the top ``k`` values along ``axis`` (descending).

    Operates on raw arrays: routing decisions are not differentiated
    through (only the gate *values* carry gradient, as in GShard).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > scores.shape[axis]:
        raise ValueError(
            f"k={k} exceeds dimension {scores.shape[axis]} along axis {axis}"
        )
    part = np.argpartition(-scores, k - 1, axis=axis)
    top = np.take(part, np.arange(k), axis=axis)
    top_vals = np.take_along_axis(scores, top, axis=axis)
    order = np.argsort(-top_vals, axis=axis, kind="stable")
    return np.take_along_axis(top, order, axis=axis)


def take_along_axis(x: Tensor, indices: np.ndarray, axis: int = -1) -> Tensor:
    """Differentiable ``np.take_along_axis``.

    Selects per-position entries along ``axis`` (the natural companion
    of :func:`top_k_indices`: pick each token's top-k gate values
    without materializing one-hot masks).  The backward pass
    scatter-adds the output gradient back to the selected positions.
    """
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"indices must be integers, got {idx.dtype}")
    if idx.ndim != x.ndim:
        raise ValueError(
            f"indices ndim {idx.ndim} must match tensor ndim {x.ndim}"
        )
    data = np.take_along_axis(x.data, idx, axis=axis)

    def backward(g):
        grad = np.zeros_like(x.data)
        np.add.at(
            grad,
            tuple(
                idx if a == (axis % x.ndim) else np.indices(idx.shape)[a]
                for a in range(x.ndim)
            ),
            g,
        )
        return ((x, grad),)

    return x._make(data, (x,), backward)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """Raw one-hot encoding (float32)."""
    idx = np.asarray(indices)
    out = np.zeros(idx.shape + (depth,), dtype=np.float32)
    np.put_along_axis(out, idx[..., None], 1.0, axis=-1)
    return out
