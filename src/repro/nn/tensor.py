"""Reverse-mode automatic differentiation over numpy arrays.

A small tape-based autograd engine in the spirit of PyTorch's, built
so the MoE layer's full training semantics — gating softmax, top-k
routing, dispatch/combine einsums, expert FFNs — differentiate exactly
like they would in the paper's PyTorch implementation.

Design: every operation returns a new :class:`Tensor` holding the
result, its parents and a closure that maps the output gradient to
parent-gradient contributions.  :meth:`Tensor.backward` topologically
sorts the tape and accumulates gradients into ``.grad`` of leaf
tensors with ``requires_grad=True``.

**Inference mode.**  :func:`inference_mode` is a process-wide context
(mirroring ``default_dispatch_mode`` / ``default_expert_impl``) under
which the tape is never built: :meth:`Tensor._needs_grad` — the single
guard every op consults before attaching parents and a backward
closure — reports False, so ``_parents`` stays empty, no closure is
retained, and every intermediate array is released the moment its
consumer has run.  Tensors produced inside the context are marked, and
calling :meth:`Tensor.backward` on one raises instead of silently
walking an empty tape.

**Arenas.**  :func:`use_arena` installs a step-scoped scratch
allocator (:class:`~repro.nn.buffer_pool.Arena`).  While *both* an
arena is active and inference mode is on, the large-output kernels
below (`matmul`, `gather`, `scatter_add`, `bmm`, `segment_matmul`,
`concatenate`, elementwise add/mul) write their results into pooled
buffers via ``out=`` instead of fresh allocations, so a steady-state
forward loop stops allocating entirely after its first step.  Arena
buffers are recycled at the caller's ``Arena.reset()`` — outputs are
valid until then and must be copied if they need to live longer.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

# -- inference mode + active arena (process-wide, context-managed) ------

_inference_mode = False
_active_arena = None

#: Below this element count an arena indirection costs more than the
#: allocation it saves, and tiny keys would crowd the pool's bounded
#: free lists — small results stay on the plain allocator.
_ARENA_MIN_ELEMS = 4096


@contextmanager
def inference_mode():
    """Forward-only execution: no autograd tape anywhere inside.

    Process-wide and re-entrant, in the style of
    ``repro.moe.layer.default_dispatch_mode``.  Inside the block every
    op short-circuits its tape construction (``_parents`` empty, no
    backward closure), so intermediates die as soon as their consumers
    run and a pure forward pass stops paying training-peak memory.
    Tensors created inside are marked: calling ``backward()`` on one
    raises a :class:`RuntimeError`.

    The flag is a module global read under the GIL — the overlap
    executor's worker threads observe the mode their driving forward
    set, but interleaving training and inference forwards from
    *different* threads is not supported.
    """
    global _inference_mode
    previous = _inference_mode
    _inference_mode = True
    try:
        yield
    finally:
        _inference_mode = previous


def is_inference() -> bool:
    """Whether an :func:`inference_mode` block is active."""
    return _inference_mode


@contextmanager
def use_arena(arena):
    """Install ``arena`` as the ambient scratch allocator.

    Only consulted while :func:`inference_mode` is also active (a
    training forward must keep its intermediates alive for backward,
    which is exactly what an arena's step-scoped recycling forbids).
    Nests: the previous arena is restored on exit.
    """
    global _active_arena
    previous = _active_arena
    _active_arena = arena
    try:
        yield arena
    finally:
        _active_arena = previous


def active_arena():
    """The ambient arena installed by :func:`use_arena`, or None."""
    return _active_arena


def _elems(shape) -> int:
    n = 1
    for s in shape:
        n *= int(s)
    return n


def scratch_empty(shape, dtype=np.float32) -> np.ndarray:
    """An uninitialized result buffer: pooled when an arena is active.

    Falls back to ``np.empty`` outside inference mode, without an
    arena, or for results too small to be worth pooling — callers use
    it unconditionally and get the right allocator either way.
    """
    if (
        _inference_mode
        and _active_arena is not None
        and _elems(shape) >= _ARENA_MIN_ELEMS
    ):
        return _active_arena.empty(shape, dtype)
    return np.empty(shape, dtype=dtype)


def scratch_zeros(shape, dtype=np.float32) -> np.ndarray:
    """Zero-filled variant of :func:`scratch_empty`."""
    if (
        _inference_mode
        and _active_arena is not None
        and _elems(shape) >= _ARENA_MIN_ELEMS
    ):
        return _active_arena.zeros(shape, dtype)
    return np.zeros(shape, dtype=dtype)


def _arena_out(shape) -> Optional[np.ndarray]:
    """A pooled ``out=`` target, or None when the op should allocate.

    Unlike :func:`scratch_empty` this returns None rather than a fresh
    array outside the pooled regime, so ops can keep their original
    (and occasionally cheaper) no-``out`` expression on that path.
    """
    if (
        _inference_mode
        and _active_arena is not None
        and _elems(shape) >= _ARENA_MIN_ELEMS
    ):
        return _active_arena.empty(shape, np.float32)
    return None


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum dimensions that were size-1 in the original.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape."""

    __slots__ = (
        "data", "grad", "requires_grad", "_backward", "_parents",
        "_inference",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ):
        if isinstance(data, Tensor):
            raise TypeError("wrap raw arrays, not Tensors")
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._parents = _parents
        self._backward = _backward
        # Tensors born inside inference_mode() carry no tape by
        # construction; the mark turns a later backward() into a clear
        # error instead of a silent no-op walk of an empty graph.
        self._inference = _inference_mode

    # -- basic introspection -------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """A view with the tape cut."""
        out = Tensor(self.data)
        out.requires_grad = False
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad})"

    # -- tape management -----------------------------------------------
    @staticmethod
    def _needs_grad(*tensors: "Tensor") -> bool:
        if _inference_mode:
            # The single choke point every op consults before attaching
            # parents and a backward closure: under inference_mode()
            # nothing ever needs grad, so no tape exists anywhere.
            return False
        return any(t.requires_grad or t._parents for t in tensors)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode AD from this tensor.

        ``grad`` defaults to ones (only valid for scalar outputs this
        is the conventional seed of 1.0).
        """
        if self._inference:
            raise RuntimeError(
                "this tensor was produced under inference_mode(): no "
                "autograd tape was recorded, so there is nothing to "
                "differentiate.  Re-run the forward outside the "
                "inference_mode() block to train."
            )
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} != tensor shape {self.shape}"
            )

        order: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            seen.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in seen:
                        seen.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self)

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate(node_grad)
            if node._backward is None:
                continue
            for parent, pgrad in node._backward(node_grad):
                if pgrad is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # -- arithmetic ------------------------------------------------------
    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)

        def backward(g):
            return (
                (self, _unbroadcast(g, self.shape)),
                (other, _unbroadcast(g, other.shape)),
            )

        if _inference_mode:
            data = np.add(
                self.data,
                other.data,
                out=_arena_out(
                    np.broadcast_shapes(self.data.shape, other.data.shape)
                ),
            )
        else:
            data = self.data + other.data
        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g):
            return ((self, -g),)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)

        def backward(g):
            return (
                (self, _unbroadcast(g * other.data, self.shape)),
                (other, _unbroadcast(g * self.data, other.shape)),
            )

        if _inference_mode:
            data = np.multiply(
                self.data,
                other.data,
                out=_arena_out(
                    np.broadcast_shapes(self.data.shape, other.data.shape)
                ),
            )
        else:
            data = self.data * other.data
        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)

        def backward(g):
            return (
                (self, _unbroadcast(g / other.data, self.shape)),
                (
                    other,
                    _unbroadcast(
                        -g * self.data / (other.data * other.data), other.shape
                    ),
                ),
            )

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(g):
            return ((self, g * exponent * self.data ** (exponent - 1)),)

        return self._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._lift(other)

        def backward(g):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return ((self, g * b), (other, g * a))
            if a.ndim == 1:
                ga = g @ np.swapaxes(b, -1, -2)
                gb = np.outer(a, g) if b.ndim == 2 else None
                if gb is None:
                    gb = a[..., :, None] * g[..., None, :]
                return ((self, _unbroadcast(ga, a.shape)),
                        (other, _unbroadcast(gb, b.shape)))
            if b.ndim == 1:
                ga = g[..., :, None] * b[None, :]
                gb = np.swapaxes(a, -1, -2) @ g
                return ((self, _unbroadcast(ga, a.shape)),
                        (other, _unbroadcast(gb, b.shape)))
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return ((self, _unbroadcast(ga, a.shape)),
                    (other, _unbroadcast(gb, b.shape)))

        a, b = self.data, other.data
        if _inference_mode and a.ndim >= 2 and b.ndim >= 2:
            shape = np.broadcast_shapes(a.shape[:-2], b.shape[:-2]) + (
                a.shape[-2], b.shape[-1],
            )
            data = np.matmul(a, b, out=_arena_out(shape))
        else:
            data = a @ b
        return self._make(data, (self, other), backward)

    # -- reductions ------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(g):
            grad = g
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            return ((self, np.broadcast_to(grad, self.shape).copy()),)

        return self._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            expanded = out_data
            grad = g
            if axis is not None and not keepdims:
                expanded = np.expand_dims(out_data, axis)
                grad = np.expand_dims(g, axis)
            mask = (self.data == expanded).astype(np.float32)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            return ((self, mask * grad),)

        return self._make(out_data, (self,), backward)

    # -- shape ops --------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(g):
            return ((self, g.reshape(self.shape)),)

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def backward(g):
            return ((self, g.transpose(inverse)),)

        return self._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(g):
            return ((self, g.swapaxes(a, b)),)

        return self._make(self.data.swapaxes(a, b), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(g):
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, g)
            return ((self, grad),)

        return self._make(self.data[index], (self,), backward)

    # -- constructor helper ------------------------------------------------
    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable,
    ) -> "Tensor":
        if Tensor._needs_grad(*parents):
            return Tensor(data, _parents=parents, _backward=backward)
        return Tensor(data)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [Tensor._lift(t) for t in tensors]
    arrays = [t.data for t in tensors]
    if _inference_mode and arrays:
        shape = list(arrays[0].shape)
        shape[axis] = sum(a.shape[axis] for a in arrays)
        data = np.concatenate(arrays, axis=axis, out=_arena_out(tuple(shape)))
    else:
        data = np.concatenate(arrays, axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        slices = []
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            slices.append((tensor, g[tuple(index)]))
        return tuple(slices)

    if Tensor._needs_grad(*tensors):
        return Tensor(data, _parents=tuple(tensors), _backward=backward)
    return Tensor(data)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        parts = np.split(g, len(tensors), axis=axis)
        return tuple(
            (tensor, np.squeeze(part, axis=axis))
            for tensor, part in zip(tensors, parts)
        )

    if Tensor._needs_grad(*tensors):
        return Tensor(data, _parents=tuple(tensors), _backward=backward)
    return Tensor(data)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection: ``condition`` is a raw boolean array."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    cond = np.asarray(condition)
    data = np.where(cond, a.data, b.data)

    def backward(g):
        return (
            (a, _unbroadcast(np.where(cond, g, 0.0), a.shape)),
            (b, _unbroadcast(np.where(cond, 0.0, g), b.shape)),
        )

    if Tensor._needs_grad(a, b):
        return Tensor(data, _parents=(a, b), _backward=backward)
    return Tensor(data)


def gather(x: Tensor, indices: np.ndarray, axis: int = 0) -> Tensor:
    """Differentiable row gather: ``x[indices]`` along ``axis``.

    ``indices`` is a raw integer array (routing decisions are not
    differentiated); the backward pass scatter-adds the output
    gradient back into the gathered rows, so an index appearing twice
    accumulates both contributions.  This is the forward half of the
    sparse MoE dispatch path — an ``O(N * M)`` data movement instead
    of the dense einsum's ``O(T * E * C * M)`` contraction.
    """
    x = Tensor._lift(x)
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"indices must be integers, got {idx.dtype}")
    if x.ndim == 0:
        raise ValueError("cannot gather from a 0-d tensor")
    axis = axis % x.ndim
    if _inference_mode and axis == 0:
        data = np.take(
            x.data, idx, axis=0,
            out=_arena_out(idx.shape + x.data.shape[1:]),
        )
    else:
        data = np.take(x.data, idx, axis=axis)

    def backward(g):
        grad = np.zeros_like(x.data)
        if axis == 0:
            np.add.at(grad, idx, g)
        else:
            moved = np.moveaxis(grad, axis, 0)
            np.add.at(moved, idx, np.moveaxis(g, axis, 0))
        return ((x, grad),)

    return x._make(data, (x,), backward)


#: Deepest index multiplicity the padded round-sum scatter handles:
#: its (rows, depth, ...) staging buffer and its depth sequential adds
#: both scale with the deepest duplicate, so past ~top-k depths the
#: buffered ``np.add.at`` is the better loser.  Expert-choice combines
#: (a token selected by up to E experts) fall back there.
_SCATTER_ROUNDS_MAX_DEPTH = 8


def _scatter_add_inference(
    out: np.ndarray, idx: np.ndarray, values: np.ndarray
) -> None:
    """``out[idx] += values`` with duplicate indices, vectorized.

    ``np.add.at`` is the correctness workhorse of the accumulating
    scatter but cannot vectorize (any element might collide with any
    other), which makes it the single most expensive non-GEMM op of
    the MoE combine.  This version exploits what the router guarantees
    — each destination token receives at most top-k contributions — by
    splitting the input into *occurrence rounds*: element n's round is
    how many earlier elements target the same destination.  Within a
    round destinations are unique by construction, so each round is
    one fancy-index scatter; summing the per-round planes in round
    order reproduces ``np.add.at``'s sequential order exactly.

    Bit-identical to ``np.add.at(out, idx, values)`` on the zeroed
    ``out`` the caller passes: every destination accumulates its
    contributions in input order starting from +0.0, and the trailing
    +0.0 pads (destinations with fewer than ``depth`` contributions)
    are exact identities — a partial sum seeded from +0.0 can never be
    -0.0, the only value ``+ 0.0`` would alter.

    Forward-only (hence the name): the padded staging buffer comes
    from the ambient arena and the adjoint bookkeeping of
    :func:`scatter_add`'s tape is not wired through it.
    """
    if idx.size == 0:
        return
    counts = np.bincount(idx, minlength=out.shape[0])
    depth = int(counts.max(initial=0))
    if depth <= 1:
        # No duplicates at all: the compound fancy-index add is safe
        # and fully vectorized.
        out[idx] += values
        return
    if depth > _SCATTER_ROUNDS_MAX_DEPTH:
        np.add.at(out, idx, values)
        return
    order = np.argsort(idx, kind="stable")
    starts = np.concatenate([[0], np.cumsum(counts[:-1])])
    occ = np.empty(idx.shape[0], dtype=np.int64)
    occ[order] = np.arange(idx.shape[0], dtype=np.int64) - starts[idx[order]]
    pad = scratch_zeros((out.shape[0], depth) + values.shape[1:], values.dtype)
    pad[idx, occ] = values
    for r in range(depth):
        out += pad[:, r]


def scatter_add(
    values: Tensor,
    indices: np.ndarray,
    num_rows: int,
    unique_indices: bool = False,
) -> Tensor:
    """Differentiable scatter-add of rows into a zero tensor.

    ``out[indices[n]] += values[n]`` for every leading-position ``n``;
    the result has shape ``(num_rows,) + values.shape[1:]``.  Rows of
    the output not named by any index stay zero (capacity padding in
    the MoE dispatch).  The backward pass is a gather of the output
    gradient at the same indices — the exact adjoint.

    ``unique_indices`` is a caller promise that no index repeats, in
    which case the accumulating ``np.add.at`` (slow: it cannot
    vectorize because of potential collisions) is replaced by a plain
    fancy-index store.  MoE dispatch destinations
    (``expert * capacity + slot``) hold at most one token each, so the
    hot path qualifies.  The promise is trusted, not checked: with
    duplicate indices the fast path keeps only the last write.
    """
    values = Tensor._lift(values)
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"indices must be integers, got {idx.dtype}")
    if idx.ndim != 1 or values.ndim < 1 or idx.shape[0] != values.shape[0]:
        raise ValueError(
            f"indices {idx.shape} must be 1-d and match the leading "
            f"dimension of values {values.shape}"
        )
    if num_rows < 0:
        raise ValueError(f"num_rows must be >= 0, got {num_rows}")
    if idx.size and (idx.min() < 0 or idx.max() >= num_rows):
        raise IndexError(
            f"indices out of range for {num_rows} rows: "
            f"[{idx.min()}, {idx.max()}]"
        )
    out = scratch_zeros((num_rows,) + values.shape[1:], np.float32)
    if unique_indices:
        out[idx] = values.data
    elif _inference_mode:
        _scatter_add_inference(out, idx, values.data)
    else:
        np.add.at(out, idx, values.data)

    def backward(g):
        return ((values, g[idx]),)

    return values._make(out, (values,), backward)


def bmm(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable batched 3D matmul: ``(B, n, k) @ (B, k, m)``.

    One tape node for the whole bank of B independent GEMMs — this is
    what lets the MoE expert bank execute all E experts in two calls
    instead of an E-iteration Python loop (E tape nodes, E closures, E
    gradient allocations).  Shapes are strict: both operands must be
    3-d with matching batch and inner dimensions — no broadcasting —
    so the backward pass is two plain batched matmuls with no
    unbroadcast bookkeeping:

    * ``grad_a = g @ b^T``  (batched over B)
    * ``grad_b = a^T @ g``  (batched over B)

    Numerically identical (bit-for-bit) to stacking the per-slice 2-d
    ``a[i] @ b[i]`` products: numpy dispatches the same GEMM kernel
    per batch slice.
    """
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    if a.ndim != 3 or b.ndim != 3:
        raise ValueError(
            f"bmm expects 3-d operands, got {a.shape} and {b.shape}"
        )
    if a.shape[0] != b.shape[0]:
        raise ValueError(
            f"bmm batch dimensions differ: {a.shape[0]} vs {b.shape[0]}"
        )
    if a.shape[2] != b.shape[1]:
        raise ValueError(
            f"bmm inner dimensions differ: {a.shape} @ {b.shape}"
        )
    data = np.matmul(
        a.data,
        b.data,
        out=_arena_out((a.shape[0], a.shape[1], b.shape[2]))
        if _inference_mode
        else None,
    )

    def backward(g):
        return (
            (a, np.matmul(g, np.swapaxes(b.data, -1, -2))),
            (b, np.matmul(np.swapaxes(a.data, -1, -2), g)),
        )

    if Tensor._needs_grad(a, b):
        return Tensor(data, _parents=(a, b), _backward=backward)
    return Tensor(data)


#: Largest per-segment LHS block (rows * K elements) that still gains
#: from the stacked-GEMM bucket path: beyond ~16 KB of float32 the
#: fancy-index gather costs more than the per-call overhead it saves
#: (measured on the bench shapes; 2-d BLAS on a contiguous slice wins).
_BUCKET_ROW_ELEMS = 4096

#: Environment variable overriding :data:`_BUCKET_ROW_ELEMS` — the
#: threshold was measured on a single core, so it can be revisited on
#: other hardware without a code edit.
BUCKET_ROW_ELEMS_ENV = "REPRO_BUCKET_ROW_ELEMS"


def bucket_row_elems() -> int:
    """The bucketing threshold: ``REPRO_BUCKET_ROW_ELEMS`` or the default.

    Read per :func:`segment_matmul` call so a change takes effect
    immediately.  An unparseable or negative override raises instead
    of silently falling back — a typo'd knob must not quietly move
    every segment on or off the bucket path (``0`` is valid and
    disables bucketing; a huge value buckets everything).
    """
    env = os.environ.get(BUCKET_ROW_ELEMS_ENV)
    if env is None:
        return _BUCKET_ROW_ELEMS
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{BUCKET_ROW_ELEMS_ENV} must be an integer element "
            f"count, got {env!r}"
        ) from None
    if value < 0:
        raise ValueError(
            f"{BUCKET_ROW_ELEMS_ENV} must be >= 0, got {value}"
        )
    return value


def segment_matmul(
    x: Tensor,
    weight: Tensor,
    segment_counts: np.ndarray,
    bucketed: bool = True,
) -> Tensor:
    """Differentiable per-segment matmul against a stacked weight bank.

    ``x`` is ``(N, K)`` whose rows are grouped into E contiguous
    segments (``segment_counts[e]`` rows each, summing to N) and
    ``weight`` a stacked ``(E, K, J)`` bank; segment e's rows multiply
    ``weight[e]``:

    ``out[start_e : start_e + counts[e]] = x[same] @ weight[e]``

    This is the capacity-free MoE expert step: routed token rows
    sorted by expert flow through each expert's weight without ever
    materializing the (E, C, M) capacity buffer.  The forward loops
    over *occupied* segments only (``counts[e] == 0`` costs nothing —
    an expert that received no tokens is simply skipped, where the
    capacity formulation would still carry its C padding slots), and
    each segment GEMM is bit-identical to the per-expert reference
    ``x_seg @ weight[e]``.

    The backward accumulates per-segment gradients into the stacked
    bank with the exact adjoints of each slice —

    * ``grad_x[seg_e] = g[seg_e] @ weight[e]^T``
    * ``grad_w[e]     = x[seg_e]^T @ g[seg_e]``  (zero for empty
      segments)

    — so one tape node covers the whole bank, like :func:`bmm`, but
    over ragged row groups instead of a fixed capacity dimension.

    With ``bucketed=True`` (the default), occupied *small* segments of
    equal length are batched into one stacked ``np.matmul`` per size
    bucket — forward and backward — so balanced large-E routing (many
    small equal segments, the worst case for per-segment Python
    dispatch) pays one GEMM call per distinct size instead of one per
    expert.  Batched matmul computes each slice exactly as the
    corresponding 2-d product (see :func:`bmm`), so results are
    bit-identical to the unbucketed loop, which ``bucketed=False``
    keeps selectable as the parity reference.  Bucketing only pays
    when the per-call dispatch overhead it removes exceeds the row
    gather it adds, i.e. for segments whose LHS block is small —
    segments above the :func:`bucket_row_elems` threshold
    (``_BUCKET_ROW_ELEMS``, overridable via the
    ``REPRO_BUCKET_ROW_ELEMS`` environment variable; see
    :func:`bucket_row_elems`) and singleton buckets, which have
    nothing to batch, stay on the plain per-segment GEMM, where 2-d
    BLAS on a contiguous slice is already optimal.
    """
    x = Tensor._lift(x)
    weight = Tensor._lift(weight)
    counts = np.asarray(segment_counts)
    if not np.issubdtype(counts.dtype, np.integer):
        raise TypeError(f"segment_counts must be integers, got {counts.dtype}")
    if x.ndim != 2 or weight.ndim != 3:
        raise ValueError(
            f"segment_matmul expects (N, K) x and (E, K, J) weight, "
            f"got {x.shape} and {weight.shape}"
        )
    if counts.ndim != 1 or counts.shape[0] != weight.shape[0]:
        raise ValueError(
            f"segment_counts {counts.shape} must be ({weight.shape[0]},)"
        )
    if counts.size and counts.min() < 0:
        raise ValueError("segment_counts must be >= 0")
    if x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"inner dimensions differ: {x.shape} @ {weight.shape}"
        )
    if int(counts.sum()) != x.shape[0]:
        raise ValueError(
            f"segment_counts sum {int(counts.sum())} != rows {x.shape[0]}"
        )
    offsets = np.concatenate([[0], np.cumsum(counts, dtype=np.int64)])
    occupied = np.nonzero(counts)[0]

    # Size buckets: small segments of equal length run as one stacked
    # GEMM.  ``batched`` holds (experts, (B, L) row indices) per
    # multi-member bucket; ``singles`` keeps the rest on the plain
    # per-segment path.
    batched = []
    singles = occupied
    if bucketed and occupied.size:
        threshold = bucket_row_elems()
        by_size = {}
        for e in occupied:
            by_size.setdefault(int(counts[e]), []).append(int(e))
        singles = []
        for length, experts in sorted(by_size.items()):
            if len(experts) == 1 or length * x.shape[1] > threshold:
                singles.extend(experts)
                continue
            experts = np.asarray(experts)
            rows = offsets[experts][:, None] + np.arange(length)
            batched.append((experts, rows))
        singles = np.asarray(sorted(singles), dtype=np.int64)

    data = scratch_empty((x.shape[0], weight.shape[2]), np.float32)
    for experts, rows in batched:
        data[rows] = np.matmul(x.data[rows], weight.data[experts])
    for e in singles:
        lo, hi = offsets[e], offsets[e + 1]
        np.matmul(x.data[lo:hi], weight.data[e], out=data[lo:hi])

    def backward(g):
        grad_x = np.empty_like(x.data)
        grad_w = np.zeros_like(weight.data)
        for experts, rows in batched:
            g_b = g[rows]
            grad_x[rows] = np.matmul(
                g_b, np.swapaxes(weight.data[experts], -1, -2)
            )
            grad_w[experts] = np.matmul(
                np.swapaxes(x.data[rows], -1, -2), g_b
            )
        for e in singles:
            lo, hi = offsets[e], offsets[e + 1]
            np.matmul(g[lo:hi], weight.data[e].T, out=grad_x[lo:hi])
            np.matmul(x.data[lo:hi].T, g[lo:hi], out=grad_w[e])
        return ((x, grad_x), (weight, grad_w))

    if Tensor._needs_grad(x, weight):
        return Tensor(data, _parents=(x, weight), _backward=backward)
    return Tensor(data)


def einsum(subscripts: str, *tensors: Tensor) -> Tensor:
    """Differentiable einsum for explicit (``->``) subscripts.

    This is the workhorse of the MoE dispatch/combine path (GShard
    formulates both as einsums); gradients are computed by rewriting
    the einsum with the output and the other operands swapped.
    """
    tensors = [Tensor._lift(t) for t in tensors]
    if "->" not in subscripts:
        raise ValueError("einsum requires explicit '->' output subscripts")
    inputs, output = subscripts.split("->")
    terms = inputs.split(",")
    if len(terms) != len(tensors):
        raise ValueError(
            f"einsum got {len(tensors)} operands for {len(terms)} terms"
        )
    data = np.einsum(subscripts, *[t.data for t in tensors])

    def backward(g):
        grads = []
        for i, tensor in enumerate(tensors):
            other_terms = [terms[j] for j in range(len(terms)) if j != i]
            other_data = [tensors[j].data for j in range(len(terms)) if j != i]
            sub = ",".join([output] + other_terms) + "->" + terms[i]
            # Dimensions of terms[i] absent from output and the other
            # operands (summed-out free dims) need broadcasting; they
            # cannot appear for our use cases, so einsum suffices.
            grad = np.einsum(sub, g, *other_data)
            grads.append((tensor, grad))
        return tuple(grads)

    if Tensor._needs_grad(*tensors):
        return Tensor(data, _parents=tuple(tensors), _backward=backward)
    return Tensor(data)
