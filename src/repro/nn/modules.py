"""Neural-network module system (PyTorch-style, numpy-backed).

:class:`Module` provides parameter discovery by attribute walking, a
``training`` flag propagated through the tree, and state-dict
round-tripping; the concrete layers cover everything the paper's
transformer MoE models are assembled from.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from .buffer_pool import Arena
from .init import normal, xavier_uniform
from .tensor import Tensor, inference_mode, use_arena


class Module:
    """Base class with parameter discovery and train/eval modes."""

    def __init__(self):
        self.training = True

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward_inference(self, *args, **kwargs):
        """Run :meth:`forward` on the autograd-free fast path.

        Enters :func:`~repro.nn.tensor.inference_mode` (no backward
        closures, no ``_parents``) with a module-owned
        :class:`~repro.nn.buffer_pool.Arena` installed as the ambient
        scratch allocator, so large intermediates draw from a pooled
        free list instead of the heap.  The arena is reset at the
        *start* of each call: outputs of call N stay readable until
        call N+1 begins, after which their storage is recycled — copy
        anything that must live longer.

        The module is switched to ``eval()`` for the duration (and
        restored), so dropout is off; outputs are bit-identical to an
        ``eval()``-mode training-tape forward.
        """
        arena = getattr(self, "_inference_arena", None)
        if arena is None:
            arena = self._inference_arena = Arena()
        was_training = self.training
        if was_training:
            self.eval()
        arena.reset()
        try:
            with inference_mode(), use_arena(arena):
                return self.forward(*args, **kwargs)
        finally:
            if was_training:
                self.train()

    # -- tree walking -----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """(name, tensor) for every trainable parameter in the tree."""
        for key, value in vars(self).items():
            name = f"{prefix}{key}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{name}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{name}.{i}", item

    def parameters(self) -> List[Tensor]:
        """All trainable parameters."""
        return [p for _name, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """This module and all descendants."""
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # -- modes -------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dict ----------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays saved by :meth:`state_dict` (strict)."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, array in state.items():
            if params[name].data.shape != array.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{params[name].data.shape} vs {array.shape}"
                )
            params[name].data = array.astype(np.float32).copy()


class Parameter(Tensor):
    """A tensor registered as trainable."""

    def __init__(self, data: np.ndarray):
        super().__init__(data, requires_grad=True)


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(normal(rng, (num_embeddings, dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=np.float32))
        self.bias = Parameter(np.zeros(dim, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, self.eps)


class Dropout(Module):
    """Inverted dropout with its own seeded stream."""

    def __init__(self, p: float, rng: np.random.Generator):
        super().__init__()
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class FeedForward(Module):
    """The transformer fflayer: Linear -> activation -> Linear.

    This is exactly the "expert" of the paper's MoE layer (Section
    2.1): an MoE layer replaces one FeedForward with E of them plus a
    gate.
    """

    def __init__(
        self,
        model_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        activation: str = "relu",
    ):
        super().__init__()
        self.fc1 = Linear(model_dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, model_dim, rng)
        if activation not in ("relu", "gelu"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        h = self.fc1(x)
        h = F.relu(h) if self.activation == "relu" else F.gelu(h)
        return self.fc2(h)


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention.

    Supports self-attention (``context=None``) with optional causal
    masking, and cross-attention for the encoder-decoder model.
    """

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        rng: np.random.Generator,
        causal: bool = False,
    ):
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(
                f"model_dim {model_dim} not divisible by heads {num_heads}"
            )
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.causal = causal
        self.q_proj = Linear(model_dim, model_dim, rng)
        self.k_proj = Linear(model_dim, model_dim, rng)
        self.v_proj = Linear(model_dim, model_dim, rng)
        self.out_proj = Linear(model_dim, model_dim, rng)

    def _split(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(
        self,
        x: Tensor,
        context: Optional[Tensor] = None,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        source = context if context is not None else x
        q = self._split(self.q_proj(x))
        k = self._split(self.k_proj(source))
        v = self._split(self.v_proj(source))

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))
        bias = np.zeros(scores.shape[-2:], dtype=np.float32)
        if self.causal and context is None:
            t_q, t_k = scores.shape[-2], scores.shape[-1]
            bias = np.where(
                np.tril(np.ones((t_q, t_k), dtype=bool)), 0.0, -1e9
            ).astype(np.float32)
        if mask is not None:
            # mask: (batch, t_k) boolean, True = attend.
            pad = np.where(mask[:, None, None, :], 0.0, -1e9).astype(np.float32)
            scores = scores + Tensor(pad)
        scores = scores + Tensor(bias)
        attn = F.softmax(scores, axis=-1)
        out = attn @ v
        b, h, t, d = out.shape
        out = out.transpose(0, 2, 1, 3).reshape(b, t, h * d)
        return self.out_proj(out)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x


class ModuleList(Module):
    """A bare container that registers its children."""

    def __init__(self, modules: Sequence[Module] = ()):
        super().__init__()
        self.items = list(modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def append(self, module: Module) -> None:
        self.items.append(module)

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container, not callable")
