"""Numpy autograd and neural-network substrate.

A from-scratch replacement for the PyTorch layer the paper builds on:
reverse-mode AD (:mod:`~repro.nn.tensor`), differentiable primitives
(:mod:`~repro.nn.functional`), modules (:mod:`~repro.nn.modules`) and
optimizers (:mod:`~repro.nn.optim`).  All convergence experiments run
on this substrate for real.
"""

from . import functional
from .buffer_pool import Arena, BufferPool
from .init import kaiming_normal, normal, xavier_uniform
from .modules import (
    Dropout,
    Embedding,
    FeedForward,
    Linear,
    LayerNorm,
    Module,
    ModuleList,
    MultiHeadAttention,
    Parameter,
    Sequential,
)
from .optim import SGD, Adam, Optimizer, WarmupInverseSqrt, clip_grad_norm
from .serialization import (
    checkpoint_placement,
    load_checkpoint,
    load_extra_arrays,
    merge_expert_shards,
    save_checkpoint,
    shard_expert_state,
    stack_expert_state,
    unstack_expert_state,
)
from .tensor import (
    Tensor,
    active_arena,
    bmm,
    concatenate,
    einsum,
    gather,
    inference_mode,
    is_inference,
    scatter_add,
    scratch_empty,
    scratch_zeros,
    segment_matmul,
    stack,
    use_arena,
    where,
)

__all__ = [
    "Adam",
    "Arena",
    "BufferPool",
    "Dropout",
    "Embedding",
    "FeedForward",
    "LayerNorm",
    "Linear",
    "Module",
    "ModuleList",
    "MultiHeadAttention",
    "Optimizer",
    "Parameter",
    "SGD",
    "Sequential",
    "Tensor",
    "active_arena",
    "bmm",
    "WarmupInverseSqrt",
    "clip_grad_norm",
    "concatenate",
    "einsum",
    "functional",
    "gather",
    "inference_mode",
    "is_inference",
    "kaiming_normal",
    "checkpoint_placement",
    "load_checkpoint",
    "load_extra_arrays",
    "merge_expert_shards",
    "normal",
    "save_checkpoint",
    "shard_expert_state",
    "scatter_add",
    "scratch_empty",
    "scratch_zeros",
    "segment_matmul",
    "stack",
    "use_arena",
    "stack_expert_state",
    "unstack_expert_state",
    "where",
    "xavier_uniform",
]
