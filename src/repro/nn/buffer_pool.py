"""A reusable pool of numpy buffers for the pipelined dispatch path.

The chunked expert-parallel executor moves one flat ``(n, M)`` payload
per (source, destination, chunk) triple through each all-to-all — with
``r`` chunks over ``P`` workers that is up to ``2 r P^2`` short-lived
arrays per forward pass.  Allocating them fresh every chunk churns the
allocator on exactly the path we are trying to overlap; the real
system (like any NCCL-based A2A) reuses pinned staging buffers
instead.  :class:`BufferPool` is that staging area: ``acquire`` hands
out a cached array of the requested shape/dtype when one is free and
allocates otherwise, ``release`` returns it for reuse.

The pool is thread-safe — the overlap executor acquires from the
communication stream while the computing stream releases buffers it
has drained — and deliberately dumb: exact (shape, dtype) matching,
bounded per-key free list, no zeroing (callers always overwrite the
full buffer via ``np.copyto``-style writes before reading).

:class:`Arena` layers a *step-scoped* discipline on top: every buffer
it hands out stays checked out until :meth:`Arena.reset`, which
returns the whole working set to the pool in one shot.  That is the
allocation pattern of a forward-only inference step — all of one
step's intermediates are simultaneously "in flight" until the step's
output is produced, then the entire set can be recycled for the next
step (see ``repro.nn.tensor.inference_mode``).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Arena", "BufferPool"]


class BufferPool:
    """Thread-safe free-list of numpy arrays keyed by (shape, dtype).

    ``max_per_key`` bounds how many idle buffers of one shape are
    retained; extra releases drop the array back to the allocator so a
    pathological shape mix cannot grow the pool without bound.

    The pool keeps running counters — ``hits`` / ``misses`` (acquires
    served from the free list vs. fresh allocations), ``bytes_held``
    (bytes sitting idle in the free lists right now) and
    ``bytes_allocated`` (total bytes the pool has ever allocated on
    misses) — exposed as a :meth:`stats` snapshot so benchmarks and
    tests can assert reuse instead of guessing at it: a steady-state
    inference loop should stop accumulating misses after its first
    step.
    """

    def __init__(self, max_per_key: int = 16):
        if max_per_key < 1:
            raise ValueError(f"max_per_key must be >= 1, got {max_per_key}")
        self.max_per_key = max_per_key
        self._free: Dict[Tuple[tuple, np.dtype], List[np.ndarray]] = {}
        self._lock = threading.Lock()
        #: Buffers served from the free list / fresh allocations.
        self.hits = 0
        self.misses = 0
        self._bytes_held = 0
        self._bytes_allocated = 0

    def _key(self, shape, dtype) -> Tuple[tuple, np.dtype]:
        return (tuple(int(s) for s in shape), np.dtype(dtype))

    def acquire(self, shape, dtype=np.float32) -> np.ndarray:
        """A writable array of exactly ``shape``/``dtype`` (uninitialized)."""
        key = self._key(shape, dtype)
        nbytes = int(np.prod(key[0], dtype=np.int64)) * key[1].itemsize
        with self._lock:
            free = self._free.get(key)
            if free:
                self.hits += 1
                self._bytes_held -= nbytes
                return free.pop()
            self.misses += 1
            self._bytes_allocated += nbytes
        return np.empty(key[0], dtype=key[1])

    def take_copy(self, array: np.ndarray) -> np.ndarray:
        """A pooled buffer holding a copy of ``array`` — the A2A handoff.

        This is the memcpy into the staging buffer: the caller keeps no
        obligation to ``array`` afterwards, and the returned buffer goes
        back via :meth:`release` once the receiver has drained it.
        """
        buf = self.acquire(array.shape, array.dtype)
        np.copyto(buf, array)
        return buf

    def release(self, array: np.ndarray) -> None:
        """Return a buffer for reuse.  Only pass arrays you own.

        The pool only ever hands out freshly allocated, writable,
        C-contiguous arrays that own their data — and it only takes
        such arrays back.  Accepting anything else would let a later
        :meth:`acquire` hand out a buffer that aliases live caller
        data (a view) or that ``np.copyto``-style staging writes
        cannot fill (read-only, or strided so the flat copy is wrong).
        """
        if not isinstance(array, np.ndarray):
            raise TypeError(
                f"release() takes a numpy array, got {type(array).__name__}"
            )
        if array.base is not None:
            raise ValueError(
                "refusing to pool a view: a later acquire would hand "
                "out a buffer aliasing the view's base array"
            )
        if not array.flags.writeable:
            raise ValueError("refusing to pool a read-only array")
        if not array.flags.c_contiguous:
            raise ValueError(
                "refusing to pool a non-C-contiguous array: staged "
                "copies assume the pool's own contiguous layout"
            )
        key = self._key(array.shape, array.dtype)
        with self._lock:
            free = self._free.setdefault(key, [])
            if len(free) < self.max_per_key:
                free.append(array)
                self._bytes_held += array.nbytes

    def idle_buffers(self) -> int:
        """Buffers currently sitting in the free lists (for tests)."""
        with self._lock:
            return sum(len(v) for v in self._free.values())

    @property
    def bytes_held(self) -> int:
        """Bytes sitting idle in the free lists right now."""
        with self._lock:
            return self._bytes_held

    @property
    def bytes_allocated(self) -> int:
        """Total bytes ever allocated by cache misses."""
        with self._lock:
            return self._bytes_allocated

    def stats(self) -> Dict[str, int]:
        """Consistent snapshot of the pool's counters.

        Keys: ``hits``, ``misses``, ``bytes_held``, ``bytes_allocated``,
        ``idle_buffers``, ``keys``.  Taken under the pool lock so the
        numbers are mutually consistent even while other threads
        acquire/release.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "bytes_held": self._bytes_held,
                "bytes_allocated": self._bytes_allocated,
                "idle_buffers": sum(len(v) for v in self._free.values()),
                "keys": len(self._free),
            }


class Arena:
    """Step-scoped scratch allocator over a :class:`BufferPool`.

    :meth:`empty` / :meth:`zeros` acquire from the pool and record the
    buffer as *live*; nothing is recycled until :meth:`reset` returns
    the whole working set at once.  Within one step every buffer is
    therefore exclusively owned by whoever asked for it — no aliasing
    analysis needed — while across steps the same shapes are served
    from the free list, so a steady-state forward performs zero large
    allocations.

    The contract callers must respect: arrays handed out by an arena
    (including any tensor *outputs* built on them) are valid only
    until the next :meth:`reset`.  Copy anything that must outlive the
    step.  ``empty``/``zeros`` may be called from multiple threads (the
    overlap executor's two streams); ``reset`` must only run between
    steps, when no thread is allocating.
    """

    def __init__(
        self, pool: Optional[BufferPool] = None, max_per_key: int = 16
    ):
        self.pool = pool if pool is not None else BufferPool(max_per_key)
        self._live: List[np.ndarray] = []

    def empty(self, shape, dtype=np.float32) -> np.ndarray:
        """An uninitialized pooled array, checked out until :meth:`reset`."""
        buf = self.pool.acquire(shape, dtype)
        self._live.append(buf)
        return buf

    def zeros(self, shape, dtype=np.float32) -> np.ndarray:
        """A zero-filled pooled array, checked out until :meth:`reset`."""
        buf = self.empty(shape, dtype)
        buf.fill(0)
        return buf

    @property
    def live_buffers(self) -> int:
        """Buffers handed out since the last :meth:`reset`."""
        return len(self._live)

    def reset(self) -> None:
        """Return every live buffer to the pool (start of a new step)."""
        live, self._live = self._live, []
        for buf in live:
            self.pool.release(buf)

    def stats(self) -> Dict[str, int]:
        """The pool's :meth:`BufferPool.stats` plus the live count."""
        snapshot = self.pool.stats()
        snapshot["live_buffers"] = len(self._live)
        return snapshot
