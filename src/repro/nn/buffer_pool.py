"""A reusable pool of numpy buffers for the pipelined dispatch path.

The chunked expert-parallel executor moves one flat ``(n, M)`` payload
per (source, destination, chunk) triple through each all-to-all — with
``r`` chunks over ``P`` workers that is up to ``2 r P^2`` short-lived
arrays per forward pass.  Allocating them fresh every chunk churns the
allocator on exactly the path we are trying to overlap; the real
system (like any NCCL-based A2A) reuses pinned staging buffers
instead.  :class:`BufferPool` is that staging area: ``acquire`` hands
out a cached array of the requested shape/dtype when one is free and
allocates otherwise, ``release`` returns it for reuse.

The pool is thread-safe — the overlap executor acquires from the
communication stream while the computing stream releases buffers it
has drained — and deliberately dumb: exact (shape, dtype) matching,
bounded per-key free list, no zeroing (callers always overwrite the
full buffer via ``np.copyto``-style writes before reading).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["BufferPool"]


class BufferPool:
    """Thread-safe free-list of numpy arrays keyed by (shape, dtype).

    ``max_per_key`` bounds how many idle buffers of one shape are
    retained; extra releases drop the array back to the allocator so a
    pathological shape mix cannot grow the pool without bound.
    """

    def __init__(self, max_per_key: int = 16):
        if max_per_key < 1:
            raise ValueError(f"max_per_key must be >= 1, got {max_per_key}")
        self.max_per_key = max_per_key
        self._free: Dict[Tuple[tuple, np.dtype], List[np.ndarray]] = {}
        self._lock = threading.Lock()
        #: Buffers served from the free list / fresh allocations.
        self.hits = 0
        self.misses = 0

    def _key(self, shape, dtype) -> Tuple[tuple, np.dtype]:
        return (tuple(int(s) for s in shape), np.dtype(dtype))

    def acquire(self, shape, dtype=np.float32) -> np.ndarray:
        """A writable array of exactly ``shape``/``dtype`` (uninitialized)."""
        key = self._key(shape, dtype)
        with self._lock:
            free = self._free.get(key)
            if free:
                self.hits += 1
                return free.pop()
            self.misses += 1
        return np.empty(key[0], dtype=key[1])

    def take_copy(self, array: np.ndarray) -> np.ndarray:
        """A pooled buffer holding a copy of ``array`` — the A2A handoff.

        This is the memcpy into the staging buffer: the caller keeps no
        obligation to ``array`` afterwards, and the returned buffer goes
        back via :meth:`release` once the receiver has drained it.
        """
        buf = self.acquire(array.shape, array.dtype)
        np.copyto(buf, array)
        return buf

    def release(self, array: np.ndarray) -> None:
        """Return a buffer for reuse.  Only pass arrays you own.

        The pool only ever hands out freshly allocated, writable,
        C-contiguous arrays that own their data — and it only takes
        such arrays back.  Accepting anything else would let a later
        :meth:`acquire` hand out a buffer that aliases live caller
        data (a view) or that ``np.copyto``-style staging writes
        cannot fill (read-only, or strided so the flat copy is wrong).
        """
        if not isinstance(array, np.ndarray):
            raise TypeError(
                f"release() takes a numpy array, got {type(array).__name__}"
            )
        if array.base is not None:
            raise ValueError(
                "refusing to pool a view: a later acquire would hand "
                "out a buffer aliasing the view's base array"
            )
        if not array.flags.writeable:
            raise ValueError("refusing to pool a read-only array")
        if not array.flags.c_contiguous:
            raise ValueError(
                "refusing to pool a non-C-contiguous array: staged "
                "copies assume the pool's own contiguous layout"
            )
        key = self._key(array.shape, array.dtype)
        with self._lock:
            free = self._free.setdefault(key, [])
            if len(free) < self.max_per_key:
                free.append(array)

    def idle_buffers(self) -> int:
        """Buffers currently sitting in the free lists (for tests)."""
        with self._lock:
            return sum(len(v) for v in self._free.values())
