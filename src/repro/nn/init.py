"""Parameter initializers (seeded, deterministic)."""

from __future__ import annotations

import numpy as np


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int, shape=None
) -> np.ndarray:
    """Glorot uniform initialization."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fans must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    shape = shape if shape is not None else (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def kaiming_normal(
    rng: np.random.Generator, fan_in: int, shape=None
) -> np.ndarray:
    """He normal initialization for ReLU fan-in."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    std = np.sqrt(2.0 / fan_in)
    shape = shape if shape is not None else (fan_in,)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def normal(rng: np.random.Generator, shape, std: float = 0.02) -> np.ndarray:
    """Plain scaled normal (embedding tables, GPT-style)."""
    return (rng.standard_normal(shape) * std).astype(np.float32)
