"""Model checkpointing: save/load state dicts as .npz archives.

Checkpoints store MoE expert parameters in the *stacked* bank layout
(``<bank>.w1`` (E, M, H), ``<bank>.b1`` (E, 1, H), ``<bank>.w2``
(E, H, M), ``<bank>.b2`` (E, 1, M)) matching
:class:`~repro.moe.experts.Experts`.  Checkpoints written before the
bank existed used one FeedForward module per expert
(``<bank>.experts.items.<i>.fc{1,2}.{weight,bias}``);
:func:`load_checkpoint` upgrades that layout transparently, and
:func:`save_checkpoint` can still emit it (``expert_layout=
"per-expert"``) for tools pinned to the old key schema.  The
conversion is key-pattern based — it needs no model, only the state
dict — so both directions round-trip exactly.

Elastic re-sharding support (see :mod:`repro.moe.placement` and
:mod:`repro.faults.recovery`):

* checkpoints can record the live
  :class:`~repro.moe.placement.ExpertPlacement` in their metadata
  (``save_checkpoint(..., placement=...)`` /
  :func:`checkpoint_placement`), so a resumed or recovered run knows
  where every expert lived;
* :func:`shard_expert_state` / :func:`merge_expert_shards` slice a
  stacked bank into per-worker shards along any placement and
  reassemble them losslessly — the redistribution a re-shard performs;
* ``save_checkpoint(..., extra_arrays=...)`` stores non-parameter
  arrays (optimizer moments, RNG state) under a reserved prefix,
  readable via :func:`load_extra_arrays` — what a bit-exact
  crash→resume needs beyond the parameters.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from .modules import Module

#: Reserved archive key holding JSON metadata.
_META_KEY = "__checkpoint_meta__"

#: Reserved archive-key prefix for non-parameter arrays
#: (``save_checkpoint(..., extra_arrays=...)``).
_EXTRA_PREFIX = "__extra__."

#: Metadata key under which ``save_checkpoint`` records a placement.
_PLACEMENT_META_KEY = "expert_placement"

#: Legacy per-expert parameter key:
#: ``<bank>.experts.items.<i>.fc{1,2}.{weight,bias}`` (the old Experts
#: held a ModuleList of FeedForwards in its ``experts`` attribute).
_LEGACY_EXPERT_RE = re.compile(
    r"^(?:(?P<bank>.+)\.)?experts\.items\.(?P<idx>\d+)"
    r"\.fc(?P<fc>[12])\.(?P<kind>weight|bias)$"
)

#: (fc index, weight|bias) -> stacked parameter name.
_STACKED_NAMES = {
    ("1", "weight"): "w1",
    ("1", "bias"): "b1",
    ("2", "weight"): "w2",
    ("2", "bias"): "b2",
}

#: Valid ``expert_layout`` values for :func:`save_checkpoint`.
EXPERT_LAYOUTS = ("stacked", "per-expert")


def stack_expert_state(
    state: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Upgrade legacy per-expert FFN keys to the stacked bank layout.

    Non-expert keys pass through untouched; a state dict already in
    stacked layout is returned unchanged (a fresh dict, same arrays).
    Raises ``KeyError`` if a bank's expert indices have gaps.
    """
    out = {
        key: value
        for key, value in state.items()
        if not _LEGACY_EXPERT_RE.match(key)
    }
    groups: Dict[tuple, Dict[int, np.ndarray]] = {}
    for key, value in state.items():
        match = _LEGACY_EXPERT_RE.match(key)
        if not match:
            continue
        name = _STACKED_NAMES[(match["fc"], match["kind"])]
        groups.setdefault((match["bank"], name), {})[int(match["idx"])] = (
            np.asarray(value)
        )
    for (bank, name), parts in groups.items():
        indices = sorted(parts)
        if indices != list(range(len(indices))):
            raise KeyError(
                f"expert bank {bank or '<root>'}.{name}: "
                f"non-contiguous expert indices {indices}"
            )
        slabs = [parts[i] for i in indices]
        if name in ("b1", "b2"):  # (H,) -> (1, H) per expert
            slabs = [s.reshape(1, -1) for s in slabs]
        stacked_key = f"{bank}.{name}" if bank else name
        out[stacked_key] = np.stack(slabs, axis=0)
    return out


def unstack_expert_state(
    state: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Convert stacked expert banks back to legacy per-expert keys.

    A bank is recognised by the complete w1/b1/w2/b2 quartet with
    consistent (E, M, H) shapes; anything else passes through
    untouched.  Inverse of :func:`stack_expert_state`.
    """
    out = dict(state)
    for key in list(state):
        if key != "w1" and not key.endswith(".w1"):
            continue
        base = key[: -len("w1")]  # "" or "<bank>."
        names = {n: base + n for n in ("w1", "b1", "w2", "b2")}
        if not all(n in state for n in names.values()):
            continue
        w1 = np.asarray(state[names["w1"]])
        b1 = np.asarray(state[names["b1"]])
        w2 = np.asarray(state[names["w2"]])
        b2 = np.asarray(state[names["b2"]])
        if w1.ndim != 3 or w2.ndim != 3:
            continue
        num_experts, model_dim, hidden_dim = w1.shape
        if (
            w2.shape != (num_experts, hidden_dim, model_dim)
            or b1.shape != (num_experts, 1, hidden_dim)
            or b2.shape != (num_experts, 1, model_dim)
        ):
            continue
        for e in range(num_experts):
            prefix = f"{base}experts.items.{e}"
            out[f"{prefix}.fc1.weight"] = w1[e]
            out[f"{prefix}.fc1.bias"] = b1[e, 0]
            out[f"{prefix}.fc2.weight"] = w2[e]
            out[f"{prefix}.fc2.bias"] = b2[e, 0]
        for name in names.values():
            del out[name]
    return out


def save_checkpoint(
    model: Module,
    path: Union[str, Path],
    metadata: Optional[Dict[str, Any]] = None,
    expert_layout: str = "stacked",
    placement: Optional[Any] = None,
    extra_arrays: Optional[Dict[str, np.ndarray]] = None,
) -> None:
    """Write a model's parameters (and optional JSON metadata) to disk.

    Parameter names may contain dots; they are stored verbatim as npz
    entries.  ``metadata`` must be JSON-serializable.
    ``expert_layout="per-expert"`` writes MoE expert banks in the
    legacy one-FeedForward-per-expert key schema instead of the
    stacked default.

    ``placement`` (an :class:`~repro.moe.placement.ExpertPlacement`)
    is recorded in the metadata under ``"expert_placement"`` — read it
    back with :func:`checkpoint_placement` — so recovery knows where
    each expert lived when the checkpoint was cut.  ``extra_arrays``
    stores non-parameter arrays (e.g. optimizer moments) under a
    reserved key prefix; :func:`load_checkpoint` ignores them and
    :func:`load_extra_arrays` returns them.

    The write is crash-safe: the archive is assembled in a ``.tmp``
    sibling in the target directory and published with an atomic
    ``os.replace``, so a crash mid-write never leaves a truncated
    checkpoint visible at ``path`` — readers see either the previous
    complete checkpoint or the new complete one.
    """
    if expert_layout not in EXPERT_LAYOUTS:
        raise ValueError(
            f"unknown expert_layout {expert_layout!r}; "
            f"expected one of {EXPERT_LAYOUTS}"
        )
    state = model.state_dict()
    if expert_layout == "per-expert":
        state = unstack_expert_state(state)
    if _META_KEY in state:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    for name in state:
        if name.startswith(_EXTRA_PREFIX):
            raise ValueError(
                f"parameter name {name!r} collides with the reserved "
                f"{_EXTRA_PREFIX!r} prefix"
            )
    payload = dict(state)
    for name, value in (extra_arrays or {}).items():
        payload[_EXTRA_PREFIX + name] = np.asarray(value)
    meta = dict(metadata or {})
    if placement is not None:
        if _PLACEMENT_META_KEY in meta:
            raise ValueError(
                f"metadata key {_PLACEMENT_META_KEY!r} is reserved "
                "for the placement= argument"
            )
        meta[_PLACEMENT_META_KEY] = placement.to_json_dict()
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # np.savez appends ".npz" to suffix-less string paths; mirror that
    # so the atomic rename publishes to the historical destination.
    final = (
        path
        if path.name.endswith(".npz")
        else path.with_name(path.name + ".npz")
    )
    tmp = final.with_name(final.name + ".tmp")
    try:
        # savez over an open file object writes exactly there (no
        # suffix games), letting us stage the whole archive first.
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    finally:
        if tmp.exists():
            tmp.unlink()


def load_checkpoint(
    model: Module, path: Union[str, Path]
) -> Dict[str, Any]:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Returns the stored metadata dict.  Raises on any name or shape
    mismatch (strict loading).  Checkpoints written in the legacy
    per-expert layout are upgraded to the stacked bank layout before
    loading, so old archives load into current models unchanged.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path, allow_pickle=False) as archive:
        meta_raw = archive[_META_KEY].tobytes().decode("utf-8")
        state = {
            name: archive[name]
            for name in archive.files
            if name != _META_KEY and not name.startswith(_EXTRA_PREFIX)
        }
    model.load_state_dict(stack_expert_state(state))
    return json.loads(meta_raw)


def load_extra_arrays(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read the ``extra_arrays`` stored by :func:`save_checkpoint`.

    Returns ``{}`` for checkpoints written without extras.  Keys come
    back exactly as passed to ``save_checkpoint`` (the reserved
    on-disk prefix is stripped).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path, allow_pickle=False) as archive:
        return {
            name[len(_EXTRA_PREFIX):]: archive[name]
            for name in archive.files
            if name.startswith(_EXTRA_PREFIX)
        }


def checkpoint_placement(metadata: Dict[str, Any]):
    """The :class:`~repro.moe.placement.ExpertPlacement` recorded in
    checkpoint metadata, or ``None`` if the checkpoint predates
    placements (was saved without ``placement=``)."""
    blob = metadata.get(_PLACEMENT_META_KEY)
    if blob is None:
        return None
    from ..moe.placement import ExpertPlacement

    return ExpertPlacement.from_json_dict(blob)


def _bank_bases(state: Dict[str, np.ndarray], num_experts: int) -> List[str]:
    """Key prefixes of every stacked expert bank with ``num_experts``
    experts in ``state`` (``""`` for root-level ``w1``..``b2``)."""
    bases = []
    for key in state:
        if key != "w1" and not key.endswith(".w1"):
            continue
        base = key[: -len("w1")]
        names = {n: base + n for n in ("w1", "b1", "w2", "b2")}
        if not all(n in state for n in names.values()):
            continue
        w1 = np.asarray(state[names["w1"]])
        w2 = np.asarray(state[names["w2"]])
        b1 = np.asarray(state[names["b1"]])
        b2 = np.asarray(state[names["b2"]])
        if w1.ndim != 3 or w1.shape[0] != num_experts:
            continue
        _, model_dim, hidden_dim = w1.shape
        if (
            w2.shape != (num_experts, hidden_dim, model_dim)
            or b1.shape != (num_experts, 1, hidden_dim)
            or b2.shape != (num_experts, 1, model_dim)
        ):
            continue
        bases.append(base)
    return bases


def shard_expert_state(
    state: Dict[str, np.ndarray], placement
) -> List[Dict[str, np.ndarray]]:
    """Slice stacked expert banks into per-worker shards.

    ``placement`` is an :class:`~repro.moe.placement.ExpertPlacement`;
    shard ``w`` holds, for every recognised bank, the parameter rows
    of the experts ``placement.experts_of(w)`` stacked in ascending
    global-id order (possibly zero rows).  Non-bank keys — gate
    weights, embeddings — are replicated into every shard, mirroring
    how non-expert parameters are data-parallel-replicated on the real
    system.  :func:`merge_expert_shards` inverts this exactly, for any
    placement: re-sharding a checkpoint from one placement to another
    is ``merge`` then ``shard`` and loses nothing.
    """
    bases = set(_bank_bases(state, placement.num_experts))
    bank_keys = {
        base + name for base in bases for name in ("w1", "b1", "w2", "b2")
    }
    shards: List[Dict[str, np.ndarray]] = []
    for w in range(placement.num_workers):
        hosted = list(placement.experts_of(w))
        shard = {}
        for key, value in state.items():
            if key in bank_keys:
                shard[key] = np.asarray(value)[hosted]
            else:
                shard[key] = value
        shards.append(shard)
    return shards


def merge_expert_shards(
    shards: List[Dict[str, np.ndarray]], placement
) -> Dict[str, np.ndarray]:
    """Reassemble :func:`shard_expert_state` output into full banks.

    The inverse redistribution: every expert's rows come from the
    worker hosting it under ``placement``; replicated non-bank keys
    are taken from the first shard holding them.  Raises if the shard
    list does not match the placement's worker count or a bank row
    count disagrees with a worker's hosted experts.
    """
    if len(shards) != placement.num_workers:
        raise ValueError(
            f"expected {placement.num_workers} shards, got {len(shards)}"
        )
    merged: Dict[str, np.ndarray] = {}
    # Identify banks from shard key quartets; row counts are
    # per-worker, so recognition uses the merged (global) shapes after
    # a first pass collects every worker's slices.
    for w, shard in enumerate(shards):
        hosted = list(placement.experts_of(w))
        for key, value in shard.items():
            quartet = _quartet_base(key, shard)
            if quartet is None:
                merged.setdefault(key, value)
                continue
            value = np.asarray(value)
            if value.shape[0] != len(hosted):
                raise ValueError(
                    f"shard {w} key {key}: {value.shape[0]} expert rows "
                    f"but worker {w} hosts {len(hosted)} experts"
                )
            full = merged.get(key)
            if full is None:
                full = np.zeros(
                    (placement.num_experts,) + value.shape[1:], value.dtype
                )
                merged[key] = full
            full[hosted] = value
    return merged


def _quartet_base(key: str, state: Dict[str, np.ndarray]) -> Optional[str]:
    """The bank prefix if ``key`` belongs to a complete stacked
    w1/b1/w2/b2 quartet of 3-D/2-D-per-expert arrays, else ``None``."""
    for name in ("w1", "b1", "w2", "b2"):
        if key == name or key.endswith("." + name):
            base = key[: -len(name)]
            names = [base + n for n in ("w1", "b1", "w2", "b2")]
            if all(n in state for n in names) and all(
                np.asarray(state[n]).ndim == 3 for n in names
            ):
                return base
            return None
    return None
