"""Model checkpointing: save/load state dicts as .npz archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from .modules import Module

#: Reserved archive key holding JSON metadata.
_META_KEY = "__checkpoint_meta__"


def save_checkpoint(
    model: Module,
    path: Union[str, Path],
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a model's parameters (and optional JSON metadata) to disk.

    Parameter names may contain dots; they are stored verbatim as npz
    entries.  ``metadata`` must be JSON-serializable.
    """
    state = model.state_dict()
    if _META_KEY in state:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    payload = dict(state)
    meta = dict(metadata or {})
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def load_checkpoint(
    model: Module, path: Union[str, Path]
) -> Dict[str, Any]:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Returns the stored metadata dict.  Raises on any name or shape
    mismatch (strict loading).
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    with np.load(path, allow_pickle=False) as archive:
        meta_raw = archive[_META_KEY].tobytes().decode("utf-8")
        state = {
            name: archive[name]
            for name in archive.files
            if name != _META_KEY
        }
    model.load_state_dict(state)
    return json.loads(meta_raw)
