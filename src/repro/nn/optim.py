"""Optimizers and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with optional momentum and decoupled weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction and decoupled weight decay (AdamW)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bc1 = 1.0 - self.beta1**self._step
        bc2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            update = (m / bc1) / (np.sqrt(v / bc2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data -= self.lr * update


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total


class WarmupInverseSqrt:
    """Transformer LR schedule: linear warmup then inverse sqrt decay."""

    def __init__(self, optimizer: Optimizer, base_lr: float, warmup_steps: int):
        if warmup_steps < 1:
            raise ValueError(f"warmup_steps must be >= 1, got {warmup_steps}")
        self.optimizer = optimizer
        self.base_lr = base_lr
        self.warmup_steps = warmup_steps
        self._step = 0

    def step(self) -> float:
        """Advance one step; returns the LR now in effect."""
        self._step += 1
        if self._step <= self.warmup_steps:
            lr = self.base_lr * self._step / self.warmup_steps
        else:
            lr = self.base_lr * (self.warmup_steps / self._step) ** 0.5
        self.optimizer.lr = lr
        return lr
