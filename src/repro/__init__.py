"""repro: a full reproduction of ScheMoE (EuroSys '24).

ScheMoE is an extensible mixture-of-experts training system with task
scheduling: pluggable compression (``AbsCompressor``), pluggable
all-to-all collectives (``AbsAlltoAll``, including the paper's
Pipe-A2A), and a provably optimal task scheduler (OptSche).

This package reproduces the whole system on two substrates (see
DESIGN.md): a deterministic discrete-event GPU-cluster simulator for
everything timing (:mod:`repro.cluster`, :mod:`repro.collectives`,
:mod:`repro.core`, :mod:`repro.systems`) and a from-scratch numpy
autograd stack for everything numerical (:mod:`repro.nn`,
:mod:`repro.moe`, :mod:`repro.models`, :mod:`repro.training`).

Quickstart::

    import numpy as np
    from repro import ScheMoELayer, paper_testbed

    layer = ScheMoELayer(
        model_dim=64, hidden_dim=128, num_experts=8,
        rng=np.random.default_rng(0),
        compress_name="zfp", comm_name="pipe", scheduler_name="optsche",
    )
    plan = layer.plan(paper_testbed(), batch_per_gpu=4, seq_len=128)
    print(plan.forward.render())
"""

from .cluster import ClusterSpec, SimCluster, paper_testbed
from .collectives import available_a2a, get_a2a, register_a2a
from .faults import (
    FaultError,
    FaultPlan,
    LinkFault,
    StragglerFault,
    TransientFaults,
    load_fault_plan,
    save_fault_plan,
)
from .compression import available_compressors, get_compressor, register_compressor
from .core import (
    OptScheScheduler,
    Profiler,
    ScheMoELayer,
    SystemPolicy,
    available_schedulers,
    get_scheduler,
    register_plugins,
    register_scheduler,
    simulate_model_step,
)
from .moe import MoELayer
from .systems import SystemRunner

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "FaultError",
    "FaultPlan",
    "LinkFault",
    "MoELayer",
    "StragglerFault",
    "TransientFaults",
    "load_fault_plan",
    "save_fault_plan",
    "OptScheScheduler",
    "Profiler",
    "ScheMoELayer",
    "SimCluster",
    "SystemPolicy",
    "SystemRunner",
    "__version__",
    "available_a2a",
    "available_compressors",
    "available_schedulers",
    "get_a2a",
    "get_compressor",
    "get_scheduler",
    "paper_testbed",
    "register_a2a",
    "register_compressor",
    "register_plugins",
    "register_scheduler",
    "simulate_model_step",
]
