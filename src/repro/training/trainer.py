"""Training loops for the convergence experiments (paper Table 6).

Single-process training here is numerically identical to synchronized
data+expert-parallel training (synchronous SGD averages the same
gradients), so these runs stand in for the paper's 32-GPU convergence
study at a CPU-tractable scale.  Compression variants train with the
codec applied to both A2A hops of every MoE layer, exactly where the
real system would corrupt activations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..data.synthetic_lm import SyntheticLM
from ..data.synthetic_translation import SyntheticTranslation
from ..data.vocab import BOS, EOS, PAD
from ..metrics.bleu import corpus_bleu
from ..metrics.perplexity import evaluate_lm_perplexity
from ..models.gpt2_tiny import TransformerLM
from ..models.transformer import Seq2SeqTransformer
from ..nn.optim import Adam, clip_grad_norm


@dataclass
class TrainHistory:
    """Loss trace and final validation metric of one run."""

    losses: List[float] = field(default_factory=list)
    metric_name: str = ""
    metric: float = float("nan")

    @property
    def final_loss(self) -> float:
        """Loss of the last training step."""
        if not self.losses:
            raise ValueError("no training steps recorded")
        return self.losses[-1]

    def smoothed_final_loss(self, window: int = 10) -> float:
        """Mean of the last ``window`` losses."""
        if not self.losses:
            raise ValueError("no training steps recorded")
        tail = self.losses[-window:]
        return float(np.mean(tail))


def train_lm(
    model: TransformerLM,
    corpus: SyntheticLM,
    steps: int = 200,
    batch_size: int = 16,
    lr: float = 3e-3,
    grad_clip: float = 1.0,
    seed: int = 0,
    eval_batches: int = 8,
) -> TrainHistory:
    """Train a causal LM; metric = validation perplexity."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    optimizer = Adam(model.parameters(), lr=lr)
    history = TrainHistory(metric_name="perplexity")
    model.train()
    for step, tokens in enumerate(
        corpus.batches(batch_size, steps, seed=seed)
    ):
        optimizer.zero_grad()
        loss = model.loss(tokens)
        loss.backward()
        clip_grad_norm(model.parameters(), grad_clip)
        optimizer.step()
        history.losses.append(float(loss.data))
    history.metric = evaluate_lm_perplexity(
        model, corpus.batches(batch_size, eval_batches, seed=seed + 10_000)
    )
    return history


def train_translation(
    model: Seq2SeqTransformer,
    corpus: SyntheticTranslation,
    steps: int = 200,
    batch_size: int = 16,
    lr: float = 3e-3,
    grad_clip: float = 1.0,
    seed: int = 0,
    eval_batches: int = 8,
) -> TrainHistory:
    """Train a seq2seq model; metric = validation BLEU."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    optimizer = Adam(model.parameters(), lr=lr)
    history = TrainHistory(metric_name="bleu")
    model.train()
    for src, tgt_in, tgt_out in corpus.batches(batch_size, steps, seed=seed):
        optimizer.zero_grad()
        loss = model.loss(src, tgt_in, tgt_out)
        loss.backward()
        clip_grad_norm(model.parameters(), grad_clip)
        optimizer.step()
        history.losses.append(float(loss.data))
    history.metric = evaluate_translation_bleu(
        model, corpus, num_batches=eval_batches, seed=seed + 10_000,
        batch_size=batch_size,
    )
    return history


def evaluate_translation_bleu(
    model: Seq2SeqTransformer,
    corpus: SyntheticTranslation,
    num_batches: int = 8,
    batch_size: int = 16,
    seed: int = 777,
) -> float:
    """Greedy-decode validation BLEU."""
    model.eval()
    hyps: List[List[int]] = []
    refs: List[List[int]] = []
    for src, _tgt_in, tgt_out in corpus.batches(
        batch_size, num_batches, seed=seed
    ):
        decoded = model.greedy_decode(
            src, bos_id=BOS, eos_id=EOS, max_len=tgt_out.shape[1] + 2
        )
        for hyp_row, ref_row in zip(decoded, tgt_out):
            hyp = _strip(hyp_row)
            ref = _strip(ref_row)
            if ref:
                hyps.append(hyp)
                refs.append(ref)
    model.train()
    if not refs:
        raise RuntimeError("no evaluable sentences")
    return corpus_bleu(hyps, refs)


def _strip(tokens: np.ndarray) -> List[int]:
    """Drop padding and everything after the first EOS."""
    out: List[int] = []
    for t in tokens:
        t = int(t)
        if t == PAD:
            continue
        out.append(t)
        if t == EOS:
            break
    return out
