"""Training loops for the convergence experiments (paper Table 6).

Single-process training here is numerically identical to synchronized
data+expert-parallel training (synchronous SGD averages the same
gradients), so these runs stand in for the paper's 32-GPU convergence
study at a CPU-tractable scale.  Compression variants train with the
codec applied to both A2A hops of every MoE layer, exactly where the
real system would corrupt activations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..data.synthetic_lm import SyntheticLM
from ..data.synthetic_translation import SyntheticTranslation
from ..data.vocab import BOS, EOS, PAD
from ..metrics.bleu import corpus_bleu
from ..metrics.perplexity import evaluate_lm_perplexity
from ..models.gpt2_tiny import TransformerLM
from ..models.transformer import Seq2SeqTransformer
from ..nn.optim import Adam, clip_grad_norm


class TrainingDivergedError(RuntimeError):
    """Raised when an :class:`AnomalyGuard` exhausts its retry budget."""


@dataclass
class AnomalyGuard:
    """Skip-don't-crash protection against non-finite training steps.

    Production MoE training treats a non-finite loss or gradient norm
    as a transient anomaly (a bad batch, a race in a faulty collective,
    a degraded worker's garbage output): the optimizer step is
    *skipped* — weights and Adam state stay untouched — and training
    continues.  Each consecutive skip decays the retry budget; a
    healthy step restores it.  ``max_consecutive_skips`` exhausted
    means the run has genuinely diverged and
    :class:`TrainingDivergedError` is raised rather than silently
    training on garbage forever.
    """

    max_consecutive_skips: int = 3
    #: Total steps skipped over the run (diagnostics).
    skipped_steps: int = 0
    #: Current consecutive-skip streak; resets on a healthy step.
    consecutive_skips: int = 0
    #: Human-readable reason of the most recent skip.
    last_reason: str = ""

    def __post_init__(self) -> None:
        if self.max_consecutive_skips < 1:
            raise ValueError(
                "max_consecutive_skips must be >= 1, got "
                f"{self.max_consecutive_skips}"
            )

    def step_is_safe(self, loss: float, grad_norm: float) -> bool:
        """Whether the optimizer step may be applied.

        ``False`` means skip this step (and the streak grew);
        exhaustion of the budget raises instead of returning.
        """
        if math.isfinite(loss) and math.isfinite(grad_norm):
            self.consecutive_skips = 0
            return True
        self.skipped_steps += 1
        self.consecutive_skips += 1
        culprit = "loss" if not math.isfinite(loss) else "grad-norm"
        self.last_reason = (
            f"non-finite {culprit} (loss={loss}, grad_norm={grad_norm})"
        )
        if self.consecutive_skips > self.max_consecutive_skips:
            raise TrainingDivergedError(
                f"{self.consecutive_skips} consecutive anomalous steps "
                f"(budget {self.max_consecutive_skips}); last: "
                f"{self.last_reason}"
            )
        return False


@dataclass
class TrainHistory:
    """Loss trace and final validation metric of one run."""

    losses: List[float] = field(default_factory=list)
    metric_name: str = ""
    metric: float = float("nan")

    @property
    def final_loss(self) -> float:
        """Loss of the last training step."""
        if not self.losses:
            raise ValueError("no training steps recorded")
        return self.losses[-1]

    def smoothed_final_loss(self, window: int = 10) -> float:
        """Mean of the last ``window`` losses."""
        if not self.losses:
            raise ValueError("no training steps recorded")
        tail = self.losses[-window:]
        return float(np.mean(tail))


def train_lm(
    model: TransformerLM,
    corpus: SyntheticLM,
    steps: int = 200,
    batch_size: int = 16,
    lr: float = 3e-3,
    grad_clip: float = 1.0,
    seed: int = 0,
    eval_batches: int = 8,
    guard: Optional[AnomalyGuard] = None,
) -> TrainHistory:
    """Train a causal LM; metric = validation perplexity.

    ``guard`` enables anomaly protection: a step with non-finite loss
    or gradient norm is skipped (weights and optimizer state
    untouched) instead of corrupting the run; see
    :class:`AnomalyGuard`.  Without a guard, behaviour is exactly the
    historical unconditional-step loop.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    optimizer = Adam(model.parameters(), lr=lr)
    history = TrainHistory(metric_name="perplexity")
    model.train()
    for step, tokens in enumerate(
        corpus.batches(batch_size, steps, seed=seed)
    ):
        optimizer.zero_grad()
        loss = model.loss(tokens)
        loss.backward()
        grad_norm = clip_grad_norm(model.parameters(), grad_clip)
        if guard is None or guard.step_is_safe(float(loss.data), grad_norm):
            optimizer.step()
        history.losses.append(float(loss.data))
    history.metric = evaluate_lm_perplexity(
        model, corpus.batches(batch_size, eval_batches, seed=seed + 10_000)
    )
    return history


def train_translation(
    model: Seq2SeqTransformer,
    corpus: SyntheticTranslation,
    steps: int = 200,
    batch_size: int = 16,
    lr: float = 3e-3,
    grad_clip: float = 1.0,
    seed: int = 0,
    eval_batches: int = 8,
    guard: Optional[AnomalyGuard] = None,
) -> TrainHistory:
    """Train a seq2seq model; metric = validation BLEU.

    ``guard`` works as in :func:`train_lm`.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    optimizer = Adam(model.parameters(), lr=lr)
    history = TrainHistory(metric_name="bleu")
    model.train()
    for src, tgt_in, tgt_out in corpus.batches(batch_size, steps, seed=seed):
        optimizer.zero_grad()
        loss = model.loss(src, tgt_in, tgt_out)
        loss.backward()
        grad_norm = clip_grad_norm(model.parameters(), grad_clip)
        if guard is None or guard.step_is_safe(float(loss.data), grad_norm):
            optimizer.step()
        history.losses.append(float(loss.data))
    history.metric = evaluate_translation_bleu(
        model, corpus, num_batches=eval_batches, seed=seed + 10_000,
        batch_size=batch_size,
    )
    return history


def evaluate_translation_bleu(
    model: Seq2SeqTransformer,
    corpus: SyntheticTranslation,
    num_batches: int = 8,
    batch_size: int = 16,
    seed: int = 777,
) -> float:
    """Greedy-decode validation BLEU."""
    model.eval()
    hyps: List[List[int]] = []
    refs: List[List[int]] = []
    for src, _tgt_in, tgt_out in corpus.batches(
        batch_size, num_batches, seed=seed
    ):
        decoded = model.greedy_decode(
            src, bos_id=BOS, eos_id=EOS, max_len=tgt_out.shape[1] + 2
        )
        for hyp_row, ref_row in zip(decoded, tgt_out):
            hyp = _strip(hyp_row)
            ref = _strip(ref_row)
            if ref:
                hyps.append(hyp)
                refs.append(ref)
    model.train()
    if not refs:
        raise RuntimeError("no evaluable sentences")
    return corpus_bleu(hyps, refs)


def _strip(tokens: np.ndarray) -> List[int]:
    """Drop padding and everything after the first EOS."""
    out: List[int] = []
    for t in tokens:
        t = int(t)
        if t == PAD:
            continue
        out.append(t)
        if t == EOS:
            break
    return out
