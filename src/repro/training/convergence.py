"""The Table 6 experiment: convergence under data compression.

Builds the paper's five variants per task — Base (dense), MoE, MoE
w/FP16, MoE w/INT8, MoE w/ZFP — trains each for the same number of
iterations from the same initialization, and reports the validation
metric (BLEU for translation, perplexity for language modeling).

Expected shape (paper Section 6.2): MoE clearly beats Base; FP16 and
ZFP track plain MoE closely; INT8 shows a measurable regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..compression.base import get_compressor
from ..moe import default_dispatch_mode, default_expert_impl
from ..data.synthetic_lm import LMConfig, SyntheticLM
from ..data.synthetic_translation import SyntheticTranslation, TranslationConfig
from ..models.gpt2_tiny import TransformerLM
from ..models.transformer import Seq2SeqTransformer
from .trainer import TrainHistory, train_lm, train_translation

#: The paper's Table 6 rows, in order.
VARIANTS = ("Base", "MoE", "MoE w/FP16", "MoE w/INT8", "MoE w/ZFP")

_CODEC_OF = {
    "Base": None,
    "MoE": None,
    "MoE w/FP16": "fp16",
    "MoE w/INT8": "int8",
    "MoE w/ZFP": "zfp",
}


@dataclass
class ConvergenceResult:
    """Per-variant outcome of one task."""

    task: str
    metric_name: str
    metrics: Dict[str, float]
    histories: Dict[str, TrainHistory]

    def render(self) -> str:
        """Paper-style table."""
        rows = [f"{'Method':14} {self.metric_name}"]
        for name in VARIANTS:
            if name in self.metrics:
                rows.append(f"{name:14} {self.metrics[name]:.2f}")
        return "\n".join(rows)


def default_lm_corpus() -> SyntheticLM:
    """The validated GPT2-Tiny-MoE stand-in corpus.

    6 topics over 20 words with branching 2: heterogeneous enough that
    the MoE's extra capacity shows within a few hundred CPU steps.
    """
    return SyntheticLM(
        LMConfig(num_words=20, num_topics=6, seq_len=24, branching=2, seed=7)
    )


def default_mt_corpus() -> SyntheticTranslation:
    """The validated Transformer-MoE stand-in corpus.

    4 topic lexicons over 12 words: within a 900-step budget the
    width-24 dense model fails to learn the multi-lexicon mapping
    (single-digit BLEU) while the expert-parallel MoE converges to
    90+ BLEU — the Base-vs-MoE gap of paper Table 6, amplified to
    CPU scale.
    """
    return SyntheticTranslation(
        TranslationConfig(
            num_words=12, num_topics=4, min_len=3, max_len=5, seed=3
        )
    )


def _lm_model(variant: str, corpus: SyntheticLM, scale: str, seed: int) -> TransformerLM:
    sizes = {
        "tiny": dict(model_dim=32, hidden_dim=32, num_layers=2, num_heads=4),
        "small": dict(model_dim=48, hidden_dim=64, num_layers=2, num_heads=4),
    }[scale]
    codec_name = _CODEC_OF[variant]
    return TransformerLM(
        vocab_size=corpus.vocab_size,
        max_seq_len=corpus.config.seq_len,
        moe=variant != "Base",
        num_experts=corpus.config.num_topics,
        top_k=2,
        capacity_factor=1.5,
        compressor=get_compressor(codec_name) if codec_name else None,
        seed=seed,
        **sizes,
    )


def _mt_model(
    variant: str, corpus: SyntheticTranslation, scale: str, seed: int
) -> Seq2SeqTransformer:
    sizes = {
        "tiny": dict(model_dim=32, hidden_dim=24, num_layers=2, num_heads=4),
        "small": dict(model_dim=48, hidden_dim=48, num_layers=2, num_heads=4),
    }[scale]
    codec_name = _CODEC_OF[variant]
    return Seq2SeqTransformer(
        src_vocab=corpus.src_vocab_size,
        tgt_vocab=corpus.tgt_vocab_size,
        max_seq_len=corpus.max_seq_len,
        moe=variant != "Base",
        num_experts=corpus.config.num_topics + 1,
        top_k=2,
        capacity_factor=1.5,
        compressor=get_compressor(codec_name) if codec_name else None,
        seed=seed,
        **sizes,
    )


def run_lm_convergence(
    steps: int = 450,
    batch_size: int = 16,
    scale: str = "tiny",
    variants: Optional[List[str]] = None,
    seed: int = 0,
    corpus: Optional[SyntheticLM] = None,
    lr: float = 3e-3,
    eval_batches: int = 32,
) -> ConvergenceResult:
    """GPT2-Tiny-MoE column of Table 6 (perplexity, lower = better)."""
    corpus = corpus if corpus is not None else default_lm_corpus()
    metrics: Dict[str, float] = {}
    histories: Dict[str, TrainHistory] = {}
    # The recorded Table 6 trajectories are measured on the dense
    # dispatch backend with the per-expert loop; the sparse backend
    # and the batched expert bank both reassociate reductions, which
    # shifts chaotic training runs, so the study is pinned to the
    # reference numerics on both axes.  (The trajectories were still
    # re-recorded once when the bank's stacked parameter layout
    # landed: global-norm clipping now sums each stacked grad in one
    # reduction instead of per-expert pieces.)
    with default_dispatch_mode("dense"), default_expert_impl("loop"):
        for variant in variants or list(VARIANTS):
            model = _lm_model(variant, corpus, scale, seed=seed)
            history = train_lm(
                model, corpus, steps=steps, batch_size=batch_size,
                seed=seed, lr=lr, eval_batches=eval_batches,
            )
            metrics[variant] = history.metric
            histories[variant] = history
    return ConvergenceResult(
        task="GPT2-Tiny-MoE",
        metric_name="perplexity",
        metrics=metrics,
        histories=histories,
    )


def run_translation_convergence(
    steps: int = 600,
    batch_size: int = 16,
    scale: str = "tiny",
    variants: Optional[List[str]] = None,
    seed: int = 0,
    corpus: Optional[SyntheticTranslation] = None,
    lr: float = 5e-3,
) -> ConvergenceResult:
    """Transformer-MoE column of Table 6 (BLEU, higher = better)."""
    corpus = corpus if corpus is not None else default_mt_corpus()
    metrics: Dict[str, float] = {}
    histories: Dict[str, TrainHistory] = {}
    # Pinned to the reference numerics; see run_lm_convergence.
    with default_dispatch_mode("dense"), default_expert_impl("loop"):
        for variant in variants or list(VARIANTS):
            model = _mt_model(variant, corpus, scale, seed=seed)
            history = train_translation(
                model, corpus, steps=steps, batch_size=batch_size,
                seed=seed, lr=lr,
            )
            metrics[variant] = history.metric
            histories[variant] = history
    return ConvergenceResult(
        task="Transformer-MoE",
        metric_name="bleu",
        metrics=metrics,
        histories=histories,
    )
