"""Training loops and the Table 6 convergence experiment."""

from .convergence import (
    VARIANTS,
    ConvergenceResult,
    default_lm_corpus,
    default_mt_corpus,
    run_lm_convergence,
    run_translation_convergence,
)
from .trainer import (
    AnomalyGuard,
    TrainHistory,
    TrainingDivergedError,
    evaluate_translation_bleu,
    train_lm,
    train_translation,
)

__all__ = [
    "AnomalyGuard",
    "ConvergenceResult",
    "TrainHistory",
    "TrainingDivergedError",
    "VARIANTS",
    "default_lm_corpus",
    "default_mt_corpus",
    "evaluate_translation_bleu",
    "run_lm_convergence",
    "run_translation_convergence",
    "train_lm",
    "train_translation",
]
