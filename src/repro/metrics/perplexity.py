"""Perplexity and evaluation helpers."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np


def perplexity_from_nll(mean_nll: float) -> float:
    """exp of the mean per-token negative log likelihood."""
    if mean_nll < 0:
        raise ValueError(f"mean NLL must be >= 0, got {mean_nll}")
    return math.exp(min(mean_nll, 50.0))  # cap to avoid overflow


def evaluate_lm_perplexity(model, batches: Iterable[np.ndarray]) -> float:
    """Mean validation perplexity of a :class:`TransformerLM`."""
    model.eval()
    nlls = []
    for tokens in batches:
        nlls.append(model.perplexity_loss(tokens))
    model.train()
    if not nlls:
        raise ValueError("no evaluation batches")
    return perplexity_from_nll(float(np.mean(nlls)))
