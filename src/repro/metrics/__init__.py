"""Evaluation metrics: BLEU, perplexity, timing statistics."""

from .bleu import corpus_bleu, sentence_bleu
from .perplexity import evaluate_lm_perplexity, perplexity_from_nll
from .timing import TimingStats, measure

__all__ = [
    "TimingStats",
    "corpus_bleu",
    "evaluate_lm_perplexity",
    "measure",
    "perplexity_from_nll",
    "sentence_bleu",
]
