"""Wall-clock measurement helpers for the benchmark harness."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List


@dataclass
class TimingStats:
    """mean +/- std over repeated measurements (the paper's format)."""

    samples: List[float]

    @property
    def mean(self) -> float:
        """Sample mean in seconds."""
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single sample)."""
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        var = sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)

    def format_ms(self) -> str:
        """"497+/-9"-style rendering in milliseconds."""
        return f"{self.mean * 1e3:.0f}±{self.std * 1e3:.0f}"


def measure(fn: Callable[[], object], repeats: int = 3) -> TimingStats:
    """Wall-clock ``fn`` ``repeats`` times."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingStats(samples)
