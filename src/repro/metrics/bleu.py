"""Corpus BLEU (n-gram precision with brevity penalty).

Standard BLEU-4 with add-one smoothing on higher-order n-grams (the
"method 1" smoothing of Chen & Cherry), over integer token sequences.
Used for the translation column of paper Table 6.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import List, Sequence


def _ngrams(tokens: Sequence[int], n: int) -> Counter:
    return Counter(
        tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
    )


def corpus_bleu(
    hypotheses: List[Sequence[int]],
    references: List[Sequence[int]],
    max_n: int = 4,
    smooth: bool = True,
) -> float:
    """BLEU score in [0, 100] over a corpus of token sequences."""
    if len(hypotheses) != len(references):
        raise ValueError(
            f"{len(hypotheses)} hypotheses vs {len(references)} references"
        )
    if not hypotheses:
        raise ValueError("empty corpus")
    matches = [0] * max_n
    totals = [0] * max_n
    hyp_len = 0
    ref_len = 0
    for hyp, ref in zip(hypotheses, references):
        hyp = list(hyp)
        ref = list(ref)
        hyp_len += len(hyp)
        ref_len += len(ref)
        for n in range(1, max_n + 1):
            hyp_ngrams = _ngrams(hyp, n)
            ref_ngrams = _ngrams(ref, n)
            totals[n - 1] += max(len(hyp) - n + 1, 0)
            matches[n - 1] += sum(
                min(count, ref_ngrams[gram])
                for gram, count in hyp_ngrams.items()
            )

    log_precision = 0.0
    for n in range(max_n):
        m, t = matches[n], totals[n]
        if smooth and n > 0:
            m, t = m + 1, t + 1
        if m == 0 or t == 0:
            return 0.0
        log_precision += math.log(m / t)
    log_precision /= max_n

    if hyp_len == 0:
        return 0.0
    brevity = (
        1.0 if hyp_len >= ref_len else math.exp(1.0 - ref_len / hyp_len)
    )
    return 100.0 * brevity * math.exp(log_precision)


def sentence_bleu(
    hypothesis: Sequence[int], reference: Sequence[int], max_n: int = 4
) -> float:
    """BLEU of a single sentence pair (smoothed)."""
    return corpus_bleu([hypothesis], [reference], max_n=max_n)
