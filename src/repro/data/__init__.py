"""Synthetic datasets standing in for the paper's corpora.

wmt14_en_fr -> :class:`SyntheticTranslation` (topic-conditional
translation, BLEU-measurable); wikitext-103 / bookcorpus ->
:class:`SyntheticLM` (topic-conditional Markov text with a known
optimal perplexity).  See DESIGN.md's substitution table for why these
preserve the paper's Table 6 comparisons.
"""

from .synthetic_lm import LMConfig, SyntheticLM
from .synthetic_translation import SyntheticTranslation, TranslationConfig
from .vocab import BOS, EOS, NUM_SPECIAL, PAD, UNK, Vocab

__all__ = [
    "BOS",
    "EOS",
    "LMConfig",
    "NUM_SPECIAL",
    "PAD",
    "SyntheticLM",
    "SyntheticTranslation",
    "TranslationConfig",
    "UNK",
    "Vocab",
]
