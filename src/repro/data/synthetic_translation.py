"""Synthetic translation corpus (wmt14_en_fr stand-in).

The paper's BLEU experiment (Table 6) needs a translation task where
(a) training converges on CPU in minutes and (b) a mixture-of-experts
beats the same-size dense model, so the Base-vs-MoE gap of the paper
reproduces.  We construct a *topic-conditional* translation language:

* a sentence's first source token names one of ``num_topics`` topics;
* each topic defines its own random token permutation ("dialect
  lexicon"); the target is the source mapped through the topic's
  lexicon (optionally with even topics reversing word order — a
  harder alignment variant, off by default).

A dense feed-forward of width H must superpose all topic lexicons;
an MoE layer can dedicate experts per topic — the same heterogeneity
argument that motivates MoE on real multilingual corpora, in a form
small enough to train with numpy.  All generation is seeded and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from .vocab import BOS, EOS, PAD, Vocab


@dataclass(frozen=True)
class TranslationConfig:
    """Corpus shape parameters."""

    num_words: int = 24
    num_topics: int = 4
    min_len: int = 4
    max_len: int = 8
    seed: int = 1234
    #: When True, even topics additionally reverse word order (a much
    #: harder alignment problem; off by default so CPU-scale models
    #: converge within benchmark budgets).
    reverse_even_topics: bool = False

    def __post_init__(self) -> None:
        if self.num_words < 2:
            raise ValueError("num_words must be >= 2")
        if not 1 <= self.min_len <= self.max_len:
            raise ValueError("need 1 <= min_len <= max_len")
        if self.num_topics < 1:
            raise ValueError("num_topics must be >= 1")


class SyntheticTranslation:
    """Deterministic topic-conditional translation task."""

    def __init__(self, config: TranslationConfig = TranslationConfig()):
        self.config = config
        self.vocab = Vocab(config.num_words + config.num_topics)
        rng = np.random.default_rng(config.seed)
        # Topic tokens are the first `num_topics` content words; the
        # remaining words are the translatable lexicon.
        self._topic_tokens = [self.vocab.word(i) for i in range(config.num_topics)]
        self._word_tokens = [
            self.vocab.word(config.num_topics + i) for i in range(config.num_words)
        ]
        self._lexicons: List[np.ndarray] = []
        for _topic in range(config.num_topics):
            perm = rng.permutation(config.num_words)
            self._lexicons.append(perm)

    @property
    def src_vocab_size(self) -> int:
        """Source-side vocabulary size (shared with the target)."""
        return self.vocab.size

    @property
    def tgt_vocab_size(self) -> int:
        """Target-side vocabulary size (shared with the source)."""
        return self.vocab.size

    @property
    def max_seq_len(self) -> int:
        """Longest source/target sequence incl. topic/EOS framing."""
        return self.config.max_len + 3

    def translate(self, topic: int, words: List[int]) -> List[int]:
        """Ground-truth target word indices for source word indices."""
        lex = self._lexicons[topic]
        mapped = [int(lex[w]) for w in words]
        if self.config.reverse_even_topics and topic % 2 == 0:
            mapped = mapped[::-1]
        return mapped

    def sample_pair(
        self, rng: np.random.Generator
    ) -> Tuple[List[int], List[int]]:
        """One (source tokens, target tokens) pair, unpadded.

        Source: [topic, w1..wn, EOS]; target: [mapped..., EOS].
        """
        cfg = self.config
        topic = int(rng.integers(0, cfg.num_topics))
        length = int(rng.integers(cfg.min_len, cfg.max_len + 1))
        words = [int(w) for w in rng.integers(0, cfg.num_words, length)]
        src = [self._topic_tokens[topic]]
        src += [self._word_tokens[w] for w in words]
        src.append(EOS)
        tgt = [self._word_tokens[w] for w in self.translate(topic, words)]
        tgt.append(EOS)
        return src, tgt

    def batches(
        self,
        batch_size: int,
        num_batches: int,
        seed: int,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Padded (src, tgt_in, tgt_out) batches.

        ``tgt_in`` starts with BOS (teacher forcing); ``tgt_out`` ends
        with EOS; both padded with PAD.
        """
        if batch_size < 1 or num_batches < 1:
            raise ValueError("batch_size and num_batches must be >= 1")
        rng = np.random.default_rng(seed)
        for _ in range(num_batches):
            pairs = [self.sample_pair(rng) for _ in range(batch_size)]
            src_len = max(len(s) for s, _ in pairs)
            tgt_len = max(len(t) for _, t in pairs)
            src = np.full((batch_size, src_len), PAD, dtype=np.int64)
            tgt_in = np.full((batch_size, tgt_len), PAD, dtype=np.int64)
            tgt_out = np.full((batch_size, tgt_len), PAD, dtype=np.int64)
            for i, (s, t) in enumerate(pairs):
                src[i, : len(s)] = s
                tgt_in[i, 0] = BOS
                tgt_in[i, 1 : len(t)] = t[:-1]
                tgt_out[i, : len(t)] = t
            yield src, tgt_in, tgt_out

    def references_for(self, src: np.ndarray) -> List[List[int]]:
        """Ground-truth target token sequences for a padded src batch."""
        refs = []
        for row in np.asarray(src):
            tokens = [int(t) for t in row if t not in (PAD,)]
            if not tokens:
                refs.append([])
                continue
            topic_token = tokens[0]
            topic = self._topic_tokens.index(topic_token)
            words = [
                t - self._word_tokens[0]
                for t in tokens[1:]
                if t in range(self._word_tokens[0], self._word_tokens[0] + self.config.num_words)
            ]
            mapped = self.translate(topic, words)
            refs.append([self._word_tokens[w] for w in mapped] + [EOS])
        return refs
