"""Vocabulary with reserved special tokens."""

from __future__ import annotations

from typing import Iterable, List

PAD = 0
BOS = 1
EOS = 2
UNK = 3
NUM_SPECIAL = 4


class Vocab:
    """Integer vocabulary: ids [0, NUM_SPECIAL) are reserved specials."""

    def __init__(self, num_words: int):
        if num_words < 1:
            raise ValueError(f"num_words must be >= 1, got {num_words}")
        self.num_words = num_words

    @property
    def size(self) -> int:
        """Total ids including specials."""
        return self.num_words + NUM_SPECIAL

    def word(self, index: int) -> int:
        """Id of content word ``index`` (0-based)."""
        if not 0 <= index < self.num_words:
            raise ValueError(f"word index {index} out of range")
        return index + NUM_SPECIAL

    def is_word(self, token: int) -> bool:
        """Whether ``token`` is a content word (not a special)."""
        return NUM_SPECIAL <= token < self.size

    def words(self, indices: Iterable[int]) -> List[int]:
        """Map word indices to token ids."""
        return [self.word(i) for i in indices]
