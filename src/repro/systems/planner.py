"""Auto-tuning planner: profile -> fit cost models -> search the space.

The repo exposes many orthogonal knobs — scheduler policy, all-to-all
algorithm, compressor, partition degree ``r``, capacity factor — and a
cached sweep runner, but until now a human read sweep output to pick
the winning combination.  This module closes that loop the way
FSMoE-style systems do: run a *small seeded set of probe measurements*
through the existing :class:`~repro.core.profiler.Profiler` machinery,
fit alpha-beta link parameters and a GEMM roofline from them
(:func:`~repro.cluster.costmodel.fit_link_model` /
:func:`~repro.cluster.costmodel.fit_gemm_roofline`), then score the
*entire* joint configuration space against the fitted models — which
is pure arithmetic, no event-engine simulation — and validate only the
top-K analytic candidates with real :func:`~repro.systems.sweep.run_sweep`
simulations that land in the shared :class:`~repro.systems.sweep.SweepCache`.

Three stages, three artefacts:

1. **calibrate** — :class:`Calibration`: per-(a2a, codec) affine A2A
   models fitted in wire-byte space (plus the equivalent fitted
   :class:`~repro.cluster.costmodel.LinkModel` view), per-codec
   compress/decompress models, and a fitted GEMM roofline.  ``budget``
   caps the number of probe measurements.
2. **search** — every candidate of the :class:`PlanSpace` is priced by
   running the unchanged
   :func:`~repro.core.system.simulate_model_step` with a
   :class:`FittedProfiler` (predictions instead of measurements), so
   scheduling, memory accounting and OOM pruning stay bit-faithful to
   the real simulator's logic; only the task *durations* are modeled.
3. **report** — :class:`PlanReport`: the recommended
   :class:`~repro.core.system.SystemPolicy` + layer config with
   predicted-vs-measured step time for every validated candidate, and
   (optionally) the regret against the exhaustive sweep of the same
   grid.  ``PlanReport.to_json()`` is byte-deterministic for a given
   (workload, cluster, space, seed, budget, top_k).

Everything is deterministic: probe sizes come from a seeded generator,
fits are least squares, ranking breaks ties lexicographically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.costmodel import (
    GpuModel,
    LinkModel,
    ffn_forward_flops,
    fit_alpha_beta,
    fit_gemm_roofline,
    fit_link_model,
)
from ..cluster.topology import ClusterSpec
from ..collectives.base import get_a2a
from ..compression.base import get_compressor
from ..core.profiler import LinearPerfModel, Profiler
from ..core.scheduler import get_scheduler
from ..core.system import StepBreakdown, SystemPolicy, simulate_model_step
from ..models.configs import MoEModelConfig
from .sweep import SweepCache, SweepTask, run_sweep, task_key

__all__ = [
    "Calibration",
    "FittedProfiler",
    "PlanCandidate",
    "PlanReport",
    "PlanSpace",
    "calibrate",
    "plan",
]

#: Default probe points per (a2a, codec) pair / for the GEMM curve.
DEFAULT_A2A_PROBES = 5
DEFAULT_GEMM_PROBES = 5
#: A fit needs at least two points.
MIN_PROBES = 2


# -- the joint configuration space -------------------------------------------


@dataclass(frozen=True)
class PlanSpace:
    """The joint knob space the planner searches.

    Every entry must name a registered scheduler / A2A algorithm /
    compressor; the numerical-substrate knobs (``expert_impl``,
    ``dispatch_mode``, ``pipeline``) are not part of the analytic
    search — the hot-path benchmarks show one dominant choice
    (grouped + sparse, overlap iff r > 1), which the report derives
    from the winning partition degree (see :func:`layer_recommendation`).
    """

    schedulers: Tuple[str, ...] = ("sequential", "chunk-pipeline", "optsche")
    a2a_algorithms: Tuple[str, ...] = ("nccl", "pipe")
    compressors: Tuple[str, ...] = ("none", "zfp")
    partition_degrees: Tuple[int, ...] = (1, 2, 4, 8)
    capacity_factors: Tuple[float, ...] = (1.0, 1.2)

    def __post_init__(self) -> None:
        for name, values in (
            ("schedulers", self.schedulers),
            ("a2a_algorithms", self.a2a_algorithms),
            ("compressors", self.compressors),
            ("partition_degrees", self.partition_degrees),
            ("capacity_factors", self.capacity_factors),
        ):
            if not values:
                raise ValueError(f"PlanSpace.{name} must not be empty")
        if any(r < 1 for r in self.partition_degrees):
            raise ValueError("partition degrees must be >= 1")
        if any(f <= 0 for f in self.capacity_factors):
            raise ValueError("capacity factors must be positive")

    def validate_registries(self) -> None:
        """Resolve every name once, so typos fail before probing."""
        for name in self.schedulers:
            get_scheduler(name)
        for name in self.a2a_algorithms:
            get_a2a(name)
        for name in self.compressors:
            get_compressor(name)

    @property
    def size(self) -> int:
        return (
            len(self.schedulers)
            * len(self.a2a_algorithms)
            * len(self.compressors)
            * len(self.partition_degrees)
            * len(self.capacity_factors)
        )

    @property
    def pairs(self) -> List[Tuple[str, str]]:
        """All (a2a, codec) pairs needing a fitted communication model."""
        return [
            (a, c) for a in self.a2a_algorithms for c in self.compressors
        ]

    def candidates(self) -> List["PlanCandidate"]:
        """Every point of the joint space, in deterministic order."""
        return [
            PlanCandidate(s, a, c, r, f)
            for s in self.schedulers
            for a in self.a2a_algorithms
            for c in self.compressors
            for r in self.partition_degrees
            for f in self.capacity_factors
        ]

    def tasks(self, cfg: MoEModelConfig) -> List[SweepTask]:
        """The exhaustive sweep over this space (regret baseline)."""
        return [cand.task(cfg) for cand in self.candidates()]

    def to_dict(self) -> dict:
        return {
            "schedulers": list(self.schedulers),
            "a2a_algorithms": list(self.a2a_algorithms),
            "compressors": list(self.compressors),
            "partition_degrees": list(self.partition_degrees),
            "capacity_factors": list(self.capacity_factors),
        }


@dataclass(frozen=True)
class PlanCandidate:
    """One point of the joint space: a policy plus a capacity factor."""

    scheduler: str
    a2a: str
    compressor: str
    partitions: int
    capacity_factor: float

    @property
    def label(self) -> str:
        return (
            f"{self.scheduler}+{self.a2a}+{self.compressor}"
            f"+r{self.partitions}+f{self.capacity_factor:g}"
        )

    def policy(self) -> SystemPolicy:
        """The candidate as an explicit-degree system policy."""
        return SystemPolicy(
            name=f"plan[{self.label}]",
            compressor=self.compressor,
            a2a=self.a2a,
            scheduler=self.scheduler,
            partitions=self.partitions,
        )

    def config(self, base: MoEModelConfig) -> MoEModelConfig:
        """``base`` at this candidate's capacity factor."""
        if base.capacity_factor == self.capacity_factor:
            return base
        return replace(base, capacity_factor=self.capacity_factor)

    def task(self, base: MoEModelConfig) -> SweepTask:
        return SweepTask(self.config(base), self.policy())

    def to_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "a2a": self.a2a,
            "compressor": self.compressor,
            "partitions": self.partitions,
            "capacity_factor": self.capacity_factor,
        }


def layer_recommendation(partitions: int) -> dict:
    """Numerical-substrate knobs implied by the winning degree.

    ``grouped`` + ``sparse`` dominate every measured configuration
    (BENCH_hotpath.json); pipelined overlap only exists for r > 1 and
    the chunk count mirrors the timing substrate's partition degree.
    """
    return {
        "expert_impl": "grouped",
        "dispatch_mode": "sparse",
        "pipeline": "overlap" if partitions > 1 else "sync",
        "num_chunks": partitions,
    }


# -- stage 1: calibration ----------------------------------------------------


@dataclass
class Calibration:
    """Fitted cost models recovered from the probe measurements."""

    #: (a2a, codec) -> affine seconds-vs-wire-bytes model.
    a2a_models: Dict[Tuple[str, str], LinearPerfModel]
    #: (a2a, codec) -> the same fit in LinkModel (alpha-beta) form.
    fitted_links: Dict[Tuple[str, str], LinkModel]
    #: (a2a, codec) -> smallest probed wire size that OOM'd (inf: none).
    a2a_oom_wire_bytes: Dict[Tuple[str, str], float]
    #: codec -> (compress, decompress) seconds-vs-raw-bytes models.
    codec_models: Dict[str, Tuple[LinearPerfModel, LinearPerfModel]]
    #: Fitted GEMM roofline (GpuModel form) and its affine view.
    gemm: GpuModel
    gemm_model: LinearPerfModel
    #: Probe schedule actually used.
    probe_raw_bytes: Tuple[float, ...]
    probe_tokens: Tuple[int, ...]
    #: Measurements charged against the budget (A2A runs + GEMM points).
    num_probes: int

    def to_dict(self) -> dict:
        """Deterministic JSON view (tuple keys become ``a2a+codec``)."""
        return {
            "a2a": {
                f"{a}+{c}": {
                    "alpha_s": m.alpha,
                    "beta_s_per_byte": m.beta,
                    "fitted_latency_s": self.fitted_links[(a, c)].latency_s,
                    "fitted_bandwidth_bps": self.fitted_links[
                        (a, c)
                    ].bandwidth_bps,
                    "oom_wire_bytes": self.a2a_oom_wire_bytes[(a, c)],
                }
                for (a, c), m in sorted(self.a2a_models.items())
            },
            "codecs": {
                name: {
                    "compress_alpha_s": comp.alpha,
                    "compress_beta_s_per_byte": comp.beta,
                    "decompress_alpha_s": dec.alpha,
                    "decompress_beta_s_per_byte": dec.beta,
                }
                for name, (comp, dec) in sorted(self.codec_models.items())
            },
            "gemm": {
                "alpha_s": self.gemm_model.alpha,
                "beta_s_per_flop": self.gemm_model.beta,
                "effective_flops": self.gemm.peak_flops,
                "launch_s": self.gemm.kernel_launch_s,
            },
            "probe_raw_bytes": list(self.probe_raw_bytes),
            "probe_tokens": list(self.probe_tokens),
            "num_probes": self.num_probes,
        }


def _probe_counts(
    space: PlanSpace, budget: Optional[int]
) -> Tuple[int, int]:
    """-> (probes per (a2a, codec) pair, GEMM probes) under ``budget``."""
    pairs = len(space.pairs)
    per_pair, gemm = DEFAULT_A2A_PROBES, DEFAULT_GEMM_PROBES
    if budget is None:
        return per_pair, gemm
    floor = pairs * MIN_PROBES + MIN_PROBES
    if budget < floor:
        raise ValueError(
            f"budget={budget} is too small: calibrating {pairs} "
            f"(a2a, codec) pairs plus the GEMM curve needs at least "
            f"{floor} probes"
        )
    while pairs * per_pair + gemm > budget:
        if per_pair > MIN_PROBES:
            per_pair -= 1
        else:
            gemm -= 1
    return per_pair, gemm


def _probe_raw_sizes(
    cfg: MoEModelConfig,
    space: PlanSpace,
    count: int,
    rng: np.random.Generator,
) -> List[float]:
    """Seeded raw-payload probe sizes spanning the search's chunk range."""
    payloads = [
        replace(cfg, capacity_factor=f).a2a_bytes
        for f in space.capacity_factors
    ]
    lo = max(1.0, min(payloads) / max(space.partition_degrees))
    hi = max(max(payloads), lo * 1.01)
    base = np.geomspace(lo, hi, count)
    jitter = rng.uniform(0.85, 1.15, size=count)
    return sorted(float(s) for s in base * jitter)


def _probe_token_counts(
    cfg: MoEModelConfig,
    space: PlanSpace,
    count: int,
    rng: np.random.Generator,
) -> List[int]:
    """Seeded expert-token probe counts spanning the per-chunk range."""
    totals = [
        replace(cfg, capacity_factor=f).capacity * cfg.num_experts
        for f in space.capacity_factors
    ]
    lo = max(1, min(totals) // max(space.partition_degrees))
    hi = max(max(totals), lo + 1)
    base = np.geomspace(lo, hi, count)
    jitter = rng.uniform(0.9, 1.1, size=count)
    tokens = sorted({max(1, int(round(t))) for t in base * jitter})
    # De-duplication may shrink tiny ranges below `count`; that is
    # fine — the fit needs two distinct points, which hi > lo ensures.
    return tokens


def calibrate(
    cfg: MoEModelConfig,
    spec: ClusterSpec,
    space: Optional[PlanSpace] = None,
    seed: int = 0,
    budget: Optional[int] = None,
) -> Calibration:
    """Stage 1: run the seeded probe set and fit every cost model.

    Probes run through the existing :class:`Profiler` machinery — real
    :func:`~repro.collectives.base.measure_a2a` event simulations for
    the A2A curve, the codec and GPU cost models for the rest — at
    sizes drawn deterministically from ``seed`` around the payload and
    token ranges the search will actually query.  ``budget`` caps the
    number of measurements (A2A probes across all pairs + GEMM
    probes); pairs whose probes OOM everywhere simply get no model and
    are pruned from the search.
    """
    space = space or PlanSpace()
    space.validate_registries()
    rng = np.random.default_rng(seed)
    per_pair, gemm_count = _probe_counts(space, budget)
    raw_sizes = _probe_raw_sizes(cfg, space, per_pair, rng)
    token_counts = _probe_token_counts(cfg, space, gemm_count, rng)

    a2a_models: Dict[Tuple[str, str], LinearPerfModel] = {}
    fitted_links: Dict[Tuple[str, str], LinkModel] = {}
    oom_wire: Dict[Tuple[str, str], float] = {}
    codec_models: Dict[str, Tuple[LinearPerfModel, LinearPerfModel]] = {}
    num_probes = 0

    for a2a_name, codec_name in space.pairs:
        profiler = Profiler(
            spec, a2a=get_a2a(a2a_name), compressor=get_compressor(codec_name)
        )
        codec = profiler.compressor
        wire_sizes = [codec.compressed_bytes(s) for s in raw_sizes]
        points = profiler.probe_a2a(wire_sizes)
        num_probes += profiler.a2a_measurements
        finite = [(s, t) for s, t in points if np.isfinite(t)]
        oom_sizes = [s for s, t in points if not np.isfinite(t)]
        oom_wire[(a2a_name, codec_name)] = (
            min(oom_sizes) if oom_sizes else float("inf")
        )
        if len(finite) >= MIN_PROBES:
            sizes = [s for s, _ in finite]
            times = [t for _, t in finite]
            try:
                link = fit_link_model(
                    sizes, times, name=f"fit[{a2a_name}+{codec_name}]"
                )
            except ValueError:
                continue  # degenerate fit: prune the pair
            alpha, beta = fit_alpha_beta(sizes, times)
            a2a_models[(a2a_name, codec_name)] = LinearPerfModel(
                alpha=alpha, beta=beta
            )
            fitted_links[(a2a_name, codec_name)] = link
        if codec_name not in codec_models:
            comp, dec = profiler.probe_codec(raw_sizes)
            codec_models[codec_name] = (
                LinearPerfModel(*fit_alpha_beta(*zip(*comp))),
                LinearPerfModel(*fit_alpha_beta(*zip(*dec))),
            )

    gemm_profiler = Profiler(
        spec,
        a2a=get_a2a(space.a2a_algorithms[0]),
        compressor=get_compressor("none"),
    )
    gemm_points = gemm_profiler.probe_expert(
        token_counts, cfg.model_dim, cfg.hidden_dim
    )
    num_probes += len(gemm_points)
    flops = [f for f, _ in gemm_points]
    times = [t for _, t in gemm_points]
    gemm = fit_gemm_roofline(flops, times, name=f"fit[{spec.gpu.name}]")
    gemm_model = LinearPerfModel(*fit_alpha_beta(flops, times))

    return Calibration(
        a2a_models=a2a_models,
        fitted_links=fitted_links,
        a2a_oom_wire_bytes=oom_wire,
        codec_models=codec_models,
        gemm=gemm,
        gemm_model=gemm_model,
        probe_raw_bytes=tuple(raw_sizes),
        probe_tokens=tuple(token_counts),
        num_probes=num_probes,
    )


# -- stage 2: analytic search ------------------------------------------------


class FittedProfiler(Profiler):
    """A :class:`Profiler` answering from fitted models, not the engine.

    Drop-in for :func:`simulate_model_step`: the schedule construction,
    memory accounting and OOM logic run unchanged; only the four task
    measurements are replaced by predictions, which turns one step
    simulation from an event-engine run into a handful of multiplies.
    A pair with no fitted model (all probes OOM'd) predicts ``inf``,
    as does any wire size at or beyond the pair's observed OOM
    boundary — the analytic estimate inherits the feasibility cliff.
    """

    def __init__(self, spec, a2a, compressor, calibration: Calibration):
        super().__init__(spec, a2a, compressor)
        self._calibration = calibration
        self._pair = (a2a.name, compressor.name)

    def measure_a2a_seconds(self, wire_bytes: float) -> float:
        calib = self._calibration
        model = calib.a2a_models.get(self._pair)
        if model is None:
            return float("inf")
        if wire_bytes >= calib.a2a_oom_wire_bytes.get(
            self._pair, float("inf")
        ):
            return float("inf")
        return model.predict(wire_bytes)

    def compress_seconds(self, raw_bytes: float) -> float:
        return self._calibration.codec_models[self.compressor.name][
            0
        ].predict(raw_bytes)

    def decompress_seconds(self, raw_bytes: float) -> float:
        return self._calibration.codec_models[self.compressor.name][
            1
        ].predict(raw_bytes)

    def expert_seconds(
        self, tokens: int, model_dim: int, hidden_dim: int
    ) -> float:
        flops = ffn_forward_flops(tokens, model_dim, hidden_dim)
        return self._calibration.gemm.gemm_time(flops)


def predict_step(
    cand: PlanCandidate,
    cfg: MoEModelConfig,
    spec: ClusterSpec,
    calibration: Calibration,
) -> StepBreakdown:
    """Analytic step-time estimate of one candidate (no event engine)."""
    policy = cand.policy()
    profiler = FittedProfiler(
        spec,
        a2a=get_a2a(policy.a2a),
        compressor=get_compressor(policy.compressor),
        calibration=calibration,
    )
    return simulate_model_step(
        cand.config(cfg), spec, policy, profiler=profiler
    )


# -- stage 3: validate + report ----------------------------------------------


@dataclass
class PlanReport:
    """The planner's full output; ``to_json()`` is byte-deterministic."""

    workload: str
    cluster: str
    seed: int
    budget: Optional[int]
    top_k: int
    space: PlanSpace
    calibration: Calibration
    #: All candidates with a finite analytic estimate, best first.
    scored: int
    #: Candidates validated with real simulations (== len(validated)).
    simulated: int
    recommended: PlanCandidate
    predicted_s: float
    measured_s: float
    validated: List[dict] = field(default_factory=list)
    #: Regret vs the exhaustive sweep (None unless requested).
    regret: Optional[dict] = None
    #: Validation simulations already present in the shared cache.
    #: Runtime-dependent, so it is *excluded* from the canonical JSON
    #: (the report must be byte-identical across reruns).
    cache_hits: int = 0

    @property
    def prediction_error_pct(self) -> float:
        """Signed analytic-vs-simulated error of the recommendation."""
        return (self.predicted_s - self.measured_s) / self.measured_s * 100.0

    def recommendation(self) -> dict:
        """The deployable config: policy knobs + layer knobs."""
        rec = self.recommended.to_dict()
        rec["layer"] = layer_recommendation(self.recommended.partitions)
        return rec

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "cluster": self.cluster,
            "seed": self.seed,
            "budget": self.budget,
            "top_k": self.top_k,
            "space": self.space.to_dict(),
            "space_size": self.space.size,
            "calibration": self.calibration.to_dict(),
            "scored": self.scored,
            "simulated": self.simulated,
            "recommendation": self.recommendation(),
            "predicted_s": self.predicted_s,
            "measured_s": self.measured_s,
            "prediction_error_pct": self.prediction_error_pct,
            "validated": self.validated,
            "regret": self.regret,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def summary_lines(self) -> List[str]:
        """Human-readable digest (CLI + bench rendering)."""
        rec = self.recommended
        layer = layer_recommendation(rec.partitions)
        lines = [
            f"workload {self.workload} on {self.cluster}",
            f"probes: {self.calibration.num_probes}"
            + (f" (budget {self.budget})" if self.budget else ""),
            f"space: {self.space.size} configurations, "
            f"{self.scored} analytically feasible, "
            f"{self.simulated} simulated for validation",
            f"recommendation: scheduler={rec.scheduler} a2a={rec.a2a} "
            f"codec={rec.compressor} r={rec.partitions} "
            f"capacity_factor={rec.capacity_factor:g}",
            f"  layer: expert_impl={layer['expert_impl']} "
            f"dispatch_mode={layer['dispatch_mode']} "
            f"pipeline={layer['pipeline']} "
            f"num_chunks={layer['num_chunks']}",
            f"predicted {self.predicted_s * 1e3:.2f} ms, simulated "
            f"{self.measured_s * 1e3:.2f} ms "
            f"({self.prediction_error_pct:+.1f}% analytic error)",
        ]
        if self.regret is not None:
            lines.append(
                f"regret vs exhaustive sweep "
                f"({self.regret['exhaustive_simulated']} configs): "
                f"{self.regret['regret_pct']:+.2f}% "
                f"(optimum {self.regret['best_label']}, "
                f"{self.regret['best_s'] * 1e3:.2f} ms)"
            )
        return lines


def plan(
    cfg: MoEModelConfig,
    spec: ClusterSpec,
    space: Optional[PlanSpace] = None,
    seed: int = 0,
    budget: Optional[int] = None,
    top_k: int = 8,
    cache_path=None,
    processes: Optional[int] = None,
    regret: bool = False,
) -> PlanReport:
    """Run all three planner stages and return the report.

    ``cache_path`` names the shared sweep cache the validation (and
    the optional exhaustive regret sweep) lands in; ``top_k`` bounds
    how many candidates are simulated for real — strictly fewer than
    the exhaustive sweep whenever ``top_k < space.size``.  ``regret=True``
    additionally runs the exhaustive sweep over the same grid and
    reports the recommendation's regret against its optimum.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    space = space or PlanSpace()
    calibration = calibrate(cfg, spec, space, seed=seed, budget=budget)

    candidates = space.candidates()
    estimates = [
        (cand, predict_step(cand, cfg, spec, calibration))
        for cand in candidates
    ]
    feasible = [
        (cand, est)
        for cand, est in estimates
        if not est.oom and np.isfinite(est.total_s)
    ]
    if not feasible:
        raise RuntimeError(
            "planner found no feasible candidate: every configuration "
            "in the space OOMs under the fitted models"
        )
    feasible.sort(key=lambda pair: (pair[1].total_s, pair[0].label))
    top = feasible[: min(top_k, len(feasible))]

    tasks = [cand.task(cfg) for cand, _ in top]
    cache_hits = 0
    if cache_path is not None:
        cache = SweepCache(cache_path)
        cache_hits = sum(
            1 for t in tasks if cache.get(task_key(t, spec)) is not None
        )
    results = run_sweep(
        tasks, spec, cache_path=cache_path, processes=processes
    )

    validated = []
    best: Optional[Tuple[PlanCandidate, float, float]] = None
    for (cand, est), measured in zip(top, results):
        entry = {
            "candidate": cand.to_dict(),
            "label": cand.label,
            "predicted_s": est.total_s,
            "measured_s": measured.total_s,
            "oom": measured.oom,
        }
        validated.append(entry)
        if measured.oom or not np.isfinite(measured.total_s):
            continue
        if best is None or (measured.total_s, cand.label) < (
            best[2],
            best[0].label,
        ):
            best = (cand, est.total_s, measured.total_s)
    if best is None:
        raise RuntimeError(
            "planner validation failed: every top-K candidate OOM'd in "
            "the real simulator — the analytic estimate missed a "
            "feasibility cliff; widen top_k or the probe budget"
        )

    regret_info = None
    if regret:
        exhaustive = run_sweep(
            space.tasks(cfg), spec, cache_path=cache_path, processes=processes
        )
        finite = [
            (r.total_s, cand.label)
            for cand, r in zip(candidates, exhaustive)
            if not r.oom and np.isfinite(r.total_s)
        ]
        best_s, best_label = min(finite)
        regret_info = {
            "exhaustive_simulated": space.size,
            "best_s": best_s,
            "best_label": best_label,
            "regret_pct": (best[2] - best_s) / best_s * 100.0,
        }

    return PlanReport(
        workload=cfg.name,
        cluster=spec.name,
        seed=seed,
        budget=budget,
        top_k=top_k,
        space=space,
        calibration=calibration,
        scored=len(feasible),
        simulated=len(tasks),
        recommended=best[0],
        predicted_s=best[1],
        measured_s=best[2],
        validated=validated,
        regret=regret_info,
        cache_hits=cache_hits,
    )
