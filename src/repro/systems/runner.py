"""Comparison harness: run model configs across system policies.

Shares one :class:`~repro.core.profiler.Profiler` per (a2a, codec)
pair so large sweeps (the paper's 675-configuration Figure 8) reuse
all-to-all measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..cluster.topology import ClusterSpec
from ..collectives.base import get_a2a
from ..compression.base import get_compressor
from ..core.profiler import Profiler
from ..core.system import StepBreakdown, SystemPolicy, simulate_model_step
from ..models.configs import MoEModelConfig


class SystemRunner:
    """Runs step-time simulations with cached profilers."""

    def __init__(self, spec: ClusterSpec):
        self.spec = spec
        self._profilers: Dict[Tuple[str, str], Profiler] = {}

    def profiler_for(self, policy: SystemPolicy) -> Profiler:
        """The shared profiler of this policy's (a2a, codec) pair."""
        key = (policy.a2a, policy.compressor)
        if key not in self._profilers:
            self._profilers[key] = Profiler(
                self.spec,
                a2a=get_a2a(policy.a2a),
                compressor=get_compressor(policy.compressor),
            )
        return self._profilers[key]

    def step(self, cfg: MoEModelConfig, policy: SystemPolicy) -> StepBreakdown:
        """One model step under one policy."""
        return simulate_model_step(
            cfg, self.spec, policy, profiler=self.profiler_for(policy)
        )

    def compare(
        self, cfg: MoEModelConfig, policies: Iterable[SystemPolicy]
    ) -> Dict[str, StepBreakdown]:
        """The same model under several policies, keyed by policy name."""
        return {p.name: self.step(cfg, p) for p in policies}


@dataclass
class SpeedupStats:
    """Summary of a speedup distribution (paper Fig. 8)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    histogram: List[Tuple[float, float, int]]  # (lo, hi, count)

    @staticmethod
    def from_values(
        values: List[float], bin_edges: Optional[List[float]] = None
    ) -> "SpeedupStats":
        if not values:
            raise ValueError("no speedup values")
        if bin_edges is None:
            bin_edges = [1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 2.0, 10.0]
        histogram = []
        for lo, hi in zip(bin_edges[:-1], bin_edges[1:]):
            histogram.append(
                (lo, hi, sum(1 for v in values if lo <= v < hi))
            )
        below = sum(1 for v in values if v < bin_edges[0])
        if below:
            histogram.insert(0, (0.0, bin_edges[0], below))
        return SpeedupStats(
            count=len(values),
            mean=sum(values) / len(values),
            minimum=min(values),
            maximum=max(values),
            histogram=histogram,
        )

    def render(self, width: int = 40) -> str:
        """ASCII histogram."""
        peak = max((c for *_edges, c in self.histogram), default=1)
        rows = []
        for lo, hi, count in self.histogram:
            bar = "#" * int(round(width * count / peak)) if peak else ""
            rows.append(f"[{lo:4.2f}, {hi:4.2f}) {count:4d} {bar}")
        rows.append(
            f"n={self.count} mean={self.mean:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f}"
        )
        return "\n".join(rows)
