"""Parallel sweep runner with a keyed on-disk result cache.

The paper's evaluation replays large configuration grids — Figure 8
alone is 675 grid points x 2 policies — and every point is a
deterministic function of (model config, cluster spec, policy, skew).
This module exploits that determinism twice, the way FSMoE-style
schedulers build on cached per-task performance models instead of
re-measuring everything:

* **caching** — every simulated step is stored under a content hash of
  its full configuration in an append-friendly JSONL file, so a re-run
  of a sweep (or a different sweep sharing points) replays from disk
  in milliseconds;
* **parallelism** — cache misses are partitioned into chunks executed
  by a ``multiprocessing`` pool, each worker holding its own
  :class:`~repro.systems.runner.SystemRunner` so profiler measurements
  are still reused within a chunk.

Because the simulator is deterministic, the parallel runner produces
*byte-identical* results to the serial one (asserted in
``tests/systems/test_sweep.py``); result order always follows task
order regardless of worker scheduling.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import ClusterSpec
from ..core.imbalance import RoutingSkew
from ..core.system import (
    LayerTiming,
    StepBreakdown,
    SystemPolicy,
    simulate_model_step,
)
from ..core.tasks import TaskDurations
from ..models.configs import MoEModelConfig
from .runner import SystemRunner

#: Bump when the simulator's semantics change in a way that
#: invalidates previously cached step results.
CACHE_VERSION = 1

#: Environment override for the worker count (0 or 1 forces serial).
PROCESSES_ENV = "REPRO_SWEEP_PROCESSES"


@dataclass(frozen=True)
class SweepTask:
    """One point of a sweep: simulate ``cfg`` under ``policy``.

    ``skew`` optionally injects dynamic routing imbalance (the
    imbalance ablation sweeps it); it is part of the cache key.
    """

    cfg: MoEModelConfig
    policy: SystemPolicy
    skew: Optional[RoutingSkew] = None


def _canonical(value):
    """A stable JSON-encodable view of dataclasses / primitives.

    Non-finite floats become string sentinels: :func:`task_key` hashes
    with ``allow_nan=False`` (strict JSON), so an ``inf`` reaching a
    cfg/spec/policy field (an unlimited-bandwidth link, an OOM-priced
    field) must not crash key computation.  The sentinels are plain
    strings, so they cannot collide with the float they stand for.
    Dict keys are stringified and sorted *by that string*, so
    heterogeneous key types (``{1: .., "a": ..}``) canonicalize
    deterministically instead of raising ``TypeError``; two distinct
    keys that stringify identically are rejected loudly.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = dataclasses.asdict(value)
        return {k: _canonical(v) for k, v in sorted(fields.items())}
    if isinstance(value, dict):
        out = {}
        for key, v in sorted(value.items(), key=lambda kv: str(kv[0])):
            text = str(key)
            if text in out:
                raise ValueError(
                    f"ambiguous cache-key dict: two keys stringify to "
                    f"{text!r}"
                )
            out[text] = _canonical(v)
        return out
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "__nan__"
        return "__inf__" if value > 0 else "__-inf__"
    return value


def task_key(task: SweepTask, spec: ClusterSpec) -> str:
    """Content hash identifying one (config, policy, skew, cluster)."""
    payload = {
        "version": CACHE_VERSION,
        "cfg": _canonical(task.cfg),
        "policy": _canonical(task.policy),
        "skew": _canonical(task.skew) if task.skew is not None else None,
        "spec": _canonical(spec),
    }
    blob = json.dumps(payload, sort_keys=True, allow_nan=False)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- StepBreakdown <-> JSON record ------------------------------------------


def breakdown_to_dict(b: StepBreakdown) -> dict:
    """Flatten a :class:`StepBreakdown` into JSON-serializable floats.

    Infinities (OOM timings) rely on Python's default non-strict JSON
    round trip (``Infinity`` literals), which ``json.load`` restores
    exactly.
    """
    d = b.moe_layer.durations
    return {
        "model": b.model,
        "policy": b.policy,
        "forward_s": b.moe_layer.forward_s,
        "backward_s": b.moe_layer.backward_s,
        "durations": {
            "compress": d.compress,
            "a2a": d.a2a,
            "decompress": d.decompress,
            "expert": d.expert,
        },
        "num_moe_layers": b.num_moe_layers,
        "attention_s": b.attention_s,
        "gate_s": b.gate_s,
        "head_s": b.head_s,
        "allreduce_s": b.allreduce_s,
        "optimizer_s": b.optimizer_s,
        "memory_bytes": b.memory_bytes,
        "oom": b.oom,
        "partitions": b._partitions,
    }


def breakdown_from_dict(record: dict) -> StepBreakdown:
    """Rebuild the exact :class:`StepBreakdown` a worker computed."""
    d = record["durations"]
    return StepBreakdown(
        model=record["model"],
        policy=record["policy"],
        moe_layer=LayerTiming(
            forward_s=record["forward_s"],
            backward_s=record["backward_s"],
            durations=TaskDurations(
                compress=d["compress"],
                a2a=d["a2a"],
                decompress=d["decompress"],
                expert=d["expert"],
            ),
        ),
        num_moe_layers=record["num_moe_layers"],
        attention_s=record["attention_s"],
        gate_s=record["gate_s"],
        head_s=record["head_s"],
        allreduce_s=record["allreduce_s"],
        optimizer_s=record["optimizer_s"],
        memory_bytes=record["memory_bytes"],
        oom=record["oom"],
        _partitions=record["partitions"],
    )


#: First-line marker of the JSONL cache format.
CACHE_FORMAT = "sweep-cache-jsonl"


class SweepCache:
    """A JSONL file of ``task_key -> StepBreakdown record``.

    Layout: a header line ``{"version": ..., "format":
    "sweep-cache-jsonl"}`` followed by one ``{"key": ..., "record":
    ...}`` entry per line.  :meth:`save` *appends* only the entries
    put since the last save — a sweep adding 10 points to a 10k-entry
    cache writes 10 lines, not the whole file — and concurrent writers
    sharing one path (e.g. two bench processes both filling
    ``benchmarks/out/sweep_cache.json``) interleave appends without a
    read-merge-write race window: no writer ever rewrites another's
    lines.  Keys are content hashes of the full task configuration and
    the simulator is deterministic, so a duplicate key is by
    construction the identical record; loading keeps the last
    occurrence and compacts the file (atomic tmp+replace) when it
    finds duplicates or the pre-JSONL single-document format.

    Corrupt entries — a torn trailing line from a writer killed
    mid-append, or any non-JSON garbage — are *quarantined*: moved
    verbatim to a ``.bad`` sidecar (``<path>.bad``, append-only) and
    compacted out of the main file, so nothing is silently dropped,
    nothing crashes the load, and an operator can inspect exactly what
    was torn.  ``quarantined_lines`` counts this load's victims.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._pending: Dict[str, dict] = {}
        self.entries, needs_compaction, bad_lines = self._read_disk()
        #: Corrupt lines moved to the ``.bad`` sidecar by this load.
        self.quarantined_lines = len(bad_lines)
        if bad_lines:
            try:
                self._quarantine(bad_lines)
                self._write_all(self.entries)
                needs_compaction = False
            except OSError:
                pass  # read-only location: serve entries from memory
        if needs_compaction and self.entries:
            try:
                self._write_all(self.entries)
            except OSError:
                pass  # read-only location: serve entries from memory

    @property
    def bad_path(self) -> Path:
        """The quarantine sidecar of this cache file."""
        return self.path.with_suffix(self.path.suffix + ".bad")

    def _quarantine(self, bad_lines: List[str]) -> None:
        """Append corrupt lines verbatim to the ``.bad`` sidecar."""
        self.bad_path.parent.mkdir(parents=True, exist_ok=True)
        with self.bad_path.open("a", encoding="utf-8") as fh:
            for line in bad_lines:
                fh.write(line + "\n")

    # -- on-disk format ------------------------------------------------------
    @staticmethod
    def _entry_line(key: str, record: dict) -> str:
        return json.dumps({"key": key, "record": record}) + "\n"

    def _read_disk(self) -> Tuple[Dict[str, dict], bool, List[str]]:
        """-> (entries, needs_compaction, bad_lines).

        Empty on missing/stale-version files.  Compaction is requested
        when the file is legacy single-document JSON or contains
        duplicate keys.  ``bad_lines`` collects corrupt/non-JSON lines
        for quarantine (a stale-but-valid version header is *not*
        corruption and quarantines nothing).
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}, False, []
        lines = text.splitlines()
        try:
            head = json.loads(lines[0]) if lines else None
        except ValueError:
            head = None
        if isinstance(head, dict) and head.get("format") == CACHE_FORMAT:
            if head.get("version") != CACHE_VERSION:
                return {}, False, []
            entries: Dict[str, dict] = {}
            duplicates = False
            bad: List[str] = []
            for line in lines[1:]:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except ValueError:
                    bad.append(line)  # torn/partial append
                    continue
                if not isinstance(obj, dict):
                    bad.append(line)
                    continue
                key, record = obj.get("key"), obj.get("record")
                if not isinstance(key, str) or not isinstance(record, dict):
                    bad.append(line)
                    continue
                duplicates |= key in entries
                entries[key] = record
            return entries, duplicates, bad
        # Legacy format: one JSON document {"version": .., "entries": ..}.
        try:
            blob = json.loads(text)
        except ValueError:
            # Neither JSONL nor a JSON document: the whole file is
            # corrupt — quarantine every non-empty line.
            return {}, False, [ln for ln in lines if ln.strip()]
        if not isinstance(blob, dict) or blob.get("version") != CACHE_VERSION:
            return {}, False, []
        legacy = blob.get("entries", {})
        if not isinstance(legacy, dict):
            return {}, False, []
        return legacy, True, []  # migrate to JSONL

    def _has_header(self) -> bool:
        """Whether the on-disk file starts with a current JSONL header."""
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                head = json.loads(fh.readline())
        except (OSError, ValueError):
            return False
        return (
            isinstance(head, dict)
            and head.get("format") == CACHE_FORMAT
            and head.get("version") == CACHE_VERSION
        )

    def _write_all(self, entries: Dict[str, dict]) -> None:
        """Atomically rewrite the whole file (header + every entry)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(
                json.dumps({"version": CACHE_VERSION, "format": CACHE_FORMAT})
                + "\n"
            )
            for key, record in entries.items():
                fh.write(self._entry_line(key, record))
        tmp.replace(self.path)

    # -- the cache interface -------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def get(self, key: str) -> Optional[dict]:
        return self.entries.get(key)

    def put(self, key: str, record: dict) -> None:
        self.entries[key] = record
        self._pending[key] = record

    def save(self) -> None:
        """Persist entries put since the last save, by appending.

        When the on-disk file already carries the JSONL header, this
        is a pure append of the pending lines.  Otherwise (fresh path,
        or the file was replaced by a legacy/corrupt/stale document
        after load) the whole cache is rewritten atomically, unioned
        with whatever valid entries the file holds at write time.
        """
        if not self._pending:
            return
        if self._has_header():
            with self.path.open("r+", encoding="utf-8") as fh:
                fh.seek(0, os.SEEK_END)
                if fh.tell() > 0:
                    fh.seek(fh.tell() - 1)
                    if fh.read(1) != "\n":
                        # A torn append left no trailing newline; start
                        # a fresh line so ours stays parseable.
                        fh.write("\n")
                for key, record in self._pending.items():
                    fh.write(self._entry_line(key, record))
        else:
            merged, _, _ = self._read_disk()
            merged.update(self.entries)
            self.entries = merged
            self._write_all(merged)
        self._pending.clear()


# -- execution ---------------------------------------------------------------


def _simulate(runner: SystemRunner, task: SweepTask) -> dict:
    result = simulate_model_step(
        task.cfg,
        runner.spec,
        task.policy,
        profiler=runner.profiler_for(task.policy),
        skew=task.skew,
    )
    return breakdown_to_dict(result)


def _run_chunk(args: Tuple[ClusterSpec, List[Tuple[int, SweepTask]]]):
    """Worker entry point: simulate one chunk with a private runner."""
    spec, indexed_tasks = args
    runner = SystemRunner(spec)
    return [(idx, _simulate(runner, task)) for idx, task in indexed_tasks]


def default_processes() -> int:
    """Worker count: ``REPRO_SWEEP_PROCESSES`` or the CPU count.

    An unparseable override raises instead of silently falling back to
    the CPU count — a typo'd knob must not quietly serialize (or
    quietly parallelize) a 675-configuration sweep.
    """
    env = os.environ.get(PROCESSES_ENV)
    if env is not None:
        try:
            return max(int(env), 1)
        except ValueError:
            raise ValueError(
                f"{PROCESSES_ENV} must be an integer worker count, "
                f"got {env!r}"
            ) from None
    return os.cpu_count() or 1


def run_sweep(
    tasks: Sequence[SweepTask],
    spec: ClusterSpec,
    cache_path=None,
    processes: Optional[int] = None,
    chunks_per_process: int = 2,
) -> List[StepBreakdown]:
    """Simulate every task, in task order, parallel and cached.

    ``cache_path`` (optional) names the JSON result cache: hits skip
    simulation entirely, misses are computed and written back.
    ``processes`` defaults to :func:`default_processes`; 1 runs
    serially in-process with a single shared runner (maximal profiler
    reuse — the previous serial-sweep behaviour).
    """
    tasks = list(tasks)
    cache = SweepCache(cache_path) if cache_path is not None else None
    keys = [task_key(task, spec) for task in tasks]

    records: Dict[int, dict] = {}
    misses: List[Tuple[int, SweepTask]] = []
    for idx, (task, key) in enumerate(zip(tasks, keys)):
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            records[idx] = hit
        else:
            misses.append((idx, task))

    if processes is None:
        processes = default_processes()
    processes = max(1, min(processes, len(misses) or 1))

    if misses and processes == 1:
        runner = SystemRunner(spec)
        for idx, task in misses:
            records[idx] = _simulate(runner, task)
    elif misses:
        num_chunks = min(
            len(misses), max(processes * chunks_per_process, 1)
        )
        chunks = [
            (spec, misses[i::num_chunks]) for i in range(num_chunks)
        ]
        import multiprocessing

        with multiprocessing.Pool(processes) as pool:
            for chunk_result in pool.map(_run_chunk, chunks):
                for idx, record in chunk_result:
                    records[idx] = record

    if cache is not None:
        for idx, _task in misses:
            cache.put(keys[idx], records[idx])
        cache.save()

    return [breakdown_from_dict(records[idx]) for idx in range(len(tasks))]
