"""Named system policies: ScheMoE, its ablations, and the baselines.

Each is a :class:`~repro.core.system.SystemPolicy` capturing how that
training system executes an MoE layer:

* **Naive** — no compression, NCCL-A2A, strictly sequential tasks
  (paper Fig. 5(a) / Table 9 row 1).
* **Tutel** — no compression, NCCL-based all-to-all, chunk-major
  pipelining with its heuristically chosen degree (we use the paper's
  demonstration degree r = 2).  Tutel's 2DH-A2A exists as an optional
  algorithm for very large scale; its default dispatch path is
  NCCL-based, and at the paper's message sizes 2DH would only slow it
  down (Fig. 9), so the stronger NCCL variant is the fair baseline.
* **FasterMoE** — no compression, NCCL-A2A, fixed pipeline degree 2,
  plus its shadow-expert replication pool, which prices the extra
  memory behind its BERT-Large-MoE OOM (paper Table 8).
* **ScheMoE** — ZFP compression, Pipe-A2A, OptSche ordering, r = 2;
  with the partial variants ScheMoE-Z and ScheMoE-ZP of the ablation
  study (paper Table 9/10).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.system import SystemPolicy


def naive() -> SystemPolicy:
    """No compression, no pipelining, sequential execution."""
    return SystemPolicy(
        name="Naive",
        compressor="none",
        a2a="nccl",
        scheduler="sequential",
        partitions=1,
    )


def tutel() -> SystemPolicy:
    """Tutel: chunk-pipelined NCCL all-to-all, no compression.

    Tutel searches the pipeline degree heuristically (paper Section
    8), so the policy chooses the best of r in {1, 2, 4} per layer.
    """
    return SystemPolicy(
        name="Tutel",
        compressor="none",
        a2a="nccl",
        scheduler="chunk-pipeline",
        partitions=2,
        partition_candidates=(1, 2, 4),
    )


def fastermoe() -> SystemPolicy:
    """FasterMoE: fixed degree-2 pipeline + shadow-expert memory pool."""
    return SystemPolicy(
        name="Faster-MoE",
        compressor="none",
        a2a="nccl",
        scheduler="chunk-pipeline",
        partitions=2,
        shadow_expert_layers=6,
        comm_inefficiency=1.10,
        enforces_capacity=False,
    )


def schemoe() -> SystemPolicy:
    """Full ScheMoE: ZFP + Pipe-A2A + OptSche, adaptive degree.

    The paper treats choosing r as orthogonal (PipeMoE [43]) and the
    real system picks it adaptively; the policy chooses the best of
    r in {1, 2, 4} per layer, then OptSche orders the tasks.
    """
    return SystemPolicy(
        name="ScheMoE",
        compressor="zfp",
        a2a="pipe",
        scheduler="optsche",
        partitions=2,
        partition_candidates=(1, 2, 4),
    )


def schemoe_no_compression() -> SystemPolicy:
    """ScheMoE with Pipe-A2A + OptSche but raw fp32 payloads.

    The configuration behind the paper's Figure 8 sweep: the 675-layer
    grid compares scheduling + Pipe-A2A against Tutel (compression is
    introduced separately in Section 6.2's convergence study); plain
    Pipe-A2A + OptSche gains a few percent on small layers and up to
    ~1.5x on bandwidth-bound ones, averaging ~1.2x.
    """
    return SystemPolicy(
        name="ScheMoE-NC",
        compressor="none",
        a2a="pipe",
        scheduler="optsche",
        partitions=2,
        partition_candidates=(1, 2, 4),
    )


def schemoe_z() -> SystemPolicy:
    """Ablation: ZFP only (paper Table 9 row ScheMoE-Z)."""
    return SystemPolicy(
        name="ScheMoE-Z",
        compressor="zfp",
        a2a="nccl",
        scheduler="sequential",
        partitions=1,
    )


def schemoe_zp() -> SystemPolicy:
    """Ablation: ZFP + Pipe-A2A, no scheduling (ScheMoE-ZP)."""
    return SystemPolicy(
        name="ScheMoE-ZP",
        compressor="zfp",
        a2a="pipe",
        scheduler="sequential",
        partitions=1,
    )


def ablation_suite() -> List[SystemPolicy]:
    """The four rows of paper Table 9, in order."""
    return [naive(), schemoe_z(), schemoe_zp(), schemoe()]


def comparison_suite() -> List[SystemPolicy]:
    """The systems compared in paper Tables 7 and 8."""
    return [tutel(), fastermoe(), schemoe()]


ALL_POLICIES: Dict[str, SystemPolicy] = {
    p.name: p
    for p in [
        naive(),
        tutel(),
        fastermoe(),
        schemoe(),
        schemoe_no_compression(),
        schemoe_z(),
        schemoe_zp(),
    ]
}
