"""Training-system policies (ScheMoE, Tutel, FasterMoE, ablations).

Each baseline of the paper's evaluation is expressed as a
:class:`~repro.core.system.SystemPolicy` — a (codec, A2A algorithm,
scheduler, partition degree, memory overhead) tuple — executed by the
shared step-time simulator, so every comparison runs on identical
simulated hardware the way the paper's comparisons ran on identical
physical hardware.
"""

from .planner import (
    Calibration,
    FittedProfiler,
    PlanCandidate,
    PlanReport,
    PlanSpace,
    calibrate,
    plan,
)
from .policies import (
    ALL_POLICIES,
    ablation_suite,
    comparison_suite,
    fastermoe,
    naive,
    schemoe,
    schemoe_no_compression,
    schemoe_z,
    schemoe_zp,
    tutel,
)
from .runner import SpeedupStats, SystemRunner
from .sweep import SweepCache, SweepTask, run_sweep, task_key

__all__ = [
    "ALL_POLICIES",
    "Calibration",
    "FittedProfiler",
    "PlanCandidate",
    "PlanReport",
    "PlanSpace",
    "SpeedupStats",
    "SweepCache",
    "SweepTask",
    "SystemRunner",
    "ablation_suite",
    "calibrate",
    "comparison_suite",
    "fastermoe",
    "naive",
    "plan",
    "run_sweep",
    "schemoe",
    "schemoe_no_compression",
    "schemoe_z",
    "schemoe_zp",
    "task_key",
    "tutel",
]
