"""Command-line interface: reproduce any paper experiment in one line.

Usage::

    python -m repro list                 # available experiments
    python -m repro table7               # CT-MoE-x system comparison
    python -m repro fig9                 # A2A algorithm sweep
    python -m repro a2a --algo pipe --size 256e6
    python -m repro a2a --algo pipe --faults plan.json
    python -m repro step --model ct_moe --layers 12 --policy ScheMoE
    python -m repro plan --layers 12 --budget 40 --cache /tmp/plan.json
    python -m repro faults --slowdown 2.0 --scheduler optsche
    python -m repro faults --plan plan.json --write-demo plan.json
    python -m repro faults --write-demo demo.json --recovery
    python -m repro reshard --kill 1 --strategy checkpoint
    python -m repro reshard --plan demo.json
    python -m repro pipeline --num-chunks 4 --workers 4
    python -m repro infer --tokens 4096 --experts 32
    python -m repro trace --out /tmp/schedule.json

Each experiment prints the paper-formatted table the corresponding
benchmark asserts on (the benchmarks under ``benchmarks/`` are the
tested, canonical versions; this CLI is for interactive exploration).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cluster import get_preset, paper_testbed
from .collectives import get_a2a, measure_a2a, theoretical_max_speedup
from .models import PAPER_MODELS, ablation_layer, bert_large_moe, ct_moe
from .systems import (
    ALL_POLICIES,
    SystemRunner,
    ablation_suite,
    comparison_suite,
)


def _runner(args) -> SystemRunner:
    return SystemRunner(get_preset(args.cluster))


def cmd_list(_args) -> int:
    """List experiments, policies, models and cluster presets."""
    print("experiments: table1 table7 table8 table10 fig9 a2a faults "
          "reshard step plan pipeline infer trace")
    print("policies:   ", ", ".join(sorted(ALL_POLICIES)))
    print("models:     ", ", ".join(sorted(PAPER_MODELS)))
    from .cluster.presets import PRESETS

    print("clusters:   ", ", ".join(sorted(PRESETS)))
    return 0


def cmd_table1(args) -> int:
    """Paper Table 1: A2A share of the CT-MoE-x step under Tutel."""
    runner = _runner(args)
    from .systems import tutel

    print(f"{'layers':>7} {'A2A(ms)':>9} {'step(ms)':>9} {'ratio':>6}")
    for layers in (12, 16, 20, 24):
        step = runner.step(ct_moe(layers), tutel())
        print(
            f"{layers:>7} {step.a2a_total_s * 1e3:>9.1f} "
            f"{step.total_s * 1e3:>9.1f} {step.a2a_ratio * 100:>5.1f}%"
        )
    return 0


def cmd_table7(args) -> int:
    """Paper Table 7: CT-MoE-x step time across systems."""
    runner = _runner(args)
    names = [p.name for p in comparison_suite()]
    print(f"{'x':>4}" + "".join(f"{n:>14}" for n in names))
    for layers in (12, 16, 20, 24):
        rows = runner.compare(ct_moe(layers), comparison_suite())
        cells = "".join(
            f"{'OOM':>14}" if rows[n].oom else f"{rows[n].total_s * 1e3:>12.0f}ms"
            for n in names
        )
        print(f"{layers:>4}{cells}")
    return 0


def cmd_table8(args) -> int:
    """Paper Table 8: BERT-Large-MoE comparison (FasterMoE OOM)."""
    runner = _runner(args)
    rows = runner.compare(bert_large_moe(), comparison_suite())
    tutel_t = rows["Tutel"].total_s
    for name, r in rows.items():
        t = "OOM" if r.oom else f"{r.total_s * 1e3:8.1f}ms"
        s = "-" if r.oom else f"{tutel_t / r.total_s:.2f}x"
        print(f"{name:<12} {t:>11} {s:>7} mem={r.memory_bytes / 2**30:.1f}GiB")
    return 0


def cmd_table10(args) -> int:
    """Paper Table 10: component ablation on the big MoE layer."""
    runner = _runner(args)
    rows = runner.compare(ablation_layer(), ablation_suite())
    base = rows["Naive"].total_s
    for name in ("Naive", "ScheMoE-Z", "ScheMoE-ZP", "ScheMoE"):
        r = rows[name]
        print(f"{name:<12} {r.total_s * 1e3:8.0f}ms {base / r.total_s:6.2f}x")
    return 0


def cmd_fig9(args) -> int:
    """Paper Figure 9: all-to-all algorithms by message size."""
    spec = get_preset(args.cluster)
    sizes = [1e4, 1e6, 1e7, 1e8, 6.4e8, 2e9]
    algos = ("nccl", "1dh", "2dh", "pipe")
    print(f"{'size':>9}" + "".join(f"{a:>12}" for a in algos) + f"{'eq18':>7}")
    for size in sizes:
        cells = ""
        for name in algos:
            r = measure_a2a(get_a2a(name), spec, size)
            cells += f"{'OOM':>12}" if r.oom else f"{r.seconds * 1e3:>10.2f}ms"
        print(
            f"{size:>9.0e}{cells}"
            f"{theoretical_max_speedup(spec, size):>6.2f}x"
        )
    return 0


def cmd_a2a(args) -> int:
    """Measure one all-to-all call on the selected cluster."""
    from .faults import load_fault_plan

    spec = get_preset(args.cluster)
    plan = load_fault_plan(args.faults) if args.faults else None
    result = measure_a2a(get_a2a(args.algo), spec, args.size, faults=plan)
    if result.oom:
        print(f"{args.algo} @ {args.size:.3e} B: OOM "
              f"(peak {result.peak_bytes_per_gpu / 2**30:.1f} GiB/GPU)")
        return 1
    print(
        f"{args.algo} @ {args.size:.3e} B/GPU: {result.seconds * 1e3:.3f} ms"
        f"  busbw {result.busbw_bps / 1e9:.2f} GB/s"
        f"  intra {result.stats['intra_bytes'] / 1e6:.1f} MB"
        f"  inter {result.stats['inter_bytes'] / 1e6:.1f} MB"
    )
    if "transient_failures" in result.stats:
        print(
            f"  transient failures "
            f"{result.stats['transient_failures']:.0f}, retries "
            f"{result.stats['transient_retries']:.0f}"
        )
    return 0


def cmd_faults(args) -> int:
    """Execute one MoE layer pass under a fault plan.

    Runs the layer twice — on the healthy cluster and under the plan —
    and reports the makespans and the degradation factor.  The
    schedule is planned against the healthy profile both times, so
    this shows how the chosen policy absorbs faults it did not plan
    for.  Without ``--plan``, a demo straggler plan (``--rank`` slowed
    ``--slowdown``x) is used; ``--write-demo`` saves that plan as JSON
    for editing, and with ``--recovery`` it writes a full
    recovery-enabled scenario instead — a kill→recover→rebalance demo
    for ``python -m repro reshard --plan`` with the fault plan embedded
    under its ``"faults"`` key.
    """
    from .compression import get_compressor
    from .core import EventExecutor, get_scheduler
    from .faults import load_fault_plan, save_fault_plan, single_straggler

    if args.plan:
        plan = load_fault_plan(args.plan)
    else:
        plan = single_straggler(rank=args.rank, slowdown=args.slowdown)
    if args.write_demo:
        if args.recovery:
            from .faults.recovery import RecoveryDemo, save_recovery_demo

            save_recovery_demo(RecoveryDemo(faults=plan), args.write_demo)
            print(f"recovery demo written to {args.write_demo}")
            return 0
        save_fault_plan(plan, args.write_demo)
        print(f"fault plan written to {args.write_demo}")
        return 0
    if args.recovery:
        print("--recovery only applies with --write-demo "
              "(use `repro reshard` to run a recovery scenario)")
        return 1

    spec = get_preset(args.cluster)
    cfg = ct_moe(args.layers)

    def run(faults):
        return EventExecutor(
            spec,
            get_a2a(args.algo),
            get_compressor("zfp"),
            get_scheduler(args.scheduler),
            partitions=2,
            faults=faults,
        ).run(cfg)

    healthy = run(None)
    faulted = run(plan)
    print(
        f"{cfg.name} layer pass, {args.scheduler} + {args.algo} on "
        f"{args.cluster}:"
    )
    print(f"  healthy makespan: {healthy.makespan * 1e3:9.3f} ms")
    print(f"  faulted makespan: {faulted.makespan * 1e3:9.3f} ms "
          f"({faulted.makespan / healthy.makespan:.2f}x)")
    for key in ("transient_failures", "transient_retries"):
        if key in faulted.traffic:
            print(f"  {key.replace('_', ' ')}: {faulted.traffic[key]:.0f}")
    return 0


def cmd_reshard(args) -> int:
    """Elastic re-sharding demo: kill → recover → rebalance.

    Runs the full recovery state machine on the real numerical
    substrate: a healthy expert-parallel forward, a worker death
    (capacity-dropped experts, renormalized gate), recovery — the
    survivors adopt the lost experts, whose parameters are restored
    from a crash-safe checkpoint or seeded re-init — and optionally a
    scale-up that admits a fresh worker.  After each transition the
    output is checked bit-for-bit against a freshly built group with
    the same placement (the recovery parity guarantee).  The re-shard
    exchange is then priced on the simulated cluster, healthy and
    under the scenario's fault plan, and weighed against continuing to
    step through the fault (``reshard_vs_degraded``).  Exit status is
    0 iff every parity check passed.
    """
    import tempfile
    from pathlib import Path

    import numpy as np

    from .compression import get_compressor
    from .core import EventExecutor, get_scheduler
    from .faults.recovery import (
        RecoveryController,
        RecoveryDemo,
        load_recovery_demo,
        price_reshard,
        reshard_vs_degraded,
    )
    from .moe import MoELayer
    from .moe.parallel import ExpertParallelGroup
    from .nn.serialization import save_checkpoint

    if args.plan:
        demo = load_recovery_demo(args.plan)
    else:
        from .faults import single_straggler

        demo = RecoveryDemo(
            num_workers=args.workers,
            num_experts=args.experts,
            tokens=args.tokens,
            kill_worker=args.kill,
            scale_up=not args.no_scale_up,
            seed=args.seed,
            strategy=args.strategy,
            faults=single_straggler(rank=args.kill, slowdown=args.slowdown),
        )

    def make_layer():
        return MoELayer(
            model_dim=demo.model_dim,
            hidden_dim=demo.hidden_dim,
            num_experts=demo.num_experts,
            rng=np.random.default_rng(demo.seed),
            top_k=2,
            # cf >= E/k: no token is ever dropped, the precondition for
            # exact layer<->group equivalence (see tests/moe).
            capacity_factor=demo.num_experts / 2.0,
            expert_impl="grouped",
        ).eval()

    layer = make_layer()
    group = ExpertParallelGroup(layer, demo.num_workers)
    rng = np.random.default_rng(demo.seed + 1)
    tokens = rng.standard_normal(
        (demo.tokens - demo.tokens % demo.num_workers, demo.model_dim)
    ).astype(np.float32)
    shards = list(np.split(tokens, demo.num_workers))

    healthy = group.forward_concatenated(shards)

    checkpoint = None
    tmpdir = None
    if demo.strategy == "checkpoint":
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-reshard-")
        checkpoint = Path(tmpdir.name) / "healthy.npz"
        save_checkpoint(layer, checkpoint, placement=group.placement)

    group.set_dead_workers({demo.kill_worker})
    degraded = group.forward_concatenated(shards)
    lost = tuple(sorted(group.dead_experts))

    ctrl = RecoveryController(
        group, checkpoint=checkpoint, reinit_seed=demo.seed
    )
    event = ctrl.recover()
    recovered = group.forward_concatenated(shards)

    # Parity: the recovered group vs a fresh group built directly on
    # the post-recovery placement (same borrowed parameters).
    fresh = ExpertParallelGroup(
        layer, demo.num_workers, placement=group.placement
    ).forward_concatenated(shards)
    parity = bool(np.array_equal(recovered, fresh))
    restored = (
        bool(np.array_equal(recovered, healthy))
        if demo.strategy == "checkpoint"
        else None
    )

    print(
        f"elastic re-sharding: E={demo.num_experts} P={demo.num_workers} "
        f"kill=worker {demo.kill_worker} strategy={demo.strategy}"
    )
    print(f"  lost experts {list(lost)} adopted by survivors: "
          f"placement v{event.old_version} -> v{event.new_version}, "
          f"moves {list(event.moves)}")
    print(f"  degraded forward differs from healthy: "
          f"{not np.array_equal(degraded, healthy)}")
    print(f"  recovered == fresh group w/ same placement: {parity}")
    if restored is not None:
        print(f"  checkpoint restore == pre-kill healthy output: {restored}")

    scale_ok = True
    if demo.scale_up:
        ev2 = ctrl.scale_up()
        grown = group.forward_concatenated(shards + [tokens[:0]])
        scale_ok = bool(np.array_equal(grown, recovered))
        print(f"  scale-up to P={group.num_workers}: moves "
              f"{list(ev2.moves)}, outputs unchanged: {scale_ok}")

    # Price the re-shard exchange on the simulated cluster and weigh
    # it against continuing to step through the fault.
    spec = get_preset(args.cluster)
    per_gpu = event.reshard_per_gpu_bytes
    reshard_healthy_s = price_reshard(spec, per_gpu, algo=args.algo)
    reshard_faulted_s = price_reshard(
        spec, per_gpu, algo=args.algo, faults=demo.faults
    )
    cfg = ct_moe(args.layers)

    def makespan(faults):
        return EventExecutor(
            spec,
            get_a2a(args.algo),
            get_compressor("zfp"),
            get_scheduler("optsche"),
            partitions=2,
            faults=faults,
        ).run(cfg).makespan

    continue_s = makespan(demo.faults)  # every step pays the fault
    healthy_s = makespan(None)  # post-reshard steps run clean
    decision = reshard_vs_degraded(
        reshard_faulted_s, continue_s, healthy_s, args.horizon
    )
    print(f"  re-shard A2A ({per_gpu} B/GPU busiest endpoint): "
          f"{reshard_healthy_s * 1e3:.3f} ms healthy, "
          f"{reshard_faulted_s * 1e3:.3f} ms through the fault")
    print(f"  step through fault {continue_s * 1e3:.3f} ms vs "
          f"{healthy_s * 1e3:.3f} ms after re-shard: breakeven "
          f"{decision.breakeven_steps:.1f} steps; over {args.horizon} "
          f"steps -> {decision.recommendation}")

    if tmpdir is not None:
        tmpdir.cleanup()
    ok = parity and scale_ok and restored is not False
    print(f"  all parity checks passed: {ok}")
    return 0 if ok else 1


def cmd_step(args) -> int:
    """Per-component breakdown of one model step under a policy."""
    runner = _runner(args)
    if args.model == "ct_moe":
        cfg = ct_moe(args.layers)
    elif args.model == "bert_large_moe":
        cfg = bert_large_moe()
    else:
        cfg = PAPER_MODELS[args.model]()
    policy = ALL_POLICIES[args.policy]
    result = runner.step(cfg, policy)
    if result.oom:
        print(f"{cfg.name} under {policy.name}: OOM "
              f"({result.memory_bytes / 2**30:.1f} GiB needed)")
        return 1
    print(f"{cfg.name} under {policy.name}: {result.total_s * 1e3:.1f} ms/step")
    print(f"  MoE layers: {result.moe_total_s * 1e3:9.1f} ms "
          f"(A2A tasks {result.a2a_total_s * 1e3:.1f} ms, "
          f"ratio {result.a2a_ratio * 100:.1f}%)")
    print(f"  attention:  {result.attention_s * 1e3:9.1f} ms")
    print(f"  gate:       {result.gate_s * 1e3:9.1f} ms")
    print(f"  embed/head: {result.head_s * 1e3:9.1f} ms")
    print(f"  allreduce:  {result.allreduce_s * 1e3:9.1f} ms")
    print(f"  optimizer:  {result.optimizer_s * 1e3:9.1f} ms")
    print(f"  memory:     {result.memory_bytes / 2**30:9.1f} GiB/GPU")
    return 0


def cmd_plan(args) -> int:
    """Auto-tune the system configuration for one workload.

    Runs the three-stage planner: a budgeted probe set calibrates
    alpha-beta and roofline cost models, the whole joint knob space is
    scored analytically against them, and only the top-K candidates
    are validated with real simulations (landing in ``--cache`` so
    reruns and sweeps share them).  ``--regret`` additionally runs the
    exhaustive sweep over the same grid and reports how far the
    recommendation is from its optimum.
    """
    from .systems import PlanSpace, plan

    if args.model == "ct_moe":
        cfg = ct_moe(args.layers)
    elif args.model == "bert_large_moe":
        cfg = bert_large_moe()
    else:
        cfg = PAPER_MODELS[args.model]()

    space_kwargs = {}
    for attr, flag, cast in (
        ("schedulers", args.schedulers, str),
        ("a2a_algorithms", args.a2a, str),
        ("compressors", args.codecs, str),
        ("partition_degrees", args.partitions, int),
        ("capacity_factors", args.capacity_factors, float),
    ):
        if flag:
            space_kwargs[attr] = tuple(
                cast(v) for v in flag.split(",") if v
            )
    space = PlanSpace(**space_kwargs)

    report = plan(
        cfg,
        get_preset(args.cluster),
        space=space,
        seed=args.seed,
        budget=args.budget,
        top_k=args.top_k,
        cache_path=args.cache or None,
        processes=args.processes,
        regret=args.regret,
    )
    for line in report.summary_lines():
        print(line)
    if args.cache:
        print(f"cache hits {report.cache_hits}/{report.simulated}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"report written to {args.out}")
    return 0


def cmd_pipeline(args) -> int:
    """Sync-vs-overlap chunked expert-parallel forward on real numerics.

    Builds one MoE layer shared by ``--workers`` logical workers, runs
    the chunked task-graph forward in both pipeline modes over the
    same shards, verifies the outputs are bit-identical, and reports
    the wall-clock per mode plus the speedup.  This is the paper's
    central mechanism on the numerical substrate — not the simulator.
    """
    import time

    import numpy as np

    from .compression import get_compressor
    from .moe import MoELayer
    from .moe.parallel import ExpertParallelGroup

    codec = get_compressor(args.compressor) if args.compressor else None
    layer = MoELayer(
        model_dim=args.model_dim,
        hidden_dim=args.hidden_dim,
        num_experts=args.experts,
        rng=np.random.default_rng(0),
        top_k=2,
        capacity_factor=2.0,
        compressor=codec,
        expert_impl="grouped",
    ).eval()
    rng = np.random.default_rng(1)
    tokens = rng.standard_normal(
        (args.tokens, args.model_dim)
    ).astype(np.float32)
    shards = list(np.split(tokens, args.workers))

    outputs, seconds = {}, {}
    for pipeline in ("sync", "overlap"):
        group = ExpertParallelGroup(
            layer,
            args.workers,
            pipeline=pipeline,
            num_chunks=args.num_chunks,
            scheduler=args.scheduler,
            link_bandwidth=(
                args.link_gbps * 1e9 / 8 if args.link_gbps else None
            ),
        )
        group.forward(shards)  # warm caches and the buffer pool
        best = float("inf")
        for _ in range(args.repeats):
            t0 = time.perf_counter()
            out = group.forward_concatenated(shards)
            best = min(best, time.perf_counter() - t0)
        outputs[pipeline], seconds[pipeline] = out, best

    exact = bool(np.array_equal(outputs["sync"], outputs["overlap"]))
    print(
        f"chunked expert-parallel forward: E={args.experts} "
        f"M={args.model_dim} T={args.tokens} P={args.workers} "
        f"r={args.num_chunks} codec={args.compressor or 'none'} "
        f"scheduler={args.scheduler}"
    )
    print(f"  sync:    {seconds['sync'] * 1e3:8.2f} ms")
    print(f"  overlap: {seconds['overlap'] * 1e3:8.2f} ms "
          f"({seconds['sync'] / seconds['overlap']:.2f}x)")
    print(f"  outputs bit-identical: {exact}")
    return 0 if exact else 1


def cmd_infer(args) -> int:
    """Autograd-free inference forward vs the training-tape forward.

    Builds one MoE layer, runs the same batch through the regular
    (tape-building) ``eval()`` forward and through
    ``forward_inference`` — the process-wide ``inference_mode()`` plus
    an arena of pooled scratch buffers — verifies the outputs are
    bit-identical, and reports forward tokens/sec for both paths plus
    the arena's buffer-pool reuse counters.  A steady-state inference
    loop should show zero new pool misses after its first step.
    """
    import time

    import numpy as np

    from .moe import MoELayer

    layer = MoELayer(
        model_dim=args.model_dim,
        hidden_dim=args.hidden_dim,
        num_experts=args.experts,
        rng=np.random.default_rng(0),
        top_k=2,
        capacity_factor=2.0,
        expert_impl="grouped",
    ).eval()
    from .nn.tensor import Tensor

    rng = np.random.default_rng(1)
    tokens = rng.standard_normal(
        (args.tokens, args.model_dim)
    ).astype(np.float32)
    x = Tensor(tokens)

    baseline = layer(x).data.copy()  # training-tape forward, eval mode

    def best_of(fn):
        best = float("inf")
        for _ in range(args.repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    train_s = best_of(lambda: layer(x))
    inferred = layer.forward_inference(x).data
    exact = bool(np.array_equal(baseline, inferred))
    misses_after_warmup = layer._inference_arena.pool.misses
    infer_s = best_of(lambda: layer.forward_inference(x))
    stats = layer._inference_arena.stats()

    print(
        f"inference fast path: E={args.experts} M={args.model_dim} "
        f"H={args.hidden_dim} T={args.tokens} k=2"
    )
    print(f"  training-tape forward: {train_s * 1e3:8.2f} ms "
          f"({args.tokens / train_s:,.0f} tok/s)")
    print(f"  inference forward:     {infer_s * 1e3:8.2f} ms "
          f"({args.tokens / infer_s:,.0f} tok/s, "
          f"{train_s / infer_s:.2f}x)")
    print(f"  outputs bit-identical: {exact}")
    print(f"  arena pool: hits={stats['hits']} misses={stats['misses']} "
          f"bytes_allocated={stats['bytes_allocated']:,}")
    steady = stats["misses"] == misses_after_warmup
    print(f"  steady-state reuse (no new misses after warmup): {steady}")
    return 0 if exact and steady else 1


def cmd_trace(args) -> int:
    """Export a ScheMoE layer's forward schedule as a chrome trace."""
    import numpy as np

    from .core import ScheMoELayer
    from .core.trace import export_schedule_trace

    layer = ScheMoELayer(
        model_dim=args.model_dim,
        hidden_dim=args.hidden_dim,
        num_experts=32,
        rng=np.random.default_rng(0),
        compress_name=args.compressor,
        comm_name=args.algo,
        scheduler_name=args.scheduler,
        partitions=args.partitions,
    )
    plan = layer.plan(
        get_preset(args.cluster), batch_per_gpu=args.batch, seq_len=args.seq
    )
    export_schedule_trace(plan.forward, path=args.out)
    print(f"forward makespan {plan.forward.makespan * 1e3:.3f} ms; "
          f"trace written to {args.out}")
    print("open chrome://tracing or https://ui.perfetto.dev and load it")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (one subcommand per experiment)."""
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--cluster", default="paper_testbed",
        help="cluster preset (default: paper_testbed)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments/policies/models")
    sub.add_parser("table1", help="A2A ratio on CT-MoE-x (Table 1)")
    sub.add_parser("table7", help="CT-MoE-x system comparison (Table 7)")
    sub.add_parser("table8", help="BERT-Large-MoE comparison (Table 8)")
    sub.add_parser("table10", help="component ablation (Table 10)")
    sub.add_parser("fig9", help="A2A algorithm sweep (Figure 9)")

    p_a2a = sub.add_parser("a2a", help="measure one all-to-all")
    p_a2a.add_argument("--algo", default="pipe")
    p_a2a.add_argument("--size", type=float, default=2.56e8)
    p_a2a.add_argument(
        "--faults", metavar="PLAN_JSON",
        help="run on a faulted cluster (FaultPlan JSON file)",
    )

    p_step = sub.add_parser("step", help="one model step breakdown")
    p_step.add_argument("--model", default="ct_moe",
                        choices=sorted(PAPER_MODELS) + ["ct_moe"])
    p_step.add_argument("--layers", type=int, default=12)
    p_step.add_argument("--policy", default="ScheMoE",
                        choices=sorted(ALL_POLICIES))

    p_plan = sub.add_parser(
        "plan", help="auto-tune the system config for one workload"
    )
    p_plan.add_argument("--model", default="ct_moe",
                        choices=sorted(PAPER_MODELS) + ["ct_moe"])
    p_plan.add_argument("--layers", type=int, default=12)
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.add_argument(
        "--budget", type=int, default=None,
        help="cap on calibration probe measurements (default: no cap)",
    )
    p_plan.add_argument(
        "--top-k", type=int, default=8,
        help="analytic candidates validated by real simulation",
    )
    p_plan.add_argument(
        "--cache", default="",
        help="sweep-cache path shared with run_sweep ('' disables)",
    )
    p_plan.add_argument("--processes", type=int, default=None)
    p_plan.add_argument(
        "--regret", action="store_true",
        help="also run the exhaustive sweep and report the regret",
    )
    p_plan.add_argument(
        "--out", metavar="PATH",
        help="write the full report JSON to PATH",
    )
    p_plan.add_argument(
        "--schedulers", default="",
        help="comma list overriding the scheduler grid",
    )
    p_plan.add_argument(
        "--a2a", default="",
        help="comma list overriding the A2A-algorithm grid",
    )
    p_plan.add_argument(
        "--codecs", default="",
        help="comma list overriding the compressor grid",
    )
    p_plan.add_argument(
        "--partitions", default="",
        help="comma list overriding the partition-degree grid",
    )
    p_plan.add_argument(
        "--capacity-factors", default="",
        help="comma list overriding the capacity-factor grid",
    )

    p_faults = sub.add_parser(
        "faults", help="one layer pass under a fault plan"
    )
    p_faults.add_argument(
        "--plan", metavar="PLAN_JSON",
        help="FaultPlan JSON (default: demo straggler plan)",
    )
    p_faults.add_argument("--rank", type=int, default=0,
                          help="demo straggler rank (default: 0)")
    p_faults.add_argument("--slowdown", type=float, default=2.0,
                          help="demo straggler slowdown (default: 2.0)")
    p_faults.add_argument("--scheduler", default="optsche")
    p_faults.add_argument("--algo", default="pipe")
    p_faults.add_argument("--layers", type=int, default=12)
    p_faults.add_argument(
        "--write-demo", metavar="PATH",
        help="write the selected plan as JSON and exit",
    )
    p_faults.add_argument(
        "--recovery", action="store_true",
        help="with --write-demo: write a recovery-enabled scenario "
             "(for `repro reshard --plan`) instead of a bare fault plan",
    )

    p_reshard = sub.add_parser(
        "reshard",
        help="elastic re-sharding demo: kill -> recover -> rebalance",
    )
    p_reshard.add_argument(
        "--plan", metavar="DEMO_JSON",
        help="recovery demo JSON (`repro faults --write-demo --recovery`)",
    )
    p_reshard.add_argument("--workers", type=int, default=4)
    p_reshard.add_argument("--experts", type=int, default=8)
    p_reshard.add_argument("--tokens", type=int, default=64)
    p_reshard.add_argument("--kill", type=int, default=1,
                           help="worker to kill (default: 1)")
    p_reshard.add_argument(
        "--strategy", default="reinit", choices=("reinit", "checkpoint"),
        help="how lost expert parameters are re-instantiated",
    )
    p_reshard.add_argument("--slowdown", type=float, default=2.0,
                           help="straggler factor priced on the killed "
                                "rank (default: 2.0)")
    p_reshard.add_argument("--no-scale-up", action="store_true",
                           help="skip the scale-up stage")
    p_reshard.add_argument("--seed", type=int, default=0)
    p_reshard.add_argument("--algo", default="pipe")
    p_reshard.add_argument("--layers", type=int, default=12)
    p_reshard.add_argument("--horizon", type=int, default=100,
                           help="planning horizon in steps for the "
                                "reshard-vs-continue decision")

    p_pipe = sub.add_parser(
        "pipeline",
        help="sync vs overlap chunked expert-parallel (real numerics)",
    )
    p_pipe.add_argument("--experts", type=int, default=32)
    p_pipe.add_argument("--tokens", type=int, default=4096)
    p_pipe.add_argument("--model-dim", type=int, default=256)
    p_pipe.add_argument("--hidden-dim", type=int, default=512)
    p_pipe.add_argument("--workers", type=int, default=4)
    p_pipe.add_argument("--num-chunks", type=int, default=4)
    p_pipe.add_argument("--scheduler", default="optsche")
    p_pipe.add_argument(
        "--compressor", default="zfp",
        help="codec on the A2A hops ('' disables; default: zfp)",
    )
    p_pipe.add_argument(
        "--link-gbps", type=float, default=1.0,
        help="modeled interconnect bandwidth for cross-worker bytes "
             "(Gbit/s; 0 disables the wire-time model; default: 1.0, "
             "scaled to this substrate's FLOP rate — see docs §7)",
    )
    p_pipe.add_argument("--repeats", type=int, default=3)

    p_infer = sub.add_parser(
        "infer",
        help="autograd-free inference forward vs training-tape forward",
    )
    p_infer.add_argument("--experts", type=int, default=32)
    p_infer.add_argument("--tokens", type=int, default=4096)
    p_infer.add_argument("--model-dim", type=int, default=256)
    p_infer.add_argument("--hidden-dim", type=int, default=256)
    p_infer.add_argument("--repeats", type=int, default=3)

    p_trace = sub.add_parser("trace", help="export a chrome trace")
    p_trace.add_argument("--out", default="schedule_trace.json")
    p_trace.add_argument("--model-dim", type=int, default=1024)
    p_trace.add_argument("--hidden-dim", type=int, default=4096)
    p_trace.add_argument("--batch", type=int, default=8)
    p_trace.add_argument("--seq", type=int, default=1024)
    p_trace.add_argument("--compressor", default="zfp")
    p_trace.add_argument("--algo", default="pipe")
    p_trace.add_argument("--scheduler", default="optsche")
    p_trace.add_argument("--partitions", type=int, default=2)
    return parser


COMMANDS = {
    "list": cmd_list,
    "table1": cmd_table1,
    "table7": cmd_table7,
    "table8": cmd_table8,
    "table10": cmd_table10,
    "fig9": cmd_fig9,
    "a2a": cmd_a2a,
    "faults": cmd_faults,
    "reshard": cmd_reshard,
    "step": cmd_step,
    "plan": cmd_plan,
    "pipeline": cmd_pipeline,
    "infer": cmd_infer,
    "trace": cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
