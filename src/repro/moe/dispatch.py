"""Dispatch and combine: the data movement the A2A collectives carry.

GShard formulates both sides of expert parallelism as einsums over the
gate's (tokens, experts, capacity) masks; we reproduce that exactly.
In distributed execution the (E, C, M) dispatched tensor is what the
first all-to-all ships between GPUs and the combined result is what
the second all-to-all brings home (paper Fig. 2); numerically the
single-process computation below is identical to the synchronized
multi-GPU computation, which is why the convergence experiments can
run without physical GPUs.
"""

from __future__ import annotations

import numpy as np

from ..nn.tensor import Tensor, einsum


def dispatch(tokens: Tensor, dispatch_mask: np.ndarray) -> Tensor:
    """Route (T, M) tokens to (E, C, M) expert inputs.

    ``dispatch_mask`` is the gate's raw 0/1 (T, E, C) array; slots with
    no token stay zero (padding the expert batch to capacity, as the
    real system does so tensor shapes are static).
    """
    if tokens.ndim != 2:
        raise ValueError(f"tokens must be (T, M), got {tokens.shape}")
    if dispatch_mask.ndim != 3 or dispatch_mask.shape[0] != tokens.shape[0]:
        raise ValueError(
            f"mask {dispatch_mask.shape} incompatible with tokens "
            f"{tokens.shape}"
        )
    return einsum("tm,tec->ecm", tokens, Tensor(dispatch_mask))


def combine(expert_outputs: Tensor, combine_weights: Tensor) -> Tensor:
    """Merge (E, C, M) expert outputs into (T, M) tokens.

    ``combine_weights`` carries the differentiable gate probabilities;
    a token dropped by capacity receives all-zero output (GShard
    semantics — the residual connection around the MoE layer keeps its
    representation alive).
    """
    if expert_outputs.ndim != 3:
        raise ValueError(
            f"expert outputs must be (E, C, M), got {expert_outputs.shape}"
        )
    return einsum("ecm,tec->tm", expert_outputs, combine_weights)
