"""Dispatch and combine: the data movement the A2A collectives carry.

GShard formulates both sides of expert parallelism as einsums over the
gate's (tokens, experts, capacity) masks; the *dense* backend below
reproduces that exactly.  In distributed execution the (E, C, M)
dispatched tensor is what the first all-to-all ships between GPUs and
the combined result is what the second all-to-all brings home (paper
Fig. 2); numerically the single-process computation is identical to
the synchronized multi-GPU computation, which is why the convergence
experiments can run without physical GPUs.

The dense einsums contract over a one-hot (T, E, C) mask — an
``O(T * E * C * M)`` computation for what is really an ``O(T * k * M)``
data movement.  The *sparse* backend routes via integer indices
instead (a gather of kept token rows scatter-added into flat
``expert * C + slot`` destinations, and the exact adjoint on the way
back), the same move FastMoE made when it replaced GShard's einsum
dispatch with index-based scatter/gather kernels.  Both backends
produce identical outputs and gradients
(`tests/moe/test_dispatch_parity.py`); the dense one stays selectable
as the executable reference semantics.

The third form is *capacity-free*: :func:`dispatch_grouped` sorts the
kept assignments by expert (a stable argsort — the sort permutation)
and gathers the token rows into contiguous per-expert segments, the
layout :meth:`~repro.moe.experts.Experts.run_grouped` consumes via
:func:`~repro.nn.tensor.segment_matmul`.  No ``(E, C, M)`` buffer, no
scatter into capacity slots, no empty-slot padding — memory traffic
is ``O(N * M)`` in the routed assignment count however large the
capacity factor grows.  :func:`combine_grouped` is its adjoint-
structured inverse: weight and scatter-add the flat expert output
rows straight into their owning tokens.  Both consume the same
``_kept_assignments`` layer as the sparse pair, so token-major top-k
and flat expert-choice routings work unchanged.

All three index-based entry points accept the gate's cached
:class:`~repro.moe.routing.RoutingPlan` (``plan=``): the fused
routing kernel already computed the kept coordinates and the expert-
major permutation in its single sort, so passing the plan skips the
``np.nonzero`` re-scan and the per-call ``argsort``/``bincount``
entirely.  Omitting it keeps the legacy self-contained behaviour —
the arrays are re-derived from the index arguments — which the parity
suites use as the independent reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..nn.tensor import Tensor, einsum, gather, scatter_add

#: Valid values of the MoE layer's ``dispatch_mode`` switch.
DISPATCH_MODES = ("dense", "sparse")


def dispatch(tokens: Tensor, dispatch_mask: np.ndarray) -> Tensor:
    """Route (T, M) tokens to (E, C, M) expert inputs (dense einsum).

    ``dispatch_mask`` is the gate's raw 0/1 (T, E, C) array; slots with
    no token stay zero (padding the expert batch to capacity, as the
    real system does so tensor shapes are static).
    """
    if tokens.ndim != 2:
        raise ValueError(f"tokens must be (T, M), got {tokens.shape}")
    if dispatch_mask.ndim != 3 or dispatch_mask.shape[0] != tokens.shape[0]:
        raise ValueError(
            f"mask {dispatch_mask.shape} incompatible with tokens "
            f"{tokens.shape}"
        )
    return einsum("tm,tec->ecm", tokens, Tensor(dispatch_mask))


def combine(expert_outputs: Tensor, combine_weights: Tensor) -> Tensor:
    """Merge (E, C, M) expert outputs into (T, M) tokens (dense einsum).

    ``combine_weights`` carries the differentiable gate probabilities;
    a token dropped by capacity receives all-zero output (GShard
    semantics — the residual connection around the MoE layer keeps its
    representation alive).
    """
    if expert_outputs.ndim != 3:
        raise ValueError(
            f"expert outputs must be (E, C, M), got {expert_outputs.shape}"
        )
    return einsum("ecm,tec->tm", expert_outputs, combine_weights)


def _kept_assignments(
    expert_indices: np.ndarray,
    slot_indices: np.ndarray,
    token_indices=None,
):
    """Coordinate arrays of the non-dropped (slot >= 0) assignments.

    Accepts both sparse routing layouts (see
    :class:`~repro.moe.gating.GateOutput`):

    * token-major ``(T, k)`` index arrays (``token_indices`` unused —
      the row *is* the token);
    * flat ``(N,)`` arrays with an explicit aligned ``token_indices``.

    Returns ``(token_ids, weight_index, expert_ids, slot_ids)`` where
    ``weight_index`` is the tuple that selects each kept assignment's
    entry from the gate-weight tensor of the matching layout.
    """
    expert_indices = np.asarray(expert_indices)
    slot_indices = np.asarray(slot_indices)
    if expert_indices.shape != slot_indices.shape:
        raise ValueError(
            f"expert_indices {expert_indices.shape} and slot_indices "
            f"{slot_indices.shape} must have the same shape"
        )
    if expert_indices.ndim == 2:
        kept = slot_indices >= 0
        token_ids, choice_ids = np.nonzero(kept)
        expert_ids = expert_indices[token_ids, choice_ids]
        slot_ids = slot_indices[token_ids, choice_ids]
        return token_ids, (token_ids, choice_ids), expert_ids, slot_ids
    if expert_indices.ndim == 1:
        if token_indices is None:
            raise ValueError(
                "flat (N,) routing indices require token_indices"
            )
        token_indices = np.asarray(token_indices)
        if token_indices.shape != expert_indices.shape:
            raise ValueError(
                f"token_indices {token_indices.shape} must match "
                f"expert_indices {expert_indices.shape}"
            )
        (pos,) = np.nonzero(slot_indices >= 0)
        return (
            token_indices[pos],
            (pos,),
            expert_indices[pos],
            slot_indices[pos],
        )
    raise ValueError(
        f"routing indices must be (T, k) or flat (N,), got "
        f"{expert_indices.shape}"
    )


def dispatch_sparse(
    tokens: Tensor,
    expert_indices: np.ndarray,
    slot_indices: np.ndarray,
    num_experts: int,
    capacity: int,
    token_indices=None,
    plan=None,
) -> Tensor:
    """Index-based dispatch: (T, M) tokens to (E, C, M) expert inputs.

    Gathers the kept token rows and scatters them into their flat
    ``expert * C + slot`` destination — ``O(N * M)`` for N kept
    assignments, forward and backward, with no (T, E, C) intermediate.
    Destinations are unique by construction (one token per capacity
    slot, for every gate), so the scatter takes
    :func:`~repro.nn.tensor.scatter_add`'s ``unique_indices`` store
    path instead of the accumulating ``np.add.at``.  Numerically
    identical to :func:`dispatch` on the densified mask.

    Routing indices may be token-major ``(T, k)`` or flat ``(N,)``
    with ``token_indices`` (see :func:`_kept_assignments`).
    """
    if tokens.ndim != 2:
        raise ValueError(f"tokens must be (T, M), got {tokens.shape}")
    if plan is not None:
        token_ids = plan.kept_token_ids
        expert_ids = plan.kept_expert_ids
        slot_ids = plan.kept_slot_ids
    else:
        token_ids, _, expert_ids, slot_ids = _kept_assignments(
            expert_indices, slot_indices, token_indices
        )
    flat_slots = expert_ids * capacity + slot_ids
    rows = gather(tokens, token_ids)  # (N, M)
    out = scatter_add(
        rows, flat_slots, num_experts * capacity, unique_indices=True
    )
    return out.reshape(num_experts, capacity, tokens.shape[1])


def combine_sparse(
    expert_outputs: Tensor,
    expert_indices: np.ndarray,
    slot_indices: np.ndarray,
    gate_weights: Tensor,
    num_tokens: int,
    token_indices=None,
    plan=None,
) -> Tensor:
    """Index-based combine: (E, C, M) expert outputs to (T, M) tokens.

    Gathers each kept assignment's expert-output row, scales it by the
    differentiable gate weight, and scatter-adds into the owning token
    — the exact adjoint structure of the dense ``ecm,tec->tm`` einsum,
    so outputs *and* gradients (including the zero gradient at dropped
    assignments) match :func:`combine`.  Here the destinations are
    token ids, which *do* repeat (a token combines contributions from
    up to k — or, under expert-choice, up to E — experts), so the
    accumulating scatter stays.

    ``gate_weights`` matches the index layout: a ``(T, k)`` tensor for
    token-major indices, a flat ``(N,)`` tensor (with
    ``token_indices``) for flat indices.
    """
    if expert_outputs.ndim != 3:
        raise ValueError(
            f"expert outputs must be (E, C, M), got {expert_outputs.shape}"
        )
    num_experts, capacity, model_dim = expert_outputs.shape
    if plan is not None:
        token_ids = plan.kept_token_ids
        weight_index = plan.kept_weight_index
        expert_ids = plan.kept_expert_ids
        slot_ids = plan.kept_slot_ids
    else:
        token_ids, weight_index, expert_ids, slot_ids = _kept_assignments(
            expert_indices, slot_indices, token_indices
        )
    flat_slots = expert_ids * capacity + slot_ids
    rows = gather(
        expert_outputs.reshape(num_experts * capacity, model_dim), flat_slots
    )  # (N, M)
    weights = gate_weights[weight_index].reshape(-1, 1)  # (N, 1)
    return scatter_add(rows * weights, token_ids, num_tokens)


@dataclass(frozen=True)
class GroupedRouting:
    """The sort-permutation form of one batch's flat routing.

    Produced by :func:`dispatch_grouped`, consumed by
    :meth:`~repro.moe.experts.Experts.run_grouped` and
    :func:`combine_grouped`.  All arrays are aligned with the sorted
    flat rows: row n belongs to expert ``np.repeat(arange(E),
    segment_counts)[n]``, came from token ``token_ids[n]``, and its
    combine weight lives at ``weight_index`` position n of the gate's
    weight tensor (a ``(token, choice)`` pair for the token-major
    layout, a flat position for the flat layout).
    """

    #: (E,) kept assignments per expert — the segment lengths.
    segment_counts: np.ndarray
    #: (N,) owning token of each sorted row.
    token_ids: np.ndarray
    #: Index tuple selecting each sorted row's gate weight.
    weight_index: Tuple[np.ndarray, ...]

    @property
    def num_assignments(self) -> int:
        return int(self.token_ids.shape[0])


def dispatch_grouped(
    tokens: Tensor,
    expert_indices: np.ndarray,
    slot_indices: np.ndarray,
    num_experts: int,
    token_indices=None,
    plan=None,
) -> Tuple[Tensor, GroupedRouting]:
    """Capacity-free dispatch: (T, M) tokens to flat per-expert segments.

    Sorts the kept assignments by expert (stable, so ties keep the
    gate's assignment order) and gathers each one's token row — a
    single ``O(N * M)`` gather producing an ``(N, M)`` tensor whose
    rows are contiguous per expert, plus the :class:`GroupedRouting`
    bookkeeping needed to combine.  Unlike :func:`dispatch_sparse`
    there is no capacity dimension: memory and FLOPs are independent
    of ``C``, dropped assignments simply don't appear, and an expert
    with no tokens contributes an empty segment.

    Routing indices may be token-major ``(T, k)`` or flat ``(N,)``
    with ``token_indices`` (see :func:`_kept_assignments`), so both
    gate families share this path.
    """
    if tokens.ndim != 2:
        raise ValueError(f"tokens must be (T, M), got {tokens.shape}")
    if plan is not None:
        # The fused kernel's single sort already produced the expert-
        # major permutation — no argsort, no bincount.
        routing = GroupedRouting(
            segment_counts=plan.segment_counts,
            token_ids=plan.grouped_token_ids,
            weight_index=plan.grouped_weight_index,
        )
        return gather(tokens, routing.token_ids), routing
    token_ids, weight_index, expert_ids, _ = _kept_assignments(
        expert_indices, slot_indices, token_indices
    )
    order = np.argsort(expert_ids, kind="stable")
    counts = np.bincount(expert_ids, minlength=num_experts).astype(np.int64)
    if counts.shape[0] != num_experts:
        raise ValueError(
            f"expert index {int(expert_ids.max())} out of range for "
            f"{num_experts} experts"
        )
    routing = GroupedRouting(
        segment_counts=counts,
        token_ids=token_ids[order],
        weight_index=tuple(np.asarray(ix)[order] for ix in weight_index),
    )
    return gather(tokens, routing.token_ids), routing


def combine_grouped(
    expert_rows: Tensor,
    routing: GroupedRouting,
    gate_weights: Tensor,
    num_tokens: int,
) -> Tensor:
    """Capacity-free combine: flat (N, M) expert outputs to (T, M) tokens.

    Scales each sorted output row by its differentiable gate weight
    and scatter-adds it straight into the owning token — no gather
    from a capacity buffer, because the rows never left the flat
    form.  Token destinations repeat (up to k ways for top-k, up to E
    under expert-choice), so this is the accumulating scatter; the
    backward is the exact adjoint gather, and the zero gradient at
    dropped assignments falls out because they were never dispatched.
    """
    if expert_rows.ndim != 2:
        raise ValueError(
            f"expert rows must be (N, M), got {expert_rows.shape}"
        )
    if expert_rows.shape[0] != routing.num_assignments:
        raise ValueError(
            f"expert rows {expert_rows.shape} do not match the "
            f"{routing.num_assignments} routed assignments"
        )
    weights = gate_weights[routing.weight_index].reshape(-1, 1)  # (N, 1)
    return scatter_add(expert_rows * weights, routing.token_ids, num_tokens)
