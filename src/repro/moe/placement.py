"""Expert placement: a versioned, possibly-unequal expert→worker map.

Historically :class:`~repro.moe.parallel.ExpertParallelGroup` hard-coded
``owner(e) = e // experts_per_worker`` — a contiguous, equal-shard
layout baked in at construction.  That arithmetic makes elastic
behaviour impossible: a dead worker's experts cannot move to survivors,
a newly admitted worker cannot take over shards, and checkpoints cannot
record where experts lived.  FastMoE's dynamic expert shadowing and
FoMoE's federation framing (PAPERS.md) both treat the expert-to-worker
map as a *runtime knob*; this module makes it one.

An :class:`ExpertPlacement` is an immutable assignment of every expert
to one worker, plus a monotonically increasing ``version`` so
checkpoints, recovery events and in-flight consumers can tell stale
maps from current ones.  Shards may be unequal — worker loads after a
failure are ``ceil``/``floor`` mixes — and a worker may own zero
experts (a just-admitted scale-up target before rebalancing).

Rebalancing is deterministic and minimal-move:

* :meth:`ExpertPlacement.with_workers_removed` reassigns only the lost
  experts, least-loaded-survivor-first — surviving experts never move;
* :meth:`ExpertPlacement.with_worker_added` moves exactly
  ``num_experts // (num_workers + 1)`` experts onto the new worker,
  each taken from the currently most-loaded worker — no
  survivor-to-survivor churn.

:func:`reshard_moves` diffs two placements into the expert moves a
re-shard must perform, and :func:`reshard_traffic` prices them in bytes
(the quantity :func:`repro.collectives.measure_a2a` converts into
simulated seconds — see :mod:`repro.faults.recovery`).

JSON round-trip (:meth:`to_json_dict` / :meth:`from_json_dict`) is
strict on unknown keys, mirroring :class:`repro.faults.FaultPlan`, so
checkpoint metadata written today still fails loudly rather than
silently when the schema grows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ExpertPlacement",
    "expert_param_bytes",
    "reshard_moves",
    "reshard_traffic",
]


@dataclass(frozen=True)
class ExpertPlacement:
    """An immutable, versioned expert→worker assignment.

    ``owners[e]`` is the worker hosting expert ``e``.  Every expert is
    owned by exactly one worker; workers may own unequal counts (or
    nothing).  ``version`` increments on every rebalancing step so
    consumers can detect staleness; it carries no other meaning.
    """

    num_experts: int
    num_workers: int
    owners: Tuple[int, ...]
    version: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists/arrays (e.g. parsed from JSON).
        object.__setattr__(
            self, "owners", tuple(int(w) for w in self.owners)
        )
        if self.num_experts < 1:
            raise ValueError(
                f"num_experts must be >= 1, got {self.num_experts}"
            )
        if self.num_workers < 1:
            raise ValueError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if len(self.owners) != self.num_experts:
            raise ValueError(
                f"owners must assign all {self.num_experts} experts, "
                f"got {len(self.owners)} entries"
            )
        for e, w in enumerate(self.owners):
            if not 0 <= w < self.num_workers:
                raise ValueError(
                    f"expert {e} assigned to worker {w}, outside "
                    f"[0, {self.num_workers})"
                )
        if self.version < 0:
            raise ValueError(f"version must be >= 0, got {self.version}")

    # -- constructors ------------------------------------------------------
    @classmethod
    def contiguous(
        cls, num_experts: int, num_workers: int, version: int = 0
    ) -> "ExpertPlacement":
        """The historical equal contiguous layout: ``e // (E // P)``.

        Requires divisibility, exactly as the pre-placement
        :class:`ExpertParallelGroup` constructor did.
        """
        if num_workers < 1 or num_experts % num_workers != 0:
            raise ValueError(
                f"num_experts {num_experts} must be divisible by "
                f"num_workers {num_workers}"
            )
        per = num_experts // num_workers
        return cls(
            num_experts=num_experts,
            num_workers=num_workers,
            owners=tuple(e // per for e in range(num_experts)),
            version=version,
        )

    # -- views -------------------------------------------------------------
    @property
    def owner_array(self) -> np.ndarray:
        """The assignment as an ``(E,)`` int64 vector (cached)."""
        cached = self.__dict__.get("_owner_array")
        if cached is None:
            cached = np.asarray(self.owners, dtype=np.int64)
            cached.setflags(write=False)
            self.__dict__["_owner_array"] = cached
        return cached

    def owner(self, expert: int) -> int:
        """The worker hosting ``expert``."""
        if not 0 <= expert < self.num_experts:
            raise IndexError(
                f"expert {expert} out of range [0, {self.num_experts})"
            )
        return self.owners[expert]

    def experts_of(self, worker: int) -> Tuple[int, ...]:
        """Experts hosted by ``worker``, in ascending global id order.

        Ascending order is load-bearing: it is the local segment order
        of every per-worker expert-major buffer (D1 assembly, grouped
        execution), so contiguous placements reproduce the historical
        ``range(w * epw, (w + 1) * epw)`` layout bit-for-bit.
        """
        if not 0 <= worker < self.num_workers:
            raise IndexError(
                f"worker {worker} out of range [0, {self.num_workers})"
            )
        return tuple(
            e for e, w in enumerate(self.owners) if w == worker
        )

    def counts(self) -> Tuple[int, ...]:
        """Per-worker expert counts, indexed by worker id."""
        loads = [0] * self.num_workers
        for w in self.owners:
            loads[w] += 1
        return tuple(loads)

    @property
    def is_contiguous(self) -> bool:
        """Whether this is the historical equal contiguous layout."""
        if self.num_experts % self.num_workers != 0:
            return False
        per = self.num_experts // self.num_workers
        return all(w == e // per for e, w in enumerate(self.owners))

    def bump(self) -> "ExpertPlacement":
        """The same assignment with ``version + 1``."""
        return replace(self, version=self.version + 1)

    # -- rebalancing -------------------------------------------------------
    def with_workers_removed(
        self, dead_workers: Iterable[int]
    ) -> "ExpertPlacement":
        """Survivors adopt the dead workers' experts; version bumps.

        Deterministic and minimal-move: surviving experts stay put;
        each lost expert (ascending id) goes to the survivor currently
        hosting the fewest experts (ties broken by lowest worker id).
        The worker count is unchanged — dead workers simply own
        nothing afterwards, so the same rank numbering keeps working
        and a later scale-up can re-admit a fresh rank.
        """
        dead = frozenset(int(w) for w in dead_workers)
        for w in dead:
            if not 0 <= w < self.num_workers:
                raise ValueError(
                    f"dead worker {w} out of range [0, {self.num_workers})"
                )
        survivors = [
            w for w in range(self.num_workers) if w not in dead
        ]
        if not survivors:
            raise ValueError(
                "all workers removed; at least one survivor must "
                "remain to adopt the experts"
            )
        if not dead:
            return self.bump()
        loads = {w: 0 for w in survivors}
        for w in self.owners:
            if w in loads:
                loads[w] += 1
        owners = list(self.owners)
        for e, w in enumerate(self.owners):
            if w not in dead:
                continue
            target = min(survivors, key=lambda s: (loads[s], s))
            owners[e] = target
            loads[target] += 1
        return ExpertPlacement(
            num_experts=self.num_experts,
            num_workers=self.num_workers,
            owners=tuple(owners),
            version=self.version + 1,
        )

    def with_worker_added(self) -> "ExpertPlacement":
        """Admit worker ``num_workers`` and rebalance minimally.

        The new worker receives its fair share —
        ``num_experts // (num_workers + 1)`` experts — and nothing
        else moves: each moved expert is the highest-id expert of the
        currently most-loaded worker (ties broken by lowest worker
        id), so the move list is exactly the fair share, never a full
        reshuffle.  Version bumps.
        """
        new_worker = self.num_workers
        share = self.num_experts // (self.num_workers + 1)
        loads = list(self.counts()) + [0]
        by_worker: List[List[int]] = [[] for _ in range(new_worker + 1)]
        for e, w in enumerate(self.owners):
            by_worker[w].append(e)  # ascending by construction
        owners = list(self.owners)
        for _ in range(share):
            donor = max(
                range(new_worker), key=lambda w: (loads[w], -w)
            )
            if loads[donor] == 0:
                break
            moved = by_worker[donor].pop()
            owners[moved] = new_worker
            loads[donor] -= 1
            loads[new_worker] += 1
        return ExpertPlacement(
            num_experts=self.num_experts,
            num_workers=self.num_workers + 1,
            owners=tuple(owners),
            version=self.version + 1,
        )

    # -- (de)serialization -------------------------------------------------
    def to_json_dict(self) -> dict:
        """A JSON-encodable view of the placement."""
        return {
            "num_experts": self.num_experts,
            "num_workers": self.num_workers,
            "owners": list(self.owners),
            "version": self.version,
        }

    @staticmethod
    def from_json_dict(blob: dict) -> "ExpertPlacement":
        """Inverse of :meth:`to_json_dict` (strict on unknown keys)."""
        known = {"num_experts", "num_workers", "owners", "version"}
        unknown = set(blob) - known
        if unknown:
            raise ValueError(
                f"unknown placement keys: {sorted(unknown)}"
            )
        missing = {"num_experts", "num_workers", "owners"} - set(blob)
        if missing:
            raise ValueError(
                f"placement is missing keys: {sorted(missing)}"
            )
        return ExpertPlacement(
            num_experts=int(blob["num_experts"]),
            num_workers=int(blob["num_workers"]),
            owners=tuple(int(w) for w in blob["owners"]),
            version=int(blob.get("version", 0)),
        )


# --------------------------------------------------------------------------
# Re-shard accounting
# --------------------------------------------------------------------------


def expert_param_bytes(
    model_dim: int, hidden_dim: int, itemsize: int = 4
) -> int:
    """Bytes of one expert's FFN parameters in the stacked bank.

    ``w1 (M, H) + b1 (H,) + w2 (H, M) + b2 (M,)`` at ``itemsize``
    bytes per value (float32 by default) — what moving one expert
    slice between workers costs on the wire.
    """
    return itemsize * (
        model_dim * hidden_dim + hidden_dim
        + hidden_dim * model_dim + model_dim
    )


def reshard_moves(
    old: ExpertPlacement, new: ExpertPlacement
) -> Tuple[Tuple[int, int, int], ...]:
    """The ``(expert, src, dst)`` moves turning ``old`` into ``new``.

    Ascending expert order.  A move whose source worker is dead is
    still listed with its old owner — the *recovery controller* decides
    whether the bytes come from a survivor-held checkpoint instead
    (see :mod:`repro.faults.recovery`).
    """
    if old.num_experts != new.num_experts:
        raise ValueError(
            f"placements disagree on num_experts: {old.num_experts} "
            f"vs {new.num_experts}"
        )
    return tuple(
        (e, old.owners[e], new.owners[e])
        for e in range(old.num_experts)
        if old.owners[e] != new.owners[e]
    )


def reshard_traffic(
    moves: Sequence[Tuple[int, int, int]],
    bytes_per_expert: int,
    num_workers: int,
) -> Dict[str, int]:
    """Byte accounting of a re-shard's expert-slice moves.

    Returns ``total_bytes`` (all slices crossing workers),
    ``max_worker_send_bytes`` / ``max_worker_recv_bytes`` (the busiest
    endpoints), and ``per_gpu_bytes`` — the max over both directions,
    which is the per-GPU payload an all-to-all-shaped exchange must
    carry and therefore what :func:`repro.collectives.measure_a2a`
    prices (a conservative bound: the real exchange is sparser than a
    full A2A of that size).
    """
    sent = [0] * num_workers
    recv = [0] * num_workers
    for _, src, dst in moves:
        if src == dst:
            continue
        sent[src] += bytes_per_expert
        recv[dst] += bytes_per_expert
    max_send = max(sent, default=0)
    max_recv = max(recv, default=0)
    return {
        "total_bytes": sum(sent),
        "max_worker_send_bytes": max_send,
        "max_worker_recv_bytes": max_recv,
        "per_gpu_bytes": max(max_send, max_recv),
    }
