"""Fused single-pass routing: one sort from gate choices to permutation.

The legacy routing chain orders the same assignments four times over:
:func:`~repro.moe.gating.assign_capacity_slots` materializes a
``(k*T, E)`` one-hot and cumsums it (``O(T*k*E)`` compute *and* memory
for an ``O(T*k)``-sized answer), ``_kept_assignments`` re-scans the
slot arrays with ``np.nonzero``, :func:`~repro.moe.dispatch.
dispatch_grouped` re-derives the expert order with a fresh stable
argsort plus a ``bincount``, and the expert-parallel C1 task argsorts
*again* per chunk per source.  :func:`route_fused` collapses all of it
into **one** stable argsort over the flat ``(k*T,)`` expert ids; every
other quantity is linear arithmetic on that single permutation.

The derivation (all bit-identical to the legacy chain):

* Sort the *token-major* flat ids ``top_idx.reshape(-1)`` (flat
  position ``q = t*k + c``).  A stable sort by expert yields the
  lexicographic ``(e, t, c)`` order — restricted to kept entries this
  is exactly ``dispatch_grouped``'s ``argsort(expert_ids_kept)``
  permutation, because stable sorting a subsequence preserves its
  relative order.
* FCFS slot ranks are *choice-major* (``(e, c, t)`` priority: all
  first choices in token order, then all second choices — GShard's
  greedy rule), which is a different order — but it never needs a
  second sort.  For a sorted entry with expert ``e`` and choice ``c``
  its rank splits into ``#{same e, smaller c}`` (a cumulative-sum
  difference over per-``(e, c)`` pair counts) plus its occurrence
  index within the ``(e, c)`` group (the sorted order within a group
  is already ascending in ``t``), computed per choice with one
  ``bincount``/``repeat`` pass — ``O(k * (T*k + E))`` total.
* Rank ``>= capacity`` is precisely the assignment the greedy loop
  drops, because a skipped assignment never frees a slot; everything
  else (kept coordinates, the grouped permutation, segment counts,
  the per-``(e, c)`` counts the aux loss needs) falls out of the same
  arrays.

The result is packaged as a :class:`RoutingPlan` and cached on
:class:`~repro.moe.gating.GateOutput`, so every consumer — sparse and
grouped dispatch/combine, the chunked layer path, the expert-parallel
C1 dispatch — reuses slices of the one global permutation instead of
recomputing ``nonzero``/``argsort``/``bincount``.  Chunked consumers
rely on the *restriction property*: chunk boundaries never split a
token's k assignments, and restricting the global ``(e, t, c)`` order
to a contiguous token range gives exactly what a per-chunk stable
argsort would — so a chunk's routing is a masked slice of the plan.

:func:`plan_from_indices` builds the same plan generically from
arbitrary sparse index arrays (either layout) for routings that do
not come out of the fused top-k kernel — expert-choice gates and
degraded routings whose slot holes break the FCFS-prefix invariant
(:meth:`GateOutput.with_experts_dropped`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class RoutingPlan:
    """Every ordering-derived quantity of one batch's routing, computed once.

    Arrays come in three alignments:

    * per-assignment (``slot_indices`` — token-major ``(T, k)`` or
      flat ``(N,)``, matching the gate's layout);
    * kept-assignment order (``kept_*`` — the ``np.nonzero`` scan
      order of the kept mask, i.e. ascending flat position);
    * grouped (expert-major) order (``grouped_*`` — kept assignments
      sorted stably by expert, the ``segment_matmul`` layout).

    ``grouped_kept_pos`` is the permutation between the last two: it
    maps each grouped row to its position in the kept-order arrays
    (``kept_token_ids[grouped_kept_pos] == grouped_token_ids``).
    """

    #: ``"topk"`` (token-major ``(T, k)``) or ``"flat"`` (``(N,)``).
    layout: str
    num_tokens: int
    num_experts: int
    capacity: int
    #: Choices per token (token-major layout only, else ``None``).
    top_k: Optional[int]

    #: (E,) assignments per expert *before* the capacity cut.
    counts: np.ndarray
    #: (E, k) assignments per (expert, choice) — fused top-k only.
    choice_counts: Optional[np.ndarray]
    #: Slot of every assignment (``-1`` = dropped), gate's layout.
    slot_indices: np.ndarray
    #: Assignments dropped by the capacity cut.
    dropped_assignments: int

    #: Kept-order coordinate arrays (what ``_kept_coords`` returns).
    kept_token_ids: np.ndarray
    kept_expert_ids: np.ndarray
    kept_slot_ids: np.ndarray
    #: Index tuple selecting each kept assignment's gate weight.
    kept_weight_index: Tuple[np.ndarray, ...]

    #: (N,) grouped row -> position in the kept-order arrays.
    grouped_kept_pos: np.ndarray
    #: (N,) owning token of each grouped row.
    grouped_token_ids: np.ndarray
    #: (N,) expert of each grouped row (non-decreasing).
    grouped_expert_ids: np.ndarray
    #: Index tuple selecting each grouped row's gate weight.
    grouped_weight_index: Tuple[np.ndarray, ...]
    #: (E,) kept assignments per expert — the segment lengths.
    segment_counts: np.ndarray

    @property
    def expert_load(self) -> np.ndarray:
        """(E,) occupied slots per expert (== the segment lengths)."""
        return self.segment_counts

    @property
    def num_kept(self) -> int:
        return int(self.grouped_token_ids.shape[0])


def _empty_plan(
    layout: str,
    num_tokens: int,
    num_experts: int,
    capacity: int,
    top_k: Optional[int],
    slot_indices: np.ndarray,
    counts: np.ndarray,
    choice_counts: Optional[np.ndarray],
    dropped: int,
    weight_arity: int,
) -> RoutingPlan:
    empty = np.zeros(0, dtype=np.int64)
    empty_widx = tuple(empty for _ in range(weight_arity))
    return RoutingPlan(
        layout=layout,
        num_tokens=num_tokens,
        num_experts=num_experts,
        capacity=capacity,
        top_k=top_k,
        counts=counts,
        choice_counts=choice_counts,
        slot_indices=slot_indices,
        dropped_assignments=dropped,
        kept_token_ids=empty,
        kept_expert_ids=empty,
        kept_slot_ids=empty,
        kept_weight_index=empty_widx,
        grouped_kept_pos=empty,
        grouped_token_ids=empty,
        grouped_expert_ids=empty,
        grouped_weight_index=empty_widx,
        segment_counts=np.zeros(num_experts, dtype=np.int64),
    )


def route_fused(
    top_idx: np.ndarray, num_experts: int, capacity: int
) -> RoutingPlan:
    """One stable sort from ``(T, k)`` gate choices to a full plan.

    Bit-identical to the legacy chain: ``slot_indices`` matches
    :func:`~repro.moe.gating.assign_capacity_slots` (choice-major FCFS
    with drops at capacity), the ``kept_*`` arrays match the
    ``np.nonzero`` scan of the kept mask, and the ``grouped_*`` arrays
    match ``dispatch_grouped``'s stable argsort (token-major
    tie-breaking within an expert).  See the module docstring for the
    derivation.
    """
    top_idx = np.asarray(top_idx)
    if top_idx.ndim != 2:
        raise ValueError(
            f"top_idx must be (tokens, k), got shape {top_idx.shape}"
        )
    if num_experts < 1:
        raise ValueError(f"num_experts must be >= 1, got {num_experts}")
    if capacity < 0:
        raise ValueError(f"capacity must be >= 0, got {capacity}")
    num_tokens, top_k = top_idx.shape
    n = num_tokens * top_k

    flat_experts = top_idx.reshape(-1)
    counts = np.bincount(flat_experts, minlength=num_experts).astype(np.int64)
    if counts.shape[0] != num_experts:
        raise ValueError(
            f"expert index {int(flat_experts.max())} out of range for "
            f"{num_experts} experts"
        )
    if n == 0 or capacity == 0:
        # Everything drops, but the per-(expert, choice) counts must
        # still be real: the gate's aux loss reads first-choice counts
        # from the plan whatever the capacity.
        if n:
            pair_all = flat_experts * top_k + (
                np.arange(n, dtype=np.int64) % top_k
            )
            choice_counts = (
                np.bincount(pair_all, minlength=num_experts * top_k)
                .reshape(num_experts, top_k)
                .astype(np.int64)
            )
        else:
            choice_counts = np.zeros((num_experts, top_k), dtype=np.int64)
        slots = np.full((num_tokens, top_k), -1, dtype=np.int64)
        return _empty_plan(
            "topk", num_tokens, num_experts, capacity, top_k,
            slots, counts, choice_counts, n, weight_arity=2,
        )

    # THE sort: stable over token-major flat ids -> (e, t, c) order.
    order = np.argsort(flat_experts, kind="stable")
    sorted_experts = flat_experts[order]
    sorted_choice = order % top_k

    # Choice-major FCFS rank of each sorted assignment, no second
    # sort.  term 1: assignments of the same expert with a strictly
    # smaller choice all precede it in the (e, c, t) priority order.
    pair = sorted_experts * top_k + sorted_choice
    pair_counts = np.bincount(pair, minlength=num_experts * top_k)
    choice_counts = pair_counts.reshape(num_experts, top_k).astype(np.int64)
    cum = np.concatenate(([0], np.cumsum(pair_counts)))
    rank = cum[pair] - cum[sorted_experts * top_k]
    # term 2: its occurrence index within the (e, c) group.  The
    # choice-c subsequence of the sorted array keeps the expert
    # grouping and is ascending in token within each group, so the
    # occurrence index is position-minus-run-start.
    for c in range(top_k):
        (idx,) = np.nonzero(sorted_choice == c)
        sub_counts = np.bincount(sorted_experts[idx], minlength=num_experts)
        starts = np.repeat(
            np.concatenate(([0], np.cumsum(sub_counts[:-1]))), sub_counts
        )
        rank[idx] += np.arange(idx.shape[0], dtype=np.int64) - starts

    # Rank >= capacity is exactly the greedy loop's drop: a skipped
    # assignment never frees a slot.
    slot_sorted = np.where(rank < capacity, rank, -1)
    slot_flat = np.empty(n, dtype=np.int64)
    slot_flat[order] = slot_sorted
    slot_indices = slot_flat.reshape(num_tokens, top_k)

    # Kept coordinates in nonzero-scan (ascending flat q) order.
    kept = slot_indices >= 0
    kept_token_ids, kept_choice_ids = np.nonzero(kept)
    kept_expert_ids = top_idx[kept_token_ids, kept_choice_ids]
    kept_slot_ids = slot_indices[kept_token_ids, kept_choice_ids]
    num_kept = kept_token_ids.shape[0]

    # Grouped permutation: the kept subsequence of THE sort.
    kept_sorted = slot_sorted >= 0
    perm = order[kept_sorted]  # flat q positions, expert-major
    grouped_token_ids = perm // top_k
    grouped_choice_ids = perm % top_k
    # Position of each grouped row in the kept-order arrays, via the
    # inverse kept-rank map — O(n), replacing dispatch_grouped's sort.
    kept_rank = np.empty(n, dtype=np.int64)
    kept_rank[kept_token_ids * top_k + kept_choice_ids] = np.arange(
        num_kept, dtype=np.int64
    )
    grouped_kept_pos = kept_rank[perm]

    return RoutingPlan(
        layout="topk",
        num_tokens=num_tokens,
        num_experts=num_experts,
        capacity=capacity,
        top_k=top_k,
        counts=counts,
        choice_counts=choice_counts,
        slot_indices=slot_indices,
        dropped_assignments=n - num_kept,
        kept_token_ids=kept_token_ids,
        kept_expert_ids=kept_expert_ids,
        kept_slot_ids=kept_slot_ids,
        kept_weight_index=(kept_token_ids, kept_choice_ids),
        grouped_kept_pos=grouped_kept_pos,
        grouped_token_ids=grouped_token_ids,
        grouped_expert_ids=top_idx[grouped_token_ids, grouped_choice_ids],
        grouped_weight_index=(grouped_token_ids, grouped_choice_ids),
        segment_counts=np.minimum(counts, capacity),
    )


def plan_from_indices(
    expert_indices: np.ndarray,
    slot_indices: np.ndarray,
    token_indices: Optional[np.ndarray],
    num_experts: int,
    num_tokens: int,
    capacity: int,
) -> RoutingPlan:
    """Build a plan from arbitrary sparse index arrays (either layout).

    The generic fallback for routings that did not come out of
    :func:`route_fused` — flat expert-choice indices, or token-major
    routings whose slots are no longer an FCFS prefix (dead-expert
    degradation punches holes).  One stable argsort over the *kept*
    expert ids, same outputs as the legacy
    ``_kept_assignments`` + ``dispatch_grouped`` chain.
    """
    expert_indices = np.asarray(expert_indices)
    slot_indices = np.asarray(slot_indices)
    if expert_indices.shape != slot_indices.shape:
        raise ValueError(
            f"expert_indices {expert_indices.shape} and slot_indices "
            f"{slot_indices.shape} must have the same shape"
        )
    counts_all = np.bincount(
        expert_indices.reshape(-1), minlength=num_experts
    ).astype(np.int64)
    if counts_all.shape[0] != num_experts:
        raise ValueError(
            f"expert index {int(expert_indices.max())} out of range for "
            f"{num_experts} experts"
        )
    if expert_indices.ndim == 2:
        layout, top_k = "topk", expert_indices.shape[1]
        kept = slot_indices >= 0
        kept_token_ids, kept_choice_ids = np.nonzero(kept)
        kept_expert_ids = expert_indices[kept_token_ids, kept_choice_ids]
        kept_slot_ids = slot_indices[kept_token_ids, kept_choice_ids]
        kept_weight_index = (kept_token_ids, kept_choice_ids)
    elif expert_indices.ndim == 1:
        layout, top_k = "flat", None
        if token_indices is None:
            raise ValueError(
                "flat (N,) routing indices require token_indices"
            )
        token_indices = np.asarray(token_indices)
        (pos,) = np.nonzero(slot_indices >= 0)
        kept_token_ids = token_indices[pos]
        kept_expert_ids = expert_indices[pos]
        kept_slot_ids = slot_indices[pos]
        kept_weight_index = (pos,)
    else:
        raise ValueError(
            f"routing indices must be (T, k) or flat (N,), got "
            f"{expert_indices.shape}"
        )
    order = np.argsort(kept_expert_ids, kind="stable")
    segment_counts = np.bincount(
        kept_expert_ids, minlength=num_experts
    ).astype(np.int64)
    return RoutingPlan(
        layout=layout,
        num_tokens=num_tokens,
        num_experts=num_experts,
        capacity=capacity,
        top_k=top_k,
        counts=counts_all,
        choice_counts=None,
        slot_indices=slot_indices,
        dropped_assignments=int(slot_indices.size - kept_token_ids.shape[0]),
        kept_token_ids=kept_token_ids,
        kept_expert_ids=kept_expert_ids,
        kept_slot_ids=kept_slot_ids,
        kept_weight_index=kept_weight_index,
        grouped_kept_pos=order,
        grouped_token_ids=kept_token_ids[order],
        grouped_expert_ids=kept_expert_ids[order],
        grouped_weight_index=tuple(
            np.asarray(ix)[order] for ix in kept_weight_index
        ),
        segment_counts=segment_counts,
    )


def plan_for_expert_choice(
    token_indices: np.ndarray,
    expert_indices: np.ndarray,
    slot_indices: np.ndarray,
    num_experts: int,
    num_tokens: int,
    capacity: int,
) -> RoutingPlan:
    """Identity-order plan for the expert-choice gate's flat layout.

    The EC gate emits ``expert_indices = repeat(arange(E), C)`` — the
    flat arrays are *structurally* expert-major sorted with no drops,
    so the grouped permutation is the identity and no sort of any kind
    is needed.  Equal to :func:`plan_from_indices` on the same arrays
    (a stable sort of an already-sorted key is the identity).
    """
    n = token_indices.shape[0]
    pos = np.arange(n, dtype=np.int64)
    counts = np.bincount(
        expert_indices, minlength=num_experts
    ).astype(np.int64)
    return RoutingPlan(
        layout="flat",
        num_tokens=num_tokens,
        num_experts=num_experts,
        capacity=capacity,
        top_k=None,
        counts=counts,
        choice_counts=None,
        slot_indices=slot_indices,
        dropped_assignments=0,
        kept_token_ids=token_indices,
        kept_expert_ids=expert_indices,
        kept_slot_ids=slot_indices,
        kept_weight_index=(pos,),
        grouped_kept_pos=pos,
        grouped_token_ids=token_indices,
        grouped_expert_ids=expert_indices,
        grouped_weight_index=(pos,),
        segment_counts=counts,
    )
