"""Literal expert-parallel execution over P logical workers.

This module executes the MoE layer the way the distributed system
does (paper Fig. 2): every worker holds its own mini-batch shard and a
subset of experts; dispatch produces per-destination send buffers; an
explicit all-to-all exchanges them; each worker runs its local experts
on what it received; a second all-to-all returns results; combine
merges them.  No simulation shortcuts — real numpy buffers move
between per-rank data structures.

Its purpose is to *prove the substitution*: the single-process
:class:`~repro.moe.layer.MoELayer` used for the convergence study is
numerically identical to this synchronized multi-worker execution
(`tests/moe/test_parallel_equivalence.py`), so training results
obtained single-process are exactly what the 32-GPU system would
produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..compression.base import Compressor
from .experts import Experts
from .layer import MoELayer


@dataclass
class A2ATraffic:
    """Byte accounting of one exchange, per (src, dst) worker pair."""

    matrix: np.ndarray  # (P, P) bytes sent from src to dst

    @property
    def total_bytes(self) -> float:
        """All bytes exchanged, self-deliveries included."""
        return float(self.matrix.sum())

    @property
    def off_diagonal_bytes(self) -> float:
        """Bytes that actually cross worker boundaries."""
        return float(self.matrix.sum() - np.trace(self.matrix))


class ExpertParallelGroup:
    """P logical workers sharing one MoE layer's parameters.

    The group borrows the gate and expert parameters of an existing
    :class:`MoELayer` (expert ``e`` "lives" on worker
    ``e // experts_per_worker``), so its forward output can be compared
    bit-for-bit against the single-process layer.
    """

    def __init__(
        self, layer: MoELayer, num_workers: int, dead_workers=()
    ):
        num_experts = layer.gate.num_experts
        if num_workers < 1 or num_experts % num_workers != 0:
            raise ValueError(
                f"num_experts {num_experts} must be divisible by "
                f"num_workers {num_workers}"
            )
        self.layer = layer
        self.num_workers = num_workers
        self.experts_per_worker = num_experts // num_workers
        self._dead_workers: frozenset = frozenset()
        if dead_workers:
            self.set_dead_workers(dead_workers)

    # -- graceful degradation ----------------------------------------------
    @property
    def dead_workers(self) -> frozenset:
        """Workers currently treated as failed (empty when healthy)."""
        return self._dead_workers

    @property
    def dead_experts(self) -> frozenset:
        """Experts lost with the dead workers that hosted them."""
        return frozenset(
            e
            for w in self._dead_workers
            for e in range(
                w * self.experts_per_worker,
                (w + 1) * self.experts_per_worker,
            )
        )

    def set_dead_workers(self, dead_workers) -> None:
        """Declare workers failed mid-run (e.g. a crashed rank).

        A dead worker's expert shards are gone: no dispatch traffic is
        sent to it, it computes nothing, and the tokens that would
        have routed there are handled by the capacity-drop path —
        combined as zeros with gate renormalization over surviving
        experts — exactly like :meth:`MoELayer.set_dead_experts` with
        the worker's expert range.  The dead worker's *data* shard is
        still processed (in the real system the DP replica re-feeds
        it; here the caller keeps passing all P shards).  Declaring
        every worker dead is a total loss and is rejected.
        """
        dead = frozenset(int(w) for w in dead_workers)
        for w in dead:
            if not 0 <= w < self.num_workers:
                raise ValueError(
                    f"dead worker {w} out of range [0, {self.num_workers})"
                )
        if len(dead) == self.num_workers:
            raise ValueError(
                "all workers declared dead; the group cannot degrade "
                "around a total loss"
            )
        self._dead_workers = dead

    # -- helpers -----------------------------------------------------------
    def _owner(self, expert: int) -> int:
        return expert // self.experts_per_worker

    def _apply_codec(self, array: np.ndarray) -> np.ndarray:
        codec: Optional[Compressor] = self.layer.compressor
        if codec is None or codec.bits_per_value >= 32:
            return array
        return codec.roundtrip(array)

    # -- the distributed forward pass ---------------------------------------
    def forward(self, shards: List[np.ndarray]) -> List[np.ndarray]:
        """One synchronized forward over per-worker token shards.

        ``shards[w]`` is worker w's (tokens_w, model_dim) input.
        Returns the per-worker outputs.  Also records
        ``self.last_dispatch_traffic`` / ``self.last_combine_traffic``.
        """
        if len(shards) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} shards, got {len(shards)}"
            )
        gate = self.layer.gate  # TopKGate or ExpertChoiceGate
        experts: Experts = self.layer.experts
        num_experts = gate.num_experts
        model_dim = self.layer.model_dim
        workers = range(self.num_workers)

        # Every worker gates its own shard with the shared capacity
        # (synchronous training uses the global token count per
        # worker; here shards may differ, so each uses its own).
        from ..nn.tensor import Tensor

        dead_workers = self._dead_workers
        dead_experts = self.dead_experts
        gate_outputs = []
        for w in workers:
            tokens = np.asarray(shards[w], dtype=np.float32)
            if tokens.ndim != 2 or tokens.shape[1] != model_dim:
                raise ValueError(
                    f"shard {w} must be (tokens, {model_dim}), got "
                    f"{tokens.shape}"
                )
            out = gate(Tensor(tokens))
            if dead_experts:
                # Tokens routed to a dead worker's experts fall back to
                # the capacity-drop path (combine as zeros, surviving
                # weights renormalized) before any dispatch happens —
                # the same degradation MoELayer.set_dead_experts applies.
                out = out.with_experts_dropped(dead_experts)
            gate_outputs.append(out)

        # Dispatch: worker w builds, for each expert e, its (C, M)
        # capacity-padded buffer — the block it sends to e's owner.
        # Sparse gate outputs (token-major top-k and flat
        # expert-choice alike) fill the buffers by direct index
        # assignment (each (expert, slot) holds at most one token);
        # the dense mode uses the reference einsum.
        sparse = self.layer.dispatch_mode == "sparse"
        send_blocks = []  # [w][e] -> (C_w, M)
        for w in workers:
            out = gate_outputs[w]
            tokens = np.asarray(shards[w], dtype=np.float32)
            if sparse and out.has_sparse:
                blocks = np.zeros(
                    (num_experts, out.capacity, model_dim), dtype=np.float32
                )
                t_ids, e_ids, s_ids, _ = out._kept_coords()
                blocks[e_ids, s_ids] = tokens[t_ids]
            else:
                blocks = np.einsum(
                    "tm,tec->ecm", tokens, out.dispatch_mask
                )
            send_blocks.append(blocks)

        # First all-to-all (dispatch): exchange expert blocks.
        dispatch_traffic = np.zeros((self.num_workers, self.num_workers))
        inbox = [[None] * self.num_workers for _ in workers]  # [dst][src]
        for src in workers:
            for expert in range(num_experts):
                dst = self._owner(expert)
                if dst in dead_workers:
                    # Nothing is sent to a failed rank; the masked
                    # gating above already re-routed (dropped) every
                    # token that would have gone there.
                    continue
                payload = self._apply_codec(send_blocks[src][expert])
                dispatch_traffic[src, dst] += payload.nbytes
                if inbox[dst][src] is None:
                    inbox[dst][src] = {}
                inbox[dst][src][expert] = payload
        self.last_dispatch_traffic = A2ATraffic(dispatch_traffic)

        # Local expert computation on every worker.  Each worker runs
        # *all* its received blocks in one grouped pass: the blocks,
        # sorted by expert (sources stay in rank order within each
        # expert), are contiguous per-expert row segments — exactly
        # the form ``Experts.run_grouped`` executes through
        # ``segment_matmul`` — so a worker owning 8 experts fed by 4
        # peers issues 8 segment GEMMs instead of 32 ``run_expert``
        # calls.  ``expert_impl="loop"`` keeps the one-block-at-a-time
        # reference path.
        outbox = [[None] * self.num_workers for _ in workers]  # [src][dst]
        combine_traffic = np.zeros((self.num_workers, self.num_workers))
        for w in workers:
            if w in dead_workers:
                # A dead worker computes nothing and returns nothing.
                for src in workers:
                    outbox[w][src] = {}
                continue
            entries = []  # (expert, src, block), block (C_src, M)
            for src in workers:
                for expert, block in inbox[w][src].items():
                    entries.append((expert, src, block))
            entries.sort(key=lambda item: item[0])
            results = [{} for _ in workers]  # per src
            if experts.expert_impl == "loop":
                for expert, src, block in entries:
                    out = experts.run_expert(expert, Tensor(block)).data
                    results[src][expert] = self._apply_codec(out)
                    combine_traffic[w, src] += results[src][expert].nbytes
            elif entries:
                counts = np.zeros(num_experts, dtype=np.int64)
                for expert, _, block in entries:
                    counts[expert] += block.shape[0]
                rows = np.concatenate(
                    [block for _, _, block in entries], axis=0
                )
                out_rows = experts.run_grouped(Tensor(rows), counts).data
                offset = 0
                for expert, src, block in entries:
                    out = out_rows[offset : offset + block.shape[0]]
                    offset += block.shape[0]
                    results[src][expert] = self._apply_codec(out)
                    combine_traffic[w, src] += results[src][expert].nbytes
            for src in workers:
                outbox[w][src] = results[src]
        self.last_combine_traffic = A2ATraffic(combine_traffic)

        # Second all-to-all (combine): results return to token owners,
        # which merge them with their own combine weights.
        outputs = []
        for w in workers:
            gate_out = gate_outputs[w]
            num_tokens = gate_out.num_tokens
            expert_out = np.zeros(
                (num_experts, gate_out.capacity, model_dim), dtype=np.float32
            )
            for owner in workers:
                for expert, out in outbox[owner][w].items():
                    expert_out[expert] = out
            if sparse and gate_out.has_sparse:
                t_ids, e_ids, s_ids, w_idx = gate_out._kept_coords()
                w_sel = gate_out.gate_weights.data[w_idx]
                merged = np.zeros((num_tokens, model_dim), dtype=np.float32)
                np.add.at(
                    merged, t_ids, w_sel[:, None] * expert_out[e_ids, s_ids]
                )
            else:
                merged = np.einsum(
                    "ecm,tec->tm", expert_out, gate_out.combine_weights.data
                )
            outputs.append(merged.astype(np.float32))
        return outputs

    def forward_concatenated(self, shards: List[np.ndarray]) -> np.ndarray:
        """Forward then concatenate outputs in worker order."""
        return np.concatenate(self.forward(shards), axis=0)
